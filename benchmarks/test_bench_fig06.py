"""Figure 6: bandwidth impact of data rate and channel count."""

from conftest import quick_ctx

from repro.experiments import fig06_bandwidth_impact as fig06


def regenerate():
    # The largest sweep of the evaluation (18 cells x several workloads);
    # a smaller instruction budget keeps one regeneration tractable.
    ctx = quick_ctx(instructions=8_000)
    return fig06.run(ctx)


def test_fig06_bandwidth_impact(bench_once):
    table = bench_once(regenerate)
    print()
    print(table.format())
    for system in ("ddr2", "fbdimm"):
        # More bandwidth never hurts: 800 MT/s beats 533 MT/s at fixed
        # channel count, for every core count.
        for cores in fig06.CORE_COUNTS:
            assert fig06.gain(
                table, system, cores, rate_from=533, rate_to=800
            ) > 1.0
        # Channel count matters much more at 8 cores than at 1 (the
        # paper: 8.8 % vs 75.1 % going from one to two channels).
        gain_1core = fig06.channel_gain(table, system, 1)
        gain_8core = fig06.channel_gain(table, system, 8)
        assert gain_8core > gain_1core
