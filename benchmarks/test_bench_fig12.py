"""Figure 12: complementarity of AMB and software cache prefetching."""

import pytest
from conftest import quick_ctx

from repro.experiments import fig12_sw_prefetch


def regenerate():
    return fig12_sw_prefetch.run(quick_ctx())


def test_fig12_ap_sp_complementarity(bench_once):
    table = bench_once(regenerate)
    print()
    print(table.format())
    by_cores = {r["cores"]: r for r in table.rows}
    for row in table.rows:
        assert row["sp"] > 1.0 and row["ap"] > 1.0
        assert row["ap_sp"] > max(row["sp"], row["ap"])
        # "Very close to the sum of SP and AP" — additive within 15 %.
        assert row["additivity"] == pytest.approx(1.0, abs=0.15)
    # SP wins at one core; AP overtakes at eight (paper's crossover).
    assert by_cores[1]["sp"] > by_cores[1]["ap"]
    assert by_cores[8]["ap"] > by_cores[8]["sp"]
