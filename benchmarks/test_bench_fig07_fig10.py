"""Figures 7 and 10: AMB-prefetching speedup and its bandwidth/latency view."""

from conftest import quick_ctx

from repro.experiments import fig07_amb_speedup, fig10_bw_latency_ap


def regenerate_fig07():
    ctx = quick_ctx()
    table = fig07_amb_speedup.run(ctx)
    return table, fig07_amb_speedup.group_means(table)


def test_fig07_amb_prefetch_speedup(bench_once):
    table, summary = bench_once(regenerate_fig07)
    print()
    print(summary.format())
    # Paper: average improvements 16.0/19.4/16.3/15.0 %, never negative.
    assert all(r["improvement"] > 0 for r in table.rows)
    for row in summary.rows:
        assert 0.05 < row["improvement"] < 0.35


def regenerate_fig10():
    return fig10_bw_latency_ap.run(quick_ctx())


def test_fig10_bandwidth_latency_with_ap(bench_once):
    table = bench_once(regenerate_fig10)
    print()
    print(table.format())
    # Paper: for every workload FBD-AP moves more data at lower latency.
    for row in table.rows:
        assert row["ap_bw"] > row["fbd_bw"]
        assert row["ap_latency"] < row["fbd_latency"]
