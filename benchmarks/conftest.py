"""Shared helpers for the benchmark harness.

Each benchmark regenerates one of the paper's tables or figures end-to-end
(workload generation, simulation sweep, metric extraction) at reduced scale
— quick workload subsets and small instruction budgets — and asserts the
result *shape* the paper reports.  ``pedantic(rounds=1)`` keeps wall time
sane; the numbers printed by ``--benchmark-only`` measure the cost of one
full regeneration.

For full-scale outputs run ``python -m repro.experiments all --insts 200000``.
"""

import pytest

from repro.experiments.runner import ExperimentContext


def quick_ctx(instructions=15_000):
    """A fresh, small experiment context (no cross-bench memoisation).

    The run cache is pinned off and jobs to 1 explicitly: a benchmark that
    silently hit a populated ``.repro-cache`` (or fanned out across worker
    processes) would time deserialization instead of simulation.
    """
    return ExperimentContext(
        instructions=instructions, quick=True, jobs=1, cache=None
    )


@pytest.fixture
def bench_once(benchmark):
    """Run the benched callable exactly once and return its result."""

    def run(fn, *args, **kwargs):
        return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)

    return run
