"""Figure 9: decomposition of the AP gain (FBD / FBD-APFL / FBD-AP)."""

from conftest import quick_ctx

from repro.experiments import fig09_decomposition


def regenerate():
    return fig09_decomposition.run(quick_ctx())


def test_fig09_gain_decomposition(bench_once):
    table = bench_once(regenerate)
    print()
    print(table.format())
    by_cores = {r["cores"]: r for r in table.rows}
    for row in table.rows:
        assert row["fbd"] < row["fbd_ap"], "AP beats FBD at every core count"
        assert row["latency_gain"] > 0, "AP beats APFL (idle-latency share)"
    # The bandwidth-utilisation share is positive under load and grows
    # with the core count (the paper's 8-core observation).
    assert by_cores[4]["bandwidth_gain"] > 0
    assert by_cores[8]["bandwidth_gain"] > 0
    assert by_cores[8]["bandwidth_gain"] > by_cores[1]["bandwidth_gain"]
