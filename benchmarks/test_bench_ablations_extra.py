"""Additional ablation benches: hardware prefetching interplay."""

from conftest import quick_ctx

from repro.experiments import hw_prefetch


def test_ablation_hw_prefetch(bench_once):
    table = bench_once(lambda: hw_prefetch.run(quick_ctx(instructions=15_000)))
    print()
    print(table.format())
    # Section 5.4's conjecture: AMB prefetching keeps improving performance
    # when a hardware prefetcher replaces the software one.
    for row in table.rows:
        assert row["ap_gain_with_sw"] > 0
        assert row["ap_gain_with_hw"] > 0
