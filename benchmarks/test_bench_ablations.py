"""Ablation benches: VRL, page interleaving, FIFO vs LRU replacement."""

import pytest
from conftest import quick_ctx

from repro.experiments import ablations


def test_ablation_vrl(bench_once):
    table = bench_once(lambda: ablations.run_vrl(quick_ctx(instructions=10_000)))
    print()
    print(table.format())
    # Paper: "the performance improvement from the AMB prefetching is very
    # similar to that without VRL".
    for row in table.rows:
        assert row["improvement_vrl"] == pytest.approx(
            row["improvement_no_vrl"], abs=0.08
        )
        assert row["improvement_vrl"] > 0
        assert row["improvement_no_vrl"] > 0


def test_ablation_page_interleave(bench_once):
    table = bench_once(
        lambda: ablations.run_page_interleave(quick_ctx(instructions=10_000))
    )
    print()
    print(table.format())
    # Both layouts of Figure 2 must work; neither collapses.
    for row in table.rows:
        assert row["page_interleave_ap"] > 0.5 * row["multi_cacheline_ap"]


def test_ablation_replacement_policy(bench_once):
    table = bench_once(
        lambda: ablations.run_replacement(quick_ctx(instructions=10_000))
    )
    print()
    print(table.format())
    # FIFO is the paper's choice; LRU must not be dramatically better
    # (hit blocks are already cached on-chip, so recency is useless).
    for row in table.rows:
        assert row["lru"] < row["fifo"] * 1.05
