"""Figures 4 and 5: DDR2 vs FB-DIMM, SMT speedup and bandwidth/latency."""

from conftest import quick_ctx

from repro.experiments import fig04_smt_speedup, fig05_bw_latency


def regenerate_fig04():
    ctx = quick_ctx()
    table = fig04_smt_speedup.run(ctx)
    return table, fig04_smt_speedup.group_means(table)


def test_fig04_smt_speedup(bench_once):
    table, summary = bench_once(regenerate_fig04)
    print()
    print(summary.format())
    ratio = {r["cores"]: r["fbd_over_ddr2"] for r in summary.rows}
    # Paper: FBD ~comparable at 1-2 cores, ahead at 8 (avg +6 %).
    assert ratio[1] < 1.02
    assert ratio[8] > 1.0
    assert ratio[8] > ratio[1]
    # Single-core DDR2 is the 1.0 reference by construction.
    for row in table.rows:
        if row["cores"] == 1:
            assert abs(row["ddr2"] - 1.0) < 1e-9


def regenerate_fig05():
    ctx = quick_ctx()
    table = fig05_bw_latency.run(ctx)
    return fig05_bw_latency.group_means(table)


def test_fig05_bandwidth_vs_latency(bench_once):
    summary = bench_once(regenerate_fig05)
    print()
    print(summary.format())
    by_cores = {r["cores"]: r for r in summary.rows}
    # Utilised bandwidth grows with core count for both systems.
    assert by_cores[8]["fbd_bw"] > by_cores[1]["fbd_bw"]
    assert by_cores[8]["ddr2_bw"] > by_cores[1]["ddr2_bw"]
    # At 8 cores FB-DIMM serves its (higher) load at lower latency.
    assert by_cores[8]["fbd_latency"] < by_cores[8]["ddr2_latency"]
    # At 1 core DDR2's latency is the lower one.
    assert by_cores[1]["ddr2_latency"] < by_cores[1]["fbd_latency"]