"""Section 4's idle-latency claim: 63 ns miss / 33 ns AMB-cache hit."""

import pytest

from repro.experiments import latency_breakdown


def test_idle_latency_breakdown(bench_once):
    table = bench_once(latency_breakdown.run)
    by = {(r["system"], r["case"]): r["latency_ns"] for r in table.rows}
    assert by[("FBD", "miss")] == pytest.approx(63.0)
    assert by[("FBD-AP", "miss")] == pytest.approx(63.0)
    assert by[("FBD-AP", "amb hit")] == pytest.approx(33.0)
    assert by[("DDR2", "miss")] < by[("FBD", "miss")]
