"""Tables 1-3: the experimental setup itself.

These benches assert that the library's defaults reproduce the paper's
configuration tables exactly, and time how long building a full default
system takes (the fixed cost every experiment pays).
"""

from repro.config import CpuConfig, DramTimings, MemoryConfig, fbdimm_baseline
from repro.system import System
from repro.workloads.multiprog import SINGLE_CORE, WORKLOADS


def build_default_system():
    return System(fbdimm_baseline(num_cores=1), ["swim"])


def test_table1_system_parameters(bench_once):
    system = bench_once(build_default_system)
    cpu, memory = CpuConfig(), MemoryConfig()
    # Processor rows of Table 1.
    assert cpu.clock_ghz == 4.0
    assert cpu.rob_entries == 196
    assert cpu.data_mshr_entries == 32
    assert cpu.l2_mshr_entries == 64
    # Memory rows of Table 1.
    assert memory.logic_channels == 2
    assert memory.physical_per_logic == 2
    assert memory.dimms_per_channel == 4
    assert memory.banks_per_dimm == 4
    assert memory.data_rate_mts == 667
    assert memory.buffer_entries == 64
    assert memory.controller_overhead_ns == 12.0
    # And the built system agrees.
    assert len(system.controller.channels) == 4
    assert system.l2_mshr.capacity == 64


def test_table2_dram_timings(bench_once):
    timings = bench_once(DramTimings)
    expected = {
        "tRP": 15.0, "tRCD": 15.0, "tCL": 15.0, "tRC": 54.0, "tRRD": 9.0,
        "tRPD": 9.0, "tWTR": 9.0, "tRAS": 39.0, "tWL": 12.0, "tWPD": 36.0,
    }
    for name, value in expected.items():
        assert getattr(timings, name) == value


def test_table3_workload_mixes(bench_once):
    workloads = bench_once(lambda: dict(WORKLOADS))
    assert workloads["2C-1"] == ("wupwise", "swim")
    assert workloads["2C-3"] == ("vpr", "equake")
    assert workloads["4C-6"] == ("equake", "lucas", "parser", "vortex")
    assert workloads["8C-3"] == (
        "vpr", "equake", "facerec", "lucas", "fma3d", "parser", "gap", "vortex",
    )
    assert len(SINGLE_CORE) == 12
