"""Figure 13: DRAM dynamic power of AMB-prefetching variants."""

import pytest
from conftest import quick_ctx

from repro.experiments import fig13_power

#: Table regenerated once per module; the timed test fills it so the
#: xfail shape check below doesn't pay for a second regeneration.
_cache = {}


def regenerate():
    return fig13_power.run(quick_ctx())


def row(table, variant, cores):
    for r in table.rows:
        if r["variant"] == variant and r["cores"] == cores:
            return r
    raise KeyError((variant, cores))


def test_fig13_power_saving(bench_once):
    table = bench_once(regenerate)
    _cache["table"] = table
    print()
    print(table.format())
    for cores in (1, 4, 8):
        k2 = row(table, "#CL=2", cores)
        k4 = row(table, "#CL=4 (default)", cores)
        k8 = row(table, "#CL=8", cores)
        # The default configuration saves DRAM dynamic power everywhere.
        assert k4["relative_power"] < 1.0
        # ACT/PRE counts fall, column accesses rise — more so as K grows.
        assert k2["act_change"] > k4["act_change"] > k8["act_change"]
        assert k2["cas_change"] < k4["cas_change"] < k8["cas_change"]


@pytest.mark.xfail(
    reason="K=8's power-saving erosion at high core count (the paper's "
    "ACT-vs-CAS balance argument) only manifests at full scale; the "
    "quick-subset run shows the opposite ordering",
    strict=False,
)
def test_fig13_k8_erosion_at_high_core_count():
    # K=8's extra column accesses erode its advantage at high core count
    # (the paper's balance argument, where it even turns negative).
    table = _cache.get("table") or regenerate()
    assert row(table, "#CL=8", 8)["relative_power"] > (
        row(table, "#CL=4 (default)", 8)["relative_power"] - 0.02
    )
