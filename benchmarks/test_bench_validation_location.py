"""Substrate validation and the prefetch-placement ablation."""

import pytest
from conftest import quick_ctx

from repro.experiments import prefetch_location, validation


def test_validation_stream_saturation(bench_once):
    table = bench_once(lambda: validation.run_saturation(quick_ctx(20_000)))
    print()
    print(table.format())
    rows = {r["stream_cores"]: r for r in table.rows}
    # Northbound read peak of the default config is 4 x 5.33 GB/s; with
    # enough streams the channels must run within a few percent of it.
    assert rows[4]["bandwidth_gbs"] > 20.0
    assert rows[8]["bandwidth_gbs"] > 20.0
    # One stream cannot saturate (MSHR-bounded closed loop).
    assert rows[1]["bandwidth_gbs"] < rows[4]["bandwidth_gbs"]
    # Latency rises monotonically with offered load.
    latencies = [rows[c]["latency_ns"] for c in (1, 2, 4)]
    assert latencies == sorted(latencies)


def test_validation_pointer_chase(bench_once):
    table = bench_once(lambda: validation.run_pointer_chase(quick_ctx(20_000)))
    print()
    print(table.format())
    # A dependent chain observes the 63 ns idle latency plus up to one
    # southbound frame (6 ns) of alignment, ~3 ns on average.
    assert 63.0 <= table.rows[0]["latency_ns"] <= 69.0


def test_ablation_prefetch_location(bench_once):
    table = bench_once(lambda: prefetch_location.run(quick_ctx(12_000)))
    print()
    print(table.format())
    rows = {r["cores"]: r for r in table.rows}
    # The paper's core argument: buffering in front of the channel is
    # competitive when bandwidth is plentiful and loses badly at 8 cores.
    assert rows[1]["controller_speedup"] > 1.0
    assert rows[8]["amb_speedup"] > rows[8]["controller_speedup"]
    # The controller placement pays with channel traffic.
    assert rows[8]["controller_bw_gbs"] > rows[8]["amb_bw_gbs"]
