"""Figure 11: sensitivity of AP performance to its configuration."""

import pytest
from conftest import quick_ctx

from repro.experiments import fig11_sensitivity


def regenerate():
    return fig11_sensitivity.run(quick_ctx())


def norm(table, variant, cores):
    for r in table.rows:
        if r["variant"] == variant and r["cores"] == cores:
            return r["normalised"]
    raise KeyError((variant, cores))


def test_fig11_sensitivity(bench_once):
    table = bench_once(regenerate)
    print()
    print(table.format())
    for cores in (1, 2, 4, 8):
        # Buffer size barely matters (paper: 32/64/128 are close).
        assert norm(table, "#entry=32", cores) == pytest.approx(1.0, abs=0.05)
        assert norm(table, "#entry=128", cores) == pytest.approx(1.0, abs=0.05)
        # Associativity: 2-way is nearly full; direct-mapped loses several
        # percent (paper: 95.3/90.5/87.4/87.0 % of full associativity).
        assert norm(table, "Set=2", cores) > 0.9
        assert norm(table, "Set=direct", cores) < norm(table, "Set=2", cores)
    # Region-size preference flips with core count (paper: 1-2 cores like
    # bigger K, 4-8 cores peak at 4): K=8's relative standing at 8 cores
    # must not exceed its standing at 1 core.
    assert norm(table, "#CL=8", 8) <= norm(table, "#CL=8", 1) + 0.02
