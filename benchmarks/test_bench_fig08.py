"""Figure 8: prefetch coverage and efficiency across AMB-cache variants."""

from conftest import quick_ctx

from repro.experiments import fig08_coverage


def regenerate():
    return fig08_coverage.run(quick_ctx())


def row(table, variant, cores):
    for r in table.rows:
        if r["variant"] == variant and r["cores"] == cores:
            return r
    raise KeyError((variant, cores))


def test_fig08_coverage_and_efficiency(bench_once):
    table = bench_once(regenerate)
    print()
    print(table.format())
    for cores in (1, 4):
        k2 = row(table, "#CL=2", cores)
        k4 = row(table, "#CL=4 (default)", cores)
        k8 = row(table, "#CL=8", cores)
        # Coverage rises with K, bounded by (K-1)/K; efficiency falls.
        assert k2["coverage"] < k4["coverage"] < k8["coverage"]
        assert k2["efficiency"] > k4["efficiency"] > k8["efficiency"]
        for r in (k2, k4, k8):
            assert r["coverage"] <= r["bound"]
        # Less associativity costs coverage and efficiency.
        direct = row(table, "Set=direct", cores)
        two_way = row(table, "Set=2", cores)
        assert direct["coverage"] < two_way["coverage"]
        assert direct["efficiency"] < k4["efficiency"]
