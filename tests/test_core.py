"""Core-model tests with scripted traces and a fake memory controller."""

import pytest

from repro.config import CpuConfig
from repro.controller.transaction import RequestKind
from repro.cpu.core import Core
from repro.cpu.l2 import L2FillTable
from repro.cpu.mshr import Limiter
from repro.engine.simulator import Simulator
from repro.workloads.trace import TraceEvent, TraceKind


class FakeMemory:
    """Completes every request after a fixed service time."""

    def __init__(self, sim, latency_ps=63_000):
        self.sim = sim
        self.latency_ps = latency_ps
        self.submitted = []

    def submit(self, req):
        self.submitted.append(req)
        self.sim.schedule(self.latency_ps, lambda: req.complete(self.sim.now))


def run_core(events, *, config=None, base_ipc=1.0, target=10_000, latency=63_000):
    sim = Simulator()
    memory = FakeMemory(sim, latency)
    l2 = L2FillTable(1024)
    finished = []
    core = Core(
        sim=sim,
        core_id=0,
        config=config or CpuConfig(),
        base_ipc=base_ipc,
        trace=iter(events),
        controller=memory,
        l2=l2,
        l2_mshr=Limiter(64),
        target_instructions=target,
        on_finished=finished.append,
    )
    core.start()
    sim.run(max_events=1_000_000)
    return core, memory, sim, finished


def endless(events):
    """Pad a scripted prefix with far-future no-op reads."""
    tail_start = max((e.inst for e in events), default=0) + 10**9

    def gen():
        yield from events
        i = tail_start
        while True:
            yield TraceEvent(i, TraceKind.READ, 99_000_000 + i)
            i += 1000

    return gen()


class TestComputeBound:
    def test_finishes_at_base_rate_without_memory_events(self):
        core, _, sim, finished = run_core(endless([]), base_ipc=2.0, target=8_000)
        assert finished, "core must reach its target"
        # 8000 instructions at IPC 2 and 250 ps/cycle -> 1_000_000 ps.
        assert sim.now == 1_000_000
        assert core.committed_instructions == 8_000

    def test_ipc_metric(self):
        core, _, sim, _ = run_core(endless([]), base_ipc=2.0, target=8_000)
        assert core.ipc(sim.now) == pytest.approx(2.0)


class TestDemandReads:
    def test_early_miss_is_fully_hidden(self):
        events = [TraceEvent(1000, TraceKind.READ, 42)]
        core, memory, sim, finished = run_core(
            endless(events), base_ipc=1.0, target=2_000
        )
        assert finished
        assert len(memory.submitted) == 1
        assert memory.submitted[0].kind is RequestKind.DEMAND_READ
        # The 63 ns latency overlaps 1000 instructions of compute entirely.
        assert sim.now == 2_000 * 250

    def test_late_miss_stalls_commit(self):
        events = [TraceEvent(1900, TraceKind.READ, 42)]
        core, memory, sim, finished = run_core(
            endless(events), base_ipc=1.0, target=2_000
        )
        assert finished
        # Miss issues at 475_000 ps and completes 63 ns later; the target
        # instruction cannot commit before that.
        assert sim.now == 1_900 * 250 + 63_000

    def test_mlp_overlaps_misses_within_rob(self):
        """Two misses 10 instructions apart overlap; total stall ~1 latency."""
        events = [
            TraceEvent(1000, TraceKind.READ, 42),
            TraceEvent(1010, TraceKind.READ, 4242),
        ]
        core, memory, sim, _ = run_core(endless(events), target=2_000)
        base = 2_000 * 250
        assert len(memory.submitted) == 2
        assert sim.now < base + 2 * 63_000  # overlapped, not serial

    def test_rob_blocks_distant_run_ahead(self):
        """A miss must stall the core once it runs ROB-entries ahead."""
        config = CpuConfig(rob_entries=64)
        events = [TraceEvent(1000, TraceKind.READ, 42)]
        core, _, sim, _ = run_core(endless(events), config=config, target=2_000)
        assert core.stats.rob_stalls >= 1

    def test_mshr_exhaustion_stalls(self):
        config = CpuConfig(data_mshr_entries=1, rob_entries=100_000)
        events = [
            TraceEvent(10, TraceKind.READ, 1),
            TraceEvent(20, TraceKind.READ, 2),
        ]
        core, _, _, _ = run_core(endless(events), config=config, target=2_000)
        assert core.stats.mshr_stalls >= 1
        assert core.stats.demand_misses == 2


class TestSoftwarePrefetch:
    def test_prefetch_turns_demand_into_hit(self):
        events = [
            TraceEvent(10, TraceKind.PREFETCH, 42),
            TraceEvent(2000, TraceKind.READ, 42),
        ]
        core, memory, _, _ = run_core(endless(events), target=4_000)
        assert core.stats.sw_prefetches_issued == 1
        assert core.stats.l2_prefetch_hits == 1
        assert core.stats.demand_misses == 0

    def test_close_demand_merges_with_inflight_prefetch(self):
        events = [
            TraceEvent(10, TraceKind.PREFETCH, 42),
            TraceEvent(20, TraceKind.READ, 42),  # fill still in flight
        ]
        core, memory, _, _ = run_core(endless(events), target=4_000)
        assert core.stats.l2_merges == 1
        assert len([r for r in memory.submitted if r.kind is RequestKind.DEMAND_READ]) == 0

    def test_prefetch_dropped_when_mshrs_full(self):
        config = CpuConfig(data_mshr_entries=1, rob_entries=100_000)
        events = [
            TraceEvent(10, TraceKind.READ, 1),
            TraceEvent(11, TraceKind.PREFETCH, 2),
        ]
        core, _, _, _ = run_core(endless(events), config=config, target=2_000)
        assert core.stats.sw_prefetches_dropped == 1

    def test_duplicate_prefetch_squashed(self):
        events = [
            TraceEvent(10, TraceKind.PREFETCH, 42),
            TraceEvent(11, TraceKind.PREFETCH, 42),
        ]
        core, memory, _, _ = run_core(endless(events), target=2_000)
        assert core.stats.sw_prefetches_issued == 1
        assert core.stats.sw_prefetches_squashed == 1


class TestWrites:
    def test_write_is_posted(self):
        events = [TraceEvent(1000, TraceKind.WRITE, 7)]
        core, memory, sim, _ = run_core(endless(events), target=2_000)
        assert core.stats.writes_issued == 1
        assert sim.now == 2_000 * 250  # no stall from one posted write

    def test_store_buffer_fills_and_stalls(self):
        config = CpuConfig(store_buffer_entries=2)
        events = [TraceEvent(10 + i, TraceKind.WRITE, i) for i in range(5)]
        core, _, _, _ = run_core(endless(events), config=config, target=2_000)
        assert core.stats.store_stalls >= 1
        assert core.stats.writes_issued == 5


class TestFinish:
    def test_on_finished_called_once_with_core(self):
        core, _, _, finished = run_core(endless([]), target=1_000)
        assert finished == [core]
        assert core.finished
        assert core.committed_instructions == 1_000

    def test_invalid_base_ipc(self):
        with pytest.raises(ValueError):
            run_core(endless([]), base_ipc=0.0)
