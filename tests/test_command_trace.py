"""DRAM command-trace tests: ordering and protocol legality."""


from repro.config import DramTimings, PagePolicy
from repro.dram.bank import Bank, RankTimer
from repro.dram.commands import CommandType
from repro.dram.resources import BusResource
from repro.dram.timing import TimingPs

T = TimingPs.from_config(DramTimings(), 3000, 4)


def traced_bank(policy=PagePolicy.CLOSE_PAGE):
    bank = Bank(0, T, policy)
    bank.enable_trace()
    return bank, BusResource("bus"), RankTimer()


def kinds(bank):
    return [record.kind for record in bank.command_log]


class TestCloseTrace:
    def test_read_sequence(self):
        bank, bus, rank = traced_bank()
        bank.read(0, 5, 1, bus, rank)
        assert kinds(bank) == [
            CommandType.ACTIVATE, CommandType.READ, CommandType.PRECHARGE,
        ]

    def test_group_read_has_k_reads(self):
        bank, bus, rank = traced_bank()
        bank.read(0, 5, 4, bus, rank)
        assert kinds(bank) == [
            CommandType.ACTIVATE,
            CommandType.READ, CommandType.READ, CommandType.READ, CommandType.READ,
            CommandType.PRECHARGE,
        ]

    def test_write_sequence(self):
        bank, bus, rank = traced_bank()
        bank.write(0, 5, bus, rank)
        assert kinds(bank) == [
            CommandType.ACTIVATE, CommandType.WRITE, CommandType.PRECHARGE,
        ]

    def test_protocol_timing_legal(self):
        """ACT -> RD >= tRCD; RD -> PRE >= tRPD; per Table 2."""
        bank, bus, rank = traced_bank()
        bank.read(0, 5, 1, bus, rank)
        act, rd, pre = bank.command_log
        assert rd.time_ps - act.time_ps >= T.tRCD
        assert pre.time_ps - rd.time_ps >= T.tRPD
        assert pre.time_ps - act.time_ps >= T.tRAS

    def test_trace_disabled_by_default(self):
        bank = Bank(0, T, PagePolicy.CLOSE_PAGE)
        bank.read(0, 5, 1, BusResource("b"), RankTimer())
        assert bank.command_log is None

    def test_trace_matches_stats(self):
        bank, bus, rank = traced_bank()
        bank.read(0, 5, 2, bus, rank)
        bank.write(bank.ready_at, 6, bus, rank)
        log_kinds = kinds(bank)
        assert log_kinds.count(CommandType.ACTIVATE) == bank.stats.activates
        assert log_kinds.count(CommandType.PRECHARGE) == bank.stats.precharges
        assert log_kinds.count(CommandType.READ) == bank.stats.reads
        assert log_kinds.count(CommandType.WRITE) == bank.stats.writes


class TestOpenTrace:
    def test_row_hit_emits_only_column_command(self):
        bank, bus, rank = traced_bank(PagePolicy.OPEN_PAGE)
        bank.read(0, 5, 1, bus, rank)
        bank.command_log.clear()
        bank.read(bank.column_ok, 5, 1, bus, rank)
        assert kinds(bank) == [CommandType.READ]

    def test_row_conflict_emits_pre_then_act(self):
        bank, bus, rank = traced_bank(PagePolicy.OPEN_PAGE)
        bank.read(0, 5, 1, bus, rank)
        bank.command_log.clear()
        bank.read(bank.precharge_ok, 9, 1, bus, rank)
        assert kinds(bank) == [
            CommandType.PRECHARGE, CommandType.ACTIVATE, CommandType.READ,
        ]
        pre, act, _ = bank.command_log
        assert act.time_ps - pre.time_ps >= T.tRP

    def test_rows_recorded(self):
        bank, bus, rank = traced_bank(PagePolicy.OPEN_PAGE)
        bank.read(0, 5, 1, bus, rank)
        assert all(record.row == 5 for record in bank.command_log)
        assert all(record.bank_id == 0 for record in bank.command_log)
