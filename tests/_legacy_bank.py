"""Frozen pre-rewrite copy of ``repro.dram.bank`` — a test-only oracle.

This is the branchy per-issue implementation that the PR-8 hot-path
rewrite replaced with precomputed timing tables.  The hypothesis suite in
``test_timing_tables.py`` drives randomized command sequences through both
this oracle and the rewritten ``repro.dram.bank`` and asserts identical
timing, state and statistics.  Do not modernise this file: its value is
being exactly the old code.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.config import PagePolicy
from repro.dram.commands import CommandRecord, CommandType
from repro.dram.resources import BusResource
from repro.dram.timing import TimingPs


@dataclass
class BankStats:
    """DRAM operation counters, the input to the power model (Section 5.5)."""

    activates: int = 0
    precharges: int = 0
    reads: int = 0
    writes: int = 0
    row_hits: int = 0
    row_misses: int = 0
    refreshes: int = 0


@dataclass
class RankTimer:
    """Cross-bank constraints shared by the banks of one rank.

    tRRD separates ACTs to different banks; tWTR separates the end of write
    data from the next read command on the same rank.

    ``pending_rd_cmds`` records the command instants of reads already
    committed on this rank (transactions are issued atomically, so commands
    can be committed ahead of simulated time).  A later write whose data
    burst backfills an earlier bus hole must not land so that a committed
    read command falls inside its wire-order tWTR window — that read was
    gated on the writes known *when it issued*, not on this one.
    """

    next_act_ok: int = 0
    read_ok_after_write: int = 0
    pending_rd_cmds: List[int] = field(default_factory=list)

    def act_gate(self, earliest: int) -> int:
        """Earliest time an ACT may issue respecting tRRD."""
        return max(earliest, self.next_act_ok)

    def note_act(self, act_time: int, tRRD: int) -> None:
        """Record an ACT so the next one (any bank) waits tRRD."""
        self.next_act_ok = max(self.next_act_ok, act_time + tRRD)

    def note_write_data_end(self, end_time: int, tWTR: int) -> None:
        """Record the end of a write burst; reads must wait tWTR."""
        self.read_ok_after_write = max(self.read_ok_after_write, end_time + tWTR)

    def note_read_cmd(self, cmd_time: int, now: int) -> None:
        """Record a committed RD command instant.

        Entries at or before ``now`` can never conflict with a future write
        (writes always place their command at or after the current time),
        so they are dropped here to keep the list at in-flight size.
        """
        if self.pending_rd_cmds and self.pending_rd_cmds[0] <= now:
            self.pending_rd_cmds = [c for c in self.pending_rd_cmds if c > now]
        self.pending_rd_cmds.append(cmd_time)
        self.pending_rd_cmds.sort()

    def read_in_window(self, wr_cmd: int, window_end: int) -> Optional[int]:
        """Latest committed read command in ``[wr_cmd, window_end)``."""
        hit: Optional[int] = None
        for cmd in self.pending_rd_cmds:
            if wr_cmd <= cmd < window_end:
                hit = cmd
        return hit


@dataclass
class AccessResult:
    """Timing outcome of one bank access.

    Attributes:
        command_start: When the first DRAM command (ACT or column) issued.
        data_times: Completion time of each cacheline's burst on the DIMM
            data bus, in fetch order (demanded line first for group reads).
        data_starts: Start time of each burst (for forwarding pipelining).
        row_hit: True when an open-page access found the row already open.
    """

    command_start: int
    data_times: List[int] = field(default_factory=list)
    data_starts: List[int] = field(default_factory=list)
    row_hit: bool = False


class Bank:
    """State machine for one logic DRAM bank."""

    def __init__(self, bank_id: int, timing: TimingPs, page_policy: PagePolicy) -> None:
        self.bank_id = bank_id
        self.timing = timing
        self.page_policy = page_policy
        self.open_row: Optional[int] = None
        self.ready_at = 0  # earliest next ACT (close page) / next row op
        self.column_ok = 0  # earliest next column command to the open row
        self.precharge_ok = 0  # earliest PRE honouring tRAS / tRPD / tWPD
        self.stats = BankStats()
        #: Optional per-command log (enable_trace); None keeps the hot
        #: path allocation-free.
        self.command_log: Optional[List[CommandRecord]] = None

    def enable_trace(self) -> None:
        """Record every issued DRAM command (debugging/verification aid)."""
        if self.command_log is None:
            self.command_log = []

    def _log(self, kind: CommandType, time_ps: int, row: int) -> None:
        if self.command_log is not None:
            self.command_log.append(
                CommandRecord(kind=kind, time_ps=time_ps, bank_id=self.bank_id, row=row)
            )

    # ------------------------------------------------------------------
    # Scheduling estimates (used by the hit-first scheduler; no mutation)
    # ------------------------------------------------------------------

    def is_row_hit(self, row: int) -> bool:
        """Whether an open-page access to ``row`` would skip ACT."""
        return self.page_policy is PagePolicy.OPEN_PAGE and self.open_row == row

    def earliest_start(self, now: int, row: int, rank: RankTimer) -> int:
        """Estimate when the command chain for ``row`` could begin."""
        if self.page_policy is PagePolicy.CLOSE_PAGE:
            return rank.act_gate(max(now, self.ready_at))
        if self.open_row == row:
            return max(now, self.column_ok)
        if self.open_row is None:
            return rank.act_gate(max(now, self.ready_at))
        # Row conflict: precharge first.
        return max(now, self.precharge_ok)

    # ------------------------------------------------------------------
    # Accesses (mutating)
    # ------------------------------------------------------------------

    def read(
        self,
        now: int,
        row: int,
        num_lines: int,
        data_bus: BusResource,
        rank: RankTimer,
    ) -> AccessResult:
        """Read ``num_lines`` cachelines from ``row``.

        The first line is the demanded one; under AMB prefetching the
        remaining K-1 column accesses are pipelined behind it.
        """
        t = self.timing
        row_hit = self.is_row_hit(row)
        act_time, first_rd_floor = self._row_phase(now, row, rank, row_hit)
        first_rd_floor = max(first_rd_floor, rank.read_ok_after_write)

        data_starts: List[int] = []
        data_times: List[int] = []
        rd_floor = first_rd_floor
        last_rd = first_rd_floor
        for _ in range(num_lines):
            start = data_bus.reserve(rd_floor + t.tCL, t.burst)
            data_starts.append(start)
            data_times.append(start + t.burst)
            last_rd = start - t.tCL  # effective RD command instant
            rank.note_read_cmd(last_rd, now)
            rd_floor = start + t.burst - t.tCL  # next RD gated by bus drain
        self.stats.reads += num_lines
        if row_hit:
            self.stats.row_hits += 1
        elif self.page_policy is PagePolicy.OPEN_PAGE:
            self.stats.row_misses += 1
        if self.command_log is not None:
            for start in data_starts:
                self._log(CommandType.READ, start - t.tCL, row)

        self._close_or_keep(act_time, last_rd, is_write=False, row=row)
        command_start = act_time if act_time is not None else first_rd_floor
        return AccessResult(
            command_start=command_start,
            data_times=data_times,
            data_starts=data_starts,
            row_hit=row_hit,
        )

    def write(
        self,
        now: int,
        row: int,
        data_bus: BusResource,
        rank: RankTimer,
    ) -> AccessResult:
        """Write one cacheline to ``row``."""
        t = self.timing
        row_hit = self.is_row_hit(row)
        act_time, wr_floor = self._row_phase(now, row, rank, row_hit)
        # Wire-order tWTR guard: if the candidate slot would put a
        # committed read command inside this write's data-end + tWTR
        # window, push the write past that read command and retry.
        while True:
            candidate = data_bus.probe(wr_floor + t.tWL, t.burst)
            conflict = rank.read_in_window(
                candidate - t.tWL, candidate + t.burst + t.tWTR
            )
            if conflict is None:
                break
            wr_floor = conflict + t.clock
        data_start = data_bus.reserve(wr_floor + t.tWL, t.burst)
        data_end = data_start + t.burst
        wr_time = data_start - t.tWL
        rank.note_write_data_end(data_end, t.tWTR)
        self._log(CommandType.WRITE, wr_time, row)
        self.stats.writes += 1
        if row_hit:
            self.stats.row_hits += 1
        elif self.page_policy is PagePolicy.OPEN_PAGE:
            self.stats.row_misses += 1

        self._close_or_keep(act_time, wr_time, is_write=True, row=row)
        command_start = act_time if act_time is not None else wr_floor
        return AccessResult(
            command_start=command_start,
            data_times=[data_end],
            data_starts=[data_start],
            row_hit=row_hit,
        )

    def refresh(self, now: int, trfc_ps: int) -> None:
        """All-bank refresh: the bank is unavailable for tRFC and any open
        row is closed.  Commands already scheduled keep their timing (the
        controller is assumed to slot refreshes into idle windows)."""
        busy_until = max(now, self.ready_at) + trfc_ps
        self.ready_at = busy_until
        self.column_ok = max(self.column_ok, busy_until)
        self.precharge_ok = max(self.precharge_ok, busy_until)
        self.open_row = None
        self.stats.refreshes += 1

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _row_phase(
        self, now: int, row: int, rank: RankTimer, row_hit: bool
    ) -> "tuple[Optional[int], int]":
        """Run the PRE/ACT part of an access.

        Returns (act_time or None, earliest column-command time).
        """
        t = self.timing
        if row_hit:
            return None, max(now, self.column_ok)

        pre_first = (
            self.page_policy is PagePolicy.OPEN_PAGE and self.open_row is not None
        )
        if pre_first:
            pre_time = max(now, self.precharge_ok)
            self.stats.precharges += 1
            self._log(CommandType.PRECHARGE, pre_time, row)
            act_floor = pre_time + t.tRP
        else:
            act_floor = max(now, self.ready_at)
        act_time = rank.act_gate(act_floor)
        rank.note_act(act_time, t.tRRD)
        self.stats.activates += 1
        self._log(CommandType.ACTIVATE, act_time, row)
        return act_time, act_time + t.tRCD

    def _close_or_keep(
        self, act_time: Optional[int], last_col: int, is_write: bool, row: int
    ) -> None:
        """Apply post-access state: auto-precharge or keep the row open."""
        t = self.timing
        col_to_pre = t.tWPD if is_write else t.tRPD
        if self.page_policy is PagePolicy.CLOSE_PAGE:
            act = act_time if act_time is not None else last_col
            pre_time = max(act + t.tRAS, last_col + col_to_pre)
            self.stats.precharges += 1
            self._log(CommandType.PRECHARGE, pre_time, row)
            self.ready_at = max(act + t.tRC, pre_time + t.tRP)
            self.open_row = None
        else:
            self.open_row = row
            self.column_ok = last_col + (t.burst if not is_write else t.tWL + t.burst)
            if act_time is not None:
                self.precharge_ok = max(act_time + t.tRAS, last_col + col_to_pre)
                self.ready_at = act_time + t.tRC
            else:
                self.precharge_ok = max(self.precharge_ok, last_col + col_to_pre)
