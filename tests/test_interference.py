"""Per-core interference analysis tests."""

import dataclasses

import pytest

from repro.analysis.interference import fairness_ratio, per_core_breakdown
from repro.config import ddr2_baseline, fbdimm_baseline
from repro.system import run_system


def small(config, insts=8_000):
    return dataclasses.replace(config, instructions_per_core=insts)


@pytest.fixture(scope="module")
def mixed_run():
    return run_system(small(fbdimm_baseline(2)), ["swim", "vpr"])


@pytest.fixture(scope="module")
def references():
    return {
        "swim": run_system(small(ddr2_baseline(1)), ["swim"]).core_ipcs[0],
        "vpr": run_system(small(ddr2_baseline(1)), ["vpr"]).core_ipcs[0],
    }


class TestPerCoreBreakdown:
    def test_one_row_per_core(self, mixed_run):
        rows = per_core_breakdown(mixed_run)
        assert [r.program for r in rows] == ["swim", "vpr"]
        assert [r.core_id for r in rows] == [0, 1]

    def test_reads_and_latency_populated(self, mixed_run):
        rows = per_core_breakdown(mixed_run)
        for row in rows:
            assert row.demand_reads > 0
            assert row.avg_latency_ns > 50.0

    def test_memory_heavy_program_issues_more_reads(self):
        # Without software prefetching (which covers most of swim's misses)
        # the heavy streamer clearly issues more demand reads.
        config = dataclasses.replace(
            small(fbdimm_baseline(2)), software_prefetch=False
        )
        result = run_system(config, ["swim", "vpr"])
        rows = {r.program: r for r in per_core_breakdown(result)}
        assert rows["swim"].demand_reads > rows["vpr"].demand_reads

    def test_relative_progress_with_references(self, mixed_run, references):
        rows = per_core_breakdown(mixed_run, references)
        for row in rows:
            assert row.relative_progress is not None
            assert 0 < row.relative_progress <= 1.2

    def test_no_reference_leaves_none(self, mixed_run):
        rows = per_core_breakdown(mixed_run)
        assert all(r.relative_progress is None for r in rows)

    def test_per_core_counts_sum_to_total(self, mixed_run):
        rows = per_core_breakdown(mixed_run)
        assert sum(r.demand_reads for r in rows) == mixed_run.mem.demand_reads


class TestFairness:
    def test_ratio_in_unit_interval(self, mixed_run, references):
        ratio = fairness_ratio(mixed_run, references)
        assert 0 < ratio <= 1.0

    def test_requires_matching_references(self, mixed_run):
        with pytest.raises(ValueError):
            fairness_ratio(mixed_run, {"unknown": 1.0})
