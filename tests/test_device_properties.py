"""Cross-generation property suite for the device-spec machinery.

Hypothesis draws random *valid* :class:`~repro.dram.devices.DeviceSpec`
instances (the registry presets are just four points of that space) and
checks that the shared bank/channel state machine honours whatever the
spec declares:

* the Bank never violates its own spec's constraints — per-bank ACT
  spacing >= tRC, per-rank spacing >= tRRD, column commands >= tRCD after
  their ACT;
* tFAW holds as a sliding window: any five consecutive ACTs on one rank
  span at least tFAW, and the stall counters only move when tFAW is set;
* at the DDR2 point (tFAW = 0) the Bank is bit-identical to the frozen
  pre-rewrite oracle in ``tests/_legacy_bank.py`` — the same differential
  the PR-8 suite runs, re-drawn here from device-spec-shaped timings to
  prove the tFAW machinery is a no-op when disabled;
* scheduled refresh delivers exactly one all-bank REF per rank per tREFI
  interval (staggered across ranks), and none at all when tREFI is 0.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

import tests._legacy_bank as legacy
from repro.config import DRAM_CLOCK_PS, DramTimings, MemoryConfig, PagePolicy
from repro.dram.bank import Bank, RankTimer
from repro.dram.commands import CommandType
from repro.dram.devices import DEVICE_PRESETS, DeviceSpec
from repro.dram.resources import BusResource
from repro.dram.timing import TimingPs
from repro.engine.simulator import Simulator, ns


@st.composite
def device_specs(draw) -> DeviceSpec:
    """A random valid spec (every constraint of ``__post_init__`` holds).

    Timings are drawn in integer picoseconds and expressed in ns so the
    ``ns()`` conversion is exact, like the shipped presets.
    """
    def t(lo_ps: int, hi_ps: int) -> float:
        return draw(st.integers(lo_ps, hi_ps)) / 1000.0

    tRP = t(0, 20000)
    tRAS = t(0, 60000)
    timings = DramTimings(
        tRP=tRP,
        tRCD=t(0, 20000),
        tCL=t(0, 20000),
        tRC=tRAS + tRP,
        tRRD=t(0, 10000),
        tRPD=t(0, 20000),
        tWTR=t(0, 10000),
        tRAS=tRAS,
        tWL=t(0, 20000),
        tWPD=t(0, 20000),
    )
    return DeviceSpec(
        name="hypo",
        generation="HYPO",
        data_rate_mts=draw(st.sampled_from(sorted(DRAM_CLOCK_PS))),
        timings=timings,
        tFAW_ns=t(0, 60000),
        tREFI_ns=draw(st.sampled_from([0.0, 500.0, 3904.0, 7800.0])),
        tRFC_ns=t(1000, 400000),
        banks_per_dimm=draw(st.sampled_from([2, 4, 8, 16])),
        burst_length=draw(st.sampled_from([4, 8])),
    )


def _timing_of(spec: DeviceSpec) -> TimingPs:
    return TimingPs.from_config(
        spec.timings,
        DRAM_CLOCK_PS[spec.data_rate_mts],
        spec.burst_clocks,
        tfaw_ns=spec.tFAW_ns,
    )


#: Random command sequences: (op, bank index, row, lines, now-advance).
STEPS = st.lists(
    st.tuples(
        st.sampled_from(["read", "write", "read", "read"]),
        st.integers(0, 2),
        st.integers(0, 3),
        st.integers(1, 4),
        st.integers(0, 30000),
    ),
    min_size=4,
    max_size=40,
)


def _drive(spec: DeviceSpec, steps, policy=PagePolicy.CLOSE_PAGE):
    """Run a sequence through two banks sharing one rank; return the banks."""
    timing = _timing_of(spec)
    banks = [Bank(b, timing, policy) for b in range(2)]
    for bank in banks:
        bank.enable_trace()
    rank = RankTimer()
    bus = BusResource("prop")
    now = 0
    for op, bank_idx, row, count, advance in steps:
        now += advance
        bank = banks[bank_idx % 2]
        if op == "read":
            bank.read(now, row, count, bus, rank)
        else:
            bank.write(now, row, bus, rank)
    return banks, rank


def _acts(bank: Bank):
    assert bank.command_log is not None
    return [r.time_ps for r in bank.command_log
            if r.kind is CommandType.ACTIVATE]


class TestBankHonoursSpecConstraints:
    @settings(max_examples=200, deadline=None)
    @given(spec=device_specs(), steps=STEPS)
    def test_act_spacing_respects_trc_and_trrd(self, spec, steps):
        banks, _rank = _drive(spec, steps)
        timing = _timing_of(spec)
        for bank in banks:
            acts = _acts(bank)
            for a, b in zip(acts, acts[1:]):
                assert b - a >= timing.tRC, "same-bank ACT gap under tRC"
        rank_acts = sorted(_acts(banks[0]) + _acts(banks[1]))
        for a, b in zip(rank_acts, rank_acts[1:]):
            assert b - a >= timing.tRRD, "same-rank ACT gap under tRRD"

    @settings(max_examples=200, deadline=None)
    @given(spec=device_specs(), steps=STEPS)
    def test_column_commands_wait_trcd(self, spec, steps):
        banks, _rank = _drive(spec, steps)
        timing = _timing_of(spec)
        for bank in banks:
            assert bank.command_log is not None
            last_act = None
            for rec in bank.command_log:
                if rec.kind is CommandType.ACTIVATE:
                    last_act = rec.time_ps
                elif rec.kind in (CommandType.READ, CommandType.WRITE):
                    assert last_act is not None, "column command before ACT"
                    assert rec.time_ps >= last_act + timing.tRCD


class TestFawSlidingWindow:
    @settings(max_examples=200, deadline=None)
    @given(spec=device_specs(), steps=STEPS)
    def test_any_five_acts_span_tfaw(self, spec, steps):
        banks, _rank = _drive(spec, steps)
        timing = _timing_of(spec)
        rank_acts = sorted(_acts(banks[0]) + _acts(banks[1]))
        for i in range(len(rank_acts) - 4):
            span = rank_acts[i + 4] - rank_acts[i]
            assert span >= timing.tFAW, (
                f"5 ACTs within {span}ps < tFAW={timing.tFAW}ps"
            )

    @settings(max_examples=100, deadline=None)
    @given(spec=device_specs(), steps=STEPS)
    def test_stall_counters_only_move_with_tfaw(self, spec, steps):
        import dataclasses

        disabled = dataclasses.replace(spec, tFAW_ns=0.0)
        banks, _rank = _drive(disabled, steps)
        for bank in banks:
            assert bank.stats.faw_stalls == 0
            assert bank.stats.faw_stall_ps == 0
        banks, _rank = _drive(spec, steps)
        for bank in banks:
            assert bank.stats.faw_stalls >= 0
            assert (bank.stats.faw_stall_ps > 0) <= (bank.stats.faw_stalls > 0)

    def test_presets_gate_matches_generation(self):
        # DDR2 must disable the window; every later generation enables it.
        for name, spec in DEVICE_PRESETS.items():
            timing = _timing_of(spec)
            bank = Bank(0, timing, PagePolicy.CLOSE_PAGE)
            if name == "ddr2-667":
                assert bank._tFAW == 0
            else:
                assert bank._tFAW == ns(spec.tFAW_ns) > 0


class TestDdr2PointMatchesLegacyOracle:
    @settings(max_examples=200, deadline=None)
    @given(
        spec=device_specs(),
        steps=STEPS,
        policy=st.sampled_from([PagePolicy.CLOSE_PAGE, PagePolicy.OPEN_PAGE]),
    )
    def test_tfaw_zero_is_bit_identical_to_legacy(self, spec, steps, policy):
        """With tFAW disabled, a device-spec-shaped timing drives the Bank
        exactly like the frozen pre-rewrite oracle (which has no tFAW)."""
        timing = TimingPs.from_config(
            spec.timings, DRAM_CLOCK_PS[spec.data_rate_mts],
            spec.burst_clocks, tfaw_ns=0.0,
        )
        new_banks = [Bank(b, timing, policy) for b in range(2)]
        old_banks = [legacy.Bank(b, timing, policy) for b in range(2)]
        for bank in new_banks + old_banks:
            bank.enable_trace()
        new_rank, old_rank = RankTimer(), legacy.RankTimer()
        new_bus, old_bus = BusResource("new"), BusResource("old")
        now = 0
        for op, bank_idx, row, count, advance in steps:
            now += advance
            nb, ob = new_banks[bank_idx % 2], old_banks[bank_idx % 2]
            if op == "read":
                n = nb.read(now, row, count, new_bus, new_rank)
                o = ob.read(now, row, count, old_bus, old_rank)
            else:
                n = nb.write(now, row, new_bus, new_rank)
                o = ob.write(now, row, old_bus, old_rank)
            assert (n.command_start, n.data_times, n.data_starts) == (
                o.command_start, o.data_times, o.data_starts
            )
        for nb, ob in zip(new_banks, old_banks):
            assert nb.ready_at == ob.ready_at
            assert nb.column_ok == ob.column_ok
            assert nb.precharge_ok == ob.precharge_ok
            assert [(r.kind, r.time_ps, r.row) for r in nb.command_log] == [
                (r.kind, r.time_ps, r.row) for r in ob.command_log
            ]
        assert new_rank.next_act_ok == old_rank.next_act_ok
        assert new_rank.read_ok_after_write == old_rank.read_ok_after_write


class TestRefreshCadence:
    def _controller(self, ranks: int, dimms: int, trefi_ns: float,
                    trfc_ns: float = 100.0):
        from repro.controller.channel_controller import Ddr2ChannelController
        from repro.stats.collector import MemSystemStats

        config = MemoryConfig(
            ranks_per_dimm=ranks,
            dimms_per_channel=dimms,
            refresh_interval_ns=trefi_ns,
            refresh_cycle_ns=trfc_ns,
        )
        sim = Simulator()
        timing = TimingPs.from_config(
            config.timings, config.dram_clock_ps, config.burst_clocks,
            tfaw_ns=config.tFAW_ns,
        )
        controller = Ddr2ChannelController(
            sim, config, timing, 0, MemSystemStats()
        )
        return sim, config, controller

    @settings(max_examples=60, deadline=None)
    @given(
        ranks=st.integers(1, 4),
        dimms=st.integers(1, 2),
        trefi_ns=st.sampled_from([500.0, 1000.0, 3904.0, 7800.0]),
        cycles=st.integers(1, 6),
    )
    def test_exactly_one_ref_per_rank_per_trefi(
        self, ranks, dimms, trefi_ns, cycles
    ):
        sim, config, controller = self._controller(ranks, dimms, trefi_ns)
        interval = ns(trefi_ns)
        horizon = cycles * interval
        sim.run(until=horizon)
        total_ranks = dimms * ranks
        per_bank = config.banks_per_dimm
        for dimm_idx, dimm in enumerate(controller.dimms):
            for rank in range(ranks):
                index = dimm_idx * ranks + rank
                offset = (interval * index) // total_ranks
                # REF n of this rank fires at offset + n * interval, so
                # the count inside [0, horizon] is exact — one per tREFI.
                expected = max(0, (horizon - offset) // interval)
                bank_counts = {
                    bank.stats.refreshes
                    for bank in dimm.banks[rank * per_bank:(rank + 1) * per_bank]
                }
                assert bank_counts == {expected}, (
                    f"rank {index}: REF count {bank_counts} != {expected}"
                )

    @settings(max_examples=20, deadline=None)
    @given(ranks=st.integers(1, 4), dimms=st.integers(1, 2))
    def test_trefi_zero_never_refreshes(self, ranks, dimms):
        sim, _config, controller = self._controller(ranks, dimms, 0.0)
        sim.run(until=ns(50_000.0))
        for dimm in controller.dimms:
            for bank in dimm.banks:
                assert bank.stats.refreshes == 0

    def test_refresh_blackout_is_trfc(self):
        """After a REF the bank is unavailable for exactly tRFC."""
        sim, config, controller = self._controller(
            ranks=1, dimms=1, trefi_ns=1000.0, trfc_ns=127.5
        )
        interval = ns(1000.0)
        sim.run(until=interval)
        bank = controller.dimms[0].banks[0]
        assert bank.stats.refreshes == 1
        assert bank.ready_at == interval + ns(127.5)
