"""Telemetry tests: metrics registry, span lifecycle, capture round-trip,
Chrome-trace schema, event-loop profiler, and the zero-overhead guard."""

import dataclasses
import json

import pytest

from repro.config import fbdimm_amb_prefetch, fbdimm_baseline
from repro.controller.transaction import MemoryRequest, RequestKind
from repro.engine.profiler import EventLoopProfiler, callback_site
from repro.engine.simulator import Simulator
from repro.stats.collector import MemSystemStats
from repro.system import System
from repro.telemetry import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    RequestTrace,
    Tracer,
    build_capture,
    chrome_trace,
    load_capture,
    registry_from_stats,
    save_capture,
    summarize_capture,
    validate_chrome_trace,
    write_chrome_trace,
)


def traced_run(programs=("swim",), insts=6_000, config=None, profile=False,
               max_requests=200_000):
    """One small run with a tracer attached; returns (machine, result, tracer)."""
    config = dataclasses.replace(
        config or fbdimm_amb_prefetch(len(programs)),
        instructions_per_core=insts,
    )
    tracer = Tracer(max_requests=max_requests)
    machine = System(config, list(programs), tracer=tracer)
    if profile:
        machine.sim.profiler = EventLoopProfiler()
    return machine, machine.run(), tracer


# ----------------------------------------------------------------------
# Metrics registry
# ----------------------------------------------------------------------


class TestRegistry:
    def test_counter_monotonic(self):
        c = Counter("reads")
        c.inc()
        c.inc(4)
        assert c.value == 5
        with pytest.raises(ValueError):
            c.inc(-1)

    def test_gauge_moves_both_ways(self):
        g = Gauge("depth")
        g.set(3.5)
        g.set(1.0)
        assert g.value == 1.0

    def test_histogram_buckets_are_log2(self):
        h = Histogram("lat")
        for value in (0, 1, 2, 3, 4, 1000):
            h.observe(value)
        assert h.count == 6
        assert h.sum == 1010
        assert h.min == 0 and h.max == 1000
        uppers = [upper for upper, _ in h.buckets()]
        assert uppers == sorted(uppers)
        # 0 lands in the dedicated zero bucket, 1000 in (512, 1024].
        assert uppers[0] == 0
        assert uppers[-1] == 1024

    def test_histogram_percentiles_clamped_to_max(self):
        h = Histogram("lat")
        for _ in range(99):
            h.observe(100)
        h.observe(1000)
        assert h.percentile(50) <= 128  # bucket upper bound of 100
        assert h.percentile(100) == 1000  # clamped to observed max
        assert h.mean == pytest.approx((99 * 100 + 1000) / 100)

    def test_histogram_rejects_negative(self):
        with pytest.raises(ValueError):
            Histogram("lat").observe(-1)

    def test_empty_histogram_snapshot(self):
        snap = Histogram("lat").snapshot()
        assert snap["count"] == 0
        assert snap["p99"] == 0.0

    def test_get_or_create_and_type_conflict(self):
        reg = MetricsRegistry()
        a = reg.counter("x")
        assert reg.counter("x") is a
        with pytest.raises(TypeError):
            reg.gauge("x")
        assert "x" in reg
        assert len(reg) == 1

    def test_snapshot_and_json_roundtrip(self):
        reg = MetricsRegistry()
        reg.counter("a", "help a").inc(2)
        reg.histogram("h").observe(7)
        doc = json.loads(reg.to_json())
        assert doc["a"]["value"] == 2
        assert doc["h"]["count"] == 1
        records = reg.to_records()
        assert [r["name"] for r in records] == ["a", "h"]

    def test_registry_from_stats_without_breaking_stats(self):
        stats = MemSystemStats()
        stats.record_read_completion(
            latency_ps=63_000, queue_delay_ps=1_000, is_demand=True,
            amb_hit=True, line_bytes=64, core_id=0,
        )
        stats.record_write_completion(64)
        reg = registry_from_stats(stats)
        snap = reg.snapshot()
        assert snap["mem.demand_reads"]["value"] == 1
        assert snap["mem.writes"]["value"] == 1
        assert snap["mem.amb_hits"]["value"] == 1
        assert snap["mem.core0.queue_delay_sum_ps"]["value"] == 1_000
        # Adapter reads but never mutates the stats object.
        assert stats.demand_reads == 1


# ----------------------------------------------------------------------
# Request spans
# ----------------------------------------------------------------------


def _request(kind=RequestKind.DEMAND_READ, core_id=0, line_addr=0x40):
    return MemoryRequest(kind=kind, line_addr=line_addr, core_id=core_id,
                         arrival=0)


class TestRequestTrace:
    def test_phase_order_and_derived_times(self):
        trace = RequestTrace(req_id=1, kind="read", core_id=0, line_addr=4)
        trace.mark("arrival", 0)
        trace.mark("schedulable", 12_000)
        trace.mark("issue", 20_000)
        trace.mark("complete", 63_000)
        assert trace.completed
        assert trace.latency_ps == 63_000
        assert trace.queue_delay_ps == 8_000
        assert trace.phase_time("data") is None

    def test_unknown_phase_rejected(self):
        trace = RequestTrace(req_id=1, kind="read", core_id=0, line_addr=4)
        with pytest.raises(ValueError):
            trace.mark("teleported", 5)

    def test_record_roundtrip(self):
        trace = RequestTrace(req_id=7, kind="write", core_id=2, line_addr=99,
                             channel=1, dimm=3, rank=0, bank=2, amb_hit=True)
        trace.mark("arrival", 10)
        trace.mark("complete", 50)
        back = RequestTrace.from_record(trace.to_record())
        assert back == trace

    def test_record_elides_defaults(self):
        trace = RequestTrace(req_id=7, kind="read", core_id=0, line_addr=1)
        record = trace.to_record()
        assert "ch" not in record and "amb" not in record


class TestTracerLifecycle:
    def test_hooks_build_a_full_span(self):
        tracer = Tracer()
        req = _request()
        tracer.on_arrival(req, 0, backlogged=False)
        req.schedulable_at = 12_000
        tracer.on_schedulable(req, 12_000)
        req.issue_time = 20_000
        tracer.on_issue(req, 20_000)
        tracer.on_data(req, 55_000)
        tracer.on_complete(req, 63_000)
        [trace] = tracer.completed_traces()
        assert [name for name, _ in trace.phases] == [
            "arrival", "schedulable", "issue", "data", "complete"
        ]
        snap = tracer.registry.snapshot()
        assert snap["trace.latency_ps"]["count"] == 1
        assert snap["trace.queue_delay_ps"]["max"] == 8_000
        assert snap["trace.stalled_requests"]["value"] == 1

    def test_backlogged_request_gets_queued_phase(self):
        tracer = Tracer()
        req = _request()
        tracer.on_arrival(req, 5, backlogged=True)
        assert tracer.traces()[0].phase_time("queued") == 5

    def test_bounded_recording_keeps_exact_histograms(self):
        tracer = Tracer(max_requests=1)
        first, second = _request(), _request()
        tracer.on_arrival(first, 0, backlogged=False)
        tracer.on_arrival(second, 0, backlogged=False)
        assert tracer.dropped == 1
        assert len(tracer.traces()) == 1
        # The dropped request still feeds the aggregate histograms.
        second.schedulable_at = 0
        second.issue_time = 10
        tracer.on_complete(second, 50)
        assert tracer.registry.snapshot()["trace.latency_ps"]["count"] == 1

    def test_real_run_traces_every_completion(self):
        machine, result, tracer = traced_run()
        completed = tracer.completed_traces()
        finished = result.mem.demand_reads + result.mem.sw_prefetch_reads \
            + result.mem.writes
        assert len(completed) >= finished  # warm-up resets stats, not traces
        reads = [t for t in completed if t.kind == "read"]
        assert reads and all(t.channel >= 0 and t.bank >= 0 for t in reads)
        assert any(t.amb_hit for t in completed)


# ----------------------------------------------------------------------
# Capture + exporters
# ----------------------------------------------------------------------


class TestCaptureAndChromeTrace:
    def _capture(self, **kwargs):
        machine, result, tracer = traced_run(**kwargs)
        return build_capture(
            result, tracer,
            check_events=machine.controller.collect_check_events(),
        )

    def test_capture_roundtrip(self, tmp_path):
        capture = self._capture()
        path = tmp_path / "cap.jsonl"
        written = save_capture(path, capture)
        assert written == len(capture.requests) + len(capture.commands)
        back = load_capture(path)
        assert back.meta["kind"] == "fbdimm"
        assert len(back.requests) == len(capture.requests)
        assert len(back.commands) == len(capture.commands)
        assert back.metrics.keys() == capture.metrics.keys()

    def test_load_rejects_foreign_files(self, tmp_path):
        path = tmp_path / "bogus.jsonl"
        path.write_text('{"version": 1, "params": {}}\n')
        with pytest.raises(ValueError):
            load_capture(path)

    def test_chrome_trace_passes_own_validator(self):
        capture = self._capture(programs=("swim", "mgrid"))
        doc = chrome_trace(capture)
        assert validate_chrome_trace(doc) == []
        events = doc["traceEvents"]
        names = {e["name"] for e in events}
        # Per-bank command spans and per-request lifecycle spans both present.
        assert "ACT" in names and "RD burst" in names
        assert "read" in names
        phases = {e["ph"] for e in events}
        assert {"M", "X", "b", "e"} <= phases
        cats = {e.get("cat") for e in events}
        assert {"request", "dram", "link"} <= cats

    def test_write_chrome_trace_is_valid_json(self, tmp_path):
        capture = self._capture()
        path = tmp_path / "trace.json"
        write_chrome_trace(path, capture)
        doc = json.loads(path.read_text())
        assert validate_chrome_trace(doc) == []

    def test_validator_catches_breakage(self):
        capture = self._capture()
        doc = chrome_trace(capture)
        assert validate_chrome_trace({"traceEvents": []})
        assert validate_chrome_trace([1, 2]) == ["document is not a JSON object"]
        broken = {"traceEvents": [dict(doc["traceEvents"][0], ph="Z")]}
        assert any("unknown phase" in p for p in validate_chrome_trace(broken))
        dangling = {"traceEvents": [
            {"ph": "b", "pid": 1, "tid": 0, "ts": 0, "name": "r",
             "cat": "request", "id": "0x1"},
        ]}
        assert any("never ended" in p for p in validate_chrome_trace(dangling))

    def test_summary_mentions_key_facts(self):
        capture = self._capture()
        text = summarize_capture(capture)
        assert "request traces" in text
        assert "latency ns" in text
        assert "AMB hits" in text


# ----------------------------------------------------------------------
# Event-loop profiler
# ----------------------------------------------------------------------


class TestProfiler:
    def test_sites_attributed_and_ranked(self):
        sim = Simulator()
        sim.profiler = EventLoopProfiler()

        def tick():
            pass

        for delay in (1, 2, 3):
            sim.schedule(delay, tick)
        sim.run()
        assert sim.events_fired == 3
        profile = sim.profiler
        assert profile.total_events == 3
        [site] = profile.ranked()
        assert site.events == 3
        assert "tick" in site.site
        assert "events" in profile.report()
        assert profile.to_records()[0]["events"] == 3

    def test_callback_site_unwraps_bound_methods(self):
        class Widget:
            def poke(self):
                pass

        assert callback_site(Widget().poke).endswith("Widget.poke")

    def test_profiled_run_is_bit_identical(self):
        config = dataclasses.replace(
            fbdimm_amb_prefetch(1), instructions_per_core=4_000
        )
        plain = System(config, ["swim"]).run()
        profiled_machine = System(config, ["swim"])
        profiled_machine.sim.profiler = EventLoopProfiler()
        profiled = profiled_machine.run()
        assert profiled.events_fired == plain.events_fired
        assert profiled.elapsed_ps == plain.elapsed_ps
        assert profiled.core_ipcs == plain.core_ipcs
        assert profiled_machine.sim.profiler.total_events == plain.events_fired


# ----------------------------------------------------------------------
# Zero-overhead guard: tracing must never change the simulation
# ----------------------------------------------------------------------


class TestOverheadGuard:
    @pytest.mark.parametrize("build", [fbdimm_amb_prefetch, fbdimm_baseline])
    def test_traced_run_is_bit_identical_to_plain(self, build):
        config = dataclasses.replace(build(2), instructions_per_core=5_000)
        programs = ["swim", "mgrid"]
        plain = System(config, programs).run()
        traced = System(config, programs, tracer=Tracer()).run()
        assert traced.events_fired == plain.events_fired
        assert traced.elapsed_ps == plain.elapsed_ps
        assert traced.core_ipcs == plain.core_ipcs
        assert traced.core_instructions == plain.core_instructions
        assert dataclasses.asdict(traced.mem) == dataclasses.asdict(plain.mem)
