"""Differential conformance suite: the engine's exact behaviour, digested.

Every case below runs one or more simulations and folds their
``SimulationResult.canonical_json()`` texts into a SHA-256 digest that is
committed in ``tests/goldens/engine_conformance.json``.  The digests were
recorded *before* the hot-path rewrite (PR 8) and must never drift: any
refactor of the engine, DRAM, channel, controller or workload layers is
only legal while every digest stays bit-identical.

Coverage:

* every ``repro bench`` scenario's system configuration (the sweep
  scenarios share one 4-point prefetch sweep, digested serially);
* a deterministic slice of every figure module's ``plan(ctx)`` — all
  unique planned runs, normalised the way the experiments layer does;
* the off-by-default subsystems that ride the hot path when enabled:
  a faulted run, a timeline-enabled run and a ``check_protocol=True`` run;
* every non-DDR2 device generation preset (``repro.dram.devices``)
  running the bench scenarios plus the fig05 plan, so refresh scheduling,
  tFAW enforcement and the per-generation timing/energy tables are pinned
  by digests of their own.  The DDR2 preset adds no cases: it must map
  every configuration onto itself (``test_ddr2_preset_reproduces_...``),
  keeping the pre-refactor digests authoritative.

Regenerate after an *intentional* model change with::

    PYTHONPATH=src python tests/test_engine_conformance.py --refresh

and review the goldens diff like any other code change.
"""

import dataclasses
import hashlib
import json
import sys
from pathlib import Path

import pytest

from repro.bench.scenarios import _sweep_pairs
from repro.config import (
    SystemConfig,
    ddr2_baseline,
    fbdimm_amb_prefetch,
    fbdimm_baseline,
)
from repro.experiments import (
    ablations,
    fig04_smt_speedup,
    fig05_bw_latency,
    fig06_bandwidth_impact,
    fig07_amb_speedup,
    fig08_coverage,
    fig09_decomposition,
    fig10_bw_latency_ap,
    fig11_sensitivity,
    fig12_sw_prefetch,
    fig13_power,
    hw_prefetch,
    prefetch_location,
)
from repro.experiments.runner import ExperimentContext
from repro.serialize import canonical_dumps
from repro.system import run_system

GOLDEN_PATH = Path(__file__).parent / "goldens" / "engine_conformance.json"

#: Budgets are small — a conformance case pins behaviour, not statistics —
#: but large enough that prefetch fills, write drains, faults and windows
#: all actually happen.
BENCH_INSTS = 2000
PLAN_INSTS = 1500
SEED = 12345

_BENCH_PROGRAMS = ("wupwise", "swim", "mgrid", "applu")

_FIGURE_PLANS = [
    ("fig04", fig04_smt_speedup.plan),
    ("fig05", fig05_bw_latency.plan),
    ("fig06", fig06_bandwidth_impact.plan),
    ("fig07", fig07_amb_speedup.plan),
    ("fig08", fig08_coverage.plan),
    ("fig09", fig09_decomposition.plan),
    ("fig10", fig10_bw_latency_ap.plan),
    ("fig11", fig11_sensitivity.plan),
    ("fig12", fig12_sw_prefetch.plan),
    ("fig13", fig13_power.plan),
    ("ablations", ablations.plan),
    ("location", prefetch_location.plan),
    ("hwprefetch", hw_prefetch.plan),
]


def _budget(config: SystemConfig, instructions: int = BENCH_INSTS) -> SystemConfig:
    return dataclasses.replace(
        config, instructions_per_core=instructions, seed=SEED
    )


def _bench_cases() -> "dict[str, list]":
    """The bench scenarios' configurations as (config, programs) pairs."""
    two = ("wupwise", "swim")
    return {
        "bench:ddr2-1ch": [
            (_budget(ddr2_baseline(num_cores=2, logic_channels=1)), two)
        ],
        "bench:fbd-4ch": [
            (_budget(fbdimm_baseline(num_cores=4, logic_channels=4)),
             _BENCH_PROGRAMS)
        ],
        "bench:fbd-4ch-ap": [
            (_budget(fbdimm_amb_prefetch(num_cores=4, logic_channels=4)),
             _BENCH_PROGRAMS)
        ],
        "bench:fbd-4ch-ap-timeline": [
            (_budget(
                fbdimm_amb_prefetch(num_cores=4, logic_channels=4)
                .with_timeline(window_ns=1000.0)
            ), _BENCH_PROGRAMS)
        ],
        "bench:fbd-4ch-ap-faults": [
            (_budget(
                fbdimm_amb_prefetch(num_cores=4, logic_channels=4)
                .with_faults(error_rate=1e-2)
            ), _BENCH_PROGRAMS)
        ],
        "bench:sweep": list(_sweep_pairs(BENCH_INSTS, SEED)),
    }


def _variant_cases() -> "dict[str, list]":
    """Off-by-default hot-path variants: faulted, timeline, checked."""
    faulted = fbdimm_amb_prefetch(num_cores=2, logic_channels=2).with_faults(
        error_rate=5e-2, max_retries=3
    )
    timeline = ddr2_baseline(num_cores=2, logic_channels=1).with_timeline(
        window_ns=500.0
    )
    checked = dataclasses.replace(
        fbdimm_amb_prefetch(num_cores=2, logic_channels=2),
        check_protocol=True,
    )
    two = ("wupwise", "swim")
    return {
        "variant:faulted": [(_budget(faulted), two)],
        "variant:timeline": [(_budget(timeline), two)],
        "variant:checked": [(_budget(checked), two)],
    }


#: Non-DDR2 generations get digests of their own; ``ddr2-667`` is
#: deliberately absent (it must reproduce the pre-refactor digests, which
#: the identity test below proves without duplicating the runs).
_DEVICE_GENERATIONS = ("ddr3-1333", "ddr4-2400", "lpddr4-2400")


def _device_cases() -> "dict[str, list]":
    """Every bench scenario and the fig05 plan, per device generation."""
    cases = {}
    bench = _bench_cases()
    for device in _DEVICE_GENERATIONS:
        pairs = []
        for name in sorted(bench):
            pairs.extend(
                (config.with_device(device), programs)
                for config, programs in bench[name]
            )
        cases[f"device:{device}:bench"] = pairs
        ctx = ExperimentContext(instructions=PLAN_INSTS, seed=SEED, quick=True)
        unique = {
            (ctx._normalize(config).with_device(device), tuple(programs))
            for config, programs in fig05_bw_latency.plan(ctx)
        }
        cases[f"device:{device}:fig05"] = sorted(
            unique,
            key=lambda pair: (canonical_dumps(pair[0].to_dict()), pair[1]),
        )
    return cases


def _figure_cases() -> "dict[str, list]":
    """Every unique run in every figure module's quick-mode plan."""
    cases = {}
    for name, plan in _FIGURE_PLANS:
        ctx = ExperimentContext(instructions=PLAN_INSTS, seed=SEED, quick=True)
        unique = {
            (ctx._normalize(config), tuple(programs))
            for config, programs in plan(ctx)
        }
        cases[f"figure:{name}"] = sorted(
            unique,
            key=lambda pair: (canonical_dumps(pair[0].to_dict()), pair[1]),
        )
    return cases


def conformance_cases() -> "dict[str, list]":
    cases = {}
    cases.update(_bench_cases())
    cases.update(_variant_cases())
    cases.update(_device_cases())
    cases.update(_figure_cases())
    return cases


#: Case names are static (they do not depend on running anything), so the
#: parametrized test ids stay stable for -k selection and the goldens file.
CASE_NAMES = (
    [name for name in _bench_cases()]
    + [name for name in _variant_cases()]
    + [f"device:{device}:{part}"
       for device in _DEVICE_GENERATIONS for part in ("bench", "fig05")]
    + [f"figure:{name}" for name, _ in _FIGURE_PLANS]
)


def digest_case(pairs) -> "dict[str, object]":
    """Run every (config, programs) pair serially and fold the digests."""
    run_digests = []
    for config, programs in pairs:
        result = run_system(config, programs)
        text = result.canonical_json()
        run_digests.append(hashlib.sha256(text.encode()).hexdigest())
    combined = hashlib.sha256("\n".join(run_digests).encode()).hexdigest()
    return {"digest": combined, "runs": len(run_digests)}


def load_goldens() -> "dict[str, dict]":
    if not GOLDEN_PATH.exists():
        raise FileNotFoundError(
            f"{GOLDEN_PATH} missing; regenerate with "
            "PYTHONPATH=src python tests/test_engine_conformance.py --refresh"
        )
    return json.loads(GOLDEN_PATH.read_text())


@pytest.fixture(scope="module")
def goldens():
    return load_goldens()


@pytest.fixture(scope="module")
def cases():
    return conformance_cases()


class TestConformance:
    def test_goldens_cover_every_case(self, goldens, cases):
        assert set(goldens) == set(cases)
        assert set(cases) == set(CASE_NAMES)

    @pytest.mark.parametrize("name", CASE_NAMES)
    def test_digest_matches_golden(self, name, goldens, cases):
        golden = goldens[name]
        actual = digest_case(cases[name])
        assert actual["runs"] == golden["runs"], (
            f"{name}: planned run count changed "
            f"({golden['runs']} -> {actual['runs']})"
        )
        assert actual["digest"] == golden["digest"], (
            f"{name}: simulated behaviour drifted from the pre-rewrite "
            "golden; if intentional, refresh the goldens and review the diff"
        )

    def test_ddr2_preset_reproduces_pre_refactor_digests(self, goldens):
        """The ddr2-667 preset is the identity on every bench config.

        Config level: applying the preset must not change the canonical
        encoding of any bench-case configuration, which (with the digest
        tests above green) proves every pre-refactor digest is reproduced
        bit-identically without re-running the simulations.  Run level:
        the cheapest scenario is additionally simulated through the
        mapped config and checked against its committed golden.
        """
        bench = _bench_cases()
        for name, pairs in bench.items():
            for config, programs in pairs:
                mapped = config.with_device("ddr2-667")
                assert canonical_dumps(mapped.to_dict()) == canonical_dumps(
                    config.to_dict()
                ), f"{name}: ddr2-667 preset changed the canonical config"
        config, programs = bench["bench:ddr2-1ch"][0]
        actual = digest_case([(config.with_device("ddr2-667"), programs)])
        assert actual["digest"] == goldens["bench:ddr2-1ch"]["digest"]


def refresh() -> None:
    goldens = {}
    for name, pairs in sorted(conformance_cases().items()):
        goldens[name] = digest_case(pairs)
        print(f"{name}: {goldens[name]['runs']} runs "
              f"-> {goldens[name]['digest'][:16]}…")
    GOLDEN_PATH.parent.mkdir(parents=True, exist_ok=True)
    GOLDEN_PATH.write_text(json.dumps(goldens, indent=1, sort_keys=True) + "\n")
    print(f"wrote {GOLDEN_PATH}")


if __name__ == "__main__":
    if "--refresh" not in sys.argv:
        sys.exit("usage: python tests/test_engine_conformance.py --refresh")
    refresh()
