"""Property tests: bank command streams stay protocol-legal under any
randomised access sequence."""

from hypothesis import given, settings, strategies as st

from repro.config import DramTimings, PagePolicy
from repro.dram.bank import Bank, RankTimer
from repro.dram.commands import CommandType
from repro.dram.resources import BusResource
from repro.dram.timing import TimingPs

T = TimingPs.from_config(DramTimings(), 3000, 4)

#: (is_write, row, num_lines) random access descriptors.
accesses = st.lists(
    st.tuples(
        st.booleans(),
        st.integers(min_value=0, max_value=7),
        st.integers(min_value=1, max_value=4),
    ),
    min_size=1,
    max_size=25,
)


def run_sequence(policy, ops):
    bank = Bank(0, T, policy)
    bank.enable_trace()
    bus, rank = BusResource("b"), RankTimer()
    now = 0
    for is_write, row, num_lines in ops:
        result = (bank.write(now, row, bus, rank) if is_write
                  else bank.read(now, row, num_lines, bus, rank))
        now = max(now, result.command_start)
    return bank


@given(ops=accesses, policy=st.sampled_from(list(PagePolicy)))
@settings(max_examples=60, deadline=None)
def test_act_to_act_respects_trc(ops, policy):
    bank = run_sequence(policy, ops)
    acts = [r.time_ps for r in bank.command_log if r.kind is CommandType.ACTIVATE]
    for first, second in zip(acts, acts[1:]):
        assert second - first >= T.tRC


@given(ops=accesses, policy=st.sampled_from(list(PagePolicy)))
@settings(max_examples=60, deadline=None)
def test_activate_and_precharge_counts_balance(ops, policy):
    bank = run_sequence(policy, ops)
    # Under close page every ACT is auto-precharged; under open page the
    # last row may still be open, so PRE lags ACT by at most one.
    diff = bank.stats.activates - bank.stats.precharges
    if policy is PagePolicy.CLOSE_PAGE:
        assert diff == 0
    else:
        assert diff in (0, 1)


@given(ops=accesses, policy=st.sampled_from(list(PagePolicy)))
@settings(max_examples=60, deadline=None)
def test_column_commands_follow_their_activate(ops, policy):
    bank = run_sequence(policy, ops)
    last_act = None
    for record in bank.command_log:
        if record.kind is CommandType.ACTIVATE:
            last_act = record
        elif (record.kind in (CommandType.READ, CommandType.WRITE)
              and last_act is not None and last_act.row == record.row):
            assert record.time_ps >= last_act.time_ps + T.tRCD


@given(ops=accesses)
@settings(max_examples=40, deadline=None)
def test_close_page_column_count_matches_requests(ops):
    bank = run_sequence(PagePolicy.CLOSE_PAGE, ops)
    expected_cols = sum(1 if w else n for w, _, n in ops)
    assert bank.stats.reads + bank.stats.writes == expected_cols
