"""Config audit: factory configs stay clean; seeded defects are caught."""

from dataclasses import replace

from repro.check.config_audit import (
    ERROR,
    WARNING,
    audit_memory,
    audit_system,
    errors_only,
)
from repro.config import (
    AmbPrefetchConfig,
    DramTimings,
    InterleaveScheme,
    PagePolicy,
    ddr2_baseline,
    ddr3_memory_overrides,
    fbdimm_amb_prefetch,
    fbdimm_baseline,
)


class TestFactoriesClean:
    def test_ddr2_baseline(self):
        assert audit_system(ddr2_baseline()) == []

    def test_fbdimm_baseline(self):
        assert audit_system(fbdimm_baseline()) == []

    def test_fbdimm_amb_prefetch(self):
        assert audit_system(fbdimm_amb_prefetch()) == []

    def test_ddr3_overrides(self):
        assert audit_system(fbdimm_baseline(**ddr3_memory_overrides())) == []


class TestTimingIdentities:
    def test_short_tras_is_error(self):
        memory = replace(
            ddr2_baseline().memory, timings=DramTimings(tRAS=10.0)
        )
        issues = errors_only(audit_memory(memory))
        assert any(i.field == "timings.tRAS" for i in issues)

    def test_trc_shorter_than_tras_plus_trp(self):
        memory = replace(
            ddr2_baseline().memory, timings=DramTimings(tRC=40.0)
        )
        issues = errors_only(audit_memory(memory))
        assert any(i.field == "timings.tRC" for i in issues)

    def test_ddr2_timings_at_ddr3_rate_warned(self):
        memory = replace(fbdimm_baseline().memory, data_rate_mts=1333)
        issues = audit_memory(memory)
        assert any(
            i.field == "data_rate_mts" and i.severity == WARNING for i in issues
        )


class TestPrefetchGeometry:
    def test_region_exceeding_cache_is_error(self):
        config = fbdimm_amb_prefetch(
            prefetch=AmbPrefetchConfig(region_cachelines=8, cache_entries=4)
        )
        issues = errors_only(audit_memory(config.memory))
        assert any(i.field == "prefetch.region_cachelines" for i in issues)

    def test_region_crossing_row_is_error(self):
        config = fbdimm_amb_prefetch(
            prefetch=AmbPrefetchConfig(region_cachelines=128, cache_entries=128)
        )
        issues = errors_only(audit_memory(config.memory))
        assert any("row" in i.message for i in issues)

    def test_cacheline_interleave_with_prefetch_warned(self):
        memory = replace(
            fbdimm_amb_prefetch().memory, interleave=InterleaveScheme.CACHELINE
        )
        issues = audit_memory(memory)
        assert any(i.field == "interleave" for i in issues)


class TestPolicyAndRefresh:
    def test_open_page_cacheline_interleave_warned(self):
        memory = replace(
            fbdimm_baseline().memory,
            page_policy=PagePolicy.OPEN_PAGE,
            interleave=InterleaveScheme.CACHELINE,
        )
        issues = audit_memory(memory)
        assert any(i.field == "page_policy" for i in issues)

    def test_refresh_denser_than_trfc_is_error(self):
        memory = replace(
            fbdimm_baseline().memory,
            refresh_interval_ns=100.0,
            refresh_cycle_ns=127.5,
        )
        issues = errors_only(audit_memory(memory))
        assert any(i.field == "refresh_cycle_ns" for i in issues)

    def test_severity_values(self):
        assert ERROR == "error" and WARNING == "warning"
