"""Golden-number regression: the simulator's exact behaviour is pinned.

If one of these fails after an *intentional* model change, regenerate with
``python -m repro.experiments.regression --update`` and review the diff of
``goldens.json`` like any other code change.
"""

import json

import pytest

from repro.experiments import regression


class TestGoldens:
    def test_goldens_file_exists_and_parses(self):
        goldens = regression.load_goldens()
        assert len(goldens) == len(regression._scenarios())
        for name, metrics in goldens.items():
            assert set(regression._METRICS) <= set(metrics), name

    def test_behaviour_matches_goldens(self):
        problems = regression.compare()
        assert problems == [], "\n".join(problems)

    def test_capture_is_repeatable(self):
        assert regression.capture() == regression.capture()

    def test_compare_detects_drift(self, tmp_path, monkeypatch):
        goldens = regression.load_goldens()
        tampered = json.loads(json.dumps(goldens))
        first = next(iter(tampered))
        tampered[first]["activates"] += 1
        path = tmp_path / "goldens.json"
        path.write_text(json.dumps(tampered))
        monkeypatch.setattr(regression, "GOLDEN_PATH", path)
        problems = regression.compare()
        assert any("activates" in p for p in problems)

    def test_missing_goldens_raises(self, tmp_path, monkeypatch):
        monkeypatch.setattr(regression, "GOLDEN_PATH", tmp_path / "nope.json")
        with pytest.raises(FileNotFoundError):
            regression.load_goldens()
