"""Property test: the event queue against a brute-force model.

Hypothesis drives arbitrary interleavings of push / cancel / pop / peek
against a plain-list model; after every operation ``len()`` must equal the
model's live count, and every pop must return exactly the earliest live
event by (time, schedule order).  This pins the queue's determinism
contract — same-time events fire in scheduling order — under cancellation
patterns (including cancelling popped or already-cancelled events) that
the simulator's own workloads may never produce.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine.event_queue import EventQueue

OPERATIONS = st.lists(
    st.one_of(
        st.tuples(st.just("push"), st.integers(0, 20)),
        st.tuples(st.just("cancel"), st.integers(0, 10**9)),
        st.tuples(st.just("pop"), st.just(0)),
        st.tuples(st.just("peek"), st.just(0)),
    ),
    max_size=300,
)


def _earliest_live(events, state):
    live = [i for i, s in enumerate(state) if s == "live"]
    if not live:
        return None
    return min(live, key=lambda i: (events[i].time, events[i].seq))


@settings(max_examples=300, deadline=None)
@given(operations=OPERATIONS)
def test_interleavings_match_model(operations):
    queue = EventQueue()
    events = []  # every Event ever pushed, in push order
    state = []  # "live" | "popped" | "cancelled", parallel to `events`

    for op, arg in operations:
        if op == "push":
            events.append(queue.push(arg, lambda: None))
            state.append("live")
        elif op == "cancel" and events:
            index = arg % len(events)
            events[index].cancel()  # may hit popped/cancelled events too
            if state[index] == "live":
                state[index] = "cancelled"
        elif op == "pop":
            expected = _earliest_live(events, state)
            popped = queue.pop()
            if expected is None:
                assert popped is None
            else:
                assert popped is events[expected]
                state[expected] = "popped"
        elif op == "peek":
            expected = _earliest_live(events, state)
            time = queue.peek_time()
            assert time == (None if expected is None else events[expected].time)
        assert len(queue) == state.count("live")

    # drain: the survivors come out in exact (time, schedule order)
    survivors = sorted(
        (i for i, s in enumerate(state) if s == "live"),
        key=lambda i: (events[i].time, events[i].seq),
    )
    for index in survivors:
        assert queue.pop() is events[index]
    assert queue.pop() is None
    assert len(queue) == 0


@settings(max_examples=100, deadline=None)
@given(times=st.lists(st.integers(0, 3), max_size=64))
def test_same_time_events_fire_in_schedule_order(times):
    queue = EventQueue()
    pushed = [queue.push(t, lambda: None) for t in times]
    order = []
    while True:
        event = queue.pop()
        if event is None:
            break
        order.append(event)
    expected = sorted(pushed, key=lambda e: (e.time, e.seq))
    assert order == expected


def test_heavy_cancellation_compacts_without_losing_order():
    queue = EventQueue()
    pushed = [queue.push(t % 7, lambda: None) for t in range(400)]
    for event in pushed[:250]:  # past the >50%-garbage compaction threshold
        event.cancel()
    assert len(queue) == 150
    assert queue.heap_size < 400  # compaction reclaimed cancelled garbage
    survivors = sorted(pushed[250:], key=lambda e: (e.time, e.seq))
    assert [queue.pop() for _ in range(150)] == survivors
    assert queue.pop() is None


# ---------------------------------------------------------------------------
# Batched same-tick dispatch: pop_batch / requeue / push_fire
# ---------------------------------------------------------------------------

BATCH_OPERATIONS = st.lists(
    st.one_of(
        st.tuples(st.just("push"), st.integers(0, 8)),
        st.tuples(st.just("push_fire"), st.integers(0, 8)),
        st.tuples(st.just("cancel"), st.integers(0, 10**9)),
        st.tuples(st.just("pop_batch"), st.just(0)),
    ),
    max_size=300,
)


@settings(max_examples=300, deadline=None)
@given(operations=BATCH_OPERATIONS)
def test_pop_batch_matches_model(operations):
    """Every batch is exactly the live entries at the earliest timestamp,
    in scheduling order, under arbitrary push/push_fire/cancel mixes."""
    queue = EventQueue()
    model = []  # (time, seq, handle-or-None), parallel state below
    state = []  # "live" | "popped" | "cancelled"
    handles = []  # Event handles (None for push_fire entries)
    seq = 0
    batch = []

    def live_entries():
        return sorted(
            (i for i, s in enumerate(state) if s == "live"),
            key=lambda i: model[i][:2],
        )

    for op, arg in operations:
        if op == "push":
            handles.append(queue.push(arg, lambda: None))
            model.append((arg, seq))
            state.append("live")
            seq += 1
        elif op == "push_fire":
            queue.push_fire(arg, lambda: None)
            handles.append(None)
            model.append((arg, seq))
            state.append("live")
            seq += 1
        elif op == "cancel" and handles:
            index = arg % len(handles)
            if handles[index] is not None:
                handles[index].cancel()
                if state[index] == "live":
                    state[index] = "cancelled"
        elif op == "pop_batch":
            live = live_entries()
            tick = queue.pop_batch(batch)
            if not live:
                assert tick is None
                assert batch == []
            else:
                earliest = model[live[0]][0]
                expected = [i for i in live if model[i][0] == earliest]
                assert tick == earliest
                assert [e[:2] for e in batch] == [model[i] for i in expected]
                for i in expected:
                    state[i] = "popped"
        assert len(queue) == state.count("live")

    # Drain whatever is left, batch by batch: ticks strictly increase and
    # cover exactly the surviving entries in (time, seq) order.
    drained = []
    last_tick = None
    while True:
        tick = queue.pop_batch(batch)
        if tick is None:
            break
        assert last_tick is None or tick > last_tick
        last_tick = tick
        assert all(e[0] == tick for e in batch)
        drained.extend(e[:2] for e in batch)
    assert drained == [model[i] for i in live_entries()]
    assert len(queue) == 0


@settings(max_examples=200, deadline=None)
@given(
    times=st.lists(st.integers(0, 4), min_size=1, max_size=48),
    split=st.integers(0, 48),
)
def test_requeue_preserves_order(times, split):
    """Requeueing an unfired batch suffix restores the exact original
    firing order — the stop()-mid-batch contract of the run loop."""
    queue = EventQueue()
    for i, t in enumerate(times):
        if i % 2:
            queue.push_fire(t, lambda: None)
        else:
            queue.push(t, lambda: None)
    full_order = []
    batch = []
    while queue.pop_batch(batch) is not None:
        full_order.extend(e[:2] for e in batch)

    queue2 = EventQueue()
    for i, t in enumerate(times):
        if i % 2:
            queue2.push_fire(t, lambda: None)
        else:
            queue2.push(t, lambda: None)
    replayed = []
    while queue2.pop_batch(batch) is not None:
        cut = min(split, len(batch))
        replayed.extend(e[:2] for e in batch[:cut])
        for entry in batch[cut:]:  # "stopped" here: requeue the rest
            queue2.requeue(entry)
        # the requeued entries must come straight back at the same tick
        if cut < len(batch):
            tick = queue2.pop_batch(batch)
            assert tick == batch[0][0]
            replayed.extend(e[:2] for e in batch)
    assert replayed == full_order


def test_cancel_inside_batch_then_requeue_drops_it():
    """An event cancelled after pop_batch (by an earlier event of its own
    batch) is dropped by requeue, and the live count stays exact."""
    queue = EventQueue()
    first = queue.push(5, lambda: None)
    second = queue.push(5, lambda: None)
    queue.push_fire(5, lambda: None)
    batch = []
    assert queue.pop_batch(batch) == 5
    assert len(batch) == 3
    assert len(queue) == 0
    second.cancel()  # mid-batch cancellation: already popped, just flagged
    for entry in batch[1:]:  # simulate stop() after firing `first`
        queue.requeue(entry)
    assert len(queue) == 1  # the cancelled event was not requeued
    assert first.cancelled is False
    tick = queue.pop_batch(batch)
    assert tick == 5
    assert len(batch) == 1 and batch[0][2] is not second


def test_pop_batch_until_leaves_future_events_queued():
    queue = EventQueue()
    queue.push_fire(3, lambda: None)
    queue.push(7, lambda: None)
    batch = []
    assert queue.pop_batch(batch, until=5) == 3
    assert len(batch) == 1
    assert queue.pop_batch(batch, until=5) is None
    assert batch == []
    assert len(queue) == 1
    assert queue.peek_time() == 7


def test_compaction_during_batch_keeps_requeue_consistent():
    """Cancelling heavily between pop_batch and requeue triggers in-place
    compaction; the popped entries must still requeue correctly."""
    queue = EventQueue()
    early = [queue.push(0, lambda: None) for _ in range(4)]
    later = [queue.push(10 + t % 5, lambda: None) for t in range(200)]
    batch = []
    assert queue.pop_batch(batch) == 0
    assert len(batch) == 4
    for event in later[:150]:  # force the >50% garbage compaction
        event.cancel()
    assert queue.heap_size < 200
    for entry in batch[1:]:
        queue.requeue(entry)
    assert len(queue) == 3 + 50
    tick = queue.pop_batch(batch)
    assert tick == 0
    assert [e[2] for e in batch] == early[1:]
    survivors = sorted(later[150:], key=lambda e: (e.time, e.seq))
    drained = []
    while queue.pop_batch(batch) is not None:
        drained.extend(e[2] for e in batch)
    assert drained == survivors


def test_pop_wraps_handle_free_entries():
    """pop() returns a detached Event wrapper for push_fire entries."""
    queue = EventQueue()
    marker = lambda: None  # noqa: E731 - identity matters, not style
    queue.push_fire(4, marker)
    event = queue.pop()
    assert event is not None
    assert event.time == 4
    assert event.callback is marker
    assert queue.pop() is None
    assert len(queue) == 0
