"""Property test: the event queue against a brute-force model.

Hypothesis drives arbitrary interleavings of push / cancel / pop / peek
against a plain-list model; after every operation ``len()`` must equal the
model's live count, and every pop must return exactly the earliest live
event by (time, schedule order).  This pins the queue's determinism
contract — same-time events fire in scheduling order — under cancellation
patterns (including cancelling popped or already-cancelled events) that
the simulator's own workloads may never produce.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine.event_queue import EventQueue

OPERATIONS = st.lists(
    st.one_of(
        st.tuples(st.just("push"), st.integers(0, 20)),
        st.tuples(st.just("cancel"), st.integers(0, 10**9)),
        st.tuples(st.just("pop"), st.just(0)),
        st.tuples(st.just("peek"), st.just(0)),
    ),
    max_size=300,
)


def _earliest_live(events, state):
    live = [i for i, s in enumerate(state) if s == "live"]
    if not live:
        return None
    return min(live, key=lambda i: (events[i].time, events[i].seq))


@settings(max_examples=300, deadline=None)
@given(operations=OPERATIONS)
def test_interleavings_match_model(operations):
    queue = EventQueue()
    events = []  # every Event ever pushed, in push order
    state = []  # "live" | "popped" | "cancelled", parallel to `events`

    for op, arg in operations:
        if op == "push":
            events.append(queue.push(arg, lambda: None))
            state.append("live")
        elif op == "cancel" and events:
            index = arg % len(events)
            events[index].cancel()  # may hit popped/cancelled events too
            if state[index] == "live":
                state[index] = "cancelled"
        elif op == "pop":
            expected = _earliest_live(events, state)
            popped = queue.pop()
            if expected is None:
                assert popped is None
            else:
                assert popped is events[expected]
                state[expected] = "popped"
        elif op == "peek":
            expected = _earliest_live(events, state)
            time = queue.peek_time()
            assert time == (None if expected is None else events[expected].time)
        assert len(queue) == state.count("live")

    # drain: the survivors come out in exact (time, schedule order)
    survivors = sorted(
        (i for i, s in enumerate(state) if s == "live"),
        key=lambda i: (events[i].time, events[i].seq),
    )
    for index in survivors:
        assert queue.pop() is events[index]
    assert queue.pop() is None
    assert len(queue) == 0


@settings(max_examples=100, deadline=None)
@given(times=st.lists(st.integers(0, 3), max_size=64))
def test_same_time_events_fire_in_schedule_order(times):
    queue = EventQueue()
    pushed = [queue.push(t, lambda: None) for t in times]
    order = []
    while True:
        event = queue.pop()
        if event is None:
            break
        order.append(event)
    expected = sorted(pushed, key=lambda e: (e.time, e.seq))
    assert order == expected


def test_heavy_cancellation_compacts_without_losing_order():
    queue = EventQueue()
    pushed = [queue.push(t % 7, lambda: None) for t in range(400)]
    for event in pushed[:250]:  # past the >50%-garbage compaction threshold
        event.cancel()
    assert len(queue) == 150
    assert queue.heap_size < 400  # compaction reclaimed cancelled garbage
    survivors = sorted(pushed[250:], key=lambda e: (e.time, e.seq))
    assert [queue.pop() for _ in range(150)] == survivors
    assert queue.pop() is None
