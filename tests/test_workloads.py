"""Workload tests: program profiles, trace generation, Table 3 mixes."""

import itertools

import pytest
from hypothesis import given, settings, strategies as st

from repro.workloads.multiprog import (
    SINGLE_CORE,
    WORKLOADS,
    workload_programs,
    workloads_by_cores,
)
from repro.workloads.spec import PROGRAMS, make_trace
from repro.workloads.trace import TraceEvent, TraceKind, record, replay, validate


def take(trace, n):
    return list(itertools.islice(iter(trace), n))


class TestProfiles:
    def test_twelve_programs(self):
        assert len(PROGRAMS) == 12
        assert set(PROGRAMS) == set(SINGLE_CORE)

    def test_art_and_mcf_excluded(self):
        assert "art" not in PROGRAMS
        assert "mcf" not in PROGRAMS

    def test_all_profiles_validate(self):
        for profile in PROGRAMS.values():
            assert 0 < profile.base_ipc <= 8
            assert profile.mpki > 0
            assert 0 < profile.continue_probability < 1

    def test_fp_streamers_have_longer_runs_than_int(self):
        assert PROGRAMS["swim"].run_length > PROGRAMS["vpr"].run_length
        assert PROGRAMS["mgrid"].run_length > PROGRAMS["parser"].run_length


class TestTraceGeneration:
    def test_deterministic_for_same_seed(self):
        a = take(make_trace("swim", seed=1), 500)
        b = take(make_trace("swim", seed=1), 500)
        assert a == b

    def test_different_seeds_differ(self):
        a = take(make_trace("swim", seed=1), 500)
        b = take(make_trace("swim", seed=2), 500)
        assert a != b

    def test_strictly_increasing_instructions(self):
        events = take(make_trace("equake", seed=3), 2000)
        validate(events)  # raises on violation

    def test_mpki_approximately_matches_profile(self):
        profile = PROGRAMS["swim"]
        events = take(make_trace("swim", seed=1, software_prefetch=False), 5000)
        reads = [e for e in events if e.kind is TraceKind.READ]
        span = events[-1].inst
        mpki = len(reads) / span * 1000
        # Reads are (1 - write_fraction) of events at the profile's rate.
        expected = profile.mpki * (1 - profile.write_fraction)
        assert mpki == pytest.approx(expected, rel=0.25)

    def test_write_fraction_approximately_matches(self):
        profile = PROGRAMS["swim"]
        events = take(make_trace("swim", seed=1, software_prefetch=False), 5000)
        writes = sum(1 for e in events if e.kind is TraceKind.WRITE)
        assert writes / len(events) == pytest.approx(profile.write_fraction, rel=0.2)

    def test_prefetch_precedes_its_demand(self):
        events = take(make_trace("swim", seed=1, software_prefetch=True), 5000)
        seen_prefetch = {}
        for e in events:
            if e.kind is TraceKind.PREFETCH:
                seen_prefetch[e.line_addr] = e.inst
            elif e.kind is TraceKind.READ and e.line_addr in seen_prefetch:
                assert seen_prefetch[e.line_addr] < e.inst

    def test_no_prefetch_events_when_disabled(self):
        events = take(make_trace("swim", seed=1, software_prefetch=False), 3000)
        assert all(e.kind is not TraceKind.PREFETCH for e in events)

    def test_prefetch_rate_scales_with_coverage(self):
        hi = take(make_trace("swim", seed=1), 4000)
        lo = take(make_trace("parser", seed=1), 4000)
        rate = lambda evs: sum(e.kind is TraceKind.PREFETCH for e in evs) / len(evs)
        assert rate(hi) > rate(lo)

    def test_core_address_spaces_disjoint(self):
        a = take(make_trace("swim", seed=1, core_id=0), 1000)
        b = take(make_trace("swim", seed=1, core_id=1), 1000)
        lines_a = {e.line_addr for e in a}
        lines_b = {e.line_addr for e in b}
        assert not lines_a & lines_b

    def test_unknown_program_raises(self):
        with pytest.raises(KeyError, match="unknown program"):
            make_trace("mcf", seed=1)

    def test_sequential_runs_present(self):
        events = take(make_trace("swim", seed=1, software_prefetch=False), 3000)
        reads = [e.line_addr for e in events if e.kind is TraceKind.READ]
        sequential = sum(1 for a, b in zip(reads, reads[1:]) if b == a + 1)
        assert sequential > 0

    @given(st.sampled_from(sorted(PROGRAMS)), st.integers(min_value=0, max_value=50))
    @settings(max_examples=15, deadline=None)
    def test_every_program_generates_valid_traces(self, program, seed):
        events = take(make_trace(program, seed=seed), 300)
        validate(events)
        assert all(e.line_addr >= 0 for e in events)


class TestTraceHelpers:
    def test_record_and_replay(self):
        events = record(make_trace("gap", seed=1), 100)
        assert len(events) == 100
        assert list(replay(events)) == events

    def test_validate_rejects_disorder(self):
        bad = [
            TraceEvent(5, TraceKind.READ, 1),
            TraceEvent(5, TraceKind.READ, 2),
        ]
        with pytest.raises(ValueError, match="trace order"):
            validate(bad)


class TestWorkloadTable:
    def test_table3_counts(self):
        assert len(WORKLOADS) == 15
        assert len(workloads_by_cores(2)) == 6
        assert len(workloads_by_cores(4)) == 6
        assert len(workloads_by_cores(8)) == 3
        assert len(workloads_by_cores(1)) == 12

    def test_table3_contents_match_paper(self):
        assert WORKLOADS["2C-1"] == ("wupwise", "swim")
        assert WORKLOADS["4C-3"] == ("fma3d", "parser", "gap", "vortex")
        assert WORKLOADS["8C-2"] == (
            "wupwise", "swim", "mgrid", "applu", "fma3d", "parser", "gap", "vortex",
        )

    def test_programs_are_known(self):
        for programs in WORKLOADS.values():
            for program in programs:
                assert program in PROGRAMS

    def test_workload_programs_single(self):
        assert workload_programs("swim") == ["swim"]

    def test_workload_programs_multi(self):
        assert workload_programs("2C-6") == ["gap", "vortex"]

    def test_unknown_workload(self):
        with pytest.raises(KeyError):
            workload_programs("16C-1")
