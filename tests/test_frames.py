"""Unit and property tests for the frame-accurate link schedulers."""

import pytest
from hypothesis import given, strategies as st

from repro.channel.frames import NorthboundLink, SouthboundLink

FRAME = 6000


class TestSouthboundCommands:
    def test_three_commands_per_frame(self):
        link = SouthboundLink("s", FRAME)
        starts = [link.reserve_command(0) for _ in range(4)]
        assert starts == [0, 0, 0, FRAME]

    def test_alignment(self):
        link = SouthboundLink("s", FRAME)
        assert link.reserve_command(1) == FRAME
        assert link.reserve_command(FRAME) == FRAME

    def test_busy_accounting_counts_frames(self):
        link = SouthboundLink("s", FRAME)
        link.reserve_command(0)
        link.reserve_command(0)  # same frame
        assert link.busy_ps == FRAME
        link.reserve_command(4 * FRAME)
        assert link.busy_ps == 2 * FRAME

    def test_invalid_frame_period(self):
        with pytest.raises(ValueError):
            SouthboundLink("s", 0)


class TestSouthboundWrites:
    def test_write_takes_four_data_frames(self):
        link = SouthboundLink("s", FRAME)
        start, end = link.reserve_write_data(0, 4)
        assert start == 0
        assert end == 4 * FRAME

    def test_data_frames_skip_command_heavy_frames(self):
        link = SouthboundLink("s", FRAME)
        link.reserve_command(0)
        link.reserve_command(0)  # frame 0 has two commands: no data room
        start, end = link.reserve_write_data(0, 1)
        assert start == FRAME

    def test_data_joins_single_command_frame(self):
        link = SouthboundLink("s", FRAME)
        link.reserve_command(0)  # one command leaves room for data
        start, _ = link.reserve_write_data(0, 1)
        assert start == 0

    def test_data_frames_not_necessarily_contiguous(self):
        link = SouthboundLink("s", FRAME)
        link.reserve_command(FRAME)
        link.reserve_command(FRAME)  # frame 1 blocked for data
        start, end = link.reserve_write_data(0, 2)
        assert start == 0
        assert end == 3 * FRAME  # frames 0 and 2

    def test_zero_frames_rejected(self):
        with pytest.raises(ValueError):
            SouthboundLink("s", FRAME).reserve_write_data(0, 0)

    def test_prune_drops_old_frames(self):
        link = SouthboundLink("s", FRAME)
        link.reserve_command(0)
        link.prune_before(FRAME)
        assert link._frames == {}
        assert link.busy_ps == FRAME  # accounting survives pruning


class TestNorthbound:
    def test_contiguous_line(self):
        link = NorthboundLink("n", FRAME)
        start, end = link.reserve_line(0, 2)
        assert (start, end) == (0, 2 * FRAME)

    def test_second_line_queues(self):
        link = NorthboundLink("n", FRAME)
        link.reserve_line(0, 2)
        start, end = link.reserve_line(0, 2)
        assert start == 2 * FRAME

    def test_backfill_between_lines(self):
        link = NorthboundLink("n", FRAME)
        link.reserve_line(0, 2)
        link.reserve_line(6 * FRAME, 2)  # leaves frames 2-5 free
        start, _ = link.reserve_line(0, 2)
        assert start == 2 * FRAME

    def test_contiguity_requirement_skips_single_holes(self):
        link = NorthboundLink("n", FRAME)
        link.reserve_line(0, 2)  # frames 0-1
        link.reserve_line(3 * FRAME, 2)  # frames 3-4; frame 2 is a hole
        start, _ = link.reserve_line(0, 2)
        assert start == 5 * FRAME  # the single-frame hole cannot fit a line

    def test_phase_shifts_grid(self):
        link = NorthboundLink("n", FRAME, phase_ps=3000)
        start, _ = link.reserve_line(0, 1)
        assert start == 3000
        start, _ = link.reserve_line(9001, 1)
        assert start == 15_000

    def test_phase_validation(self):
        with pytest.raises(ValueError):
            NorthboundLink("n", FRAME, phase_ps=FRAME)

    def test_prune(self):
        link = NorthboundLink("n", FRAME, phase_ps=3000)
        link.reserve_line(0, 1)
        link.prune_before(3000 + FRAME)
        assert link._taken == {}


class TestFrameProperties:
    @given(
        st.lists(st.integers(min_value=0, max_value=40 * FRAME), max_size=50)
    )
    def test_commands_never_exceed_frame_capacity(self, asks):
        link = SouthboundLink("s", FRAME)
        for earliest in asks:
            start = link.reserve_command(earliest)
            assert start >= earliest
            assert start % FRAME == 0
        for state in link._frames.values():
            commands, has_data = state
            assert commands <= (1 if has_data else 3)

    @given(
        st.lists(st.integers(min_value=0, max_value=40 * FRAME), max_size=40)
    )
    def test_northbound_lines_never_overlap(self, asks):
        link = NorthboundLink("n", FRAME)
        intervals = []
        for earliest in asks:
            start, end = link.reserve_line(earliest, 2)
            assert start >= earliest
            intervals.append((start, end))
        intervals.sort()
        for (s1, e1), (s2, e2) in zip(intervals, intervals[1:]):
            assert e1 <= s2

    @given(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=30 * FRAME),
                st.sampled_from(["cmd", "write"]),
            ),
            max_size=40,
        )
    )
    def test_southbound_mixed_traffic_capacity(self, asks):
        """No frame ever carries more than (3 commands) or (1 cmd + data)."""
        link = SouthboundLink("s", FRAME)
        for earliest, kind in asks:
            if kind == "cmd":
                link.reserve_command(earliest)
            else:
                link.reserve_write_data(earliest, 4)
        for commands, has_data in link._frames.values():
            if has_data:
                assert commands <= 1
            else:
                assert commands <= 3
