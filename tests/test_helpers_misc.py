"""Tests for helper APIs: figure helper functions, context speedups,
frame edge cases, and result conveniences."""

import dataclasses

import pytest

from repro.channel.frames import SouthboundLink
from repro.config import ddr2_baseline, fbdimm_amb_prefetch, fbdimm_baseline
from repro.experiments import fig06_bandwidth_impact as fig06
from repro.experiments.runner import ExperimentContext, ResultTable
from repro.system import System, run_system
from repro.workloads.synthetic import SyntheticSpec, stream

FRAME = 6000


class TestFig06Helpers:
    def table(self):
        t = ResultTable(title="t", columns=[
            "system", "data_rate", "logic_channels", "cores", "speedup",
        ])
        for rate, speed in ((533, 1.0), (667, 1.2), (800, 1.3)):
            t.add(system="fbdimm", data_rate=rate, logic_channels=2,
                  cores=4, speedup=speed)
        t.add(system="fbdimm", data_rate=667, logic_channels=1, cores=4,
              speedup=0.8)
        t.add(system="fbdimm", data_rate=667, logic_channels=4, cores=4,
              speedup=1.5)
        return t

    def test_gain(self):
        assert fig06.gain(self.table(), "fbdimm", 4) == pytest.approx(1.2)

    def test_channel_gain(self):
        assert fig06.channel_gain(self.table(), "fbdimm", 4) == pytest.approx(1.5)

    def test_missing_cell_raises(self):
        with pytest.raises(KeyError):
            fig06.gain(self.table(), "ddr2", 4)


class TestContextSpeedupVs:
    def test_speedup_vs_baseline(self):
        ctx = ExperimentContext(instructions=3_000)
        ratio = ctx.speedup_vs(
            fbdimm_amb_prefetch(), fbdimm_baseline(), workload="swim"
        )
        assert 0.8 < ratio < 1.6

    def test_multiprogram_workload_fixes_core_count(self):
        ctx = ExperimentContext(instructions=3_000)
        ratio = ctx.speedup_vs(
            fbdimm_baseline(), ddr2_baseline(), workload="2C-6"
        )
        assert ratio > 0


class TestSouthboundWriteEdges:
    def test_write_waits_for_frame_boundary(self):
        link = SouthboundLink("s", FRAME)
        start, end = link.reserve_write_data(FRAME - 1, 1)
        assert start == FRAME
        assert end == 2 * FRAME

    def test_back_to_back_writes_pack_tightly(self):
        link = SouthboundLink("s", FRAME)
        _, first_end = link.reserve_write_data(0, 4)
        second_start, _ = link.reserve_write_data(0, 4)
        assert second_start == first_end

    def test_interleaved_commands_and_writes_preserve_capacity(self):
        link = SouthboundLink("s", FRAME)
        link.reserve_write_data(0, 4)
        # One command per data frame rides along; the fifth spills over.
        for expected in (0, FRAME, 2 * FRAME, 3 * FRAME, 4 * FRAME):
            assert link.reserve_command(0) == expected


class TestResultConveniences:
    def test_ipc_by_program_with_custom_labels(self):
        config = dataclasses.replace(
            fbdimm_baseline(2), instructions_per_core=2_000
        )
        system = System.from_traces(
            config,
            [stream(SyntheticSpec(seed=1)),
             stream(SyntheticSpec(seed=2), base_line=1 << 30)],
            base_ipcs=[2.0, 1.0],
            labels=["fast", "slow"],
        )
        result = system.run()
        assert set(result.ipc_by_program) == {"fast", "slow"}
        assert result.ipc_by_program["fast"] > result.ipc_by_program["slow"]

    def test_events_fired_reported(self):
        config = dataclasses.replace(
            fbdimm_baseline(1), instructions_per_core=2_000
        )
        result = run_system(config, ["vpr"])
        assert result.events_fired > 10

    def test_result_properties_without_traffic(self):
        """A compute-only run must not divide by zero anywhere."""
        config = dataclasses.replace(
            fbdimm_baseline(1), instructions_per_core=100
        )
        result = System.from_traces(
            config, [iter([])], base_ipcs=[2.0]
        ).run()
        assert result.mem.demand_reads == 0
        assert result.avg_read_latency_ns == 0.0
        assert result.utilized_bandwidth_gbs == 0.0
        assert result.prefetch_coverage == 0.0
        assert result.prefetch_efficiency == 0.0
