"""Bank state-machine tests: Table 2 constraints under both page policies."""


from repro.config import DramTimings, PagePolicy
from repro.dram.bank import Bank, RankTimer
from repro.dram.resources import BusResource
from repro.dram.timing import TimingPs

T = TimingPs.from_config(DramTimings(), dram_clock_ps=3000, burst_clocks=4)


def make_bank(policy=PagePolicy.CLOSE_PAGE):
    return Bank(bank_id=0, timing=T, page_policy=policy), BusResource("bus"), RankTimer()


class TestClosePageRead:
    def test_idle_read_timeline(self):
        bank, bus, rank = make_bank()
        result = bank.read(0, row=5, num_lines=1, data_bus=bus, rank=rank)
        # ACT at 0, RD at tRCD, data from tRCD+tCL for one burst.
        assert result.command_start == 0
        assert result.data_starts == [T.tRCD + T.tCL]
        assert result.data_times == [T.tRCD + T.tCL + T.burst]
        assert not result.row_hit

    def test_read_counts_act_and_pre(self):
        bank, bus, rank = make_bank()
        bank.read(0, 5, 1, bus, rank)
        assert bank.stats.activates == 1
        assert bank.stats.precharges == 1
        assert bank.stats.reads == 1

    def test_trc_separates_back_to_back_acts(self):
        bank, bus, rank = make_bank()
        bank.read(0, 5, 1, bus, rank)
        second = bank.read(0, 6, 1, bus, rank)
        assert second.command_start >= T.tRC

    def test_ready_at_honours_precharge(self):
        bank, bus, rank = make_bank()
        bank.read(0, 5, 1, bus, rank)
        # pre at max(tRAS, last RD + tRPD); ready at max(tRC, pre + tRP)
        expected_pre = max(T.tRAS, T.tRCD + T.tRPD)
        assert bank.ready_at == max(T.tRC, expected_pre + T.tRP)

    def test_group_read_pipelines_on_bus(self):
        bank, bus, rank = make_bank()
        result = bank.read(0, 5, num_lines=4, data_bus=bus, rank=rank)
        starts = result.data_starts
        assert len(starts) == 4
        assert starts[0] == T.tRCD + T.tCL
        for a, b in zip(starts, starts[1:]):
            assert b - a == T.burst  # fully pipelined bursts
        assert bank.stats.reads == 4
        assert bank.stats.activates == 1  # one ACT serves the region

    def test_busy_bus_delays_data(self):
        bank, bus, rank = make_bank()
        bus.reserve(0, 100_000)
        result = bank.read(0, 5, 1, bus, rank)
        assert result.data_starts[0] == 100_000

    def test_close_page_never_row_hits(self):
        bank, bus, rank = make_bank()
        bank.read(0, 5, 1, bus, rank)
        result = bank.read(bank.ready_at, 5, 1, bus, rank)
        assert not result.row_hit
        assert bank.stats.row_hits == 0


class TestRankTimer:
    def test_trrd_separates_acts_across_banks(self):
        bank_a, bus, rank = make_bank()
        bank_b = Bank(bank_id=1, timing=T, page_policy=PagePolicy.CLOSE_PAGE)
        bank_a.read(0, 5, 1, bus, rank)
        result = bank_b.read(0, 7, 1, bus, rank)
        assert result.command_start >= T.tRRD

    def test_estimate_matches_gate(self):
        bank, bus, rank = make_bank()
        rank.note_act(0, T.tRRD)
        assert bank.earliest_start(0, 5, rank) == T.tRRD

    def test_twtr_blocks_read_after_write_data(self):
        bank, bus, rank = make_bank()
        bank.write(0, 5, bus, rank)
        write_data_end = T.tRCD + T.tWL + T.burst
        result = bank.read(bank.ready_at, 6, 1, bus, rank)
        first_rd = result.data_starts[0] - T.tCL
        assert first_rd >= write_data_end + T.tWTR


class TestClosePageWrite:
    def test_idle_write_timeline(self):
        bank, bus, rank = make_bank()
        result = bank.write(0, 5, data_bus=bus, rank=rank)
        assert result.command_start == 0
        assert result.data_starts == [T.tRCD + T.tWL]
        assert bank.stats.writes == 1
        assert bank.stats.activates == 1

    def test_write_holds_bank_longer_than_read(self):
        bank_r, bus_r, rank_r = make_bank()
        bank_w, bus_w, rank_w = make_bank()
        bank_r.read(0, 5, 1, bus_r, rank_r)
        bank_w.write(0, 5, bus_w, rank_w)
        assert bank_w.ready_at > bank_r.ready_at  # tWPD > tRPD


class TestOpenPage:
    def test_first_access_opens_row(self):
        bank, bus, rank = make_bank(PagePolicy.OPEN_PAGE)
        result = bank.read(0, 5, 1, bus, rank)
        assert not result.row_hit
        assert bank.open_row == 5

    def test_row_hit_skips_act(self):
        bank, bus, rank = make_bank(PagePolicy.OPEN_PAGE)
        bank.read(0, 5, 1, bus, rank)
        t0 = bank.column_ok
        result = bank.read(t0, 5, 1, bus, rank)
        assert result.row_hit
        assert bank.stats.activates == 1  # no second ACT
        assert bank.stats.row_hits == 1
        # Hit data comes after just tCL, no tRCD.
        assert result.data_starts[0] == t0 + T.tCL

    def test_row_conflict_precharges_first(self):
        bank, bus, rank = make_bank(PagePolicy.OPEN_PAGE)
        bank.read(0, 5, 1, bus, rank)
        pre_time = bank.precharge_ok
        result = bank.read(pre_time, 9, 1, bus, rank)
        assert not result.row_hit
        assert bank.stats.precharges == 1
        # Both the cold first access and the conflicting one are misses.
        assert bank.stats.row_misses == 2
        assert bank.open_row == 9
        # PRE -> tRP -> ACT -> tRCD -> RD, data after tCL
        assert result.data_starts[0] == pre_time + T.tRP + T.tRCD + T.tCL

    def test_is_row_hit_probe(self):
        bank, bus, rank = make_bank(PagePolicy.OPEN_PAGE)
        assert not bank.is_row_hit(5)
        bank.read(0, 5, 1, bus, rank)
        assert bank.is_row_hit(5)
        assert not bank.is_row_hit(6)

    def test_estimate_prefers_open_row(self):
        bank, bus, rank = make_bank(PagePolicy.OPEN_PAGE)
        bank.read(0, 5, 1, bus, rank)
        hit_est = bank.earliest_start(bank.column_ok, 5, rank)
        miss_est = bank.earliest_start(bank.column_ok, 9, rank)
        assert hit_est <= miss_est


class TestWireOrderWriteGate:
    """Writes must not backfill so that a committed read command falls
    inside their wire-order tWTR window (WR cmd .. WR data end + tWTR)."""

    def test_write_skips_past_committed_future_read(self):
        bank, bus, rank = make_bank()
        # A read on another bank of this rank already committed its command
        # at a future instant, with its burst reserved on the shared bus.
        rd_cmd = T.tRCD + T.tWL + T.clock  # inside the idle write's window
        bus.reserve(rd_cmd + T.tCL, T.burst)
        rank.note_read_cmd(rd_cmd, now=0)

        result = bank.write(0, 5, data_bus=bus, rank=rank)
        wr_cmd = result.data_starts[0] - T.tWL
        # The write may not wrap the committed read in its tWTR window...
        assert not (wr_cmd <= rd_cmd < result.data_starts[0] + T.burst + T.tWTR)
        # ...which here forces it after the read command entirely.
        assert wr_cmd > rd_cmd

    def test_write_unaffected_without_pending_read(self):
        bank, bus, rank = make_bank()
        result = bank.write(0, 5, data_bus=bus, rank=rank)
        assert result.data_starts == [T.tRCD + T.tWL]

    def test_read_commits_its_command_instant(self):
        bank, bus, rank = make_bank()
        bank.read(0, row=5, num_lines=2, data_bus=bus, rank=rank)
        # One committed instant per line, each tCL before its burst.
        assert rank.pending_rd_cmds == [T.tRCD, T.tRCD + T.burst]

    def test_note_read_cmd_prunes_stale_entries(self):
        rank = RankTimer()
        rank.note_read_cmd(100, now=0)
        rank.note_read_cmd(50, now=0)
        assert rank.pending_rd_cmds == [50, 100]
        rank.note_read_cmd(300, now=200)  # both old entries are in the past
        assert rank.pending_rd_cmds == [300]

    def test_read_in_window_returns_latest_hit(self):
        rank = RankTimer()
        for cmd in (10, 20, 30):
            rank.note_read_cmd(cmd, now=0)
        assert rank.read_in_window(10, 25) == 20  # window is half-open
        assert rank.read_in_window(31, 99) is None
        assert rank.read_in_window(0, 100) == 30
