"""Channel-controller integration tests, driven through MemoryController.

These exercise full request paths against an idle or lightly loaded system
where exact latencies are predictable from Table 2, including the paper's
headline 63 ns / 33 ns idle-latency claim.
"""


from repro.config import (
    AmbPrefetchConfig,
    MemoryConfig,
    ddr2_baseline,
    fbdimm_amb_prefetch,
    fbdimm_baseline,
)
from repro.controller.controller import MemoryController
from repro.controller.transaction import MemoryRequest, RequestKind
from repro.engine.simulator import Simulator


class Harness:
    """Drives a bare memory controller with hand-placed requests."""

    def __init__(self, memory: MemoryConfig):
        self.sim = Simulator()
        self.controller = MemoryController(self.sim, memory)
        self.done = []

    def submit(self, line, kind=RequestKind.DEMAND_READ, at=0):
        req = MemoryRequest(
            kind=kind, line_addr=line, core_id=0, arrival=at,
            on_complete=self.done.append,
        )
        self.sim.schedule_at(at, lambda: self.controller.submit(req))
        return req

    def run(self):
        self.sim.run(max_events=1_000_000)


class TestIdleLatencies:
    def test_fbd_miss_is_63ns(self):
        h = Harness(fbdimm_baseline().memory)
        req = h.submit(0)
        h.run()
        assert req.latency == 63_000

    def test_fbd_ap_hit_is_33ns(self):
        h = Harness(fbdimm_amb_prefetch().memory)
        first = h.submit(0, at=0)
        second = h.submit(1, at=1_200_000)  # frame-aligned quiet point
        h.run()
        assert first.latency == 63_000
        assert second.latency == 33_000
        assert second.amb_hit

    def test_ddr2_miss_is_57ns(self):
        h = Harness(ddr2_baseline().memory)
        req = h.submit(0)
        h.run()
        assert req.latency == 57_000

    def test_apfl_hit_pays_full_latency(self):
        memory = fbdimm_amb_prefetch(
            prefetch=AmbPrefetchConfig(full_latency_hits=True)
        ).memory
        h = Harness(memory)
        h.submit(0, at=0)
        second = h.submit(1, at=1_200_000)  # frame-aligned
        h.run()
        assert second.amb_hit
        assert second.latency == 63_000  # hit, but at miss latency

    def test_vrl_shortens_near_dimm_reads(self):
        base = fbdimm_baseline().memory
        h_fix = Harness(base)
        req_fix = h_fix.submit(0)
        h_fix.run()
        import dataclasses

        h_vrl = Harness(dataclasses.replace(base, variable_read_latency=True))
        req_vrl = h_vrl.submit(0)  # line 0 -> DIMM 0, one hop away
        h_vrl.run()
        assert req_vrl.latency < req_fix.latency


class TestPrefetchBehaviour:
    def test_merge_with_inflight_fill(self):
        """A read arriving while its region streams in must not re-fetch."""
        h = Harness(fbdimm_amb_prefetch().memory)
        h.submit(0, at=0)
        merged = h.submit(1, at=40_000)  # fills land ~63-75 ns
        h.run()
        assert merged.amb_hit
        h.controller.finalize()
        acts = h.controller.stats.activates
        assert acts == 1, "merged read must not trigger a second ACT"

    def test_write_invalidates_amb_line(self):
        h = Harness(fbdimm_amb_prefetch().memory)
        h.submit(0, at=0)
        h.submit(1, kind=RequestKind.WRITE, at=1_000_000)
        third = h.submit(1, at=2_000_000)
        h.run()
        assert not third.amb_hit, "stale AMB copy must not serve the read"

    def test_group_fetch_counts_k_column_accesses(self):
        h = Harness(fbdimm_amb_prefetch().memory)
        h.submit(0, at=0)
        h.run()
        h.controller.finalize()
        assert h.controller.stats.activates == 1
        assert h.controller.stats.column_accesses == 4
        assert h.controller.stats.prefetched_lines == 3

    def test_sw_prefetch_request_can_hit_amb_cache(self):
        h = Harness(fbdimm_amb_prefetch().memory)
        h.submit(0, at=0)
        pf = h.submit(1, kind=RequestKind.SW_PREFETCH, at=1_000_000)
        h.run()
        assert pf.amb_hit


class TestQueueing:
    def test_bank_conflict_reorders(self):
        """Two reads to one bank, one to another: the other-bank read must
        not wait for the conflicting pair (FR-FCFS behaviour)."""
        memory = fbdimm_baseline().memory
        h = Harness(memory)
        # Cacheline interleave: lines 0 and 256 share channel 0 / dimm 0 /
        # bank 0 (64 banks x 4 lines rotation); line 16 is bank 1.
        a = h.submit(0, at=0)
        b = h.submit(256, at=100)
        c = h.submit(16, at=200)
        h.run()
        assert c.finish_time < b.finish_time

    def test_completion_metrics_recorded(self):
        h = Harness(fbdimm_baseline().memory)
        h.submit(0, at=0)
        h.submit(1, kind=RequestKind.WRITE, at=0)
        h.run()
        stats = h.controller.stats
        assert stats.demand_reads == 1
        assert stats.writes == 1
        assert stats.bytes_read == 64
        assert stats.bytes_written == 64
        assert stats.demand_latency_sum_ps == 63_000


class TestControllerBuffer:
    def test_overhead_applied(self):
        h = Harness(fbdimm_baseline().memory)
        req = h.submit(0, at=5_000)
        h.run()
        assert req.schedulable_at == 5_000 + 12_000

    def test_backlog_beyond_capacity(self):
        import dataclasses

        memory = dataclasses.replace(fbdimm_baseline().memory, buffer_entries=2)
        h = Harness(memory)
        reqs = [h.submit(i * 4, at=0) for i in range(6)]
        h.run()
        assert all(r.finish_time > 0 for r in reqs)
        assert h.controller.drained()

    def test_outstanding_counts(self):
        h = Harness(fbdimm_baseline().memory)
        h.submit(0, at=0)
        assert h.controller.outstanding() == 0  # not yet submitted
        h.run()
        assert h.controller.drained()
