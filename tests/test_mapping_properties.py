"""Property tests: the address map is a bijection onto the device space.

For every interleaving scheme, mapping the full capacity of a (small)
memory system must hit every (channel, dimm, rank, bank, row, line) slot
exactly once, and ``unmap`` must invert ``map`` everywhere.  A hypothesis
pass then re-checks the round trip and region invariants over randomly
drawn geometries, where hand-picked cases tend to miss carry interactions
between the divmod stages.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import (
    AmbPrefetchConfig,
    InterleaveScheme,
    MemoryConfig,
    MemoryKind,
)
from repro.controller.mapping import AddressMapper


def _memory(
    scheme: InterleaveScheme,
    k: int = 4,
    logic_channels: int = 1,
    physical_per_logic: int = 2,
    dimms: int = 2,
    ranks: int = 1,
    banks: int = 2,
    rows: int = 4,
    page_bytes: int = 512,
) -> MemoryConfig:
    return MemoryConfig(
        kind=MemoryKind.FBDIMM,
        logic_channels=logic_channels,
        physical_per_logic=physical_per_logic,
        dimms_per_channel=dimms,
        ranks_per_dimm=ranks,
        banks_per_dimm=banks,
        rows_per_bank=rows,
        page_bytes=page_bytes,
        cacheline_bytes=64,
        interleave=scheme,
        prefetch=AmbPrefetchConfig(
            enabled=scheme is InterleaveScheme.MULTI_CACHELINE,
            region_cachelines=k,
        ),
    )


def _capacity(mapper: AddressMapper) -> int:
    return (
        mapper.channels
        * mapper.dimms
        * mapper.ranks
        * mapper.banks
        * mapper.rows
        * mapper.lines_per_page
    )


@pytest.mark.parametrize("ranks", [1, 2], ids=["single-rank", "dual-rank"])
@pytest.mark.parametrize("scheme", list(InterleaveScheme))
def test_full_space_is_a_bijection(scheme, ranks):
    mapper = AddressMapper(_memory(scheme, ranks=ranks))
    capacity = _capacity(mapper)
    slots = set()
    for addr in range(capacity):
        m = mapper.map(addr)
        assert 0 <= m.channel < mapper.channels
        assert 0 <= m.dimm < mapper.dimms
        assert 0 <= m.rank < mapper.ranks
        assert 0 <= m.bank < mapper.banks
        assert 0 <= m.row < mapper.rows
        assert 0 <= m.line_in_page < mapper.lines_per_page
        assert mapper.unmap(m) == addr
        slots.add((m.channel, m.dimm, m.rank, m.bank, m.row, m.line_in_page))
    # injective into a space of exactly `capacity` slots => bijective
    assert len(slots) == capacity


GEOMETRIES = st.fixed_dictionaries(
    {
        "scheme": st.sampled_from(list(InterleaveScheme)),
        "k": st.sampled_from([1, 2, 4, 8]),
        "logic_channels": st.integers(1, 3),
        "physical_per_logic": st.integers(1, 2),
        "dimms": st.integers(1, 3),
        "ranks": st.integers(1, 2),
        "banks": st.integers(1, 4),
        "rows": st.integers(1, 8),
        "page_bytes": st.sampled_from([512, 1024]),
    }
)


@settings(max_examples=200, deadline=None)
@given(geometry=GEOMETRIES, data=st.data())
def test_round_trip_over_random_geometries(geometry, data):
    mapper = AddressMapper(_memory(**geometry))
    capacity = _capacity(mapper)
    addr = data.draw(st.integers(min_value=0, max_value=capacity - 1))
    m = mapper.map(addr)
    assert mapper.unmap(m) == addr
    assert m.region == mapper.region_of(addr) == addr // mapper.region_lines
    assert m.line_in_region == addr % mapper.region_lines


@settings(max_examples=50, deadline=None)
@given(geometry=GEOMETRIES, region=st.integers(0, 10_000))
def test_region_lines_share_one_dram_page(geometry, region):
    """All K lines of a region land in the same row of the same bank —
    the invariant AMB prefetching's one-ACT-per-region fetch relies on."""
    mapper = AddressMapper(_memory(**geometry))
    lines = mapper.region_lines_of(region)
    assert len(lines) == mapper.region_lines
    mapped = [mapper.map(a) for a in lines]
    pages = {(m.channel, m.dimm, m.rank, m.bank, m.row) for m in mapped}
    assert len(pages) == 1
    assert [m.line_in_region for m in mapped] == list(range(len(lines)))


def test_negative_address_rejected():
    mapper = AddressMapper(_memory(InterleaveScheme.CACHELINE))
    with pytest.raises(ValueError):
        mapper.map(-1)
