"""Metrics and power-model tests."""

import pytest

from repro.power.ddr2_power import (
    MicronPowerCalculator,
    PowerModel,
    relative_dynamic_power,
)
from repro.stats import metrics
from repro.stats.collector import MemSystemStats


def stats_with(**kw):
    s = MemSystemStats()
    for key, value in kw.items():
        setattr(s, key, value)
    return s


class TestSmtSpeedup:
    def test_single_core_identity(self):
        assert metrics.smt_speedup([1.5], [1.5]) == pytest.approx(1.0)

    def test_sums_per_core_ratios(self):
        assert metrics.smt_speedup([1.0, 2.0], [2.0, 2.0]) == pytest.approx(1.5)

    def test_mismatched_lengths(self):
        with pytest.raises(ValueError):
            metrics.smt_speedup([1.0], [1.0, 2.0])

    def test_zero_reference(self):
        with pytest.raises(ValueError):
            metrics.smt_speedup([1.0], [0.0])


class TestLatencyAndBandwidth:
    def test_average_read_latency(self):
        s = stats_with(demand_reads=2, demand_latency_sum_ps=126_000)
        assert metrics.average_read_latency_ns(s) == pytest.approx(63.0)

    def test_average_latency_empty(self):
        assert metrics.average_read_latency_ns(MemSystemStats()) == 0.0

    def test_utilized_bandwidth(self):
        s = MemSystemStats()
        s.note_activity(0)
        s.note_activity(1000)  # 1 ns window
        s.bytes_read = 4
        s.bytes_written = 4
        assert metrics.utilized_bandwidth_gbs(s) == pytest.approx(8.0)

    def test_bandwidth_empty_window(self):
        assert metrics.utilized_bandwidth_gbs(MemSystemStats()) == 0.0

    def test_queue_delay(self):
        s = stats_with(demand_reads=1, writes=1, queue_delay_sum_ps=4000)
        assert metrics.average_queue_delay_ns(s) == pytest.approx(2.0)


class TestCoverageEfficiency:
    def test_coverage(self):
        s = stats_with(demand_reads=80, sw_prefetch_reads=20, amb_hits=50)
        assert metrics.prefetch_coverage(s) == pytest.approx(0.5)

    def test_efficiency(self):
        s = stats_with(amb_hits=30, prefetched_lines=60)
        assert metrics.prefetch_efficiency(s) == pytest.approx(0.5)

    def test_zero_denominators(self):
        assert metrics.prefetch_coverage(MemSystemStats()) == 0.0
        assert metrics.prefetch_efficiency(MemSystemStats()) == 0.0


class TestMeans:
    def test_arithmetic(self):
        assert metrics.arithmetic_mean([1.0, 3.0]) == pytest.approx(2.0)

    def test_geometric(self):
        assert metrics.geometric_mean([1.0, 4.0]) == pytest.approx(2.0)

    def test_geometric_requires_positive(self):
        with pytest.raises(ValueError):
            metrics.geometric_mean([1.0, 0.0])

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            metrics.arithmetic_mean([])

    def test_speedup_over(self):
        out = metrics.speedup_over({"a": 2.0}, {"a": 1.0})
        assert out == {"a": 2.0}

    def test_speedup_over_mismatch(self):
        with pytest.raises(ValueError):
            metrics.speedup_over({"a": 1.0}, {"b": 1.0})


class TestCollector:
    def test_record_read_completion(self):
        s = MemSystemStats()
        s.record_read_completion(63_000, 1_000, is_demand=True, amb_hit=True, line_bytes=64)
        s.record_read_completion(33_000, 0, is_demand=False, amb_hit=False, line_bytes=64)
        assert s.demand_reads == 1
        assert s.sw_prefetch_reads == 1
        assert s.total_reads == 2
        assert s.amb_hits == 1
        assert s.bytes_read == 128
        assert s.demand_latency_sum_ps == 63_000
        assert s.read_latency_sum_ps == 96_000

    def test_activity_window(self):
        s = MemSystemStats()
        assert s.elapsed_ps == 0
        s.note_activity(500)
        s.note_activity(1500)
        s.note_activity(900)  # out of order is fine
        assert s.first_activity_ps == 500
        assert s.last_activity_ps == 1500
        assert s.elapsed_ps == 1000


class TestMicronCalculator:
    def test_ratio_is_roughly_four_to_one(self):
        ratio = MicronPowerCalculator().act_to_column_ratio()
        assert 3.0 < ratio < 5.0

    def test_write_bursts_cost_slightly_more(self):
        calc = MicronPowerCalculator()
        assert calc.column_energy_nj(is_write=True) > calc.column_energy_nj()

    def test_energies_positive(self):
        calc = MicronPowerCalculator()
        assert calc.act_pre_energy_nj() > 0
        assert calc.column_energy_nj() > 0


class TestPowerModel:
    def test_weighting(self):
        model = PowerModel(act_pre_weight=4.0)
        assert model.dynamic_energy_units(10, 20) == pytest.approx(60.0)

    def test_negative_counts_rejected(self):
        with pytest.raises(ValueError):
            PowerModel().dynamic_energy_units(-1, 0)

    def test_relative_power_saving(self):
        base = stats_with(activates=100, column_accesses=100)  # 500 units
        ap = stats_with(activates=50, column_accesses=120)  # 320 units
        assert relative_dynamic_power(ap, base) == pytest.approx(0.64)

    def test_relative_power_zero_baseline(self):
        with pytest.raises(ValueError):
            relative_dynamic_power(MemSystemStats(), MemSystemStats())
