"""Multi-rank DIMM tests: mapping, independent rank timing, end-to-end."""

import dataclasses

import pytest
from hypothesis import given, strategies as st

from repro.config import MemoryConfig, MemoryKind, fbdimm_baseline
from repro.controller.mapping import AddressMapper
from repro.controller.controller import MemoryController
from repro.controller.transaction import MemoryRequest, RequestKind
from repro.engine.simulator import Simulator
from repro.system import run_system


def mapper(ranks=2):
    return AddressMapper(MemoryConfig(ranks_per_dimm=ranks))


class TestMultiRankMapping:
    def test_rank_rotation_after_dimms(self):
        m = mapper(ranks=2)
        # channel rotates every line, dimm every 4, rank every 16.
        assert m.map(0).rank == 0
        assert m.map(16).rank == 1
        assert m.map(32).rank == 0

    def test_single_rank_always_zero(self):
        m = mapper(ranks=1)
        assert all(m.map(i).rank == 0 for i in range(100))

    @given(st.integers(min_value=0, max_value=2**24))
    def test_roundtrip_with_ranks(self, line):
        m = mapper(ranks=2)
        assert m.unmap(m.map(line)) == line

    @given(st.integers(min_value=0, max_value=2**22))
    def test_rank_in_range(self, line):
        m = mapper(ranks=4)
        assert 0 <= m.map(line).rank < 4

    def test_validation(self):
        with pytest.raises(ValueError):
            MemoryConfig(ranks_per_dimm=0)


class TestMultiRankTiming:
    def test_ranks_have_independent_trrd(self):
        """ACTs to different ranks of one DIMM need no tRRD gap."""
        memory = MemoryConfig(kind=MemoryKind.FBDIMM, ranks_per_dimm=2)
        sim = Simulator()
        controller = MemoryController(sim, memory)
        done = []
        # Lines 0 and 16 share channel 0 / dimm 0 but sit in ranks 0 and 1.
        for line in (0, 16):
            req = MemoryRequest(
                kind=RequestKind.DEMAND_READ, line_addr=line, core_id=0,
                arrival=0, on_complete=done.append,
            )
            controller.submit(req)
        sim.run(max_events=100_000)
        assert len(done) == 2
        amb = controller.channels[0].ambs[0]
        bank_a = amb.banks[0]  # rank 0 bank 0
        bank_b = amb.banks[4]  # rank 1 bank 0
        assert bank_a.stats.activates == 1
        assert bank_b.stats.activates == 1

    def test_more_ranks_means_more_banks(self):
        memory = MemoryConfig(kind=MemoryKind.FBDIMM, ranks_per_dimm=2)
        sim = Simulator()
        controller = MemoryController(sim, memory)
        amb = controller.channels[0].ambs[0]
        assert len(amb.banks) == 8
        assert len(amb.rank_timers) == 2


class TestMultiRankEndToEnd:
    def test_dual_rank_run_completes(self):
        config = dataclasses.replace(
            fbdimm_baseline(1), instructions_per_core=6_000
        ).with_memory(ranks_per_dimm=2)
        result = run_system(config, ["swim"])
        assert result.mem.demand_reads > 0
        assert result.core_ipcs[0] > 0

    def test_dual_rank_helps_bank_conflicts(self):
        """Twice the banks should never hurt a bank-conflict-bound mix."""
        base = dataclasses.replace(
            fbdimm_baseline(4), instructions_per_core=10_000
        )
        programs = ["swim", "mgrid", "applu", "equake"]
        single = run_system(base, programs)
        dual = run_system(base.with_memory(ranks_per_dimm=2), programs)
        assert sum(dual.core_ipcs) > 0.95 * sum(single.core_ipcs)
