"""Tests for the terminal charts and the declarative sweep helper."""

import pytest

from repro.config import AmbPrefetchConfig, fbdimm_amb_prefetch
from repro.experiments.charts import bar_chart, sparkline
from repro.experiments.runner import ExperimentContext, ResultTable
from repro.experiments.sweep import Sweep


def table_with(values, title="t"):
    t = ResultTable(title=title, columns=["name", "value"])
    for i, v in enumerate(values):
        t.add(name=f"row{i}", value=v)
    return t


class TestBarChart:
    def test_longest_bar_belongs_to_max(self):
        chart = bar_chart(table_with([1.0, 2.0, 4.0]), "value", width=20)
        lines = chart.splitlines()[1:]
        lengths = [line.count("#") for line in lines]
        assert lengths[2] == max(lengths)
        assert lengths[2] == 20
        assert lengths[0] == 5

    def test_labels_and_values_present(self):
        chart = bar_chart(table_with([1.0]), "value")
        assert "row0" in chart
        assert "1.000" in chart

    def test_baseline_marker(self):
        chart = bar_chart(table_with([0.5, 2.0]), "value", baseline=1.0, width=20)
        assert "|" in chart

    def test_unknown_column(self):
        with pytest.raises(KeyError):
            bar_chart(table_with([1.0]), "nope")

    def test_non_numeric_rejected(self):
        t = ResultTable(title="t", columns=["value"])
        t.add(value="hello")
        with pytest.raises(ValueError):
            bar_chart(t, "value")

    def test_empty_table(self):
        t = ResultTable(title="t", columns=["value"])
        assert "empty" in bar_chart(t, "value")

    def test_width_validation(self):
        with pytest.raises(ValueError):
            bar_chart(table_with([1.0]), "value", width=2)


class TestSparkline:
    def test_monotone_ramp(self):
        line = sparkline([0.0, 1.0, 2.0, 3.0])
        assert line[0] == " "
        assert line[-1] == "@"

    def test_flat(self):
        assert set(sparkline([5.0, 5.0, 5.0])) == {" "}

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            sparkline([])


class TestSweep:
    def test_cartesian_product(self):
        ctx = ExperimentContext(instructions=2_000)
        sweep = Sweep(
            axes={"k": [2, 4]},
            build=lambda k: fbdimm_amb_prefetch(
                prefetch=AmbPrefetchConfig(region_cachelines=k)
            ),
            workload="swim",
            metric_name="ipc",
        )
        table = sweep.run(ctx, metric=lambda r: sum(r.core_ipcs))
        assert len(table.rows) == 2
        assert sweep.points_run == 2
        assert table.column("k") == [2, 4]
        assert all(v > 0 for v in table.column("ipc"))

    def test_callable_workload_and_core_fixup(self):
        ctx = ExperimentContext(instructions=2_000)
        sweep = Sweep(
            axes={"cores": [1, 2]},
            build=lambda cores: fbdimm_amb_prefetch(num_cores=cores),
            workload=lambda cores: "swim" if cores == 1 else "2C-1",
        )
        table = sweep.run(ctx, metric=lambda r: sum(r.core_ipcs))
        assert table.column("workload") == ["swim", "2C-1"]

    def test_empty_axes_rejected(self):
        sweep = Sweep(axes={}, build=lambda: None)
        with pytest.raises(ValueError):
            sweep.run(ExperimentContext(instructions=1_000), metric=lambda r: 0.0)

    def test_memoisation_shared_through_context(self):
        ctx = ExperimentContext(instructions=2_000)
        sweep = Sweep(
            axes={"k": [4]},
            build=lambda k: fbdimm_amb_prefetch(
                prefetch=AmbPrefetchConfig(region_cachelines=k)
            ),
            workload="swim",
        )
        sweep.run(ctx, metric=lambda r: 0.0)
        runs_after_first = ctx.runs_executed
        sweep.run(ctx, metric=lambda r: 0.0)
        assert ctx.runs_executed == runs_after_first
