"""Determinism lint: rule coverage, suppression, and tree cleanliness."""

from repro.check.determinism import (
    SUPPRESS_MARK,
    lint_source,
    lint_tree,
    repro_source_root,
)


def rules_of(source, module_rel="engine/mod.py"):
    return [f.rule for f in lint_source(source, "mod.py", module_rel)]


class TestWallClock:
    def test_time_time_flagged(self):
        assert rules_of("import time\nx = time.time()\n") == ["wall-clock"]

    def test_aliased_import_flagged(self):
        src = "import time as clock\nx = clock.monotonic()\n"
        assert rules_of(src) == ["wall-clock"]

    def test_from_import_flagged(self):
        src = "from time import perf_counter\nx = perf_counter()\n"
        assert rules_of(src) == ["wall-clock"]

    def test_datetime_now_flagged(self):
        src = "import datetime\nx = datetime.datetime.now()\n"
        assert rules_of(src) == ["wall-clock"]

    def test_suppression_comment(self):
        src = f"import time\nx = time.time()  # {SUPPRESS_MARK}\n"
        assert rules_of(src) == []


class TestUnseededRandom:
    def test_module_level_random_flagged(self):
        src = "import random\nx = random.random()\n"
        assert rules_of(src) == ["unseeded-random"]

    def test_instance_ok(self):
        src = "import random\nrng = random.Random(7)\nx = rng.random()\n"
        assert rules_of(src) == []

    def test_workloads_package_exempt(self):
        src = "import random\nx = random.shuffle([1])\n"
        assert rules_of(src) == ["unseeded-random"]
        assert lint_source(src, "gen.py", "workloads/gen.py") == []


class TestSetIteration:
    def test_for_over_set_literal(self):
        assert rules_of("for x in {1, 2}:\n    pass\n") == ["set-iteration"]

    def test_comprehension_over_set_call(self):
        src = "xs = [x for x in set(ys)]\n"
        assert rules_of(src) == ["set-iteration"]

    def test_sorted_set_ok(self):
        assert rules_of("for x in sorted({1, 2}):\n    pass\n") == []


class TestFloatTime:
    def test_true_division_of_ps_flagged_in_hot_path(self):
        assert rules_of("y = delay_ps / 2\n") == ["float-time"]

    def test_ps_by_ps_ratio_ok(self):
        assert rules_of("u = busy_ps / elapsed_ps\n") == []

    def test_round_wrapping_ok(self):
        assert rules_of("y = round(delay_ps * 1.5)\n") == []

    def test_float_scaling_flagged(self):
        assert rules_of("y = delay_ps * 1.5\n") == ["float-time"]

    def test_timing_attribute_names_count_as_ps(self):
        assert rules_of("y = t.tRCD / 2\n") == ["float-time"]

    def test_cold_path_not_checked(self):
        src = "y = delay_ps / 2\n"
        assert lint_source(src, "m.py", "experiments/m.py") == []


class TestTree:
    def test_repro_tree_is_clean(self):
        """The shipped sources must stay lint-clean (CI enforces this)."""
        findings = lint_tree(repro_source_root())
        assert findings == [], "\n".join(f.format() for f in findings)

    def test_lint_tree_deterministic_order(self, tmp_path):
        (tmp_path / "b.py").write_text("import time\nx = time.time()\n")
        (tmp_path / "a.py").write_text("import time\ny = time.time()\n")
        paths = [f.path for f in lint_tree(tmp_path)]
        assert paths == sorted(paths)
