"""CLI tests (python -m repro ...)."""

import pytest

from repro.__main__ import build_parser, main


class TestParser:
    def test_run_defaults(self):
        args = build_parser().parse_args(["run"])
        assert args.system == "fbd-ap"
        assert args.workload == "4C-1"
        assert args.insts == 50_000

    def test_compare_accepts_knobs(self):
        args = build_parser().parse_args(
            ["compare", "--workload", "swim", "--k", "8", "--assoc", "2way"]
        )
        assert args.k == 8
        assert args.assoc == "2way"

    def test_bad_system_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--system", "rambus"])


class TestCommands:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "2C-1" in out
        assert "wupwise" in out

    def test_run_report(self, capsys):
        code = main(
            ["run", "--workload", "swim", "--insts", "5000", "--latency",
             "--utilisation"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "AMB prefetching: K=4" in out
        assert "latency distribution" in out
        assert "link utilisation" in out

    def test_run_ddr2(self, capsys):
        assert main(["run", "--workload", "vpr", "--system", "ddr2",
                     "--insts", "4000"]) == 0
        assert "AMB prefetching: off" in capsys.readouterr().out

    def test_compare(self, capsys):
        assert main(["compare", "--workload", "vpr", "--insts", "4000"]) == 0
        out = capsys.readouterr().out
        for name in ("ddr2", "fbd", "fbd-ap"):
            assert name in out

    def test_no_sw_prefetch_flag(self, capsys):
        assert main(["run", "--workload", "swim", "--insts", "4000",
                     "--no-sw-prefetch"]) == 0
