"""Prefetch-information-table tests: lookup, replacement, associativity."""

from hypothesis import given, strategies as st

from repro.config import AmbPrefetchConfig, Associativity, ReplacementPolicy
from repro.controller.prefetch_table import PrefetchTable


def table(entries=8, assoc=Associativity.FULL, repl=ReplacementPolicy.FIFO):
    return PrefetchTable(
        AmbPrefetchConfig(
            cache_entries=entries, associativity=assoc, replacement=repl
        )
    )


class TestBasics:
    def test_miss_then_hit(self):
        t = table()
        assert not t.lookup(10)
        t.insert([10])
        assert t.lookup(10)
        assert t.stats.lookups == 2
        assert t.stats.hits == 1

    def test_contains_is_stat_free(self):
        t = table()
        t.insert([10])
        assert t.contains(10)
        assert not t.contains(11)
        assert t.stats.lookups == 0

    def test_occupancy(self):
        t = table()
        t.insert([1, 2, 3])
        assert t.occupancy() == 3

    def test_insert_existing_is_not_duplicated(self):
        t = table()
        t.insert([1])
        t.insert([1])
        assert t.occupancy() == 1
        assert t.stats.inserts == 1

    def test_resident_lines_snapshot(self):
        t = table()
        t.insert([5, 9])
        assert set(t.resident_lines()) == {5, 9}


class TestFifoReplacement:
    def test_evicts_oldest_insert(self):
        t = table(entries=4)
        t.insert([1, 2, 3, 4])
        t.insert([5])
        assert not t.contains(1)
        assert t.contains(5)
        assert t.stats.evictions == 1

    def test_hit_does_not_refresh_fifo_order(self):
        t = table(entries=4)
        t.insert([1, 2, 3, 4])
        assert t.lookup(1)  # FIFO: hitting must not protect line 1
        t.insert([5])
        assert not t.contains(1)

    def test_occupancy_never_exceeds_entries(self):
        t = table(entries=4)
        for i in range(20):
            t.insert([i])
        assert t.occupancy() == 4


class TestLruReplacement:
    def test_hit_protects_line(self):
        t = table(entries=4, repl=ReplacementPolicy.LRU)
        t.insert([1, 2, 3, 4])
        assert t.lookup(1)  # LRU: 1 becomes most-recent
        t.insert([5])
        assert t.contains(1)
        assert not t.contains(2)


class TestAssociativity:
    def test_direct_mapped_conflicts(self):
        t = table(entries=4, assoc=Associativity.DIRECT)
        # Lines 0 and 4 share set 0 in a 4-set direct-mapped table.
        t.insert([0])
        t.insert([4])
        assert not t.contains(0)
        assert t.contains(4)

    def test_two_way_tolerates_one_conflict(self):
        t = table(entries=4, assoc=Associativity.TWO_WAY)
        # 2 sets of 2 ways; lines 0, 2, 4 all map to set 0.
        t.insert([0])
        t.insert([2])
        assert t.contains(0) and t.contains(2)
        t.insert([4])
        assert not t.contains(0)
        assert t.contains(2) and t.contains(4)

    def test_full_assoc_single_set(self):
        t = table(entries=8, assoc=Associativity.FULL)
        assert t.num_sets == 1
        assert t.ways == 8


class TestInvalidate:
    def test_invalidate_present(self):
        t = table()
        t.insert([7])
        assert t.invalidate(7)
        assert not t.contains(7)
        assert t.stats.invalidations == 1

    def test_invalidate_absent(self):
        t = table()
        assert not t.invalidate(7)
        assert t.stats.invalidations == 0


class TestProperties:
    @given(st.lists(st.integers(min_value=0, max_value=1000), max_size=200))
    def test_occupancy_bounded_full_assoc(self, lines):
        t = table(entries=16)
        t.insert(lines)
        assert t.occupancy() <= 16

    @given(
        st.lists(st.integers(min_value=0, max_value=1000), max_size=200),
        st.sampled_from(list(Associativity)),
    )
    def test_per_set_bound(self, lines, assoc):
        t = table(entries=16, assoc=assoc)
        t.insert(lines)
        for cache_set in t._sets:
            assert len(cache_set) <= t.ways

    @given(st.lists(st.integers(min_value=0, max_value=100), min_size=1, max_size=50))
    def test_most_recent_insert_always_resident(self, lines):
        t = table(entries=4)
        for line in lines:
            t.insert([line])
            assert t.contains(line)
