"""Engine-level tests for :mod:`repro.check.lint`: the rule registry,
suppression comments, the baseline workflow, the JSON report schema, CLI
exit codes, and the on-disk deliberately-broken fixtures.

The per-rule positive/negative coverage lives in the golden self-test
suite (``repro.check.lint.selftest``, run by ``test_self_test_is_green``
and in CI via ``python -m repro.check --self-test``); this file tests the
framework around the rules.
"""

import json
from collections import Counter
from pathlib import Path

import pytest

from repro.check.lint.baseline import (
    BASELINE_VERSION,
    diff_against_baseline,
    load_baseline,
    report_payload,
    save_baseline,
)
from repro.check.lint.cli import main as lint_main
from repro.check.lint.core import (
    Finding,
    LintEngine,
    ProjectRule,
    SEVERITIES,
    all_rules,
    get_rule,
    module_rel_for,
)
from repro.check.lint.selftest import run_self_test

EXPECTED_RULE_IDS = {
    # determinism (ported from PR-1 unchanged)
    "wall-clock", "unseeded-random", "set-iteration", "float-time",
    # unit-flow
    "unit-mix", "unit-return",
    # shared state
    "worker-shared-state",
    # counter drift
    "stat-no-increment", "stat-unreported", "stat-unregistered",
    # strict typing
    "untyped-def",
}

FIXTURES = Path(__file__).parent / "lint_fixtures" / "broken_project"


def lint_texts(*files):
    """Run ALL rules over in-memory (module_rel, source) pairs."""
    return LintEngine().lint_sources(list(files))


class TestRegistry:
    def test_catalogue_contains_every_family(self):
        assert {rule.id for rule in all_rules()} == EXPECTED_RULE_IDS

    def test_rules_sorted_and_described(self):
        rules = all_rules()
        assert [r.id for r in rules] == sorted(r.id for r in rules)
        for rule in rules:
            assert rule.description, rule.id
            assert rule.severity in SEVERITIES

    def test_get_rule_roundtrip(self):
        assert get_rule("unit-mix").id == "unit-mix"

    def test_get_rule_unknown(self):
        with pytest.raises(KeyError, match="no-such-rule"):
            get_rule("no-such-rule")

    def test_project_rules_are_marked(self):
        project = {r.id for r in all_rules() if isinstance(r, ProjectRule)}
        assert {"worker-shared-state", "stat-no-increment",
                "stat-unreported", "stat-unregistered"} <= project


class TestSuppression:
    WALL = ("engine/mod.py", "import time\nx = time.time()\n")

    def test_unsuppressed_finding(self):
        findings = lint_texts(self.WALL)
        assert [f.rule for f in findings] == ["wall-clock"]
        assert findings[0].format().endswith(
            f"[wall-clock] {findings[0].message}")

    def test_bare_ignore_silences_everything(self):
        findings = lint_texts((
            "engine/mod.py",
            "import time\nx = time.time()  # repro: ignore\n",
        ))
        assert findings == []

    def test_targeted_ignore_silences_only_that_rule(self):
        findings = lint_texts((
            "engine/mod.py",
            "import time\nx = time.time()  # repro: ignore[unit-mix]\n",
        ))
        assert [f.rule for f in findings] == ["wall-clock"]

    def test_comma_separated_ids(self):
        findings = lint_texts((
            "engine/mod.py",
            "import time\n"
            "x = time.time()  # repro: ignore[unit-mix, wall-clock]\n",
        ))
        assert findings == []

    def test_legacy_det_allow_still_works_for_determinism_rules(self):
        findings = lint_texts((
            "engine/mod.py",
            "import time\nx = time.time()  # det: allow\n",
        ))
        assert findings == []

    def test_legacy_det_allow_does_not_cover_new_rules(self):
        findings = lint_texts((
            "engine/mod.py",
            "total_ps = delay_ps + gap_ns  # det: allow\n",
        ))
        assert [f.rule for f in findings] == ["unit-mix"]


class TestBaseline:
    def findings(self):
        return [
            Finding("src/a.py", 3, "wall-clock", "time.time()"),
            Finding("src/a.py", 9, "unit-mix", "ps + ns"),
        ]

    def test_save_load_roundtrip(self, tmp_path):
        path = tmp_path / "baseline.json"
        save_baseline(path, self.findings())
        loaded = load_baseline(path)
        assert loaded == Counter({
            ("src/a.py", "wall-clock", "time.time()"): 1,
            ("src/a.py", "unit-mix", "ps + ns"): 1,
        })

    def test_malformed_json_raises(self, tmp_path):
        path = tmp_path / "baseline.json"
        path.write_text("{nope")
        with pytest.raises(ValueError, match="not valid JSON"):
            load_baseline(path)

    def test_wrong_version_raises(self, tmp_path):
        path = tmp_path / "baseline.json"
        path.write_text(json.dumps({"version": 99, "findings": []}))
        with pytest.raises(ValueError, match="unsupported version"):
            load_baseline(path)

    def test_entry_missing_key_raises(self, tmp_path):
        path = tmp_path / "baseline.json"
        path.write_text(json.dumps(
            {"version": BASELINE_VERSION, "findings": [{"path": "a"}]}
        ))
        with pytest.raises(ValueError, match="missing"):
            load_baseline(path)

    def test_diff_matches_ignoring_line_numbers(self):
        moved = [Finding("src/a.py", 77, "wall-clock", "time.time()")]
        baseline = Counter({("src/a.py", "wall-clock", "time.time()"): 1})
        new, stale = diff_against_baseline(moved, baseline)
        assert new == [] and stale == []

    def test_diff_is_multiset_aware(self):
        twice = [
            Finding("src/a.py", 3, "wall-clock", "time.time()"),
            Finding("src/a.py", 8, "wall-clock", "time.time()"),
        ]
        baseline = Counter({("src/a.py", "wall-clock", "time.time()"): 1})
        new, stale = diff_against_baseline(twice, baseline)
        assert [f.line for f in new] == [8]  # second occurrence still gates
        assert stale == []

    def test_diff_reports_stale_entries(self):
        baseline = Counter({("src/gone.py", "wall-clock", "time.time()"): 1})
        new, stale = diff_against_baseline([], baseline)
        assert new == []
        assert stale == [("src/gone.py", "wall-clock", "time.time()")]

    def test_report_payload_schema(self):
        findings = self.findings()
        payload = report_payload(
            findings, findings[:1],
            [("src/old.py", "unit-mix", "gone")],
            [("wall-clock", "error", "no wall clocks")],
        )
        assert set(payload) == {
            "version", "rules", "findings", "new_findings",
            "stale_baseline", "summary",
        }
        assert payload["version"] == BASELINE_VERSION
        assert payload["rules"]["wall-clock"] == {
            "severity": "error", "description": "no wall clocks",
        }
        assert all(
            set(record) == {"path", "line", "rule", "severity", "message"}
            for record in payload["findings"]
        )
        assert payload["summary"] == {
            "total": 2, "new": 1, "stale_baseline": 1,
            "by_severity": {"error": 2},
        }


class TestCliExitCodes:
    """End-to-end through ``python -m repro.check lint`` argument parsing."""

    def write(self, tmp_path, rel, source):
        # A `repro/` anchor directory makes module_rel_for scope the file
        # exactly like an installed package module.
        path = tmp_path / "repro" / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(source)
        return path

    def test_clean_tree_exits_zero(self, tmp_path, capsys):
        self.write(tmp_path, "engine/ok.py", "WINDOW_PS = 5\n")
        assert lint_main([str(tmp_path)]) == 0
        assert "0 new error(s)" in capsys.readouterr().out

    def test_error_finding_exits_one(self, tmp_path, capsys):
        self.write(tmp_path, "engine/clock.py",
                   "import time\nnow = time.time()\n")
        assert lint_main([str(tmp_path)]) == 1
        assert "[wall-clock]" in capsys.readouterr().out

    def test_warning_findings_do_not_gate(self, tmp_path, capsys):
        self.write(
            tmp_path, "engine/ret.py",
            "def frame_gap_ps(delay_ns: int) -> int:\n    return delay_ns\n",
        )
        assert lint_main([str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "[unit-return]" in out
        assert "1 new warning(s)" in out

    def test_unknown_rule_exits_two(self, tmp_path, capsys):
        assert lint_main([str(tmp_path), "--rules", "bogus"]) == 2
        assert "unknown rule" in capsys.readouterr().err

    def test_malformed_baseline_exits_two(self, tmp_path, capsys):
        self.write(tmp_path, "engine/ok.py", "WINDOW_PS = 5\n")
        bad = tmp_path / "baseline.json"
        bad.write_text("{nope")
        assert lint_main([str(tmp_path), "--baseline", str(bad)]) == 2
        assert "not valid JSON" in capsys.readouterr().err

    def test_baseline_workflow(self, tmp_path, capsys):
        path = self.write(tmp_path, "engine/clock.py",
                          "import time\nnow = time.time()\n")
        baseline = tmp_path / "baseline.json"
        # 1. Accept the current findings.
        assert lint_main(
            [str(tmp_path), "--write-baseline", str(baseline)]
        ) == 0
        # 2. Baselined findings no longer gate (and are marked as such).
        assert lint_main([str(tmp_path), "--baseline", str(baseline)]) == 0
        assert "(baselined)" in capsys.readouterr().out
        # 3. A fresh finding still gates.
        self.write(tmp_path, "engine/clock2.py",
                   "import time\nlater = time.time()\n")
        assert lint_main([str(tmp_path), "--baseline", str(baseline)]) == 1
        # 4. Fixing the baselined file leaves a stale entry, which gates
        #    too — the baseline must never rot.
        path.write_text("WINDOW_PS = 5\n")
        (tmp_path / "repro" / "engine" / "clock2.py").unlink()
        assert lint_main([str(tmp_path), "--baseline", str(baseline)]) == 1
        assert "stale baseline entry" in capsys.readouterr().out

    def test_rule_selection(self, tmp_path, capsys):
        self.write(tmp_path, "engine/two.py",
                   "import time\nnow = time.time()\n\n\ndef f(x):\n"
                   "    return x\n")
        assert lint_main(
            [str(tmp_path), "--rules", "untyped-def", "--json"]
        ) == 1
        payload = json.loads(capsys.readouterr().out)
        assert [f["rule"] for f in payload["findings"]] == ["untyped-def"]
        assert list(payload["rules"]) == ["untyped-def"]

    def test_json_out_schema(self, tmp_path, capsys):
        self.write(tmp_path, "engine/clock.py",
                   "import time\nnow = time.time()\n")
        out = tmp_path / "report.json"
        assert lint_main([str(tmp_path), "--json-out", str(out)]) == 1
        payload = json.loads(out.read_text())
        assert set(payload) == {
            "version", "rules", "findings", "new_findings",
            "stale_baseline", "summary",
        }
        assert payload["summary"]["total"] == 1
        assert payload["new_findings"] == payload["findings"]

    def test_list_rules(self, capsys):
        assert lint_main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule_id in EXPECTED_RULE_IDS:
            assert rule_id in out

    def test_syntax_error_is_a_finding_not_a_crash(self, tmp_path, capsys):
        self.write(tmp_path, "engine/broken.py", "def f(:\n")
        assert lint_main([str(tmp_path)]) == 1
        assert "[syntax-error]" in capsys.readouterr().out


class TestOnDiskFixtures:
    """The deliberately-broken tree under tests/lint_fixtures."""

    #: module-relative path -> rule ids the engine must report there.
    EXPECTED = {
        "engine/units.py": {"unit-mix"},
        "engine/clock.py": {"wall-clock"},
        "engine/broken.py": {"syntax-error"},
        "channel/ret.py": {"unit-return"},
        "dram/rng.py": {"unseeded-random"},
        "dram/div.py": {"float-time"},
        "analysis/iter.py": {"set-iteration"},
        "power/untyped.py": {"untyped-def"},
        "state.py": {"worker-shared-state"},
        "stats/collector.py": {"stat-no-increment"},
        "experiments/parallel.py": set(),
        "controller/account.py": set(),
        "analysis/report.py": set(),
        "telemetry/registry.py": set(),
    }

    def test_fixture_tree_matches_expectations(self):
        files = sorted(FIXTURES.rglob("*.py"))
        assert {
            str(p.relative_to(FIXTURES).as_posix()) for p in files
        } == set(self.EXPECTED), "fixture tree and EXPECTED diverged"
        pairs = [
            (str(p.relative_to(FIXTURES).as_posix()), p.read_text())
            for p in files
        ]
        findings = LintEngine().lint_sources(pairs)
        by_file = {rel: set() for rel in self.EXPECTED}
        for finding in findings:
            by_file[finding.path].add(finding.rule)
        assert by_file == self.EXPECTED

    def test_repo_gate_skips_the_fixture_tree(self):
        findings = LintEngine().lint_paths([Path(__file__).parent])
        assert not any("lint_fixtures" in f.path for f in findings)


def test_self_test_is_green():
    count, failures = run_self_test()
    assert failures == []
    assert count >= 36
