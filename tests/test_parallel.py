"""Differential and coverage tests for parallel experiment execution.

Two hard guarantees are pinned here byte-for-byte on canonical JSON:

* serial and ``jobs=4`` executions of the same runs are identical, and
* a result recalled from the persistent cache is identical to a fresh one.

The plan-coverage section checks, for every figure module, that the runs
``run(ctx)`` actually requests are a subset of what ``plan(ctx)`` declared
— i.e. prefetching the plan leaves nothing to simulate serially.
"""

import dataclasses

import pytest

from repro.config import (
    SystemConfig,
    ddr2_baseline,
    fbdimm_amb_prefetch,
    fbdimm_baseline,
)
from repro.cpu.core import CoreStats
from repro.experiments import (
    ablations,
    fig04_smt_speedup,
    fig05_bw_latency,
    fig06_bandwidth_impact,
    fig07_amb_speedup,
    fig08_coverage,
    fig09_decomposition,
    fig10_bw_latency_ap,
    fig11_sensitivity,
    fig12_sw_prefetch,
    fig13_power,
    hw_prefetch,
    prefetch_location,
)
from repro.experiments.parallel import execute_runs, simulate_one
from repro.experiments.runner import ExperimentContext, RunProgress
from repro.stats.collector import MemSystemStats
from repro.system import SimulationResult

INSTS = 2000


def _fig07_subset():
    """A small slice of Figure 7: FBD and FBD-AP on two one-core programs."""
    pairs = []
    for program in ("swim", "vpr"):
        pairs.append((fbdimm_baseline(num_cores=1), (program,)))
        pairs.append((fbdimm_amb_prefetch(num_cores=1), (program,)))
    return pairs


class TestDifferential:
    def test_parallel_results_are_byte_identical_to_serial(self):
        pairs = _fig07_subset()
        serial = ExperimentContext(instructions=INSTS)
        expected = [serial.run(c, p).canonical_json() for c, p in pairs]

        parallel = ExperimentContext(instructions=INSTS, jobs=4)
        counts = parallel.prefetch(pairs)
        assert counts == {"memo": 0, "disk": 0, "fresh": len(pairs)}
        actual = [parallel.run(c, p).canonical_json() for c, p in pairs]
        assert actual == expected
        # the prefetch really did all the work; run() added nothing
        assert parallel.fresh_runs == len(pairs)

    def test_cached_results_are_byte_identical_to_fresh(self, tmp_path):
        pairs = _fig07_subset()
        writer = ExperimentContext(instructions=INSTS, cache=tmp_path, jobs=2)
        writer.prefetch(pairs)
        fresh = [writer.run(c, p).canonical_json() for c, p in pairs]

        reader = ExperimentContext(instructions=INSTS, cache=tmp_path)
        recalled = [reader.run(c, p).canonical_json() for c, p in pairs]
        assert recalled == fresh
        assert reader.fresh_runs == 0
        assert reader.disk_hits == len(pairs)

    def test_execute_runs_preserves_submission_order(self):
        pairs = _fig07_subset()
        inline = [simulate_one(pair)[0] for pair in pairs]
        pooled = execute_runs(pairs, jobs=2)
        assert [r.canonical_json() for r in pooled] == [
            r.canonical_json() for r in inline
        ]

    def test_on_result_callback_sees_every_run(self):
        pairs = _fig07_subset()
        seen = []
        execute_runs(pairs, jobs=2, on_result=lambda i, r, w: seen.append(i))
        assert sorted(seen) == list(range(len(pairs)))


def _dispatcher_edge_pairs():
    """Configs that ride every edge the PR-8 dispatcher rewrite touched.

    DDR2 exercises the bus-prune guards and same-tick kick fast path on
    the simple channel; faulted FBD-AP cancels and re-arms wake events
    while links degrade and recover (the cancellation-heavy path through
    the fused run loop and heap compaction); the protocol-checked run
    hangs extra observers off the identical schedule.
    """
    faulted = fbdimm_amb_prefetch(num_cores=2).with_faults(
        error_rate=5e-2, max_retries=3
    )
    checked = dataclasses.replace(
        fbdimm_baseline(num_cores=2), check_protocol=True
    )
    return [
        (ddr2_baseline(num_cores=2), ("swim", "vpr")),
        (faulted, ("wupwise", "swim")),
        (checked, ("vpr", "wupwise")),
    ]


class TestBatchedDispatcherDifferential:
    """The rewritten engine (handle-free scheduling, fused GC-suppressed
    run loop, kick fast path) must be invisible to every execution mode:
    worker processes, the in-process serial path and the disk cache all
    replay byte-identical results on dispatcher-stressing configs."""

    def test_worker_processes_replay_the_same_schedule(self):
        pairs = _dispatcher_edge_pairs()
        serial = ExperimentContext(instructions=INSTS)
        expected = [serial.run(c, p).canonical_json() for c, p in pairs]

        parallel = ExperimentContext(instructions=INSTS, jobs=4)
        counts = parallel.prefetch(pairs)
        assert counts == {"memo": 0, "disk": 0, "fresh": len(pairs)}
        actual = [parallel.run(c, p).canonical_json() for c, p in pairs]
        assert actual == expected

    def test_cached_edge_runs_are_byte_identical_to_fresh(self, tmp_path):
        pairs = _dispatcher_edge_pairs()
        writer = ExperimentContext(instructions=INSTS, cache=tmp_path, jobs=4)
        writer.prefetch(pairs)
        fresh = [writer.run(c, p).canonical_json() for c, p in pairs]

        reader = ExperimentContext(instructions=INSTS, cache=tmp_path)
        recalled = [reader.run(c, p).canonical_json() for c, p in pairs]
        assert recalled == fresh
        assert reader.fresh_runs == 0
        assert reader.disk_hits == len(pairs)

    def test_events_fired_counts_survive_worker_round_trip(self):
        """events_fired is part of the digest: the exact event schedule —
        not just the measured statistics — must cross process boundaries."""
        pairs = _dispatcher_edge_pairs()
        inline = [simulate_one(pair)[0] for pair in pairs]
        pooled = execute_runs(pairs, jobs=4)
        assert [r.events_fired for r in pooled] == [
            r.events_fired for r in inline
        ]
        assert all(r.events_fired > 0 for r in pooled)


class TestMemoKey:
    def test_memo_key_is_field_values_not_identity(self):
        """Regression: replace()-derived equal configs must share one run."""
        ctx = ExperimentContext(instructions=INSTS)
        base = fbdimm_baseline(num_cores=1)
        derived = dataclasses.replace(base, software_prefetch=True)
        assert derived is not base and derived == base
        a = ctx.run(base, ["swim"])
        b = ctx.run(derived, ("swim",))
        assert a is b
        assert ctx.runs_executed == 1

    def test_normalisation_makes_budget_fields_irrelevant(self):
        ctx = ExperimentContext(instructions=INSTS)
        a = ctx.run(fbdimm_baseline(num_cores=1), ("swim",))
        shifted = dataclasses.replace(
            fbdimm_baseline(num_cores=1), instructions_per_core=999_999, seed=7
        )
        assert ctx.run(shifted, ("swim",)) is a
        assert ctx.runs_executed == 1

    def test_prefetch_deduplicates_and_reports_sources(self, tmp_path):
        pairs = _fig07_subset()
        ctx = ExperimentContext(instructions=INSTS, cache=tmp_path)
        counts = ctx.prefetch(pairs + pairs)  # duplicates collapse
        assert counts["fresh"] == len(pairs)
        counts = ctx.prefetch(pairs)
        assert counts == {"memo": len(pairs), "disk": 0, "fresh": 0}

    def test_progress_fires_for_worker_runs(self):
        beats = []
        ctx = ExperimentContext(
            instructions=INSTS, jobs=2, progress=beats.append
        )
        ctx.prefetch(_fig07_subset())
        assert len(beats) == len(_fig07_subset())
        assert all(isinstance(b, RunProgress) for b in beats)
        assert [b.runs for b in beats] == [1, 2, 3, 4]
        assert all(b.wall_s >= 0 and b.events > 0 for b in beats)


# ---------------------------------------------------------------------------
# plan() coverage: every run a figure performs must appear in its plan.


def _fake_result(config: SystemConfig, programs) -> SimulationResult:
    cores = config.cpu.num_cores
    mem = MemSystemStats(
        demand_reads=1000,
        sw_prefetch_reads=100,
        writes=200,
        amb_hits=300,
        prefetched_lines=800,
        read_latency_sum_ps=50_000_000,
        demand_latency_sum_ps=40_000_000,
        queue_delay_sum_ps=1_000_000,
        bytes_read=64_000,
        bytes_written=12_800,
        activates=400,
        column_accesses=1600,
        row_hits=100,
        row_misses=300,
        first_activity_ps=0,
        last_activity_ps=1_000_000_000,
    )
    return SimulationResult(
        config=config,
        programs=list(programs),
        elapsed_ps=1_000_000_000,
        core_instructions=[INSTS] * cores,
        core_ipcs=[1.0] * cores,
        core_stats=[CoreStats() for _ in range(cores)],
        mem=mem,
        events_fired=1,
    )


class _PlanRecorder(ExperimentContext):
    """Context whose simulations are free, recording what was requested."""

    def __init__(self, **kwargs):
        super().__init__(**kwargs)
        self.requested = set()

    def _run_fresh(self, config, programs):
        self.requested.add((config, programs))
        return _fake_result(config, programs)


# latency_breakdown and validation drive System/controller objects directly
# (their plans are empty by design), so they are not meaningful here.
FIGURES = [
    ("fig04", fig04_smt_speedup.plan, [fig04_smt_speedup.run]),
    ("fig05", fig05_bw_latency.plan, [fig05_bw_latency.run]),
    ("fig06", fig06_bandwidth_impact.plan, [fig06_bandwidth_impact.run]),
    ("fig07", fig07_amb_speedup.plan, [fig07_amb_speedup.run]),
    ("fig08", fig08_coverage.plan, [fig08_coverage.run]),
    ("fig09", fig09_decomposition.plan, [fig09_decomposition.run]),
    ("fig10", fig10_bw_latency_ap.plan, [fig10_bw_latency_ap.run]),
    ("fig11", fig11_sensitivity.plan, [fig11_sensitivity.run]),
    ("fig12", fig12_sw_prefetch.plan, [fig12_sw_prefetch.run]),
    ("fig13", fig13_power.plan, [fig13_power.run]),
    (
        "ablations",
        ablations.plan,
        [ablations.run_vrl, ablations.run_page_interleave, ablations.run_replacement],
    ),
    ("location", prefetch_location.plan, [prefetch_location.run]),
    ("hwprefetch", hw_prefetch.plan, [hw_prefetch.run]),
]


@pytest.mark.parametrize("quick", [False, True], ids=["full", "quick"])
@pytest.mark.parametrize(
    "plan_fn,runners", [(p, r) for _, p, r in FIGURES], ids=[n for n, _, _ in FIGURES]
)
def test_plan_covers_every_run(plan_fn, runners, quick):
    ctx = _PlanRecorder(instructions=INSTS, quick=quick)
    planned = {
        (ctx._normalize(config), tuple(programs))
        for config, programs in plan_fn(ctx)
    }
    for runner in runners:
        runner(ctx)
    uncovered = ctx.requested - planned
    assert not uncovered, (
        f"{len(uncovered)} runs not in the plan; prefetch would miss them"
    )
