"""Scheduler policy tests: hit-first, read priority, write-drain hysteresis."""

from collections import deque

from repro.controller.scheduler import SCAN_WINDOW, HitFirstScheduler
from repro.controller.transaction import MemoryRequest, RequestKind


def req(kind=RequestKind.DEMAND_READ, line=0):
    r = MemoryRequest(kind=kind, line_addr=line, core_id=0, arrival=0)
    r.schedulable_at = 0
    return r


def reads(n):
    return deque(req(RequestKind.DEMAND_READ, i) for i in range(n))


def writes(n):
    return deque(req(RequestKind.WRITE, 100 + i) for i in range(n))


def never_hit(_):
    return False


def ready_now(_):
    return 0


class TestReadPriority:
    def test_reads_win_below_threshold(self):
        s = HitFirstScheduler(write_drain_threshold=4)
        r, w = reads(2), writes(3)
        chosen, _, is_write = s.select(0, r, w, ready_now, never_hit)
        assert not is_write
        assert chosen is r[0]

    def test_writes_win_when_no_reads(self):
        s = HitFirstScheduler(write_drain_threshold=4)
        w = writes(1)
        chosen, _, is_write = s.select(0, deque(), w, ready_now, never_hit)
        assert is_write

    def test_empty_queues_return_none(self):
        s = HitFirstScheduler(write_drain_threshold=4)
        assert s.select(0, deque(), deque(), ready_now, never_hit) is None


class TestWriteDrainHysteresis:
    def test_drain_starts_at_threshold(self):
        s = HitFirstScheduler(write_drain_threshold=4)
        _, _, is_write = s.select(0, reads(2), writes(4), ready_now, never_hit)
        assert is_write

    def test_drain_continues_until_half(self):
        s = HitFirstScheduler(write_drain_threshold=4)
        s.select(0, reads(2), writes(4), ready_now, never_hit)
        # 3 writes left: still above threshold/2 -> keep draining.
        _, _, is_write = s.select(0, reads(2), writes(3), ready_now, never_hit)
        assert is_write

    def test_drain_stops_at_half(self):
        s = HitFirstScheduler(write_drain_threshold=4)
        s.select(0, reads(2), writes(4), ready_now, never_hit)
        _, _, is_write = s.select(0, reads(2), writes(2), ready_now, never_hit)
        assert not is_write

    def test_drain_flag_clears_when_writes_empty(self):
        s = HitFirstScheduler(write_drain_threshold=2)
        s.select(0, reads(1), writes(2), ready_now, never_hit)
        _, _, is_write = s.select(0, reads(1), deque(), ready_now, never_hit)
        assert not is_write


class TestHitFirst:
    def test_hit_beats_older_miss(self):
        s = HitFirstScheduler(write_drain_threshold=8)
        r = reads(3)
        hits = {r[2].req_id}
        chosen, _, _ = s.select(
            0, r, deque(), ready_now, lambda x: x.req_id in hits
        )
        assert chosen is r[2]

    def test_fifo_among_equal(self):
        s = HitFirstScheduler(write_drain_threshold=8)
        r = reads(3)
        chosen, _, _ = s.select(0, r, deque(), ready_now, never_hit)
        assert chosen is r[0]


class TestReadiness:
    def test_ready_now_beats_future_hit(self):
        s = HitFirstScheduler(write_drain_threshold=8)
        r = reads(2)
        future_hits = {r[0].req_id}

        def estimate(x):
            return 500 if x.req_id in future_hits else 0

        chosen, est, _ = s.select(
            0, r, deque(), estimate, lambda x: x.req_id in future_hits
        )
        assert chosen is r[1]
        assert est == 0

    def test_future_only_returns_earliest(self):
        s = HitFirstScheduler(write_drain_threshold=8)
        r = reads(3)
        times = {r[0].req_id: 300, r[1].req_id: 100, r[2].req_id: 200}
        chosen, est, _ = s.select(
            0, r, deque(), lambda x: times[x.req_id], never_hit
        )
        assert chosen is r[1]
        assert est == 100

    def test_ready_write_beats_stalled_reads(self):
        s = HitFirstScheduler(write_drain_threshold=8)
        r, w = reads(2), writes(1)

        def estimate(x):
            return 999 if x.kind is RequestKind.DEMAND_READ else 0

        chosen, est, is_write = s.select(0, r, w, estimate, never_hit)
        assert is_write
        assert est == 0


class TestScanWindow:
    def test_only_first_window_considered(self):
        s = HitFirstScheduler(write_drain_threshold=8)
        r = reads(SCAN_WINDOW + 5)
        beyond = r[SCAN_WINDOW + 2]
        # Even if a request beyond the window would be a hit, it is unseen.
        chosen, _, _ = s.select(
            0, r, deque(), ready_now, lambda x: x is beyond
        )
        assert chosen is r[0]
