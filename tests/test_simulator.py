"""Unit tests for the simulation loop."""

import pytest

from repro.engine.simulator import PS_PER_NS, Simulator, ns


class TestNs:
    def test_converts_nanoseconds(self):
        assert ns(15.0) == 15_000
        assert PS_PER_NS == 1000

    def test_rounds_fractional(self):
        assert ns(1.5004) == 1500
        assert ns(0.0004) == 0


class TestScheduling:
    def test_events_fire_in_order_and_clock_advances(self):
        sim = Simulator()
        seen = []
        sim.schedule(20, lambda: seen.append(("b", sim.now)))
        sim.schedule(10, lambda: seen.append(("a", sim.now)))
        sim.run()
        assert seen == [("a", 10), ("b", 20)]
        assert sim.now == 20

    def test_schedule_during_run(self):
        sim = Simulator()
        seen = []

        def first():
            sim.schedule(5, lambda: seen.append(sim.now))

        sim.schedule(10, first)
        sim.run()
        assert seen == [15]

    def test_schedule_at_clamps_to_now(self):
        sim = Simulator()
        seen = []
        sim.schedule(10, lambda: sim.schedule_at(3, lambda: seen.append(sim.now)))
        sim.run()
        assert seen == [10]  # cannot fire in the past

    def test_negative_delay_rejected(self):
        with pytest.raises(ValueError):
            Simulator().schedule(-1, lambda: None)


class TestRunControl:
    def test_stop_halts_loop(self):
        sim = Simulator()
        seen = []
        sim.schedule(1, lambda: (seen.append(1), sim.stop()))
        sim.schedule(2, lambda: seen.append(2))
        sim.run()
        assert seen == [1]

    def test_run_until_leaves_future_events(self):
        sim = Simulator()
        seen = []
        sim.schedule(5, lambda: seen.append(5))
        sim.schedule(50, lambda: seen.append(50))
        sim.run(until=10)
        assert seen == [5]
        assert sim.now == 10
        sim.run()
        assert seen == [5, 50]

    def test_max_events_guard(self):
        sim = Simulator()

        def rearm():
            sim.schedule(1, rearm)

        sim.schedule(1, rearm)
        with pytest.raises(RuntimeError):
            sim.run(max_events=100)

    def test_events_fired_counter(self):
        sim = Simulator()
        for i in range(5):
            sim.schedule(i + 1, lambda: None)
        sim.run()
        assert sim.events_fired == 5
