"""AMB tests: group fetch, pending fills, cache lookups, invalidation."""


from repro.config import (
    AmbPrefetchConfig,
    InterleaveScheme,
    MemoryConfig,
)
from repro.channel.amb import Amb
from repro.controller.mapping import AddressMapper
from repro.dram.timing import TimingPs


def make_amb(k=4, entries=64):
    config = MemoryConfig(
        interleave=InterleaveScheme.MULTI_CACHELINE,
        prefetch=AmbPrefetchConfig(region_cachelines=k, cache_entries=entries),
    )
    timing = TimingPs.from_config(
        config.timings, config.dram_clock_ps, config.burst_clocks
    )
    amb = Amb(config, timing, channel_id=0, dimm_id=0)
    mapper = AddressMapper(config)
    return amb, mapper, timing


def line_on_dimm0(mapper, region_index=0):
    """A demanded line whose region maps to channel 0 / DIMM 0."""
    # Regions rotate channel first, then dimm: region r=0 -> ch0, dimm0.
    region = region_index * mapper.channels * mapper.dimms
    return region * mapper.region_lines


class TestGroupFetch:
    def test_demanded_line_comes_first(self):
        amb, mapper, timing = make_amb()
        base = line_on_dimm0(mapper)
        demanded = base + 2
        mapped = mapper.map(demanded)
        group = amb.group_fetch(0, mapped, demanded)
        # The demanded line's burst starts at tRCD + tCL; fills trail it.
        assert group.demanded_start == timing.tRCD + timing.tCL
        assert all(t > group.demanded_start for t in group.fills.values())

    def test_fills_cover_rest_of_region(self):
        amb, mapper, _ = make_amb()
        base = line_on_dimm0(mapper)
        demanded = base + 2
        group = amb.group_fetch(0, mapper.map(demanded), demanded)
        assert set(group.fills) == {base, base + 1, base + 3}
        assert amb.prefetched_lines == 3

    def test_one_activate_k_column_accesses(self):
        amb, mapper, _ = make_amb()
        base = line_on_dimm0(mapper)
        amb.group_fetch(0, mapper.map(base), base)
        acts, cols = amb.bank_operation_counts()
        assert acts == 1
        assert cols == 4

    def test_last_fill_is_max(self):
        amb, mapper, _ = make_amb()
        base = line_on_dimm0(mapper)
        group = amb.group_fetch(0, mapper.map(base), base)
        assert group.last_fill == max(group.fills.values())


class TestCacheLookup:
    def test_miss_before_fetch(self):
        amb, mapper, _ = make_amb()
        assert amb.cache_lookup(0) is None

    def test_pending_fill_counts_as_hit_with_fill_time(self):
        amb, mapper, _ = make_amb()
        base = line_on_dimm0(mapper)
        group = amb.group_fetch(0, mapper.map(base), base)
        avail = amb.cache_lookup(base + 1)
        assert avail == group.fills[base + 1]

    def test_committed_fill_hits_immediately(self):
        amb, mapper, _ = make_amb()
        base = line_on_dimm0(mapper)
        amb.group_fetch(0, mapper.map(base), base)
        amb.commit_fills(base // 4)
        assert amb.cache_lookup(base + 1) == 0
        assert not amb.pending_fills

    def test_demanded_line_itself_is_not_cached(self):
        amb, mapper, _ = make_amb()
        base = line_on_dimm0(mapper)
        amb.group_fetch(0, mapper.map(base), base)
        amb.commit_fills(base // 4)
        assert amb.cache_lookup(base) is None

    def test_lookup_counts_stats(self):
        amb, mapper, _ = make_amb()
        base = line_on_dimm0(mapper)
        amb.cache_lookup(base)
        assert amb.table.stats.lookups == 1


class TestInvalidate:
    def test_write_invalidates_committed_line(self):
        amb, mapper, _ = make_amb()
        base = line_on_dimm0(mapper)
        amb.group_fetch(0, mapper.map(base), base)
        amb.commit_fills(base // 4)
        amb.invalidate(base + 1)
        assert amb.cache_lookup(base + 1) is None

    def test_write_invalidates_pending_fill(self):
        amb, mapper, _ = make_amb()
        base = line_on_dimm0(mapper)
        amb.group_fetch(0, mapper.map(base), base)
        amb.invalidate(base + 1)
        assert amb.cache_lookup(base + 1) is None
        # Other pending lines survive.
        assert amb.cache_lookup(base + 2) is not None

    def test_invalidate_without_prefetch_is_noop(self):
        config = MemoryConfig()  # prefetch disabled
        timing = TimingPs.from_config(
            config.timings, config.dram_clock_ps, config.burst_clocks
        )
        amb = Amb(config, timing, 0, 0)
        amb.invalidate(0)  # must not raise
        assert amb.table is None


class TestPlainAccess:
    def test_read_line_uses_bank(self):
        amb, mapper, timing = make_amb()
        base = line_on_dimm0(mapper)
        result = amb.read_line(0, mapper.map(base))
        assert result.data_starts[0] == timing.tRCD + timing.tCL

    def test_write_line_counts(self):
        amb, mapper, _ = make_amb()
        base = line_on_dimm0(mapper)
        amb.write_line(0, mapper.map(base))
        acts, cols = amb.bank_operation_counts()
        assert (acts, cols) == (1, 1)
