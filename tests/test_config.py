"""Configuration tests: Table 1/2 defaults, validation, derived values."""

import dataclasses

import pytest

from repro.config import (
    DRAM_CLOCK_PS,
    AmbPrefetchConfig,
    Associativity,
    CpuConfig,
    DramTimings,
    InterleaveScheme,
    MemoryConfig,
    MemoryKind,
    PagePolicy,
    SystemConfig,
    ddr2_baseline,
    fbdimm_amb_prefetch,
    fbdimm_baseline,
)


class TestTable2Defaults:
    """The DRAM timing parameters of Table 2."""

    def test_values(self):
        t = DramTimings()
        assert t.tRP == 15.0
        assert t.tRCD == 15.0
        assert t.tCL == 15.0
        assert t.tRC == 54.0
        assert t.tRRD == 9.0
        assert t.tRPD == 9.0
        assert t.tWTR == 9.0
        assert t.tRAS == 39.0
        assert t.tWL == 12.0
        assert t.tWPD == 36.0

    def test_ps_accessor(self):
        assert DramTimings().ps("tRC") == 54_000


class TestTable1Defaults:
    """The system parameters of Table 1."""

    def test_cpu(self):
        cpu = CpuConfig()
        assert cpu.clock_ghz == 4.0
        assert cpu.rob_entries == 196
        assert cpu.l2_mshr_entries == 64
        assert cpu.data_mshr_entries == 32
        assert cpu.store_buffer_entries == 32
        assert cpu.cycle_ps == 250

    def test_memory_geometry(self):
        m = MemoryConfig()
        assert m.logic_channels == 2
        assert m.physical_per_logic == 2
        assert m.physical_channels == 4
        assert m.dimms_per_channel == 4
        assert m.banks_per_dimm == 4
        assert m.data_rate_mts == 667
        assert m.buffer_entries == 64
        assert m.controller_overhead_ns == 12.0

    def test_clock_table(self):
        assert DRAM_CLOCK_PS == {
            533: 3750, 667: 3000, 800: 2500, 1066: 1875, 1333: 1500,
            # DDR3/DDR4-era rates for the non-DDR2 device presets
            # (floor(2000/(rate/2)) ps, matching the DDR2 rows).
            1600: 1250, 1866: 1071, 2133: 937, 2400: 833,
        }
        assert MemoryConfig(data_rate_mts=800).dram_clock_ps == 2500
        assert MemoryConfig(data_rate_mts=2400).dram_clock_ps == 833

    def test_frame_is_two_dram_clocks(self):
        assert MemoryConfig().frame_ps == 6000
        assert MemoryConfig(data_rate_mts=533).frame_ps == 7500

    def test_burst_clocks_for_64b_line(self):
        assert MemoryConfig().burst_clocks == 4

    def test_lines_per_page(self):
        assert MemoryConfig().lines_per_page == 64


class TestInterleaveLines:
    def test_cacheline(self):
        assert MemoryConfig(interleave=InterleaveScheme.CACHELINE).interleave_lines == 1

    def test_multi_cacheline_uses_region(self):
        m = MemoryConfig(
            interleave=InterleaveScheme.MULTI_CACHELINE,
            prefetch=AmbPrefetchConfig(region_cachelines=8),
        )
        assert m.interleave_lines == 8

    def test_page(self):
        m = MemoryConfig(interleave=InterleaveScheme.PAGE)
        assert m.interleave_lines == m.lines_per_page


class TestValidation:
    def test_bad_data_rate(self):
        with pytest.raises(ValueError, match="data rate"):
            MemoryConfig(data_rate_mts=675)

    def test_zero_channels(self):
        with pytest.raises(ValueError):
            MemoryConfig(logic_channels=0)

    def test_non_power_of_two_line(self):
        with pytest.raises(ValueError):
            MemoryConfig(cacheline_bytes=96)

    def test_prefetch_requires_fbdimm(self):
        with pytest.raises(ValueError, match="FB-DIMM"):
            MemoryConfig(
                kind=MemoryKind.DDR2,
                interleave=InterleaveScheme.MULTI_CACHELINE,
                prefetch=AmbPrefetchConfig(enabled=True),
            )

    def test_prefetch_region_positive(self):
        with pytest.raises(ValueError):
            AmbPrefetchConfig(region_cachelines=0)

    def test_cache_entries_divisible_by_ways(self):
        with pytest.raises(ValueError):
            AmbPrefetchConfig(cache_entries=10, associativity=Associativity.FOUR_WAY)

    def test_cpu_needs_cores(self):
        with pytest.raises(ValueError):
            CpuConfig(num_cores=0)


class TestAssociativity:
    def test_full_resolves_to_entries(self):
        assert Associativity.FULL.ways(64) == 64

    def test_fixed_ways(self):
        assert Associativity.DIRECT.ways(64) == 1
        assert Associativity.TWO_WAY.ways(64) == 2
        assert Associativity.FOUR_WAY.ways(64) == 4

    def test_ways_capped_at_entries(self):
        assert Associativity.FOUR_WAY.ways(2) == 2


class TestFactories:
    def test_ddr2_baseline(self):
        cfg = ddr2_baseline(num_cores=4)
        assert cfg.memory.kind is MemoryKind.DDR2
        assert cfg.memory.page_policy is PagePolicy.CLOSE_PAGE
        assert not cfg.memory.prefetch.enabled
        assert cfg.cpu.num_cores == 4

    def test_fbdimm_baseline(self):
        cfg = fbdimm_baseline()
        assert cfg.memory.kind is MemoryKind.FBDIMM
        assert not cfg.memory.prefetch.enabled
        assert cfg.memory.interleave is InterleaveScheme.CACHELINE

    def test_fbdimm_amb_prefetch_default(self):
        cfg = fbdimm_amb_prefetch()
        assert cfg.memory.prefetch.enabled
        assert cfg.memory.prefetch.region_cachelines == 4
        assert cfg.memory.prefetch.cache_entries == 64
        assert cfg.memory.prefetch.associativity is Associativity.FULL
        assert cfg.memory.interleave is InterleaveScheme.MULTI_CACHELINE

    def test_factory_forwards_overrides(self):
        cfg = fbdimm_baseline(data_rate_mts=800, logic_channels=4)
        assert cfg.memory.data_rate_mts == 800
        assert cfg.memory.physical_channels == 8


class TestSystemConfigHelpers:
    def test_with_prefetch_switches_interleave(self):
        cfg = fbdimm_baseline().with_prefetch(enabled=True, region_cachelines=8)
        assert cfg.memory.prefetch.enabled
        assert cfg.memory.interleave is InterleaveScheme.MULTI_CACHELINE
        assert cfg.memory.interleave_lines == 8

    def test_with_memory(self):
        cfg = fbdimm_baseline().with_memory(data_rate_mts=533)
        assert cfg.memory.data_rate_mts == 533

    def test_with_cpu(self):
        cfg = fbdimm_baseline().with_cpu(num_cores=8)
        assert cfg.cpu.num_cores == 8

    def test_config_is_hashable(self):
        assert hash(fbdimm_baseline()) == hash(fbdimm_baseline())
        assert fbdimm_baseline() == fbdimm_baseline()

    def test_replace_keeps_frozen(self):
        cfg = fbdimm_baseline()
        with pytest.raises(dataclasses.FrozenInstanceError):
            cfg.seed = 1


class TestPeakBandwidth:
    def test_ddr2(self):
        cfg = ddr2_baseline().memory
        # 8 B x 667 MT/s x 4 physical channels
        assert cfg.peak_bandwidth_gbs() == pytest.approx(8 * 667 / 1000 * 4)

    def test_fbdimm_has_extra_write_bandwidth(self):
        ddr2 = ddr2_baseline().memory
        fbd = fbdimm_baseline().memory
        assert fbd.peak_bandwidth_gbs() == pytest.approx(
            1.5 * ddr2.peak_bandwidth_gbs()
        )
