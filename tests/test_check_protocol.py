"""Protocol checker: rules, self-test suite, JSONL round-trip, CLI."""

import subprocess
import sys
from pathlib import Path

import pytest

from repro.check.protocol import (
    ProtocolChecker,
    ProtocolViolationError,
    Violation,
    check_trace,
)
from repro.check.selftest import cases, run_self_test
from repro.check.trace import (
    CheckEvent,
    TraceParams,
    default_params,
    load_events,
    save_events,
)

SRC = str(Path(__file__).resolve().parent.parent / "src")


class TestSelfTestSuite:
    def test_all_cases_pass(self):
        count, failures = run_self_test()
        assert count >= 13
        assert failures == []

    def test_every_rule_has_a_seeded_case(self):
        seeded = set()
        for case in cases():
            seeded.update(case.expect_rules)
        assert seeded >= {
            "tRCD", "tRAS", "tRP", "tRC", "tRRD", "tWTR", "row-state",
            "burst-overlap", "bus-turnaround",
            "frame-align", "frame-reuse", "frame-overcommit",
        }


class TestCheckerBasics:
    def test_unsorted_trace_rejected(self):
        params = default_params("fbdimm")
        events = [
            CheckEvent(1000, "ACT", dimm=0, rank=0, bank=0, row=1),
            CheckEvent(0, "ACT", dimm=0, rank=0, bank=1, row=1),
        ]
        with pytest.raises(ValueError, match="not time-sorted"):
            ProtocolChecker(params).check(events)

    def test_unknown_kind_rejected(self):
        params = default_params("fbdimm")
        bad = TraceParams(kind="ddr5", timing=params.timing)
        with pytest.raises(ValueError, match="ddr5"):
            ProtocolChecker(bad)

    def test_banks_and_channels_are_independent(self):
        """The same instant on different channels/banks never conflicts."""
        params = default_params("fbdimm")
        t = params.timing
        events = sorted(
            [
                CheckEvent(0, "ACT", channel=ch, dimm=0, rank=0, bank=0, row=5)
                for ch in range(2)
            ]
            + [
                CheckEvent(t.tRCD, "RD", channel=ch, dimm=0, rank=0, bank=0, row=5)
                for ch in range(2)
            ]
            + [
                CheckEvent(t.tRAS, "PRE", channel=ch, dimm=0, rank=0, bank=0, row=5)
                for ch in range(2)
            ],
            key=lambda e: e.time_ps,
        )
        assert check_trace(params, events) == []

    def test_violation_error_formats_and_truncates(self):
        violations = [
            Violation(rule="tRCD", time_ps=i, message=f"v{i}") for i in range(15)
        ]
        err = ProtocolViolationError(violations)
        text = str(err)
        assert "15 protocol violation(s)" in text
        assert "... and 5 more" in text
        assert err.violations is violations


class TestTraceIo:
    def test_round_trip_all_selftest_cases(self, tmp_path):
        for case in cases():
            path = tmp_path / f"{case.name}.jsonl"
            written = save_events(path, case.params, case.events)
            assert written == len(case.events)
            params, events = load_events(path)
            assert params == case.params
            assert events == sorted(case.events, key=lambda e: e.time_ps)

    def test_bad_version_rejected(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"version": 99, "params": {}}\n')
        with pytest.raises(ValueError, match="version"):
            load_events(path)

    def test_bad_event_kind_located(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        save_events(path, default_params("fbdimm"), [])
        with path.open("a") as fh:
            fh.write('{"t": 0, "c": "NOP"}\n')
        with pytest.raises(ValueError, match=":2"):
            load_events(path)


class TestCli:
    def _run(self, *args):
        return subprocess.run(
            [sys.executable, "-m", "repro.check", *args],
            capture_output=True, text=True, env={"PYTHONPATH": SRC, "PATH": ""},
        )

    def test_self_test_exit_zero(self):
        proc = self._run("--self-test")
        assert proc.returncode == 0, proc.stdout + proc.stderr
        assert "0 failure(s)" in proc.stdout

    def test_clean_and_bad_traces(self, tmp_path):
        good = tmp_path / "good.jsonl"
        bad = tmp_path / "bad.jsonl"
        by_name = {c.name: c for c in cases()}
        ok = by_name["good-close-page-read"]
        ko = by_name["bad-trcd"]
        save_events(good, ok.params, ok.events)
        save_events(bad, ko.params, ko.events)

        proc = self._run(str(good))
        assert proc.returncode == 0
        assert "OK" in proc.stdout

        proc = self._run(str(good), str(bad))
        assert proc.returncode == 1
        assert "tRCD" in proc.stdout

    def test_missing_trace_is_usage_error(self, tmp_path):
        proc = self._run(str(tmp_path / "absent.jsonl"))
        assert proc.returncode == 2

    def test_no_arguments_is_usage_error(self):
        proc = self._run()
        assert proc.returncode == 2

    def test_audit_configs_clean(self):
        proc = self._run("--audit-configs")
        assert proc.returncode == 0, proc.stdout + proc.stderr
        assert "ddr2_baseline: OK" in proc.stdout

    def test_lint_flags_wall_clock(self, tmp_path):
        victim = tmp_path / "victim.py"
        victim.write_text("import time\n\nstart = time.time()\n")
        proc = self._run("--lint", str(victim))
        assert proc.returncode == 1
        assert "wall-clock" in proc.stdout
