"""Differential property suite: table-driven Bank vs the legacy oracle.

The PR-8 hot-path rewrite replaced the branchy per-issue Table 2
constraint checks in ``repro.dram.bank`` with offsets precomputed by
``TimingPs.per_command_table``.  ``tests/_legacy_bank.py`` is the frozen
pre-rewrite implementation; hypothesis drives randomized command
sequences — reads (including multi-line group fetches), writes with
wire-order tWTR retries, refreshes, scheduling estimates, under both page
policies and cross-bank rank coupling — through both implementations and
asserts bit-identical timing, state, statistics and command logs.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

import tests._legacy_bank as legacy
from repro.config import PagePolicy
from repro.dram.bank import Bank, RankTimer
from repro.dram.resources import BusResource
from repro.dram.timing import TimingPs


@st.composite
def _timings(draw) -> TimingPs:
    """Random but structurally plausible picosecond timing bundle."""
    clock = draw(st.integers(100, 4000))
    burst_clocks = draw(st.integers(1, 8))
    tCL = draw(st.integers(0, 20000))
    tRCD = draw(st.integers(0, 20000))
    tRP = draw(st.integers(0, 20000))
    tRAS = draw(st.integers(0, 60000))
    return TimingPs(
        tRP=tRP,
        tRCD=tRCD,
        tCL=tCL,
        tRC=tRAS + tRP,
        tRRD=draw(st.integers(0, 10000)),
        tRPD=draw(st.integers(0, 20000)),
        tWTR=draw(st.integers(0, 10000)),
        tRAS=tRAS,
        tWL=draw(st.integers(0, 20000)),
        tWPD=draw(st.integers(0, 20000)),
        clock=clock,
        burst=burst_clocks * clock,
    )


TIMINGS = _timings()

#: One step of the command sequence.  ``now`` advances by the drawn gap
#: before each step so sequences exercise both back-to-back and idle gaps.
STEPS = st.lists(
    st.tuples(
        st.sampled_from(["read", "write", "refresh", "estimate"]),
        st.integers(0, 2),  # bank index (2 banks share the rank timer)
        st.integers(0, 3),  # row
        st.integers(1, 4),  # num_lines for reads / trfc clocks for refresh
        st.integers(0, 30000),  # now advance, ps
    ),
    min_size=1,
    max_size=40,
)


class _Harness:
    """One side of the differential: two banks, one rank, one data bus."""

    def __init__(self, bank_cls, timer_cls, timing, policy, trace):
        self.banks = [bank_cls(b, timing, policy) for b in range(2)]
        if trace:
            for bank in self.banks:
                bank.enable_trace()
        self.rank = timer_cls()
        self.bus = BusResource("diff")
        self.now = 0

    def step(self, op, bank_idx, row, count, advance):
        self.now += advance
        bank = self.banks[bank_idx % len(self.banks)]
        if op == "read":
            result = bank.read(self.now, row, count, self.bus, self.rank)
        elif op == "write":
            result = bank.write(self.now, row, self.bus, self.rank)
        elif op == "refresh":
            bank.refresh(self.now, count * 1000)
            result = None
        else:
            result = bank.earliest_start(self.now, row, self.rank)
        hit = bank.is_row_hit(row)
        return result, hit

    def snapshot(self):
        state = []
        for bank in self.banks:
            stats = bank.stats
            state.append((
                bank.open_row, bank.ready_at, bank.column_ok,
                bank.precharge_ok,
                (stats.activates, stats.precharges, stats.reads,
                 stats.writes, stats.row_hits, stats.row_misses,
                 stats.refreshes),
                None if bank.command_log is None else [
                    (r.kind, r.time_ps, r.bank_id, r.row)
                    for r in bank.command_log
                ],
            ))
        state.append((
            self.rank.next_act_ok,
            self.rank.read_ok_after_write,
            sorted(self.rank.pending_rd_cmds),
        ))
        state.append((self.bus.busy_ps, self.bus._intervals))
        return state


def _result_key(result):
    if result is None or isinstance(result, int):
        return result
    return (
        result.command_start,
        list(result.data_times),
        list(result.data_starts),
        result.row_hit,
    )


@settings(max_examples=250, deadline=None)
@given(
    timing=TIMINGS,
    steps=STEPS,
    policy=st.sampled_from([PagePolicy.CLOSE_PAGE, PagePolicy.OPEN_PAGE]),
    trace=st.booleans(),
)
def test_table_bank_matches_legacy_oracle(timing, steps, policy, trace):
    new = _Harness(Bank, RankTimer, timing, policy, trace)
    old = _Harness(legacy.Bank, legacy.RankTimer, timing, policy, trace)
    for op, bank_idx, row, count, advance in steps:
        new_result, new_hit = new.step(op, bank_idx, row, count, advance)
        old_result, old_hit = old.step(op, bank_idx, row, count, advance)
        assert _result_key(new_result) == _result_key(old_result)
        assert new_hit == old_hit
    assert new.snapshot() == old.snapshot()


@settings(max_examples=250, deadline=None)
@given(
    timing=TIMINGS,
    steps=STEPS,
    policy=st.sampled_from([PagePolicy.CLOSE_PAGE, PagePolicy.OPEN_PAGE]),
)
def test_estimates_are_side_effect_free_and_agree(timing, steps, policy):
    """earliest_start never mutates, and agrees with the oracle even when
    interleaved mid-sequence at every step."""
    new = _Harness(Bank, RankTimer, timing, policy, trace=False)
    old = _Harness(legacy.Bank, legacy.RankTimer, timing, policy, trace=False)
    for op, bank_idx, row, count, advance in steps:
        before = new.snapshot()
        for probe_row in range(3):
            est_new = new.banks[bank_idx % 2].earliest_start(
                new.now, probe_row, new.rank
            )
            est_old = old.banks[bank_idx % 2].earliest_start(
                old.now, probe_row, old.rank
            )
            assert est_new == est_old
        assert new.snapshot() == before
        new.step(op, bank_idx, row, count, advance)
        old.step(op, bank_idx, row, count, advance)


@settings(max_examples=100, deadline=None)
@given(timing=TIMINGS)
def test_per_command_table_matches_formulas(timing):
    table = timing.per_command_table()
    assert table["rd_data_lead"] == timing.tCL
    assert table["rd_drain_step"] == timing.burst - timing.tCL
    assert table["rd_col_gate"] == timing.burst
    assert table["wr_data_lead"] == timing.tWL
    assert table["wr_turnaround"] == timing.tWL + timing.burst + timing.tWTR
    assert table["wr_col_gate"] == timing.tWL + timing.burst
    assert table["retry_step"] == timing.clock
    assert set(table) == {
        "rd_data_lead", "rd_drain_step", "rd_col_gate",
        "wr_data_lead", "wr_turnaround", "wr_col_gate", "retry_step",
    }


@settings(max_examples=100, deadline=None)
@given(timing=TIMINGS)
def test_bank_caches_exactly_the_table(timing):
    """The Bank's cached offsets are the table values — no drift between
    the documented formulas and the constructed hot-path constants."""
    bank = Bank(0, timing, PagePolicy.OPEN_PAGE)
    table = timing.per_command_table()
    assert bank._rd_data_lead == table["rd_data_lead"]
    assert bank._rd_drain_step == table["rd_drain_step"]
    assert bank._rd_col_gate == table["rd_col_gate"]
    assert bank._wr_data_lead == table["wr_data_lead"]
    assert bank._wr_turnaround == table["wr_turnaround"]
    assert bank._wr_col_gate == table["wr_col_gate"]
    assert bank._retry_step == table["retry_step"]
