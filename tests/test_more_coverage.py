"""Additional coverage: experiment CLI, validation drivers, warmup in
multi-core mixes, and cross-feature combinations."""

import dataclasses

import pytest

from repro.analysis.interference import per_core_breakdown
from repro.config import (
    AmbPrefetchConfig,
    PrefetchLocation,
    ddr3_memory_overrides,
    fbdimm_amb_prefetch,
    fbdimm_baseline,
)
from repro.experiments.__main__ import EXPERIMENTS, main as experiments_main
from repro.experiments.runner import ExperimentContext
from repro.experiments import validation
from repro.system import run_system


class TestExperimentsCli:
    def test_registry_covers_every_figure(self):
        expected = {f"fig{n:02d}" for n in range(4, 14)}
        assert expected <= set(EXPERIMENTS)
        for extra in ("latency", "ablations", "location", "hwprefetch",
                      "validation"):
            assert extra in EXPERIMENTS

    def test_latency_via_cli(self, capsys):
        assert experiments_main(["latency"]) == 0
        out = capsys.readouterr().out
        assert "63.000" in out
        assert "33.000" in out

    def test_quick_flag_accepted(self, capsys):
        assert experiments_main(["fig09", "--quick", "--insts", "4000"]) == 0
        assert "decomposition" in capsys.readouterr().out

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            experiments_main(["fig99"])


class TestValidationDrivers:
    def test_saturation_table_shape(self):
        table = validation.run_saturation(ExperimentContext(instructions=6_000))
        assert table.column("stream_cores") == [1, 2, 4, 8]
        for row in table.rows:
            assert 0 < row["peak_fraction"] <= 1.0

    def test_pointer_chase_idle(self):
        table = validation.run_pointer_chase(ExperimentContext(instructions=6_000))
        assert 63.0 <= table.rows[0]["latency_ns"] <= 69.0


class TestWarmupMulticore:
    def test_warmup_in_a_mix(self):
        config = dataclasses.replace(
            fbdimm_baseline(2),
            instructions_per_core=10_000,
            warmup_instructions=4_000,
        )
        result = run_system(config, ["swim", "vpr"])
        assert result.warmup_time_ps > 0
        # Per-core interference stats reflect only the measured window.
        rows = per_core_breakdown(result)
        assert sum(r.demand_reads for r in rows) == result.mem.demand_reads

    def test_warmup_with_mc_prefetch_location(self):
        prefetch = AmbPrefetchConfig(location=PrefetchLocation.CONTROLLER)
        config = dataclasses.replace(
            fbdimm_amb_prefetch(1, prefetch=prefetch),
            instructions_per_core=10_000,
            warmup_instructions=3_000,
        )
        result = run_system(config, ["swim"])
        assert result.mem.prefetched_lines >= 0
        assert result.prefetch_coverage > 0


class TestFeatureCombinations:
    def test_ddr3_with_refresh_and_ap(self):
        config = dataclasses.replace(
            fbdimm_amb_prefetch(1, **ddr3_memory_overrides(1066)),
            instructions_per_core=6_000,
        ).with_memory(refresh_interval_ns=7_800.0, **ddr3_memory_overrides(1066))
        result = run_system(config, ["swim"])
        assert result.prefetch_coverage > 0.2

    def test_multirank_with_ap(self):
        config = dataclasses.replace(
            fbdimm_amb_prefetch(1), instructions_per_core=6_000
        ).with_memory(
            ranks_per_dimm=2,
            interleave=fbdimm_amb_prefetch(1).memory.interleave,
            prefetch=fbdimm_amb_prefetch(1).memory.prefetch,
        )
        result = run_system(config, ["swim"])
        assert result.prefetch_coverage > 0.2

    def test_vrl_with_mc_prefetch(self):
        prefetch = AmbPrefetchConfig(location=PrefetchLocation.CONTROLLER)
        config = dataclasses.replace(
            fbdimm_amb_prefetch(
                1, prefetch=prefetch, variable_read_latency=True
            ),
            instructions_per_core=6_000,
        )
        result = run_system(config, ["swim"])
        assert result.mem.demand_reads > 0

    def test_hw_prefetch_with_ap_and_sw(self):
        config = dataclasses.replace(
            fbdimm_amb_prefetch(1).with_cpu(hw_prefetch_degree=2),
            instructions_per_core=8_000,
        )
        result = run_system(config, ["swim"])
        hw_issued = result.core_stats[0].hw_prefetches_issued
        assert hw_issued >= 0  # coexists without deadlock
        assert result.core_instructions == [8_000]
