"""Tests for synthetic workloads, trace I/O, table export, and
System.from_traces."""

import dataclasses
import itertools

import pytest

from repro.config import fbdimm_baseline
from repro.experiments.export import to_csv, to_markdown, write_csv, write_markdown
from repro.experiments.runner import ResultTable
from repro.system import System
from repro.workloads.synthetic import (
    GENERATORS,
    SyntheticSpec,
    pointer_chase,
    stream,
    strided,
    uniform_random,
)
from repro.workloads.trace import TraceEvent, TraceKind, validate
from repro.workloads.trace_io import (
    load_trace,
    load_trace_list,
    load_trace_metadata,
    save_trace,
)


def take(gen, n):
    return list(itertools.islice(gen, n))


class TestSyntheticGenerators:
    def test_stream_is_sequential(self):
        events = take(stream(SyntheticSpec(gap_insts=10)), 20)
        lines = [e.line_addr for e in events]
        assert lines == list(range(20))
        validate(events)

    def test_stream_wraps_at_footprint(self):
        events = take(stream(SyntheticSpec(footprint_lines=4)), 10)
        assert [e.line_addr for e in events][:8] == [0, 1, 2, 3, 0, 1, 2, 3][:8]

    def test_uniform_random_spread(self):
        events = take(uniform_random(SyntheticSpec(seed=3)), 300)
        lines = {e.line_addr for e in events}
        assert len(lines) > 290  # essentially no repeats in a 256 MB space
        validate(events)

    def test_strided_stride(self):
        events = take(strided(SyntheticSpec(), stride_lines=16), 5)
        lines = [e.line_addr for e in events]
        assert lines == [0, 16, 32, 48, 64]

    def test_strided_validation(self):
        with pytest.raises(ValueError):
            take(strided(SyntheticSpec(), stride_lines=0), 1)

    def test_pointer_chase_gaps_exceed_rob(self):
        events = take(pointer_chase(SyntheticSpec(gap_insts=5)), 10)
        gaps = [b.inst - a.inst for a, b in zip(events, events[1:])]
        assert all(g >= 400 for g in gaps)
        assert all(e.kind is TraceKind.READ for e in events)

    def test_write_fraction(self):
        spec = SyntheticSpec(write_fraction=0.5, seed=11)
        events = take(stream(spec), 400)
        writes = sum(1 for e in events if e.kind is TraceKind.WRITE)
        assert 120 < writes < 280

    def test_spec_validation(self):
        with pytest.raises(ValueError):
            SyntheticSpec(gap_insts=0)
        with pytest.raises(ValueError):
            SyntheticSpec(write_fraction=1.0)
        with pytest.raises(ValueError):
            SyntheticSpec(footprint_lines=0)

    def test_registry(self):
        assert set(GENERATORS) == {
            "stream", "uniform_random", "strided", "pointer_chase",
        }

    def test_determinism(self):
        a = take(uniform_random(SyntheticSpec(seed=5)), 50)
        b = take(uniform_random(SyntheticSpec(seed=5)), 50)
        assert a == b


class TestSystemFromTraces:
    def test_custom_trace_run(self):
        config = dataclasses.replace(
            fbdimm_baseline(1), instructions_per_core=3_000
        )
        system = System.from_traces(
            config, [stream(SyntheticSpec(gap_insts=50))], base_ipcs=[2.0],
            labels=["stream"],
        )
        result = system.run()
        assert result.programs == ["stream"]
        assert result.mem.demand_reads > 0

    def test_alignment_validation(self):
        config = fbdimm_baseline(2)
        with pytest.raises(ValueError):
            System.from_traces(config, [stream()], base_ipcs=[2.0])

    def test_default_labels(self):
        config = dataclasses.replace(
            fbdimm_baseline(1), instructions_per_core=1_000
        )
        system = System.from_traces(config, [stream()], base_ipcs=[1.0])
        assert system.programs == ["custom-0"]


class TestTraceIo:
    def events(self):
        return [
            TraceEvent(5, TraceKind.PREFETCH, 100),
            TraceEvent(9, TraceKind.READ, 100),
            TraceEvent(14, TraceKind.WRITE, 200),
        ]

    def test_round_trip(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        count = save_trace(path, self.events(), metadata={"program": "swim"})
        assert count == 3
        assert load_trace_list(path) == self.events()
        assert load_trace_metadata(path) == {"program": "swim"}

    def test_lazy_load(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        save_trace(path, self.events())
        iterator = load_trace(path)
        assert next(iterator).inst == 5

    def test_order_violation_detected(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text(
            '{"version": 1, "meta": {}}\n'
            '{"i": 9, "k": "r", "a": 1}\n'
            '{"i": 9, "k": "r", "a": 2}\n'
        )
        with pytest.raises(ValueError, match="order"):
            load_trace_list(path)

    def test_unknown_kind_detected(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text(
            '{"version": 1, "meta": {}}\n{"i": 9, "k": "x", "a": 1}\n'
        )
        with pytest.raises(ValueError, match="kind"):
            load_trace_list(path)

    def test_version_check(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"version": 99, "meta": {}}\n')
        with pytest.raises(ValueError, match="version"):
            load_trace_list(path)
        with pytest.raises(ValueError, match="version"):
            load_trace_metadata(path)

    def test_replay_through_system(self, tmp_path):
        """Saved traces drive a run identically to the live generator."""
        from repro.workloads.spec import make_trace
        from repro.workloads.trace import record

        events = record(make_trace("vpr", seed=1), 400)
        path = tmp_path / "vpr.jsonl"
        save_trace(path, events)
        config = dataclasses.replace(
            fbdimm_baseline(1), instructions_per_core=2_000
        )
        live = System.from_traces(config, [iter(events)], base_ipcs=[1.2]).run()
        replay = System.from_traces(config, [load_trace(path)], base_ipcs=[1.2]).run()
        assert live.elapsed_ps == replay.elapsed_ps
        assert live.mem.demand_reads == replay.mem.demand_reads


class TestTableExport:
    def table(self):
        t = ResultTable(title="demo", columns=["name", "value"])
        t.add(name="a", value=1.5)
        t.add(name="b", value=2.0)
        return t

    def test_csv(self):
        text = to_csv(self.table())
        lines = text.strip().splitlines()
        assert lines[0] == "name,value"
        assert lines[1] == "a,1.5"

    def test_markdown(self):
        text = to_markdown(self.table())
        assert "### demo" in text
        assert "| name | value |" in text
        assert "| a | 1.500 |" in text

    def test_write_files(self, tmp_path):
        write_csv(self.table(), tmp_path / "t.csv")
        write_markdown(self.table(), tmp_path / "t.md")
        assert (tmp_path / "t.csv").read_text().startswith("name,value")
        assert (tmp_path / "t.md").read_text().startswith("### demo")
