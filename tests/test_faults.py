"""Reliability harness for repro.faults: no silent data loss, ever.

Property suite (hypothesis) over the link-level retry state machine plus
full-system differential tests:

* accounting identity — every corrupted transfer is either retried to
  success or a counted drop: ``faults_corrupted == faults_retried_ok +
  faults_dropped``, under any (seed, error rate, operation mix);
* ``error_rate=0`` (faults enabled) is byte-identical to a run with the
  fault subsystem disabled entirely — the zero-overhead guarantee;
* a fig07-style default run with ``FaultConfig()`` (disabled) is
  deterministic and bit-identical across repeats;
* rate-1.0 runs drive the channel into degraded mode, which disables
  prefetching for the rest of the run.
"""

import dataclasses

import pytest
from hypothesis import given, settings, strategies as st

from repro.channel.fbdimm_link import FbdimmLinks
from repro.config import FaultConfig, fbdimm_amb_prefetch, fbdimm_baseline
from repro.faults import ChannelFaults, FaultInjector
from repro.faults.sweep import fault_sweep, format_sweep
from repro.stats.collector import MemSystemStats
from repro.system import run_system

PROGRAMS = ("swim", "applu")


def small(config, insts=4_000):
    return dataclasses.replace(config, instructions_per_core=insts)


def make_links(rate, seed=1, max_retries=3, degraded_threshold=0, bitflip=0.0):
    config = fbdimm_baseline(1).memory
    links = FbdimmLinks(config, channel_id=0)
    stats = MemSystemStats()
    fc = FaultConfig(
        enabled=True, error_rate=rate, amb_bitflip_rate=bitflip,
        seed=seed, max_retries=max_retries,
        degraded_threshold=degraded_threshold,
    )
    links.faults = ChannelFaults(fc, config.frame_ps, 0, stats)
    return links, stats


# ----------------------------------------------------------------------
# Link-level properties
# ----------------------------------------------------------------------


class TestAccountingIdentity:
    @given(
        seed=st.integers(min_value=0, max_value=2**32),
        rate=st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
        ops=st.lists(
            st.sampled_from(["cmd", "write", "read"]), min_size=1, max_size=40
        ),
    )
    @settings(max_examples=120, deadline=None)
    def test_no_silent_loss(self, seed, rate, ops):
        """Every transfer completes; every corruption episode is accounted
        as exactly one of retried-ok or dropped."""
        links, stats = make_links(rate, seed=seed)
        now = 0
        for op in ops:
            if op == "cmd":
                now = links.send_command_ps(now)
            elif op == "write":
                now = links.send_write_ps(now, 0)
            else:
                now = links.return_read(now, 0).full_at_mc
        assert stats.faults_corrupted == (
            stats.faults_retried_ok + stats.faults_dropped
        )
        assert stats.faults_injected >= stats.faults_corrupted
        assert stats.fault_retry_latency_ps >= 0
        if stats.faults_corrupted:
            assert stats.fault_retry_latency_ps > 0

    @given(seed=st.integers(min_value=0, max_value=2**32))
    @settings(max_examples=30, deadline=None)
    def test_rate_one_drops_everything_after_budget(self, seed):
        """At rate 1.0 every transfer exhausts the budget: all episodes are
        drops, each costing exactly 1 + max_retries corrupted attempts."""
        max_retries = 2
        links, stats = make_links(1.0, seed=seed, max_retries=max_retries)
        transfers = 5
        now = 0
        for _ in range(transfers):
            now = links.send_command_ps(now)
        assert stats.faults_corrupted == transfers
        assert stats.faults_dropped == transfers
        assert stats.faults_retried_ok == 0
        assert stats.faults_injected == transfers * (1 + max_retries)

    def test_rate_zero_draws_but_never_fires(self):
        links, stats = make_links(0.0)
        now = 0
        for _ in range(20):
            now = links.send_command_ps(now)
        assert links.faults.injector.decisions == 20
        assert stats.faults_corrupted == 0
        assert stats.fault_retry_latency_ps == 0

    def test_retry_slots_are_real_link_bandwidth(self):
        """Replays book frames: a corrupted command lands strictly later
        than the fault-free copy of the same schedule."""
        clean, _ = make_links(0.0)
        faulty, stats = make_links(1.0, max_retries=1)
        t_clean = clean.send_command_ps(0)
        t_faulty = faulty.send_command_ps(0)
        assert t_faulty > t_clean
        assert stats.fault_retry_latency_ps > 0
        # Exponential backoff: a deeper budget pushes completion further.
        deeper, _ = make_links(1.0, max_retries=4)
        assert deeper.send_command_ps(0) > t_faulty


class TestBackoffAndDegraded:
    def test_backoff_is_exponential_in_frame_slots(self):
        links, _ = make_links(0.5)
        faults = links.faults
        frame = links.frame_ps
        assert faults.backoff_ps(1) == faults.config.backoff_frames * frame
        assert faults.backoff_ps(3) == faults.config.backoff_frames * frame * 4
        with pytest.raises(ValueError):
            faults.backoff_ps(0)

    def test_degraded_mode_entered_after_streak(self):
        links, stats = make_links(1.0, degraded_threshold=3)
        now = 0
        for _ in range(3):
            assert not links.faults.degraded
            now = links.send_command_ps(now)
        assert links.faults.degraded
        assert stats.fault_degraded_entries == 1
        # Sticky: more episodes do not re-enter.
        links.send_command_ps(now)
        assert stats.fault_degraded_entries == 1

    def test_clean_transfer_resets_streak(self):
        links, _ = make_links(0.5, seed=7, degraded_threshold=10_000)
        now = 0
        for _ in range(50):
            now = links.send_command_ps(now)
        assert not links.faults.degraded
        assert links.faults._streak < 50


class TestInjectorDeterminism:
    def test_same_seed_same_stream(self):
        fc = FaultConfig(enabled=True, error_rate=0.5, seed=99)
        a = [FaultInjector(fc, 0).transfer_corrupted() for _ in range(1)]
        i1, i2 = FaultInjector(fc, 0), FaultInjector(fc, 0)
        assert [i1.transfer_corrupted() for _ in range(64)] == [
            i2.transfer_corrupted() for _ in range(64)
        ]
        del a

    def test_channels_get_distinct_streams(self):
        fc = FaultConfig(enabled=True, error_rate=0.5, seed=99)
        s0 = [FaultInjector(fc, 0).corrupt_frame(bytes(34)) for _ in range(4)]
        s1 = [FaultInjector(fc, 1).corrupt_frame(bytes(34)) for _ in range(4)]
        assert s0 != s1


# ----------------------------------------------------------------------
# Full-system differentials
# ----------------------------------------------------------------------


def _comparable(result):
    data = result.to_dict()
    data.pop("config")  # configs legitimately differ (enabled flag)
    return data


class TestSystemDifferentials:
    def test_zero_rate_is_byte_identical_to_disabled(self):
        """FaultConfig(enabled, error_rate=0) == no fault subsystem at all."""
        base = small(fbdimm_amb_prefetch(num_cores=2))
        off = run_system(base, list(PROGRAMS))
        zero = run_system(
            base.with_faults(enabled=True, error_rate=0.0), list(PROGRAMS)
        )
        assert _comparable(off) == _comparable(zero)

    def test_disabled_fig07_style_run_is_deterministic(self):
        """The acceptance pin: with FaultConfig() (default, disabled) a
        fig07-style FBD-AP run is bit-identical across repeats."""
        config = small(fbdimm_amb_prefetch(num_cores=2))
        assert config.faults == FaultConfig()
        first = run_system(config, list(PROGRAMS))
        second = run_system(config, list(PROGRAMS))
        assert first.canonical_json() == second.canonical_json()

    def test_faulted_run_is_deterministic(self):
        config = small(fbdimm_amb_prefetch(num_cores=2)).with_faults(
            error_rate=0.05, amb_bitflip_rate=0.05
        )
        first = run_system(config, list(PROGRAMS))
        second = run_system(config, list(PROGRAMS))
        assert first.canonical_json() == second.canonical_json()
        assert first.mem.faults_corrupted > 0

    def test_elevated_rate_accounting_identity_end_to_end(self):
        config = small(fbdimm_amb_prefetch(num_cores=2)).with_faults(
            error_rate=0.2, amb_bitflip_rate=0.1
        )
        result = run_system(config, list(PROGRAMS))
        mem = result.mem
        assert mem.faults_corrupted > 0
        assert mem.faults_corrupted == mem.faults_retried_ok + mem.faults_dropped
        assert mem.fault_retry_latency_ps > 0
        assert mem.amb_parity_errors > 0

    def test_faults_slow_the_machine_down(self):
        base = small(fbdimm_baseline(num_cores=2))
        clean = run_system(base, list(PROGRAMS))
        noisy = run_system(base.with_faults(error_rate=0.3), list(PROGRAMS))
        assert sum(noisy.core_ipcs) < sum(clean.core_ipcs)
        assert noisy.avg_read_latency_ns > clean.avg_read_latency_ns

    def test_degraded_mode_disables_prefetching(self):
        config = small(fbdimm_amb_prefetch(num_cores=2)).with_faults(
            error_rate=1.0, degraded_threshold=4, max_retries=1
        )
        result = run_system(config, list(PROGRAMS))
        mem = result.mem
        assert mem.fault_degraded_entries >= 1
        # After every channel degrades (threshold 4 at rate 1.0, so almost
        # immediately), group fetches stop: far fewer fills than the
        # fault-free run would make.
        clean = run_system(
            small(fbdimm_amb_prefetch(num_cores=2)), list(PROGRAMS)
        )
        assert mem.prefetched_lines < clean.mem.prefetched_lines

    def test_ddr2_with_faults_rejected(self):
        from repro.config import ddr2_baseline

        with pytest.raises(ValueError, match="FBDIMM"):
            ddr2_baseline(num_cores=1).with_faults(error_rate=1e-6)


class TestFaultSweep:
    def test_sweep_reports_degradation_curve(self):
        config = small(fbdimm_amb_prefetch(num_cores=2), insts=2_500)
        points = fault_sweep(config, PROGRAMS, [0.0, 0.3], jobs=1)
        assert len(points) == 3
        baseline, zero, noisy = points
        assert baseline.error_rate == -1.0
        assert baseline.ipc_delta_pct == 0.0
        assert zero.sum_ipc == pytest.approx(baseline.sum_ipc)
        assert noisy.sum_ipc < baseline.sum_ipc
        assert noisy.ipc_delta_pct < 0
        assert noisy.mem.faults_corrupted > 0
        table = format_sweep(points)
        assert "off" in table and "3.0e-01" in table

    def test_sweep_requires_rates(self):
        with pytest.raises(ValueError):
            fault_sweep(small(fbdimm_baseline(1)), ("swim",), [])
