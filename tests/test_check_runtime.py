"""Runtime assertion layer: full runs under check_protocol=True stay clean."""

from dataclasses import replace

import pytest

from repro.check.protocol import ProtocolViolationError
from repro.check.trace import TraceParams
from repro.config import (
    InterleaveScheme,
    PagePolicy,
    ddr2_baseline,
    fbdimm_amb_prefetch,
    fbdimm_baseline,
)
from repro.system import System
from repro.workloads.spec import PROGRAMS

PROGS = sorted(PROGRAMS)
INSTS = 15_000


def run_checked(config, programs):
    return System(replace(config, check_protocol=True), programs).run()


class TestZeroViolationRuns:
    def test_ddr2_multicore(self):
        result = run_checked(
            replace(ddr2_baseline(num_cores=2), instructions_per_core=INSTS),
            PROGS[:2],
        )
        assert result.protocol_violations == []

    def test_fbdimm_baseline(self):
        result = run_checked(
            replace(fbdimm_baseline(), instructions_per_core=INSTS), PROGS[:1]
        )
        assert result.protocol_violations == []

    def test_fbdimm_amb_prefetch(self):
        result = run_checked(
            replace(fbdimm_amb_prefetch(num_cores=2), instructions_per_core=INSTS),
            PROGS[2:4],
        )
        assert result.protocol_violations == []

    def test_ddr2_open_page(self):
        config = replace(
            ddr2_baseline(), instructions_per_core=INSTS
        ).with_memory(
            page_policy=PagePolicy.OPEN_PAGE, interleave=InterleaveScheme.PAGE
        )
        assert run_checked(config, PROGS[4:5]).protocol_violations == []

    def test_off_by_default(self):
        config = replace(fbdimm_baseline(), instructions_per_core=INSTS)
        result = System(config, PROGS[:1]).run()
        assert result.protocol_violations is None


class TestRuntimePlumbing:
    def test_events_collected_and_checkable_offline(self):
        """The journalled stream is a valid offline trace for the CLI path."""
        config = replace(
            fbdimm_amb_prefetch(), instructions_per_core=INSTS, check_protocol=True
        )
        system = System(config, PROGS[:1])
        system.run()
        events = system.controller.collect_check_events()
        assert events, "a real run must journal DRAM commands"
        kinds = {e.kind for e in events}
        assert {"ACT", "RD", "PRE"} <= kinds
        assert "NB_LINE" in kinds and "SB_CMD" in kinds
        params = TraceParams.from_memory_config(config.memory)
        from repro.check.protocol import check_trace

        assert check_trace(params, events) == []

    def test_checker_disabled_keeps_banks_untraced(self):
        config = replace(fbdimm_baseline(), instructions_per_core=INSTS)
        system = System(config, PROGS[:1])
        system.run()
        channel = system.controller.channels[0]
        assert all(b.command_log is None for amb in channel.ambs for b in amb.banks)
        assert channel.links.north.journal is None

    def test_violation_raises(self, monkeypatch):
        """Any violation surfacing from the checker must abort the run.

        The model and checker derive timing from the same config, so a real
        divergence cannot be provoked from configuration alone; the raise
        path is exercised by stubbing the check hook.
        """
        from repro.check.protocol import Violation
        from repro.controller.controller import MemoryController

        planted = [Violation(rule="tRCD", time_ps=0, message="planted")]
        monkeypatch.setattr(
            MemoryController, "check_protocol_violations", lambda self: planted
        )
        config = replace(
            fbdimm_baseline(), instructions_per_core=INSTS, check_protocol=True
        )
        with pytest.raises(ProtocolViolationError) as exc_info:
            System(config, PROGS[:1]).run()
        assert exc_info.value.violations == planted
