"""Golden pins for every shipped device preset (repro.dram.devices).

Each timing and energy value is asserted against its source — the paper's
Table 2 for ``ddr2-667``, the JEDEC bin / Micron datasheet class for
``ddr3-1333`` and ``lpddr4-2400``, and the Ramulator 2 ``DDR4.cpp``
timing-table progression (SNIPPETS.md Snippet 3) for ``ddr4-2400`` — so a
silent edit to a preset constant fails here with the provenance in the
diff, not three layers later as a conformance-digest mismatch.

Also covers spec validation: a DeviceSpec that cannot describe a real
device (negative timing, tRAS > tRC, zero burst, refresh without a tRFC)
must be rejected at construction, and unknown preset names must fail with
the list of known ones.
"""

import dataclasses

import pytest

from repro.config import DRAM_CLOCK_PS, DramTimings, MemoryConfig, SystemConfig
from repro.dram.devices import (
    DEVICE_PRESETS,
    DeviceSpec,
    device_names,
    device_spec,
)
from repro.power.ddr2_power import MicronPowerCalculator
from repro.power.energy import CommandEnergyModel


def approx(value):
    return pytest.approx(value, abs=1e-9)


class TestRegistry:
    def test_shipped_presets(self):
        assert device_names() == (
            "ddr2-667", "ddr3-1333", "ddr4-2400", "lpddr4-2400"
        )
        for name, spec in DEVICE_PRESETS.items():
            assert spec.name == name

    def test_unknown_preset_lists_known(self):
        with pytest.raises(ValueError, match="unknown device preset"):
            device_spec("ddr5-6400")
        with pytest.raises(ValueError, match="ddr3-1333"):
            device_spec("nope")

    def test_every_preset_rate_has_a_clock(self):
        for spec in DEVICE_PRESETS.values():
            assert spec.data_rate_mts in DRAM_CLOCK_PS

    def test_every_timing_is_exact_in_picoseconds(self):
        # Stored as n x tCK of the bin, so ns() must be lossless: the
        # ps value is an integer number of picoseconds by construction.
        for spec in DEVICE_PRESETS.values():
            for f in dataclasses.fields(DramTimings):
                value_ns = getattr(spec.timings, f.name)
                ps = round(value_ns * 1000)
                assert abs(value_ns * 1000 - ps) < 0.5, (
                    f"{spec.name}.{f.name} not representable in ps"
                )


class TestDdr2Preset:
    """Paper Table 2 @ 667 MT/s — must equal every default it shadows."""

    spec = device_spec("ddr2-667")

    def test_table2_timings(self):
        t = self.spec.timings
        assert t.tRP == 15.0  # Table 2: row precharge
        assert t.tRCD == 15.0  # Table 2: RAS-to-CAS
        assert t.tCL == 15.0  # Table 2: CAS latency
        assert t.tRC == 54.0  # Table 2: row cycle
        assert t.tRRD == 9.0  # Table 2: ACT-to-ACT, different banks
        assert t.tRPD == 9.0  # Table 2: RD-to-PRE
        assert t.tWTR == 9.0  # Table 2: WR-data-to-RD
        assert t.tRAS == 39.0  # Table 2: ACT-to-PRE
        assert t.tWL == 12.0  # Table 2: write latency
        assert t.tWPD == 36.0  # Table 2: WR-to-PRE

    def test_organization(self):
        # Table 1 geometry: 4 banks, 4 KB logic page, 16 K rows.
        assert self.spec.data_rate_mts == 667
        assert self.spec.banks_per_dimm == 4
        assert self.spec.page_bytes == 4096
        assert self.spec.rows_per_bank == 16384
        assert self.spec.burst_length == 8  # 64 B line over an 8 B path

    def test_constraints_the_paper_does_not_model_are_off(self):
        # DDR2's 4-bank devices predate tFAW and the paper skips refresh
        # scheduling; both must be disabled so the preset is a provable
        # no-op on the shared state machine.
        assert self.spec.tFAW_ns == 0.0
        assert self.spec.tREFI_ns == 0.0

    def test_identity_with_config_defaults(self):
        # The preset mirrors the MemoryConfig/DramTimings/power defaults,
        # which is what keeps the conformance digests byte-identical.
        assert self.spec.timings == DramTimings()
        assert self.spec.power == MicronPowerCalculator()
        assert self.spec.energy == CommandEnergyModel()
        base = MemoryConfig()
        for key, value in self.spec.memory_overrides().items():
            assert getattr(base, key) == value, key

    def test_paper_calibrated_energy_weights(self):
        # Section 5.5: 4 column-access units per ACT/PRE pair (the paper
        # rounds the Micron-calculator ratio of ~3.81 to its published
        # 4:1); refresh is the calculator's exact refresh/column ratio.
        e = self.spec.energy
        assert e.act_pre_units == 4.0
        assert e.read_units == 1.0
        assert e.write_units == 1.0
        assert e.refresh_units == 39.35


class TestDdr3Preset:
    """JEDEC DDR3-1333H (CL9-9-9, tCK = 1.5 ns), Micron 2 Gb x8 class."""

    spec = device_spec("ddr3-1333")

    def test_bin_timings(self):
        t = self.spec.timings
        assert t.tRP == approx(13.5)  # 9 nCK: DDR3-1333H CL-nRCD-nRP = 9-9-9
        assert t.tRCD == approx(13.5)  # 9 nCK
        assert t.tCL == approx(13.5)  # 9 nCK (CL9)
        assert t.tRAS == approx(36.0)  # 24 nCK (JEDEC 1333 bin)
        assert t.tRC == approx(49.5)  # tRAS + tRP = 33 nCK
        assert t.tRRD == approx(6.0)  # 4 nCK (x8, 1 KB page)
        assert t.tRPD == approx(7.5)  # tRTP = max(4 nCK, 7.5 ns)
        assert t.tWTR == approx(7.5)  # max(4 nCK, 7.5 ns)
        assert t.tWL == approx(10.5)  # CWL = 7 nCK at 1333
        # tWPD = tWL + 4 tCK burst + tWR(15 ns) = 10.5 + 6.0 + 15.0
        assert t.tWPD == approx(31.5)

    def test_refresh_and_faw(self):
        assert self.spec.tFAW_ns == approx(30.0)  # 20 nCK (1 KB page)
        assert self.spec.tREFI_ns == approx(7800.0)  # JEDEC, <= 85 C
        assert self.spec.tRFC_ns == approx(160.0)  # 2 Gb density

    def test_organization(self):
        assert self.spec.data_rate_mts == 1333
        assert self.spec.banks_per_dimm == 8  # DDR3 has 8 banks
        assert self.spec.page_bytes == 8192  # 1 KB chip page x 8 chips
        assert self.spec.rows_per_bank == 32768  # 2 Gb x8: 32 K rows/bank

    def test_power_iddfields(self):
        # Micron MT41J256M8 class datasheet values (typical, 1333 bin).
        p = self.spec.power
        assert p.vdd == 1.5
        assert p.idd0 == 70.0
        assert p.idd3n == 35.0
        assert p.idd4r == 150.0
        assert p.idd4w == 155.0
        assert p.idd2n == 30.0
        assert p.idd2p == 12.0
        assert p.idd5 == 180.0
        assert p.t_rc_ns == approx(49.5)
        assert p.t_rfc_ns == approx(160.0)
        assert p.burst_ns == approx(6.0)  # 8 beats = 4 clocks @ 1.5 ns

    def test_energy_weights_derive_from_calculator(self):
        # Non-DDR2 presets take their weights straight from their own
        # IDD calculator (CommandEnergyModel.from_calculator).
        assert self.spec.energy == CommandEnergyModel.from_calculator(
            self.spec.power
        )
        assert self.spec.energy.act_pre_units == pytest.approx(7.174, abs=1e-3)
        assert self.spec.energy.refresh_units == pytest.approx(99.379, abs=1e-3)


class TestDdr4Preset:
    """Ramulator 2 DDR4 table (Snippet 3) extrapolated to 2400R CL16."""

    spec = device_spec("ddr4-2400")

    def test_bin_timings(self):
        t = self.spec.timings
        tck = 0.833  # DRAM_CLOCK_PS[2400] / 1000
        # The snippet's nCK progression (1600J 11, 1866L 13, 2133N 15
        # for CL/nRCD/nRP) lands on 16 nCK at the 2400R bin.
        assert t.tRP == approx(16 * tck)
        assert t.tRCD == approx(16 * tck)
        assert t.tCL == approx(16 * tck)
        assert t.tRAS == approx(39 * tck)  # snippet nRAS: 28/32/36 -> 39
        assert t.tRC == approx(55 * tck)  # nRC = nRAS + nRP: 39/45/50 -> 55
        assert t.tRRD == approx(6 * tck)  # nRRD_L: snippet 6nCK floor
        assert t.tRPD == approx(9 * tck)  # nRTP: 6/7/8 -> 9
        assert t.tWTR == approx(9 * tck)  # nWTR_L: 6/7/8 -> 9
        assert t.tWL == approx(12 * tck)  # nCWL: 9/10/11 -> 12
        # tWPD = tWL + 4 tCK burst + tWR(15 ns)
        assert t.tWPD == approx(12 * tck + 4 * tck + 15.0)

    def test_refresh_and_faw(self):
        assert self.spec.tFAW_ns == approx(26 * 0.833)  # nFAW: x8 1 KB page
        assert self.spec.tREFI_ns == approx(7800.0)  # JEDEC, <= 85 C
        assert self.spec.tRFC_ns == approx(350.0)  # 8 Gb density

    def test_organization(self):
        # Snippet org: DDR4 has 4 bank groups x 4 banks = 16 banks.
        assert self.spec.data_rate_mts == 2400
        assert self.spec.banks_per_dimm == 16
        assert self.spec.page_bytes == 8192
        assert self.spec.rows_per_bank == 32768
        assert self.spec.burst_length == 8

    def test_power_iddfields(self):
        # 8 Gb DDR4 x8 class (typical 2400 bin datasheet values).
        p = self.spec.power
        assert p.vdd == 1.2
        assert p.idd0 == 55.0
        assert p.idd3n == 42.0
        assert p.idd4r == 155.0
        assert p.idd4w == 150.0
        assert p.idd2n == 32.0
        assert p.idd2p == 22.0
        assert p.idd5 == 250.0
        assert p.t_rfc_ns == approx(350.0)
        assert p.burst_ns == approx(3.332)  # 4 clocks @ 0.833 ns

    def test_energy_weights_derive_from_calculator(self):
        assert self.spec.energy == CommandEnergyModel.from_calculator(
            self.spec.power
        )
        assert self.spec.energy.act_pre_units == pytest.approx(4.520, abs=1e-3)
        assert self.spec.energy.refresh_units == pytest.approx(
            578.993, abs=1e-3
        )


class TestLpddr4Preset:
    """Representative 8 Gb LPDDR4 x16 @ 2400 MT/s (low-power variant)."""

    spec = device_spec("lpddr4-2400")

    def test_bin_timings(self):
        t = self.spec.timings
        assert t.tRP == approx(18.0)  # tRPpb
        assert t.tRCD == approx(18.0)
        assert t.tCL == approx(21 * 0.833)  # RL = 21 nCK
        assert t.tRAS == approx(42.0)
        assert t.tRC == approx(60.0)  # tRAS + tRPpb
        assert t.tRRD == approx(8.33)  # 10 nCK
        assert t.tWL == approx(12 * 0.833)  # WL = 12 nCK
        # tWPD = tWL + burst (3.332) + tWR (18.0)
        assert t.tWPD == approx(31.328)

    def test_refresh_and_faw(self):
        assert self.spec.tFAW_ns == approx(40.0)
        assert self.spec.tREFI_ns == approx(3904.0)  # tREFIab, 8 Gb
        assert self.spec.tRFC_ns == approx(280.0)  # tRFCab, 8 Gb

    def test_low_power_iddfields(self):
        # The point of the variant: LPDDR's standby and power-down
        # currents are an order of magnitude below DDR4's.
        p = self.spec.power
        ddr4 = device_spec("ddr4-2400").power
        assert p.vdd == 1.1
        assert p.idd3n == 12.0 < ddr4.idd3n
        assert p.idd2n == 4.5 < ddr4.idd2n
        assert p.idd2p == 0.8 < ddr4.idd2p
        assert p.chips_per_rank == 4  # x16 devices on an 8 B rank

    def test_energy_weights_derive_from_calculator(self):
        assert self.spec.energy == CommandEnergyModel.from_calculator(
            self.spec.power
        )
        assert self.spec.energy.act_pre_units == pytest.approx(8.575, abs=1e-3)
        assert self.spec.energy.refresh_units == pytest.approx(
            123.383, abs=1e-3
        )


class TestSpecValidation:
    def _valid(self, **overrides):
        base = dict(
            name="test-dev",
            generation="TEST",
            data_rate_mts=667,
            timings=DramTimings(),
        )
        base.update(overrides)
        return DeviceSpec(**base)

    def test_valid_spec_constructs(self):
        self._valid()

    def test_negative_timing_rejected(self):
        with pytest.raises(ValueError, match="negative timing tRCD"):
            self._valid(timings=DramTimings(tRCD=-1.0))

    def test_tras_exceeding_trc_rejected(self):
        with pytest.raises(ValueError, match="tRAS.*exceeds.*tRC"):
            self._valid(timings=DramTimings(tRAS=60.0, tRC=54.0))

    def test_zero_burst_rejected(self):
        with pytest.raises(ValueError, match="zero burst"):
            self._valid(burst_length=0)

    def test_negative_tfaw_rejected(self):
        with pytest.raises(ValueError, match="negative tFAW"):
            self._valid(tFAW_ns=-5.0)

    def test_refresh_without_trfc_rejected(self):
        with pytest.raises(ValueError, match="non-positive tRFC"):
            self._valid(tREFI_ns=7800.0, tRFC_ns=0.0)

    def test_unsupported_rate_rejected(self):
        with pytest.raises(ValueError, match="unsupported data rate"):
            self._valid(data_rate_mts=1234)

    def test_zero_banks_rejected(self):
        with pytest.raises(ValueError, match="banks_per_dimm"):
            self._valid(banks_per_dimm=0)

    def test_unknown_device_on_memory_config_rejected(self):
        with pytest.raises(ValueError, match="unknown device"):
            MemoryConfig(device="ddr9-9999")


class TestWithDevice:
    def test_with_device_applies_exactly_the_overrides(self):
        config = SystemConfig().with_device("ddr4-2400")
        spec = device_spec("ddr4-2400")
        for key, value in spec.memory_overrides().items():
            assert getattr(config.memory, key) == value, key

    def test_with_device_preserves_orthogonal_fields(self):
        base = SystemConfig()
        config = base.with_device("ddr3-1333")
        mem, base_mem = config.memory, base.memory
        assert mem.kind == base_mem.kind
        assert mem.logic_channels == base_mem.logic_channels
        assert mem.dimms_per_channel == base_mem.dimms_per_channel
        assert mem.prefetch == base_mem.prefetch
        assert config.cpu == base.cpu

    def test_ddr2_device_is_identity(self):
        base = SystemConfig()
        assert base.with_device("ddr2-667") == base
