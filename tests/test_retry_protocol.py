"""A retried command stream is still a legal FB-DIMM command stream.

Differential tests: run a faulted system with the protocol checker armed
(zero violations expected — replays book real frame slots and respect
tWTR/tFAW/frame-grid rules like first transmissions), replay the faulted
command journal offline through ``repro.check`` with the retry budget
set, and pin golden retry-counter values at fixed seeds so the fault
pattern itself is part of the regression surface.
"""

import dataclasses

import pytest

from repro.check.protocol import ProtocolChecker, check_trace
from repro.check.trace import (
    CheckEvent,
    TraceParams,
    default_params,
    load_events,
    save_events,
)
from repro.config import fbdimm_amb_prefetch, fbdimm_baseline
from repro.system import run_system

PROGRAMS = ("swim", "applu")


def faulted_config(**faults):
    base = dataclasses.replace(
        fbdimm_amb_prefetch(num_cores=2),
        instructions_per_core=4_000,
        check_protocol=True,
    )
    return base.with_faults(**faults)


class TestCheckedFaultedRuns:
    def test_faulted_run_passes_protocol_check(self):
        """System.run raises on any violation, so a clean return IS the
        assertion; the empty list is re-checked for explicitness."""
        config = faulted_config(error_rate=0.2, amb_bitflip_rate=0.1)
        result = run_system(config, list(PROGRAMS))
        assert result.protocol_violations == []
        assert result.mem.faults_corrupted > 0

    def test_faulted_baseline_run_passes_protocol_check(self):
        config = dataclasses.replace(
            fbdimm_baseline(num_cores=2),
            instructions_per_core=4_000,
            check_protocol=True,
        ).with_faults(error_rate=0.3, max_retries=2)
        result = run_system(config, list(PROGRAMS))
        assert result.protocol_violations == []
        assert result.mem.faults_dropped > 0  # recovery replays checked too

    def test_journal_records_retry_attempts(self):
        from repro.system import System

        config = faulted_config(error_rate=0.3)
        system = System(config, list(PROGRAMS))
        system.run()
        events = system.controller.collect_check_events()
        retried = [e for e in events if e.retry > 0]
        assert retried, "a rate-0.3 run must journal some replays"
        budget = config.faults.max_retries
        assert all(e.retry <= budget + 1 for e in retried)
        assert all(not e.is_dram_command for e in retried)


class TestOfflineJournalReplay:
    def test_saved_faulted_journal_passes_offline_check(self, tmp_path):
        from repro.system import System

        config = faulted_config(error_rate=0.25, amb_bitflip_rate=0.1)
        system = System(config, list(PROGRAMS))
        system.run()
        events = system.controller.collect_check_events()
        params = dataclasses.replace(
            TraceParams.from_memory_config(config.memory),
            max_retries=config.faults.max_retries,
        )
        path = tmp_path / "faulted.jsonl"
        save_events(path, params, events)
        loaded_params, loaded_events = load_events(path)
        assert loaded_params.max_retries == config.faults.max_retries
        # The retry annotation survives the JSONL round trip ("rt" code).
        assert any(e.retry > 0 for e in loaded_events)
        violations = ProtocolChecker(loaded_params).check(loaded_events)
        assert violations == []


class TestRetryBudgetRule:
    def params(self, max_retries=3):
        return dataclasses.replace(default_params("fbdimm"),
                                   max_retries=max_retries)

    def test_within_budget_passes(self):
        params = self.params(max_retries=3)
        frame = params.frame_ps
        events = [
            CheckEvent(time_ps=0, kind="SB_CMD", retry=0),
            CheckEvent(time_ps=frame * 4, kind="SB_CMD", retry=3),
            CheckEvent(time_ps=frame * 8, kind="SB_CMD", retry=4),  # recovery
        ]
        assert check_trace(params, events) == []

    def test_over_budget_flagged(self):
        params = self.params(max_retries=3)
        events = [CheckEvent(time_ps=0, kind="SB_CMD", retry=5)]
        violations = check_trace(params, events)
        assert [v.rule for v in violations] == ["retry-budget"]
        assert "attempt 5" in violations[0].message

    def test_rule_inert_without_budget(self):
        params = self.params(max_retries=0)
        events = [CheckEvent(time_ps=0, kind="SB_CMD", retry=99)]
        assert check_trace(params, events) == []

    def test_rule_applies_to_northbound_too(self):
        params = self.params(max_retries=1)
        frame = params.frame_ps
        phase = params.nb_phase_ps
        events = [
            CheckEvent(time_ps=phase, kind="NB_LINE", frames=2, retry=3),
            CheckEvent(
                time_ps=phase + 4 * frame, kind="NB_LINE", frames=2, retry=2
            ),
        ]
        violations = check_trace(params, events)
        assert [v.rule for v in violations] == ["retry-budget"]


class TestGoldenRetryNumbers:
    """Fault patterns are seeded; these exact counters are the regression
    surface for the retry state machine's timing and accounting."""

    def test_golden_moderate_rate(self):
        config = dataclasses.replace(
            fbdimm_amb_prefetch(num_cores=2), instructions_per_core=4_000
        ).with_faults(error_rate=0.1, amb_bitflip_rate=0.05, seed=0xFBD1)
        mem = run_system(config, list(PROGRAMS)).mem
        assert mem.faults_corrupted == 27
        assert mem.faults_retried_ok == 27
        assert mem.faults_dropped == 0
        assert mem.faults_injected == 27
        assert mem.amb_parity_errors == 0
        assert mem.fault_retry_latency_ps == 480_000

    def test_golden_heavy_rate_with_drops(self):
        config = dataclasses.replace(
            fbdimm_amb_prefetch(num_cores=2), instructions_per_core=4_000
        ).with_faults(
            error_rate=0.6, amb_bitflip_rate=0.3, seed=7, max_retries=1
        )
        mem = run_system(config, list(PROGRAMS)).mem
        assert mem.faults_corrupted == 159
        assert mem.faults_retried_ok == 64
        assert mem.faults_dropped == 95
        assert mem.faults_injected == 254
        assert mem.amb_parity_errors == 16
        assert mem.fault_retry_latency_ps == 5_334_000
        assert mem.faults_corrupted == mem.faults_retried_ok + mem.faults_dropped

    def test_golden_latency_matches_report_line(self):
        from repro.analysis.report import run_report

        config = dataclasses.replace(
            fbdimm_amb_prefetch(num_cores=2), instructions_per_core=4_000
        ).with_faults(error_rate=0.1, amb_bitflip_rate=0.05, seed=0xFBD1)
        report = run_report(run_system(config, list(PROGRAMS)))
        assert "27 corrupted transfers" in report
        assert "480.0 ns retry latency" in report


class TestTelemetryIntegration:
    def test_tracer_sees_retry_phases(self):
        from repro.telemetry import Tracer

        tracer = Tracer()
        config = dataclasses.replace(
            fbdimm_amb_prefetch(num_cores=2), instructions_per_core=4_000
        ).with_faults(error_rate=0.3)
        run_system(config, list(PROGRAMS), tracer=tracer)
        retries = tracer.registry.get("trace.fault_retries")
        assert retries is not None and retries.value > 0
        marked = [
            t for t in tracer.traces() if t.phase_time("retry") is not None
        ]
        assert marked, "some traced requests must carry a retry phase"

    def test_registry_exports_fault_counters(self):
        from repro.telemetry import registry_from_stats

        config = dataclasses.replace(
            fbdimm_amb_prefetch(num_cores=2), instructions_per_core=4_000
        ).with_faults(error_rate=0.3)
        result = run_system(config, list(PROGRAMS))
        snap = registry_from_stats(result.mem).snapshot()
        assert snap["mem.faults_corrupted"]["value"] == result.mem.faults_corrupted
        assert snap["mem.faults_retried_ok"]["value"] > 0
        assert (
            snap["mem.faults_corrupted"]["value"]
            == snap["mem.faults_retried_ok"]["value"]
            + snap["mem.faults_dropped"]["value"]
        )


class TestCliFaults:
    def test_faults_subcommand_prints_table(self, capsys):
        from repro.__main__ import main

        code = main([
            "faults", "--workload", "swim", "--insts", "2500",
            "--rates", "0.3", "--system", "fbd",
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "error rate" in out and "3.0e-01" in out and "off" in out

    def test_faults_subcommand_rejects_ddr2(self):
        from repro.__main__ import main

        with pytest.raises(SystemExit):
            main(["faults", "--system", "ddr2"])
