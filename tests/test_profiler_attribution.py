"""Hierarchical event-loop profiler attribution (repro.engine.profiler).

Covers the subsystem bucketing, scheduling-ancestry stacks with cycle
collapse, the collapsed-stack flame export round-trip, the profiler track
in the Chrome-trace exporter, and the zero-overhead-when-off guarantee at
the event level (``Event.origin`` stays unset without a profiler).
"""

import dataclasses

import pytest

from repro.config import fbdimm_amb_prefetch
from repro.engine.profiler import (
    MAX_STACK_DEPTH,
    EventLoopProfiler,
    callback_origin,
    callback_site,
    parse_collapsed,
    subsystem_of,
)
from repro.engine.simulator import Simulator
from repro.system import System
from repro.telemetry import Tracer, build_capture, chrome_trace, validate_chrome_trace


def profiled_run(insts=4_000):
    config = dataclasses.replace(
        fbdimm_amb_prefetch(2), instructions_per_core=insts
    )
    machine = System(config, ["swim", "mgrid"])
    profiler = EventLoopProfiler()
    machine.sim.profiler = profiler
    result = machine.run()
    return machine, profiler, result


class TestBuckets:
    @pytest.mark.parametrize(
        "module, bucket",
        [
            ("repro.engine.simulator", "engine"),
            ("repro.dram.bank", "dram"),
            ("repro.channel.fbdimm_link", "channel"),
            ("repro.controller.channel_controller", "controller"),
            ("repro.cpu.core", "cpu"),
            ("repro.workloads.multiprog", "workload"),
            ("repro.faults.retry", "faults"),
            ("repro.telemetry.spans", "telemetry"),
            ("repro.stats.collector", "telemetry"),
            ("repro.somewhere.new", "other"),
            ("os.path", "other"),
            ("", "other"),
        ],
    )
    def test_subsystem_of(self, module, bucket):
        assert subsystem_of(module) == bucket

    def test_callback_origin_of_bound_method(self):
        sim = Simulator()
        site, subsystem = callback_origin(sim.run)
        assert site == "simulator.Simulator.run"
        assert subsystem == "engine"
        assert callback_site(sim.run) == site


class TestStacks:
    def test_ancestry_recorded_through_scheduling(self):
        profiler = EventLoopProfiler()
        sim = Simulator()
        sim.profiler = profiler

        def child():
            pass

        def parent():
            sim.schedule(10, child)

        sim.schedule(0, parent)
        sim.run()
        chains = {frame.stack for frame in profiler.stacks.values()}
        parent_site = callback_site(parent)
        child_site = callback_site(child)
        assert (parent_site,) in chains
        assert (parent_site, child_site) in chains

    def test_self_scheduling_cycle_collapses(self):
        profiler = EventLoopProfiler()
        sim = Simulator()
        sim.profiler = profiler
        remaining = [50]

        def tick():
            if remaining[0] > 0:
                remaining[0] -= 1
                sim.schedule(10, tick)

        sim.schedule(0, tick)
        sim.run()
        # 51 executions, but the A -> A cycle folds to one single-frame
        # stack instead of 51 ever-deeper ones.
        site = callback_site(tick)
        assert set(profiler.stacks) == {(site,)}
        assert profiler.stacks[(site,)].events == 51

    def test_ping_pong_cycle_collapses_to_two_stacks(self):
        profiler = EventLoopProfiler()
        sim = Simulator()
        sim.profiler = profiler
        remaining = [30]

        def ping():
            if remaining[0] > 0:
                remaining[0] -= 1
                sim.schedule(10, pong)

        def pong():
            sim.schedule(10, ping)

        sim.schedule(0, ping)
        sim.run()
        assert all(len(stack) <= 2 for stack in profiler.stacks)

    def test_deep_acyclic_chain_truncates_to_max_depth(self):
        profiler = EventLoopProfiler()
        sim = Simulator()
        sim.profiler = profiler

        # Distinct callables (no cycle to collapse): depth must cap.
        def make(i):
            def step():
                if i + 1 < len(steps):
                    sim.schedule(10, steps[i + 1])

            step.__qualname__ = f"step_{i}"
            return step

        steps = [make(i) for i in range(MAX_STACK_DEPTH + 8)]
        sim.schedule(0, steps[0])
        sim.run()
        assert max(len(stack) for stack in profiler.stacks) == MAX_STACK_DEPTH

    def test_real_run_produces_multi_frame_chains(self):
        _, profiler, _ = profiled_run()
        assert profiler.total_events > 0
        assert any(len(f.stack) > 1 for f in profiler.stacks.values())
        # Totals reconcile: stack events partition total events.
        assert sum(f.events for f in profiler.stacks.values()) == profiler.total_events


class TestSubsystems:
    def test_self_partitions_and_cum_dominates(self):
        _, profiler, _ = profiled_run()
        rows = profiler.subsystems()
        names = {row.subsystem for row in rows}
        assert {"cpu", "controller"} <= names
        total_self = sum(row.self_s for row in rows)
        assert total_self == pytest.approx(profiler.total_wall_s)
        for row in rows:
            assert row.cum_s >= row.self_s - 1e-12
        # The root of every chain is the CPU side, so cpu cumulative time
        # must cover (almost) the whole run.
        cpu = next(row for row in rows if row.subsystem == "cpu")
        assert cpu.cum_s >= 0.9 * profiler.total_wall_s

    def test_tree_report_renders(self):
        _, profiler, _ = profiled_run()
        text = profiler.tree_report(limit=5)
        assert "subsystem" in text and "cum ms" in text
        assert "hottest scheduling chains:" in text
        assert "->" in text


class TestFlameExport:
    def test_collapsed_round_trips_through_parser(self):
        _, profiler, _ = profiled_run()
        lines = profiler.to_collapsed()
        assert lines, "expected at least one stack above 1 us"
        parsed = parse_collapsed("\n".join(lines) + "\n")
        assert len(parsed) == len(lines)
        for frames, weight in parsed:
            assert weight > 0
            # Rooted at a subsystem bucket, then the scheduling frames.
            assert frames[0] in {
                "engine", "dram", "channel", "controller", "cpu",
                "workload", "faults", "telemetry", "other",
            }
            assert len(frames) >= 2

    @pytest.mark.parametrize(
        "text, message",
        [
            ("frame;frame", "missing stack or value"),
            ("frame;frame x", "not an integer"),
            ("frame;frame 0", "non-positive"),
            ("frame;;frame 10", "empty frame"),
        ],
    )
    def test_parser_rejects_malformed(self, text, message):
        with pytest.raises(ValueError, match=message):
            parse_collapsed(text)

    def test_parser_skips_blank_lines(self):
        assert parse_collapsed("\n a;b 3 \n\n") == [(["a", "b"], 3)]


class TestChromeProfilerTrack:
    def test_profiler_track_exported_and_schema_valid(self):
        config = dataclasses.replace(
            fbdimm_amb_prefetch(2), instructions_per_core=4_000
        )
        tracer = Tracer()
        machine = System(config, ["swim", "mgrid"], tracer=tracer)
        profiler = EventLoopProfiler()
        machine.sim.profiler = profiler
        result = machine.run()
        capture = build_capture(
            result, tracer,
            check_events=machine.controller.collect_check_events(),
            profile=profiler.to_records() + profiler.stack_records(),
        )
        doc = chrome_trace(capture)
        assert validate_chrome_trace(doc) == []
        events = doc["traceEvents"]
        named = [
            e for e in events
            if e.get("ph") == "M" and e.get("name") == "process_name"
            and "profiler" in e["args"]["name"]
        ]
        assert named, "profiler process metadata missing"
        pid = named[0]["pid"]
        spans = [e for e in events if e.get("pid") == pid and e.get("ph") == "X"]
        assert spans
        # One thread per subsystem; durations mirror stack wall time.
        assert all("stack" in span["args"] for span in spans)
        assert all(span["dur"] >= 0 for span in spans)

    def test_capture_without_profile_has_no_profiler_track(self):
        config = dataclasses.replace(
            fbdimm_amb_prefetch(2), instructions_per_core=2_000
        )
        tracer = Tracer()
        machine = System(config, ["swim", "mgrid"], tracer=tracer)
        result = machine.run()
        capture = build_capture(
            result, tracer,
            check_events=machine.controller.collect_check_events(),
        )
        doc = chrome_trace(capture)
        assert validate_chrome_trace(doc) == []
        assert not [
            e for e in doc["traceEvents"]
            if e.get("ph") == "M" and e.get("name") == "process_name"
            and "profiler" in e["args"]["name"]
        ]


class TestZeroOverheadOff:
    def test_unprofiled_events_carry_no_origin(self):
        sim = Simulator()
        fired = []
        event = sim.schedule(10, lambda: fired.append(True))
        assert event.origin is None
        sim.run()
        assert fired == [True]

    def test_profiled_run_matches_unprofiled_counts(self):
        config = dataclasses.replace(
            fbdimm_amb_prefetch(2), instructions_per_core=3_000
        )
        plain = System(config, ["swim", "mgrid"]).run()
        machine = System(config, ["swim", "mgrid"])
        machine.sim.profiler = EventLoopProfiler()
        profiled = machine.run()
        assert profiled.events_fired == plain.events_fired
        assert profiled.elapsed_ps == plain.elapsed_ps
        assert dataclasses.asdict(profiled.mem) == dataclasses.asdict(plain.mem)
