"""Tests for the CLI sweep subcommand and axis parsing."""

import pytest

from repro.__main__ import _parse_axes, main


class TestAxisParsing:
    def test_single_axis(self):
        assert _parse_axes(["k=2,4,8"]) == {"k": [2, 4, 8]}

    def test_multiple_axes(self):
        axes = _parse_axes(["k=2,4", "rate=667,800"])
        assert axes == {"k": [2, 4], "rate": [667, 800]}

    def test_string_axis(self):
        assert _parse_axes(["assoc=direct,full"]) == {"assoc": ["direct", "full"]}

    def test_missing_equals(self):
        with pytest.raises(SystemExit):
            _parse_axes(["k2,4"])

    def test_unknown_axis(self):
        with pytest.raises(SystemExit):
            _parse_axes(["banks=4,8"])

    def test_empty_values(self):
        with pytest.raises(SystemExit):
            _parse_axes(["k="])

    def test_no_axes(self):
        with pytest.raises(SystemExit):
            _parse_axes([])


class TestSweepCommand:
    def test_sweep_runs_and_charts(self, capsys):
        code = main([
            "sweep", "k=2,4", "--workload", "swim", "--insts", "3000",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "Sweep over k" in out
        assert "#" in out  # bar chart rendered

    def test_sweep_two_axes(self, capsys):
        code = main([
            "sweep", "k=4", "channels=1,2", "--workload", "vpr",
            "--insts", "3000",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "channels" in out
