"""Tests for the CLI sweep subcommand and axis parsing."""

import pytest

from repro.__main__ import _parse_axes, main


class TestAxisParsing:
    def test_single_axis(self):
        assert _parse_axes(["k=2,4,8"]) == {"k": [2, 4, 8]}

    def test_multiple_axes(self):
        axes = _parse_axes(["k=2,4", "rate=667,800"])
        assert axes == {"k": [2, 4], "rate": [667, 800]}

    def test_string_axis(self):
        assert _parse_axes(["assoc=direct,full"]) == {"assoc": ["direct", "full"]}

    def test_missing_equals(self):
        with pytest.raises(SystemExit):
            _parse_axes(["k2,4"])

    def test_unknown_axis(self):
        with pytest.raises(SystemExit):
            _parse_axes(["banks=4,8"])

    def test_empty_values(self):
        with pytest.raises(SystemExit):
            _parse_axes(["k="])

    def test_no_axes(self):
        with pytest.raises(SystemExit):
            _parse_axes([])


class TestSweepCommand:
    def test_sweep_runs_and_charts(self, capsys, tmp_path):
        code = main([
            "sweep", "k=2,4", "--workload", "swim", "--insts", "3000",
            "--cache-dir", str(tmp_path / "cache"),
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "Sweep over k" in out
        assert "#" in out  # bar chart rendered
        assert "[cache: 2 simulated" in out

    def test_sweep_two_axes(self, capsys):
        code = main([
            "sweep", "k=4", "channels=1,2", "--workload", "vpr",
            "--insts", "3000", "--no-cache",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "channels" in out

    def test_sweep_cache_round_trip(self, capsys, tmp_path):
        argv = [
            "sweep", "k=2,4", "--workload", "swim", "--insts", "3000",
            "--cache-dir", str(tmp_path / "cache"), "--jobs", "2",
        ]
        assert main(argv) == 0
        first = capsys.readouterr().out
        assert "[cache: 2 simulated, 0 served" in first
        assert main(argv) == 0
        second = capsys.readouterr().out
        assert "[cache: 0 simulated, 2 served" in second
        # identical tables either way
        assert first.split("[cache")[0] == second.split("[cache")[0]
