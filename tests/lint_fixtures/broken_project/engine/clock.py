# Seeded defect: wall-clock read in simulation code.
import time

now = time.time()
