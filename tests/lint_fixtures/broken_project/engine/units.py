# Seeded defect: picoseconds + nanoseconds without a conversion.
total_ps = delay_ps + gap_ns
