# Seeded defect: the file does not parse.
def f(:
