# Writes `reads` but not `lost_events` (the seeded counter-drift defect).
def account(s: object) -> None:
    s.reads += 1
