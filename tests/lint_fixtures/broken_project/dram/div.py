# Seeded defect: float division on a picosecond time in a hot package.
half_ps = window_ps / 2
