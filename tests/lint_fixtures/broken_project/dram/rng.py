# Seeded defect: module-level random stream (unseeded, order-dependent).
import random

choice = random.random()
