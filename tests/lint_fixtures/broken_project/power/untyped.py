# Seeded defect: unannotated function in package code.
def scale(x):
    return x
