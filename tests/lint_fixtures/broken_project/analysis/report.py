# Report surface: reads both counters.
def run_report(mem: object) -> str:
    return str(mem.reads) + str(mem.lost_events)
