# Seeded defect: iteration order of a set is hash-dependent.
for item in {1, 2}:
    print(item)
