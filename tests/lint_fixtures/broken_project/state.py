# Seeded defect: module-level mutable written from worker-reachable code.
_CACHE: dict = {}


def run_one(x: int) -> int:
    _CACHE[x] = x
    return x
