# Worker entry point: everything it imports runs in worker processes.
import repro.state
