# Registry surface: exports both counters.
def registry_from_stats(stats: object) -> object:
    return (stats.reads, stats.lost_events)
