# Seeded defect: a *_ps function returning a nanosecond quantity.
def frame_gap_ps(delay_ns: int) -> int:
    return delay_ns
