# Seeded defect: `lost_events` is exported everywhere but never written.
from dataclasses import dataclass


@dataclass
class MemSystemStats:
    reads: int = 0
    lost_events: int = 0
