"""Timeline and per-command energy tests.

Covers the windowed telemetry layer end to end: golden Micron datasheet
energies, the Figure 13 compatibility contract (per-command model ==
aggregate PowerModel on refresh-free runs), window-edge semantics on a
stub schedule, the conservation invariant and zero-overhead guard on
real runs, JSONL/CSV round-trips, phase detection, diffing, the
``repro timeline`` CLI, and the WindowRecord counter-drift lint spec.
"""

import dataclasses
import json

import pytest

from repro.config import TimelineConfig, ddr2_baseline, fbdimm_amb_prefetch, fbdimm_baseline
from repro.engine.simulator import Simulator
from repro.power.ddr2_power import (
    MicronPowerCalculator,
    relative_dynamic_power,
)
from repro.power.energy import (
    CommandEnergyModel,
    EnergyAccountant,
    EnergyBreakdown,
    relative_dynamic_power_from_commands,
)
from repro.serialize import canonical_dumps, encode_value
from repro.stats.collector import MemSystemStats
from repro.system import run_system
from repro.timeline.collector import TimelineCollector, _percentile_ps
from repro.timeline.diff import diff_timelines, format_diff
from repro.timeline.export import (
    WINDOW_FIELDS,
    read_timeline_jsonl,
    timeline_csv_lines,
    validate_timeline,
    write_timeline_jsonl,
)
from repro.timeline.phases import detect_phases
from repro.timeline.records import TimelineResult, WindowRecord
from repro.timeline.report import sparkline, timeline_report

INSTS = 5000
PROGRAMS = ("wupwise", "swim")


def _with_insts(config, insts=INSTS):
    return dataclasses.replace(config, instructions_per_core=insts)


@pytest.fixture(scope="module")
def fbd_base_run():
    return run_system(_with_insts(fbdimm_baseline(num_cores=2)), PROGRAMS)


@pytest.fixture(scope="module")
def fbd_ap_run():
    return run_system(_with_insts(fbdimm_amb_prefetch(num_cores=2)), PROGRAMS)


@pytest.fixture(scope="module")
def ap_timeline_run():
    config = _with_insts(fbdimm_amb_prefetch(num_cores=2)).with_timeline(
        window_ns=200.0
    )
    return run_system(config, PROGRAMS)


def stats_with(**kw):
    s = MemSystemStats()
    for key, value in kw.items():
        setattr(s, key, value)
    return s


# ----------------------------------------------------------------------
# Golden datasheet energies
# ----------------------------------------------------------------------


class TestGoldenEnergies:
    """Hand-computed IDD x VDD x t values for the default DDR2-667 part."""

    calc = MicronPowerCalculator()

    def test_act_pre_pair(self):
        # (IDD0 - IDD3N) x VDD x tRC x chips = 40 mA x 1.8 V x 54 ns x 8
        assert self.calc.act_pre_energy_nj() == pytest.approx(31.104)

    def test_column_read(self):
        # (IDD4R - IDD3N) x 0.35 x VDD x burst x chips
        assert self.calc.column_energy_nj() == pytest.approx(8.1648)

    def test_column_write(self):
        assert self.calc.column_energy_nj(is_write=True) == pytest.approx(8.4672)

    def test_act_to_column_ratio_is_papers_four_to_one(self):
        assert self.calc.act_to_column_ratio() == pytest.approx(
            31.104 / 8.1648
        )
        assert 3.5 < self.calc.act_to_column_ratio() < 4.2

    def test_refresh(self):
        # (IDD5 - IDD2N) x VDD x tRFC x chips = 175 mA x 1.8 V x 127.5 ns x 8
        assert self.calc.refresh_energy_nj() == pytest.approx(321.3)

    def test_standby_power(self):
        # IDD2N x VDD x chips = 40 mA x 1.8 V x 8 = 0.576 W per rank
        assert self.calc.standby_power_w() == pytest.approx(0.576)

    def test_powerdown_power(self):
        # IDD2P x VDD x chips = 7 mA x 1.8 V x 8 = 0.1008 W per rank
        assert self.calc.powerdown_power_w() == pytest.approx(0.1008)

    def test_default_refresh_units_match_datasheet_ratio(self):
        computed = self.calc.refresh_energy_nj() / self.calc.column_energy_nj()
        assert CommandEnergyModel().refresh_units == pytest.approx(
            computed, abs=0.01
        )


class TestCommandEnergyModel:
    def test_weighting(self):
        model = CommandEnergyModel()
        assert model.dynamic_energy_units(10, 15, 5, 0) == pytest.approx(60.0)

    def test_refresh_weight(self):
        model = CommandEnergyModel(refresh_units=40.0)
        assert model.dynamic_energy_units(0, 0, 0, 2) == pytest.approx(80.0)

    def test_negative_counts_rejected(self):
        with pytest.raises(ValueError):
            CommandEnergyModel().dynamic_energy_units(-1, 0, 0, 0)

    def test_matches_aggregate_model_on_refresh_free_counts(self):
        # The compatibility contract: RD + WR == column_accesses and no
        # refreshes make the split model identical to 4*ACT + CAS.
        base = stats_with(
            activates=100, column_accesses=100, column_reads=60,
            column_writes=40,
        )
        ap = stats_with(
            activates=50, column_accesses=120, column_reads=90,
            column_writes=30,
        )
        assert relative_dynamic_power_from_commands(ap, base) == \
            relative_dynamic_power(ap, base)

    def test_zero_baseline_rejected(self):
        with pytest.raises(ValueError):
            relative_dynamic_power_from_commands(
                MemSystemStats(), MemSystemStats()
            )


class TestEnergyAccountant:
    def test_background_splits_awake_and_powerdown(self):
        acct = EnergyAccountant(ranks=2)
        calc = acct.calculator
        breakdown = acct.interval_energy(
            activates=0, column_reads=0, column_writes=0, refreshes=0,
            interval_ps=10_000, powerdown_ps=4_000,
        )
        expected = 2 * (
            calc.standby_power_w() * 6.0 + calc.powerdown_power_w() * 4.0
        )
        assert breakdown.background_nj == pytest.approx(expected)
        assert breakdown.dynamic_nj == 0.0

    def test_dynamic_components(self):
        acct = EnergyAccountant()
        calc = acct.calculator
        b = acct.interval_energy(
            activates=3, column_reads=2, column_writes=1, refreshes=1,
            interval_ps=1_000,
        )
        assert b.act_nj == pytest.approx(3 * calc.act_pre_energy_nj())
        assert b.rd_nj == pytest.approx(2 * calc.column_energy_nj())
        assert b.wr_nj == pytest.approx(calc.column_energy_nj(is_write=True))
        assert b.refresh_nj == pytest.approx(calc.refresh_energy_nj())
        assert b.total_nj == pytest.approx(b.dynamic_nj + b.background_nj)

    def test_powerdown_clamped_to_interval(self):
        acct = EnergyAccountant()
        b = acct.interval_energy(0, 0, 0, 0, interval_ps=1_000,
                                 powerdown_ps=5_000)
        # A gap credited to the window it closes in can exceed the window
        # length; the background split clamps so awake time never goes
        # negative.
        assert b.background_nj == pytest.approx(
            acct.calculator.powerdown_power_w() * 1.0
        )

    def test_negative_interval_rejected(self):
        with pytest.raises(ValueError):
            EnergyAccountant().interval_energy(0, 0, 0, 0, interval_ps=-1)

    def test_breakdown_defaults(self):
        assert EnergyBreakdown().total_nj == 0.0


class TestFig13Equivalence:
    """Figure 13's switch to the per-command model changes no numbers."""

    def test_relative_power_identical_on_real_runs(
        self, fbd_base_run, fbd_ap_run
    ):
        old = relative_dynamic_power(fbd_ap_run.mem, fbd_base_run.mem)
        new = relative_dynamic_power_from_commands(
            fbd_ap_run.mem, fbd_base_run.mem
        )
        assert new == old  # bit-exact, not approx

    def test_contract_preconditions_hold(self, fbd_base_run, fbd_ap_run):
        for result in (fbd_base_run, fbd_ap_run):
            mem = result.mem
            assert mem.column_reads + mem.column_writes == mem.column_accesses
            assert mem.refreshes == 0


# ----------------------------------------------------------------------
# Window-edge semantics on a stub schedule
# ----------------------------------------------------------------------


def make_collector(window_ns=1.0, max_windows=100_000, device=None):
    sim = Simulator()
    stats = MemSystemStats()
    config = TimelineConfig(
        enabled=True, window_ns=window_ns, max_windows=max_windows
    )
    counters = device if device is not None else {}
    collector = TimelineCollector(
        sim=sim,
        stats=stats,
        config=config,
        accountant=EnergyAccountant(),
        device_counters=lambda: dict(counters),
        queue_depth=lambda: 0,
    )
    return sim, stats, collector


def complete_read(stats, latency_ps=63_000):
    stats.record_read_completion(
        latency_ps, 0, is_demand=True, amb_hit=False, line_bytes=64
    )


class TestWindowEdges:
    def test_requires_enabled_config(self):
        with pytest.raises(ValueError, match="enabled"):
            TimelineCollector(
                sim=Simulator(),
                stats=MemSystemStats(),
                config=TimelineConfig(),
                accountant=EnergyAccountant(),
                device_counters=dict,
                queue_depth=lambda: 0,
            )

    def test_double_start_rejected(self):
        sim, _, collector = make_collector()
        collector.start()
        with pytest.raises(RuntimeError):
            collector.start()

    def test_boundary_tie_lands_in_next_window(self):
        # The tick is scheduled at start(); an event sharing its timestamp
        # was scheduled later, so the tick fires first and the completion
        # counts in the *next* window (half-open [start, end)).
        sim, stats, collector = make_collector(window_ns=1.0)
        collector.start()
        sim.schedule(1000, lambda: complete_read(stats))
        sim.run(until=2500)
        timeline = collector.finalize(sim.now)
        assert [w.demand_reads for w in timeline.windows] == [0, 1, 0]
        assert [(w.start_ps, w.end_ps) for w in timeline.windows] == [
            (0, 1000), (1000, 2000), (2000, 2500),
        ]

    def test_zero_length_final_window_never_emitted(self):
        sim, stats, collector = make_collector(window_ns=1.0)
        collector.start()
        sim.schedule(500, lambda: complete_read(stats))
        sim.run(until=2000)
        timeline = collector.finalize(sim.now)  # ends exactly on a boundary
        assert len(timeline.windows) == 2
        assert timeline.windows[-1].end_ps == 2000
        assert validate_timeline(timeline) == []

    def test_final_partial_window(self):
        sim, stats, collector = make_collector(window_ns=1.0)
        collector.start()
        sim.schedule(1200, lambda: complete_read(stats))
        sim.run(until=1300)
        timeline = collector.finalize(sim.now)
        last = timeline.windows[-1]
        assert (last.start_ps, last.end_ps) == (1000, 1300)
        assert last.demand_reads == 1

    def test_reset_drops_windows_and_reanchors(self):
        sim, stats, collector = make_collector(window_ns=1.0)
        collector.start()
        sim.schedule(300, lambda: complete_read(stats))
        sim.run(until=2400)
        # Mimic the controller's warm-up discard mid-window.
        stats.reset_measurement()
        collector.on_measurement_reset()
        sim.schedule(200, lambda: complete_read(stats))  # at t=2600
        sim.run(until=3500)
        timeline = collector.finalize(sim.now)
        assert timeline.resets == 1
        # The tick cadence stayed on the absolute grid: the first
        # post-reset window is the short [2400, 3000) remainder.
        assert [(w.start_ps, w.end_ps) for w in timeline.windows] == [
            (2400, 3000), (3000, 3500),
        ]
        assert sum(w.demand_reads for w in timeline.windows) == 1
        assert validate_timeline(timeline) == []

    def test_max_windows_truncates(self):
        sim, _, collector = make_collector(window_ns=1.0, max_windows=2)
        collector.start()
        sim.run(until=10_000)
        timeline = collector.finalize(sim.now)
        assert timeline.truncated
        assert len(timeline.windows) == 2
        # The ended tick series stops adding events.
        assert sim.queue.peek_time() is None

    def test_device_counter_deltas(self):
        device = {"activates": 0, "column_reads": 0}
        sim, _, collector = make_collector(window_ns=1.0, device=device)
        collector.start()

        def bump():
            device["activates"] += 3
            device["column_reads"] += 5

        sim.schedule(500, bump)
        sim.run(until=2000)
        timeline = collector.finalize(sim.now)
        assert [w.activates for w in timeline.windows] == [3, 0]
        assert timeline.windows[0].energy_act_nj == pytest.approx(
            3 * MicronPowerCalculator().act_pre_energy_nj()
        )

    def test_window_percentiles_use_fresh_samples_only(self):
        sim, stats, collector = make_collector(window_ns=1.0)
        collector.start()
        sim.schedule(100, lambda: complete_read(stats, 10_000))
        sim.schedule(200, lambda: complete_read(stats, 30_000))
        sim.schedule(1100, lambda: complete_read(stats, 99_000))
        sim.run(until=2000)
        timeline = collector.finalize(sim.now)
        w0, w1 = timeline.windows
        assert (w0.latency_p50_ps, w0.latency_max_ps) == (10_000, 30_000)
        assert (w1.latency_p50_ps, w1.latency_max_ps) == (99_000, 99_000)


class TestPercentile:
    def test_nearest_rank(self):
        samples = sorted([10, 20, 30, 40, 50])
        assert _percentile_ps(samples, 50) == 30
        assert _percentile_ps(samples, 95) == 50
        assert _percentile_ps(samples, 99) == 50

    def test_single_sample(self):
        assert _percentile_ps([7], 50) == 7
        assert _percentile_ps([7], 99) == 7

    def test_empty(self):
        assert _percentile_ps([], 50) == 0


class TestScheduleEvery:
    def test_period_must_be_positive(self):
        with pytest.raises(ValueError):
            Simulator().schedule_every(0, lambda: None)

    def test_fires_on_the_grid(self):
        sim = Simulator()
        fired = []
        sim.schedule_every(100, lambda: fired.append(sim.now))
        sim.run(until=350)
        assert fired == [100, 200, 300]

    def test_returning_false_ends_the_series(self):
        sim = Simulator()
        fired = []

        def tick():
            fired.append(sim.now)
            return False if len(fired) >= 2 else None

        sim.schedule_every(100, tick)
        sim.run(until=10_000)
        assert fired == [100, 200]
        assert sim.queue.peek_time() is None


# ----------------------------------------------------------------------
# Real runs: conservation, zero overhead, residency
# ----------------------------------------------------------------------

#: Window fields whose sum over all windows must equal the run total.
_CONSERVED = (
    ("demand_reads", "demand_reads"),
    ("sw_prefetch_reads", "sw_prefetch_reads"),
    ("writes", "writes"),
    ("amb_hits", "amb_hits"),
    ("bytes_read", "bytes_read"),
    ("bytes_written", "bytes_written"),
    ("demand_latency_sum_ps", "demand_latency_sum_ps"),
    ("activates", "activates"),
    ("column_reads", "column_reads"),
    ("column_writes", "column_writes"),
    ("refreshes", "refreshes"),
    ("row_hits", "row_hits"),
    ("row_misses", "row_misses"),
    ("prefetched_lines", "prefetched_lines"),
    ("idle_ps", "idle_ps"),
    ("powerdown_ps", "powerdown_ps"),
)


class TestRealRuns:
    def test_timeline_off_by_default(self, fbd_ap_run):
        assert fbd_ap_run.timeline is None

    def test_enabling_does_not_change_the_simulation(
        self, fbd_ap_run, ap_timeline_run
    ):
        assert ap_timeline_run.core_ipcs == fbd_ap_run.core_ipcs
        assert ap_timeline_run.elapsed_ps == fbd_ap_run.elapsed_ps
        assert ap_timeline_run.mem.demand_reads == fbd_ap_run.mem.demand_reads
        assert ap_timeline_run.mem.bytes_read == fbd_ap_run.mem.bytes_read
        assert ap_timeline_run.mem.activates == fbd_ap_run.mem.activates

    def test_off_runs_are_bit_identical(self):
        config = _with_insts(fbdimm_amb_prefetch(num_cores=2), 3000)
        a = run_system(config, PROGRAMS)
        b = run_system(config, PROGRAMS)
        assert canonical_dumps(encode_value(a)) == \
            canonical_dumps(encode_value(b))

    def test_conservation_invariant(self, ap_timeline_run):
        timeline = ap_timeline_run.timeline
        assert timeline is not None and timeline.windows
        mem = ap_timeline_run.mem
        for window_field, stats_field in _CONSERVED:
            total = sum(getattr(w, window_field) for w in timeline.windows)
            assert total == getattr(mem, stats_field), window_field

    def test_windows_validate_clean(self, ap_timeline_run):
        assert validate_timeline(ap_timeline_run.timeline) == []

    def test_prefetch_run_shows_amb_traffic(self, ap_timeline_run):
        timeline = ap_timeline_run.timeline
        assert sum(w.amb_hits for w in timeline.windows) > 0
        assert max(w.bandwidth_gbs for w in timeline.windows) > 0.0

    def test_energy_totals_positive_and_consistent(self, ap_timeline_run):
        for w in ap_timeline_run.timeline.windows:
            assert w.energy_total_nj == pytest.approx(
                w.energy_dynamic_nj + w.energy_background_nj
            )
            assert w.energy_background_nj > 0.0  # ranks always pay standby

    def test_idle_powerdown_residency_visible(self):
        # A single slow core on DDR2 leaves the subsystem idle between
        # misses — the paper's power-down opportunity.
        config = _with_insts(ddr2_baseline(num_cores=1), 4000).with_timeline(
            window_ns=200.0
        )
        result = run_system(config, ("wupwise",))
        mem = result.mem
        assert mem.idle_gaps > 0
        assert mem.idle_ps > 0
        assert 0 < mem.powerdown_ps <= mem.idle_ps
        spans = sum(w.powerdown_ps for w in result.timeline.windows)
        assert spans == mem.powerdown_ps

    def test_warmup_reset_drops_prefix_windows(self):
        config = _with_insts(fbdimm_amb_prefetch(num_cores=2), 4000)
        config = dataclasses.replace(config, warmup_instructions=1000)
        result = run_system(config.with_timeline(window_ns=500.0), PROGRAMS)
        timeline = result.timeline
        assert timeline.resets == 1
        assert timeline.windows[0].start_ps > 0
        # Post-reset sums still reconcile with the (reset) run totals.
        total = sum(w.demand_reads for w in timeline.windows)
        assert total == result.mem.demand_reads


# ----------------------------------------------------------------------
# Serialization and validation
# ----------------------------------------------------------------------


def synthetic_timeline(depths=(1, 1, 1, 1), window_ps=1000):
    windows = [
        WindowRecord(
            index=i,
            start_ps=i * window_ps,
            end_ps=(i + 1) * window_ps,
            demand_reads=2,
            bytes_read=128,
            demand_latency_sum_ps=100_000,
            queue_depth=depth,
        )
        for i, depth in enumerate(depths)
    ]
    return TimelineResult(window_ps=window_ps, windows=windows)


class TestSerialization:
    def test_jsonl_round_trip(self, ap_timeline_run, tmp_path):
        timeline = ap_timeline_run.timeline
        path = tmp_path / "tl.jsonl"
        write_timeline_jsonl(timeline, path, meta={"system": "fbd-ap"})
        loaded, header = read_timeline_jsonl(path)
        assert loaded == timeline
        assert header["num_windows"] == len(timeline.windows)
        assert header["meta"]["system"] == "fbd-ap"

    def test_empty_file_rejected(self, tmp_path):
        path = tmp_path / "empty.jsonl"
        path.write_text("")
        with pytest.raises(ValueError, match="empty"):
            read_timeline_jsonl(path)

    def test_wrong_format_rejected(self, tmp_path):
        path = tmp_path / "wrong.jsonl"
        path.write_text('{"format": "other", "version": 1}\n')
        with pytest.raises(ValueError, match="not a repro-timeline"):
            read_timeline_jsonl(path)

    def test_wrong_version_rejected(self, tmp_path):
        path = tmp_path / "v99.jsonl"
        path.write_text('{"format": "repro-timeline", "version": 99}\n')
        with pytest.raises(ValueError, match="version"):
            read_timeline_jsonl(path)

    def test_unknown_record_type_rejected(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text(
            '{"format": "repro-timeline", "version": 1, "window_ps": 10}\n'
            '{"type": "mystery"}\n'
        )
        with pytest.raises(ValueError, match="unknown record type"):
            read_timeline_jsonl(path)

    def test_csv_columns_and_rows(self):
        timeline = synthetic_timeline()
        lines = timeline_csv_lines(timeline)
        assert len(lines) == 1 + len(timeline.windows)
        header = lines[0].split(",")
        assert list(WINDOW_FIELDS) == header[: len(WINDOW_FIELDS)]
        assert "bandwidth_gbs" in header and "avg_power_w" in header
        row = lines[1].split(",")
        # 128 B over the 1 ns window = 128 GB/s; avg latency 50 ns.
        assert row[header.index("bandwidth_gbs")] == "128"
        assert row[header.index("avg_latency_ns")] == "50"

    def test_result_serializes_with_timeline(self, ap_timeline_run):
        # SimulationResult round-trips through the run-cache serializer
        # with the timeline attached.
        from repro.serialize import decode_value
        from repro.system import SimulationResult

        encoded = encode_value(ap_timeline_run)
        decoded = decode_value(encoded, SimulationResult)
        assert decoded.timeline == ap_timeline_run.timeline


class TestValidation:
    def test_clean(self):
        assert validate_timeline(synthetic_timeline()) == []

    def test_bad_index(self):
        tl = synthetic_timeline()
        windows = list(tl.windows)
        windows[1] = dataclasses.replace(windows[1], index=7)
        issues = validate_timeline(dataclasses.replace(tl, windows=windows))
        assert any("index 7" in i for i in issues)

    def test_non_positive_duration(self):
        w = WindowRecord(index=0, start_ps=100, end_ps=100)
        issues = validate_timeline(
            TimelineResult(window_ps=100, windows=[w])
        )
        assert any("non-positive duration" in i for i in issues)

    def test_gap_between_windows(self):
        tl = synthetic_timeline()
        windows = list(tl.windows)
        windows[2] = dataclasses.replace(
            windows[2], start_ps=windows[2].start_ps + 1
        )
        issues = validate_timeline(dataclasses.replace(tl, windows=windows))
        assert any("previous ended" in i for i in issues)

    def test_interior_window_too_long(self):
        w0 = WindowRecord(index=0, start_ps=0, end_ps=5000)
        w1 = WindowRecord(index=1, start_ps=5000, end_ps=6000)
        issues = validate_timeline(
            TimelineResult(window_ps=1000, windows=[w0, w1])
        )
        assert any("exceeds" in i for i in issues)

    def test_negative_counter(self):
        w = WindowRecord(index=0, start_ps=0, end_ps=1000, demand_reads=-1)
        issues = validate_timeline(TimelineResult(window_ps=1000, windows=[w]))
        assert any("negative demand_reads" in i for i in issues)


# ----------------------------------------------------------------------
# Phases, diff, report
# ----------------------------------------------------------------------


class TestPhases:
    def test_detects_a_step(self):
        tl = synthetic_timeline(depths=[1] * 8 + [10] * 8)
        changes = detect_phases(
            tl, metrics=("queue_depth",), half_window=4, threshold=0.5
        )
        assert len(changes) == 1
        assert changes[0].window_index == 8
        assert changes[0].before == pytest.approx(1.0)
        assert changes[0].after == pytest.approx(10.0)
        assert changes[0].relative_shift == pytest.approx(0.9)

    def test_flat_series_has_no_changes(self):
        tl = synthetic_timeline(depths=[5] * 16)
        assert detect_phases(tl, metrics=("queue_depth",)) == []

    def test_below_threshold_ignored(self):
        tl = synthetic_timeline(depths=[10] * 8 + [11] * 8)
        assert detect_phases(tl, metrics=("queue_depth",)) == []

    def test_bad_parameters_rejected(self):
        tl = synthetic_timeline()
        with pytest.raises(ValueError):
            detect_phases(tl, half_window=0)
        with pytest.raises(ValueError):
            detect_phases(tl, threshold=0.0)


class TestDiff:
    def test_mismatched_grids_rejected(self):
        with pytest.raises(ValueError, match="window size mismatch"):
            diff_timelines(
                synthetic_timeline(window_ps=1000),
                synthetic_timeline(window_ps=2000),
            )

    def test_aligned_summary(self):
        a = synthetic_timeline(depths=(2, 2, 2, 2))
        b = synthetic_timeline(depths=(4, 4, 4, 4, 4))
        diff = diff_timelines(a, b)
        assert diff.aligned_windows == 4
        assert (diff.extra_a, diff.extra_b) == (0, 1)
        queue = next(m for m in diff.metrics if m.metric == "queue_depth")
        assert queue.mean_a == pytest.approx(2.0)
        assert queue.mean_b == pytest.approx(4.0)
        assert queue.mean_delta == pytest.approx(2.0)
        assert queue.relative == pytest.approx(1.0)
        assert queue.max_abs_delta == pytest.approx(2.0)

    def test_format_mentions_labels_and_extras(self):
        a = synthetic_timeline(depths=(2, 2))
        b = synthetic_timeline(depths=(4, 4, 4))
        text = format_diff(diff_timelines(a, b), a, b, "base", "ap")
        assert "base vs ap" in text
        assert "ap has 1 extra windows" in text
        assert "queue_depth" in text


class TestReport:
    def test_sparkline_empty(self):
        assert sparkline([]) == ""

    def test_sparkline_flat_zero(self):
        assert sparkline([0.0, 0.0]) == "  "

    def test_sparkline_downsamples_to_width(self):
        assert len(sparkline(list(range(200)), width=60)) == 60

    def test_sparkline_peak_gets_the_tallest_bar(self):
        assert sparkline([0.0, 1.0]).endswith("█")

    def test_report_contents(self, ap_timeline_run):
        text = timeline_report(ap_timeline_run.timeline, label="ap")
        assert "timeline: ap" in text
        assert "windows x" in text
        assert "bandwidth GB/s" in text
        assert "energy:" in text
        assert "residency:" in text

    def test_report_flags_truncation_and_resets(self):
        tl = dataclasses.replace(
            synthetic_timeline(), resets=2, truncated=True
        )
        text = timeline_report(tl)
        assert "resets=2" in text
        assert "TRUNCATED" in text

    def test_empty_timeline_report(self):
        text = timeline_report(TimelineResult(window_ps=1000))
        assert "0 windows" in text

    def test_run_report_includes_timeline_and_energy(
        self, ap_timeline_run, fbd_base_run
    ):
        from repro.analysis.report import run_report

        text = run_report(ap_timeline_run, baseline=fbd_base_run)
        assert "dynamic energy:" in text
        assert "relative dynamic power vs baseline:" in text
        assert "timeline" in text

    def test_registry_exports_new_counters(self, ap_timeline_run):
        from repro.telemetry.registry import registry_from_stats

        snapshot = registry_from_stats(ap_timeline_run.mem).snapshot()
        for name in (
            "mem.column_reads", "mem.column_writes", "mem.refreshes",
            "mem.idle_ps", "mem.powerdown_ps", "mem.idle_gaps",
            "mem.dynamic_energy_units", "mem.powerdown_residency",
        ):
            assert name in snapshot, name


# ----------------------------------------------------------------------
# Chrome trace counter tracks
# ----------------------------------------------------------------------


class TestChromeCounters:
    def test_counter_tracks_validate(self, ap_timeline_run):
        from repro.telemetry.export import (
            TelemetryCapture,
            chrome_trace,
            validate_chrome_trace,
        )

        capture = TelemetryCapture(
            timeline=[
                encode_value(w) for w in ap_timeline_run.timeline.windows
            ]
        )
        doc = chrome_trace(capture)
        assert validate_chrome_trace(doc) == []
        counters = [e for e in doc["traceEvents"] if e.get("ph") == "C"]
        assert counters
        names = {e["name"] for e in counters}
        assert "bandwidth" in names
        assert "queue depth" in names


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------

RECORD_ARGS = [
    "record", "--workload", "2C-1", "--insts", "3000", "--window-ns", "300",
]


@pytest.fixture(scope="module")
def recorded(tmp_path_factory):
    from repro.timeline.cli import main

    root = tmp_path_factory.mktemp("timeline")
    base = root / "base.jsonl"
    ap = root / "ap.jsonl"
    assert main([*RECORD_ARGS, "--system", "fbd", "--out", str(base)]) == 0
    assert main([*RECORD_ARGS, "--system", "fbd-ap", "--out", str(ap)]) == 0
    return base, ap


class TestCli:
    def test_record_writes_valid_jsonl(self, recorded):
        base, _ = recorded
        timeline, header = read_timeline_jsonl(base)
        assert timeline.windows
        assert header["meta"]["system"] == "fbd"
        assert validate_timeline(timeline) == []

    def test_report(self, recorded, capsys):
        from repro.timeline.cli import main

        base, _ = recorded
        assert main(["report", str(base)]) == 0
        out = capsys.readouterr().out
        assert "fbd / 2C-1" in out
        assert "bandwidth GB/s" in out

    def test_export_csv_and_chrome(self, recorded, tmp_path):
        from repro.telemetry import validate_chrome_trace
        from repro.timeline.cli import main

        _, ap = recorded
        csv = tmp_path / "tl.csv"
        chrome = tmp_path / "tl.trace.json"
        code = main([
            "export", str(ap), "--csv", str(csv), "--chrome", str(chrome),
        ])
        assert code == 0
        assert csv.read_text().splitlines()[0].startswith("index,")
        doc = json.loads(chrome.read_text())
        assert validate_chrome_trace(doc) == []

    def test_export_without_target_is_usage_error(self, recorded, capsys):
        from repro.timeline.cli import main

        base, _ = recorded
        assert main(["export", str(base)]) == 2
        assert "pass --csv" in capsys.readouterr().err

    def test_diff(self, recorded, capsys):
        from repro.timeline.cli import main

        base, ap = recorded
        code = main([
            "diff", str(base), str(ap), "--labels", "fbd,fbd-ap",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "fbd vs fbd-ap" in out

    def test_diff_mismatched_grid_exits_one(self, recorded, tmp_path):
        from repro.timeline.cli import main

        base, _ = recorded
        other = tmp_path / "other.jsonl"
        code = main([
            *RECORD_ARGS[:-2], "--window-ns", "600", "--system", "fbd",
            "--out", str(other),
        ])
        assert code == 0
        assert main(["diff", str(base), str(other)]) == 1

    def test_missing_file_exits_two(self, capsys):
        from repro.timeline.cli import main

        assert main(["report", "/no/such/file.jsonl"]) == 2
        assert "error:" in capsys.readouterr().err

    def test_bad_labels_rejected(self, recorded, capsys):
        from repro.timeline.cli import main

        base, ap = recorded
        code = main(["diff", str(base), str(ap), "--labels", "onlyone"])
        assert code == 2

    def test_main_cli_timeline_flag(self, tmp_path, capsys):
        from repro.__main__ import main as repro_main

        code = repro_main([
            "run", "--workload", "swim", "--insts", "3000",
            "--timeline-ns", "500",
        ])
        assert code in (0, None)
        out = capsys.readouterr().out
        assert "timeline" in out


# ----------------------------------------------------------------------
# Lint: the WindowRecord counter-drift spec
# ----------------------------------------------------------------------


class TestWindowRecordLintSpec:
    FIXTURE = (
        (
            "timeline/records.py",
            "from dataclasses import dataclass\n"
            "\n"
            "\n"
            "@dataclass(frozen=True)\n"
            "class WindowRecord:\n"
            "    good: int = 0\n"
            "    bogus_counter: int = 0\n",
        ),
        (
            "timeline/collector.py",
            "def make(x: int) -> object:\n"
            "    return WindowRecord(good=x)\n",
        ),
        (
            "timeline/report.py",
            "def show(w: object) -> int:\n"
            "    return w.good\n",
        ),
        (
            "timeline/export.py",
            'WINDOW_FIELDS = ("good",)\n',
        ),
    )

    def lint(self):
        from repro.check.lint.core import LintEngine

        return LintEngine().lint_sources(list(self.FIXTURE))

    def test_orphaned_window_field_fails_all_three_rules(self):
        findings = self.lint()
        by_rule = {}
        for finding in findings:
            by_rule.setdefault(finding.rule, []).append(finding)
        for rule in ("stat-no-increment", "stat-unreported",
                     "stat-unregistered"):
            assert rule in by_rule, rule
            assert any(
                "WindowRecord.bogus_counter" in f.message
                for f in by_rule[rule]
            ), rule

    def test_fed_and_exported_field_is_clean(self):
        findings = self.lint()
        assert not any("WindowRecord.good" in f.message for f in findings)

    def test_shipped_tree_is_clean(self):
        # The real WindowRecord passes its own spec (also enforced repo-wide
        # by the lint CI job; this is the fast local pin).
        from pathlib import Path

        from repro.check.lint.core import LintEngine

        src = Path(__file__).parent.parent / "src" / "repro"
        findings = LintEngine().lint_paths([src])
        assert not any(f.rule.startswith("stat-") for f in findings)


class TestBenchScenario:
    def test_timeline_overhead_scenario_registered(self):
        from repro.bench.scenarios import SCENARIOS

        scenario = SCENARIOS["fbd-4ch-ap-timeline"]
        assert "timeline" in scenario.description
