"""Bus resource tests: backfill, pruning, tagged switch gaps."""

import pytest
from hypothesis import given, strategies as st

from repro.dram.resources import BusResource, BusView, TaggedBusResource


class TestBusResource:
    def test_first_reservation_starts_at_earliest(self):
        bus = BusResource("b")
        assert bus.reserve(100, 10) == 100

    def test_busy_bus_pushes_later(self):
        bus = BusResource("b")
        bus.reserve(0, 10)
        assert bus.reserve(5, 10) == 10

    def test_backfill_uses_gap(self):
        bus = BusResource("b")
        bus.reserve(0, 10)  # [0, 10)
        bus.reserve(100, 10)  # [100, 110)
        assert bus.reserve(20, 10) == 20  # fits between

    def test_backfill_gap_too_small(self):
        bus = BusResource("b")
        bus.reserve(0, 10)
        bus.reserve(15, 10)  # [15, 25)
        assert bus.reserve(8, 10) == 25  # 5-wide gap rejected

    def test_next_free_does_not_book(self):
        bus = BusResource("b")
        bus.reserve(0, 10)
        assert bus.next_free(0) == 10
        assert bus.next_free(0) == 10

    def test_zero_duration_rejected(self):
        with pytest.raises(ValueError):
            BusResource("b").reserve(0, 0)

    def test_busy_accounting_and_utilisation(self):
        bus = BusResource("b")
        bus.reserve(0, 30)
        bus.reserve(50, 20)
        assert bus.busy_ps == 50
        assert bus.utilisation(100) == pytest.approx(0.5)
        assert bus.utilisation(0) == 0.0

    def test_prune_drops_expired(self):
        bus = BusResource("b")
        bus.reserve(0, 10)
        bus.reserve(20, 10)
        bus.prune_before(15)
        # The [0,10) interval is gone; its slot is reusable history, but
        # reservations never start in the past anyway.
        assert bus.reserve(15, 5) == 15

    def test_free_at(self):
        bus = BusResource("b")
        assert bus.free_at == 0
        bus.reserve(0, 10)
        assert bus.free_at == 10

    @given(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=1000),
                st.integers(min_value=1, max_value=50),
            ),
            max_size=40,
        )
    )
    def test_reservations_never_overlap(self, asks):
        bus = BusResource("b")
        granted = []
        for earliest, duration in asks:
            start = bus.reserve(earliest, duration)
            assert start >= earliest
            granted.append((start, start + duration))
        granted.sort()
        for (s1, e1), (s2, e2) in zip(granted, granted[1:]):
            assert e1 <= s2, "overlapping bus reservations"


class TestTaggedBusResource:
    def test_same_tag_streams_gaplessly(self):
        bus = TaggedBusResource("d", switch_gap_ps=5)
        bus.reserve(0, 10, "rd")
        assert bus.reserve(0, 10, "rd") == 10

    def test_tag_change_pays_gap(self):
        bus = TaggedBusResource("d", switch_gap_ps=5)
        bus.reserve(0, 10, "rd")
        assert bus.reserve(0, 10, "wr") == 15

    def test_gap_required_before_later_interval(self):
        bus = TaggedBusResource("d", switch_gap_ps=5)
        bus.reserve(0, 10, "a")  # [0,10)
        bus.reserve(30, 10, "a")  # [30,40)
        # A different tag needs 5 lead and 5 tail: 10+5=15 start, ends 25,
        # and 25 + 5 <= 30 holds, so it fits in the gap.
        assert bus.reserve(0, 10, "b") == 15

    def test_gap_that_only_fits_same_tag(self):
        bus = TaggedBusResource("d", switch_gap_ps=5)
        bus.reserve(0, 10, "a")
        bus.reserve(22, 10, "a")  # gap [10, 22) is 12 wide
        # Same tag fits (10..20); different tag needs 5+10+5=20: pushed out.
        assert bus.reserve(0, 10, "b") == 37  # after [22,32) + 5 gap

    def test_prune_keeps_last_for_gap_accounting(self):
        bus = TaggedBusResource("d", switch_gap_ps=5)
        bus.reserve(0, 10, "a")
        bus.prune_before(50)
        # Last interval retained: a different tag right after still pays.
        assert bus.reserve(10, 10, "b") == 15

    def test_zero_duration_rejected(self):
        with pytest.raises(ValueError):
            TaggedBusResource("d", 5).reserve(0, 0, "a")

    @given(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=500),
                st.integers(min_value=1, max_value=30),
                st.sampled_from(["rd", "wr"]),
            ),
            max_size=30,
        )
    )
    def test_no_overlap_and_gaps_respected(self, asks):
        gap = 7
        bus = TaggedBusResource("d", switch_gap_ps=gap)
        granted = []
        for earliest, duration, tag in asks:
            start = bus.reserve(earliest, duration, tag)
            assert start >= earliest
            granted.append((start, start + duration, tag))
        granted.sort()
        for (s1, e1, t1), (s2, e2, t2) in zip(granted, granted[1:]):
            required = 0 if t1 == t2 else gap
            assert s2 >= e1 + required


class TestBusView:
    def test_view_binds_tag(self):
        bus = TaggedBusResource("d", switch_gap_ps=5)
        rd = BusView(bus, "rd")
        wr = BusView(bus, "wr")
        assert rd.reserve(0, 10) == 0
        assert wr.reserve(0, 10) == 15
        assert rd.name == "d[rd]"

    def test_view_next_free(self):
        bus = TaggedBusResource("d", switch_gap_ps=5)
        rd = BusView(bus, "rd")
        rd.reserve(0, 10)
        assert rd.next_free(0) == 10
        assert BusView(bus, "wr").next_free(0) == 15
