"""DDR3-generation presets and measurement warm-up."""

import dataclasses

import pytest

from repro.config import (
    DDR3_TIMINGS,
    ddr3_memory_overrides,
    fbdimm_amb_prefetch,
    fbdimm_baseline,
)
from repro.system import run_system


class TestDdr3Presets:
    def test_timings_are_whole_clocks_at_1066(self):
        clock_ns = 1.875
        for name in ("tRP", "tRCD", "tCL", "tRC", "tRRD", "tRAS", "tWL", "tWPD"):
            value = getattr(DDR3_TIMINGS, name)
            assert (value / clock_ns) == int(value / clock_ns), name

    def test_overrides_build_valid_config(self):
        cfg = fbdimm_baseline(**ddr3_memory_overrides())
        assert cfg.memory.data_rate_mts == 1066
        assert cfg.memory.timings is DDR3_TIMINGS
        assert cfg.memory.frame_ps == 3750

    def test_rejects_ddr2_rates(self):
        with pytest.raises(ValueError, match="DDR3"):
            ddr3_memory_overrides(667)

    def test_ddr3_outperforms_ddr2_under_load(self):
        programs = ["swim", "mgrid", "applu", "equake"]
        ddr2 = run_system(
            dataclasses.replace(fbdimm_baseline(4), instructions_per_core=10_000),
            programs,
        )
        ddr3 = run_system(
            dataclasses.replace(
                fbdimm_baseline(4, **ddr3_memory_overrides(1066)),
                instructions_per_core=10_000,
            ),
            programs,
        )
        assert sum(ddr3.core_ipcs) > sum(ddr2.core_ipcs)

    def test_amb_prefetch_works_on_ddr3(self):
        cfg = dataclasses.replace(
            fbdimm_amb_prefetch(1, **ddr3_memory_overrides(1333)),
            instructions_per_core=8_000,
        )
        result = run_system(cfg, ["swim"])
        assert result.prefetch_coverage > 0.2


class TestWarmup:
    def test_validation(self):
        with pytest.raises(ValueError, match="warmup"):
            dataclasses.replace(
                fbdimm_baseline(1),
                instructions_per_core=1_000,
                warmup_instructions=1_000,
            )

    def run_pair(self, warmup):
        cfg = dataclasses.replace(
            fbdimm_baseline(1),
            instructions_per_core=12_000,
            warmup_instructions=warmup,
        )
        return run_system(cfg, ["swim"])

    def test_warmup_reduces_counted_reads(self):
        cold = self.run_pair(0)
        warm = self.run_pair(6_000)
        assert warm.mem.demand_reads < cold.mem.demand_reads
        assert warm.mem.activates < cold.mem.activates
        assert warm.warmup_time_ps > 0

    def test_device_and_completion_counters_stay_consistent(self):
        warm = self.run_pair(6_000)
        m = warm.mem
        completed = m.total_reads + m.writes
        # Close page, no prefetch: one ACT per access; boundary effects
        # (transactions straddling the warm-up point or the end) stay
        # within the in-flight window.
        assert abs(m.activates - completed) <= 64

    def test_warmup_ipc_uses_measurement_window(self):
        warm = self.run_pair(6_000)
        # 6000 instructions measured over (elapsed - warmup) time.
        window = warm.elapsed_ps - warm.warmup_time_ps
        cycles = window / warm.config.cpu.cycle_ps
        expected = (12_000 - 6_000) / cycles
        assert warm.core_ipcs[0] == pytest.approx(expected, rel=0.05)

    def test_zero_warmup_unchanged(self):
        cold = self.run_pair(0)
        assert cold.warmup_time_ps == 0
        assert cold.core_instructions == [12_000]

    def test_warmup_with_prefetching(self):
        cfg = dataclasses.replace(
            fbdimm_amb_prefetch(1),
            instructions_per_core=12_000,
            warmup_instructions=4_000,
        )
        result = run_system(cfg, ["swim"])
        # The AMB cache is warm when measurement starts; coverage holds up.
        assert result.prefetch_coverage > 0.3
        assert result.mem.prefetched_lines > 0
