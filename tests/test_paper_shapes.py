"""Integration tests asserting the paper's qualitative result shapes.

These run the real experiment drivers at reduced scale (quick workload
subsets, small instruction budgets), so they check *directions and
orderings* — who wins, which way a knob moves a metric — rather than
absolute numbers.  EXPERIMENTS.md records the full-scale paper-vs-measured
comparison.
"""

import pytest

from repro.experiments import (
    fig04_smt_speedup,
    fig07_amb_speedup,
    fig08_coverage,
    fig09_decomposition,
    fig11_sensitivity,
    fig12_sw_prefetch,
    fig13_power,
)
from repro.experiments.runner import ExperimentContext


@pytest.fixture(scope="module")
def ctx():
    """One shared, memoising context for every shape test."""
    return ExperimentContext(instructions=20_000, quick=True)


class TestFig4Shape:
    def test_fbd_tracks_ddr2_at_low_core_counts_and_wins_at_eight(self, ctx):
        summary = fig04_smt_speedup.group_means(fig04_smt_speedup.run(ctx))
        ratio = {r["cores"]: r["fbd_over_ddr2"] for r in summary.rows}
        # FB-DIMM is comparable-or-worse for 1-2 cores...
        assert ratio[1] < 1.02
        assert ratio[2] < 1.02
        # ...and clearly better at 8 cores (the paper's +6 %).
        assert ratio[8] > 1.0
        # Monotone improvement of FBD's relative standing with cores.
        assert ratio[8] > ratio[1]


class TestFig7Shape:
    def test_ap_improves_every_workload(self, ctx):
        table = fig07_amb_speedup.run(ctx)
        assert all(r["improvement"] > 0 for r in table.rows), (
            "the paper reports no workload with negative AP speedup"
        )

    def test_average_improvement_in_paper_band(self, ctx):
        summary = fig07_amb_speedup.group_means(fig07_amb_speedup.run(ctx))
        for row in summary.rows:
            assert 0.05 < row["improvement"] < 0.35, (
                f"{row['cores']}-core AP gain {row['improvement']:.3f} far "
                "from the paper's 15-19% band"
            )


class TestFig8Shape:
    def test_coverage_rises_with_region_size(self, ctx):
        table = fig08_coverage.run(ctx)

        def cov(variant, cores=1):
            for r in table.rows:
                if r["variant"] == variant and r["cores"] == cores:
                    return r["coverage"]
            raise KeyError(variant)

        assert cov("#CL=2") < cov("#CL=4 (default)") < cov("#CL=8")

    def test_efficiency_falls_with_region_size(self, ctx):
        table = fig08_coverage.run(ctx)

        def eff(variant, cores=4):
            for r in table.rows:
                if r["variant"] == variant and r["cores"] == cores:
                    return r["efficiency"]
            raise KeyError(variant)

        assert eff("#CL=2") > eff("#CL=4 (default)") > eff("#CL=8")

    def test_coverage_below_theoretical_bound(self, ctx):
        table = fig08_coverage.run(ctx)
        for row in table.rows:
            assert row["coverage"] <= row["bound"] + 1e-9

    def test_lower_associativity_hurts(self, ctx):
        table = fig08_coverage.run(ctx)

        def cov(variant, cores=4):
            for r in table.rows:
                if r["variant"] == variant and r["cores"] == cores:
                    return r["coverage"]
            raise KeyError(variant)

        assert cov("Set=direct") < cov("Set=2") <= cov("#CL=4 (default)") + 1e-9


class TestFig9Shape:
    def test_latency_gain_positive_everywhere(self, ctx):
        table = fig09_decomposition.run(ctx)
        for row in table.rows:
            assert row["latency_gain"] > 0, "AP must beat APFL"

    def test_bandwidth_gain_positive_at_high_core_counts(self, ctx):
        """Our FR-FCFS-with-backfill controller absorbs bank conflicts
        better than the paper's, so the pure bandwidth-utilisation gain
        (APFL over FBD) only emerges clearly once the channels are loaded;
        see EXPERIMENTS.md."""
        table = fig09_decomposition.run(ctx)
        by_cores = {r["cores"]: r for r in table.rows}
        assert by_cores[4]["bandwidth_gain"] > 0
        assert by_cores[8]["bandwidth_gain"] > 0

    def test_bandwidth_share_grows_with_cores(self, ctx):
        """The paper's trend: more cores -> bandwidth matters more."""
        table = fig09_decomposition.run(ctx)
        by_cores = {r["cores"]: r for r in table.rows}
        assert by_cores[8]["bandwidth_gain"] > by_cores[1]["bandwidth_gain"]

    def test_ap_beats_fbd_everywhere(self, ctx):
        table = fig09_decomposition.run(ctx)
        for row in table.rows:
            assert row["fbd"] < row["fbd_ap"]


class TestFig11Shape:
    def test_direct_mapped_loses_several_percent(self, ctx):
        table = fig11_sensitivity.run(ctx)
        for row in table.rows:
            if row["variant"] == "Set=direct":
                assert row["normalised"] < 0.995
            if row["variant"] == "Set=2":
                assert row["normalised"] > 0.9

    def test_buffer_sizes_are_close(self, ctx):
        table = fig11_sensitivity.run(ctx)
        for row in table.rows:
            if row["variant"] in ("#entry=32", "#entry=128"):
                assert row["normalised"] == pytest.approx(1.0, abs=0.05)

    def test_default_rows_are_exactly_one(self, ctx):
        table = fig11_sensitivity.run(ctx)
        for row in table.rows:
            if "(default)" in row["variant"]:
                assert row["normalised"] == pytest.approx(1.0)


class TestFig12Shape:
    def test_prefetchers_complementary(self, ctx):
        table = fig12_sw_prefetch.run(ctx)
        for row in table.rows:
            assert row["sp"] > 1.0
            assert row["ap"] > 1.0
            assert row["ap_sp"] > max(row["sp"], row["ap"]), (
                "combining both prefetchers must beat either alone"
            )
            assert row["additivity"] == pytest.approx(1.0, abs=0.15)

    def test_ap_overtakes_sp_at_eight_cores(self, ctx):
        table = fig12_sw_prefetch.run(ctx)
        by_cores = {r["cores"]: r for r in table.rows}
        assert by_cores[8]["ap"] > by_cores[8]["sp"]
        assert by_cores[1]["sp"] > by_cores[1]["ap"]


class TestFig13Shape:
    def test_default_config_saves_power(self, ctx):
        table = fig13_power.run(ctx)
        for row in table.rows:
            if row["variant"] == "#CL=4 (default)":
                assert row["relative_power"] < 0.95

    def test_acts_fall_and_cas_rise(self, ctx):
        table = fig13_power.run(ctx)
        for row in table.rows:
            assert row["act_change"] < 0
            assert row["cas_change"] > 0

    def test_larger_regions_trade_acts_for_cas(self, ctx):
        table = fig13_power.run(ctx)

        def row_of(variant, cores=4):
            for r in table.rows:
                if r["variant"] == variant and r["cores"] == cores:
                    return r
            raise KeyError(variant)

        k2, k4, k8 = row_of("#CL=2"), row_of("#CL=4 (default)"), row_of("#CL=8")
        assert k2["act_change"] > k4["act_change"] > k8["act_change"]
        assert k2["cas_change"] < k4["cas_change"] < k8["cas_change"]

    def test_k8_power_erodes_vs_k4_at_high_core_count(self, ctx):
        table = fig13_power.run(ctx)

        def power(variant, cores):
            for r in table.rows:
                if r["variant"] == variant and r["cores"] == cores:
                    return r["relative_power"]
            raise KeyError(variant)

        # The wasted column accesses of K=8 eat into the saving (the
        # paper's balance argument, Section 5.5).  At this reduced scale a
        # handful of rescheduled writes (the wire-order tWTR guard bites
        # only in the K=8 runs) moves the ratio by a few percent, so the
        # margin is looser than the act/cas ordering checks above.
        assert power("#CL=8", 8) > power("#CL=4 (default)", 8) - 0.06
