"""Experiment-harness tests: ResultTable, context caching, and cheap runs
of the experiment drivers themselves."""

import pytest

from repro.config import ddr2_baseline, fbdimm_baseline
from repro.experiments import latency_breakdown
from repro.experiments.runner import ExperimentContext, ResultTable, mean


class TestResultTable:
    def make(self):
        t = ResultTable(title="t", columns=["name", "value"])
        t.add(name="a", value=1.0)
        t.add(name="b", value=2.0)
        return t

    def test_column(self):
        assert self.make().column("value") == [1.0, 2.0]

    def test_unknown_column_on_add(self):
        t = ResultTable(title="t", columns=["name"])
        with pytest.raises(KeyError):
            t.add(name="a", nope=1)

    def test_unknown_column_on_read(self):
        with pytest.raises(KeyError):
            self.make().column("nope")

    def test_row_for(self):
        assert self.make().row_for("name", "b")["value"] == 2.0

    def test_row_for_missing(self):
        with pytest.raises(KeyError):
            self.make().row_for("name", "z")

    def test_format_contains_everything(self):
        text = self.make().format()
        assert "== t ==" in text
        assert "name" in text and "value" in text
        assert "1.000" in text and "b" in text

    def test_format_empty_table(self):
        t = ResultTable(title="empty", columns=["x"])
        assert "empty" in t.format()


class TestExperimentContext:
    def test_runs_are_memoised(self):
        ctx = ExperimentContext(instructions=2_000)
        a = ctx.run(fbdimm_baseline(1), ["vpr"])
        b = ctx.run(fbdimm_baseline(1), ["vpr"])
        assert a is b
        assert ctx.runs_executed == 1

    def test_different_config_not_shared(self):
        ctx = ExperimentContext(instructions=2_000)
        ctx.run(fbdimm_baseline(1), ["vpr"])
        ctx.run(ddr2_baseline(1), ["vpr"])
        assert ctx.runs_executed == 2

    def test_instruction_budget_applied(self):
        ctx = ExperimentContext(instructions=2_000)
        result = ctx.run(fbdimm_baseline(1), ["vpr"])
        assert result.config.instructions_per_core == 2_000

    def test_reference_ipcs_cover_all_programs(self):
        ctx = ExperimentContext(instructions=1_000)
        refs = ctx.reference_ipcs()
        assert len(refs) == 12
        assert all(v > 0 for v in refs.values())
        assert ctx.reference_ipcs() is refs  # cached

    def test_quick_mode_trims_workloads(self):
        full = ExperimentContext().workloads_for(4)
        quick = ExperimentContext(quick=True).workloads_for(4)
        assert len(quick) < len(full)
        assert set(quick) <= set(full)

    def test_smt_speedup_of_reference_is_one(self):
        ctx = ExperimentContext(instructions=2_000)
        result = ctx.run(ddr2_baseline(1), ["vpr"])
        assert ctx.smt_speedup(result) == pytest.approx(1.0)

    def test_mean_helper(self):
        assert mean([1.0, 2.0, 3.0]) == 2.0
        with pytest.raises(ValueError):
            mean([])


class TestLatencyBreakdownExperiment:
    """The Section 4 claim is exact and cheap: assert it outright."""

    def test_headline_latencies(self):
        table = latency_breakdown.run()
        by = {(r["system"], r["case"]): r["latency_ns"] for r in table.rows}
        assert by[("FBD", "miss")] == pytest.approx(63.0)
        assert by[("FBD-AP", "amb hit")] == pytest.approx(33.0)
        assert by[("FBD-AP", "miss")] == pytest.approx(63.0)
        assert by[("DDR2", "miss")] < by[("FBD", "miss")]
