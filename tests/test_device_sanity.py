"""Cross-generation sanity curves: each preset behaves like its hardware.

Open-loop synthetic workloads (the same harness the validation experiments
use) characterise every shipped device preset on two axes:

* **peak read bandwidth** — a saturating bank-parallel stream mix must
  order the generations the way their data rates do (DDR4 > DDR3 > DDR2),
  and each must reach a sane fraction of its theoretical peak;
* **idle read latency** — a fully dependent pointer chase must observe
  the published idle-latency envelope for commodity DRAM (tens of ns,
  well under 100 ns end-to-end including the FB-DIMM link).

Everything here is deterministic — fixed seeds, fixed configs — so the
assertions are exact reruns, not statistical checks.
"""

import dataclasses

import pytest

from repro.config import SystemConfig, fbdimm_baseline
from repro.dram.devices import device_names
from repro.system import System
from repro.workloads.synthetic import SyntheticSpec, pointer_chase, stream

DEVICES = device_names()

#: Enough offered load to saturate the slowest generation several times
#: over: 16 independent streams, 4-instruction gaps, base IPC 4.
_STREAMS = 16
_STREAM_INSTS = 6000


def _device_config(device: str, cores: int) -> SystemConfig:
    config = fbdimm_baseline(num_cores=cores)
    if device != "ddr2-667":
        config = config.with_device(device)
    return dataclasses.replace(config, software_prefetch=False)


def _peak_bandwidth(device: str) -> float:
    """Saturated utilised bandwidth (GB/s) under the stream mix."""
    config = dataclasses.replace(
        _device_config(device, _STREAMS), instructions_per_core=_STREAM_INSTS
    )
    traces = [
        stream(SyntheticSpec(gap_insts=4, seed=i), base_line=(i << 26) + i * 13)
        for i in range(_STREAMS)
    ]
    result = System.from_traces(
        config, traces, base_ipcs=[4.0] * _STREAMS
    ).run()
    return result.utilized_bandwidth_gbs


def _idle_latency(device: str) -> float:
    """Average read latency (ns) seen by a fully dependent chain."""
    config = dataclasses.replace(
        _device_config(device, 1), instructions_per_core=8000
    )
    trace = pointer_chase(SyntheticSpec(seed=7))
    result = System.from_traces(config, [trace], base_ipcs=[2.0]).run()
    return result.avg_read_latency_ns


@pytest.fixture(scope="module")
def bandwidths():
    return {device: _peak_bandwidth(device) for device in DEVICES}


@pytest.fixture(scope="module")
def latencies():
    return {device: _idle_latency(device) for device in DEVICES}


class TestBandwidthCurve:
    def test_theoretical_peaks_order_by_rate(self):
        peaks = {
            device: _device_config(device, 1).memory.peak_bandwidth_gbs()
            for device in DEVICES
        }
        assert peaks["ddr4-2400"] > peaks["ddr3-1333"] > peaks["ddr2-667"]
        # Same data rate, same channel width: LPDDR4's theoretical peak
        # matches DDR4's — it trades sustained bandwidth, not wire speed.
        assert peaks["lpddr4-2400"] == peaks["ddr4-2400"]

    def test_achieved_bandwidth_orders_by_generation(self, bandwidths):
        assert (
            bandwidths["ddr4-2400"]
            > bandwidths["ddr3-1333"]
            > bandwidths["ddr2-667"]
        ), f"achieved bandwidth out of generation order: {bandwidths}"

    def test_lpddr4_trails_ddr4(self, bandwidths):
        # Same wire speed, but LPDDR4's longer tRRD/tFAW windows throttle
        # the activate rate a close-page stream mix lives on.
        assert bandwidths["lpddr4-2400"] < bandwidths["ddr4-2400"]

    def test_each_generation_reaches_a_sane_peak_fraction(self, bandwidths):
        # DDR2/DDR3 saturate their own data bus (~2/3 utilisation with
        # close-page overheads); the 2400 MT/s parts are activate-window
        # limited well below wire speed, but must still beat DDR3's
        # absolute number (asserted above) and a 25% floor here.
        for device in DEVICES:
            peak = _device_config(device, 1).memory.peak_bandwidth_gbs()
            fraction = bandwidths[device] / peak
            assert 0.25 <= fraction <= 1.0, (
                f"{device}: {bandwidths[device]:.1f} GB/s is "
                f"{fraction:.0%} of peak {peak:.1f} GB/s"
            )
        for device in ("ddr2-667", "ddr3-1333"):
            peak = _device_config(device, 1).memory.peak_bandwidth_gbs()
            assert bandwidths[device] / peak >= 0.6, (
                f"{device} should saturate its data bus"
            )


class TestIdleLatencyCurve:
    def test_latency_within_published_envelope(self, latencies):
        # Commodity DRAM idle read latency sits in the tens of ns;
        # with the FB-DIMM link pass-through on top, anything under
        # ~45 ns or over ~90 ns end-to-end would be a modelling bug.
        for device, latency in latencies.items():
            assert 45.0 <= latency <= 90.0, (
                f"{device}: idle read latency {latency:.1f} ns outside "
                "the published 45-90 ns envelope"
            )

    def test_faster_core_timings_shorten_idle_latency(self, latencies):
        # DDR3-1333 (tRCD/tCL 13.5 ns) and DDR4-2400 (13.32 ns) beat the
        # paper's DDR2-667 (15 ns) on an idle access; LPDDR4's slower
        # core (tRCD 18 ns) gives it DDR2-class idle latency despite the
        # 2400 MT/s interface.
        assert latencies["ddr3-1333"] < latencies["ddr2-667"]
        assert latencies["ddr4-2400"] < latencies["ddr2-667"]
        assert latencies["lpddr4-2400"] > latencies["ddr4-2400"]
