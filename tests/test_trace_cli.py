"""End-to-end tests of ``python -m repro.trace`` and ``--trace-out``."""

import json

import pytest

from repro.telemetry import load_capture, validate_chrome_trace
from repro.trace import main as trace_main

RUN_ARGS = ["--workload", "2C-1", "--insts", "3000"]


@pytest.fixture(scope="module")
def capture_path(tmp_path_factory):
    path = tmp_path_factory.mktemp("trace") / "cap.jsonl"
    code = trace_main(
        ["record", *RUN_ARGS, "--profile", "--sample-ns", "100",
         "-o", str(path)]
    )
    assert code == 0
    return path


class TestRecord:
    def test_capture_is_loadable_and_complete(self, capture_path):
        capture = load_capture(capture_path)
        assert capture.meta["programs"] == ["wupwise", "swim"]
        assert capture.requests and capture.commands
        assert capture.samples, "--sample-ns must record queue samples"
        assert capture.profile, "--profile must record event-loop sites"
        assert "trace.latency_ps" in capture.metrics
        assert "sample.queue_depth" in capture.metrics

    def test_summarize_prints_digest(self, capture_path, capsys):
        assert trace_main(["summarize", str(capture_path)]) == 0
        out = capsys.readouterr().out
        assert "request traces" in out
        assert "queue samples" in out
        assert "event-loop profile" in out


class TestExport:
    def test_export_from_capture(self, capture_path, tmp_path):
        out = tmp_path / "trace.json"
        assert trace_main(["export", str(capture_path), "-o", str(out)]) == 0
        doc = json.loads(out.read_text())
        assert validate_chrome_trace(doc) == []
        names = {e["name"] for e in doc["traceEvents"]}
        assert "ACT" in names and "read" in names

    def test_export_records_inline_when_no_capture(self, tmp_path):
        out = tmp_path / "direct.json"
        code = trace_main(["export", *RUN_ARGS, "-o", str(out)])
        assert code == 0
        doc = json.loads(out.read_text())
        assert validate_chrome_trace(doc) == []
        # Acceptance shape: per-bank dram spans and request lifecycle spans.
        cats = {e.get("cat") for e in doc["traceEvents"]}
        assert {"dram", "request"} <= cats


class TestErrorPaths:
    def test_missing_capture_fails_cleanly(self, capsys):
        assert trace_main(["summarize", "/no/such/file.jsonl"]) == 2
        assert "error:" in capsys.readouterr().err

    def test_garbage_capture_fails_cleanly(self, tmp_path, capsys):
        path = tmp_path / "garbage.jsonl"
        path.write_text('{"version": 1, "params": {}}\n')
        assert trace_main(["export", str(path)]) == 2
        assert "not a telemetry capture" in capsys.readouterr().err


class TestMainCliTraceOut:
    def test_run_trace_out_writes_capture(self, tmp_path, capsys):
        from repro.__main__ import main as repro_main

        path = tmp_path / "run.jsonl"
        code = repro_main([
            "run", "--workload", "swim", "--insts", "3000",
            "--trace-out", str(path),
        ])
        assert code == 0
        capture = load_capture(path)
        assert capture.requests
        assert "[trace:" in capsys.readouterr().out


class TestExperimentsTraceOut:
    def test_context_writes_one_capture_per_fresh_run(self, tmp_path):
        from repro.config import fbdimm_baseline
        from repro.experiments.runner import ExperimentContext

        beats = []
        ctx = ExperimentContext(
            instructions=2_000, progress=beats.append,
            trace_dir=tmp_path / "traces",
        )
        ctx.run(fbdimm_baseline(1), ["swim"])
        ctx.run(fbdimm_baseline(1), ["swim"])  # cached: no second capture
        files = sorted((tmp_path / "traces").glob("*.jsonl"))
        assert len(files) == 1
        assert load_capture(files[0]).meta["programs"] == ["swim"]
        assert len(beats) == 1
        assert beats[0].runs == 1
        assert beats[0].events == beats[0].total_events > 0
