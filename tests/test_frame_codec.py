"""Direct unit tests for the frame wire-image codec in repro.channel.frames.

Covers pack/unpack round-trips (including hypothesis-driven random
payloads), malformed-frame rejection, and the property the fault model
leans on: the frame CRC detects every single-bit corruption.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.channel.frames import (
    COMMANDS_PER_FRAME,
    NORTH_FRAME_BYTES,
    READ_DATA_BYTES,
    SOUTH_FRAME_BYTES,
    WRITE_DATA_BYTES,
    FrameError,
    frame_crc,
    pack_northbound_frame,
    pack_southbound_frame,
    unpack_northbound_frame,
    unpack_southbound_frame,
)
from repro.config import FaultConfig
from repro.faults import FaultInjector

command = st.integers(min_value=0, max_value=(1 << 24) - 1)
write_payload = st.binary(min_size=WRITE_DATA_BYTES, max_size=WRITE_DATA_BYTES)
read_payload = st.binary(min_size=READ_DATA_BYTES, max_size=READ_DATA_BYTES)


class TestSouthboundRoundTrip:
    def test_command_only_frames(self):
        for commands in ([0x000001], [1, 2], [0xAAAAAA, 0x555555, 0xFFFFFF]):
            raw = pack_southbound_frame(commands)
            assert len(raw) == SOUTH_FRAME_BYTES
            decoded, data = unpack_southbound_frame(raw)
            assert decoded == tuple(commands)
            assert data == b""

    def test_command_plus_data_frame(self):
        payload = bytes(range(WRITE_DATA_BYTES))
        raw = pack_southbound_frame([0x123456], payload)
        decoded, data = unpack_southbound_frame(raw)
        assert decoded == (0x123456,)
        assert data == payload

    def test_data_only_frame(self):
        # reserve_write_data books pure data frames (0 commands + 16 B),
        # so the codec must round-trip them too.
        payload = b"\xff" * WRITE_DATA_BYTES
        decoded, data = unpack_southbound_frame(
            pack_southbound_frame([], payload)
        )
        assert decoded == ()
        assert data == payload

    @given(
        commands=st.lists(command, min_size=1, max_size=COMMANDS_PER_FRAME),
    )
    @settings(max_examples=80, deadline=None)
    def test_random_command_frames_round_trip(self, commands):
        decoded, data = unpack_southbound_frame(pack_southbound_frame(commands))
        assert decoded == tuple(commands)
        assert data == b""

    @given(cmd=command, payload=write_payload)
    @settings(max_examples=80, deadline=None)
    def test_random_data_frames_round_trip(self, cmd, payload):
        decoded, data = unpack_southbound_frame(
            pack_southbound_frame([cmd], payload)
        )
        assert decoded == (cmd,)
        assert data == payload


class TestSouthboundRejection:
    def test_empty_frame_rejected(self):
        with pytest.raises(FrameError):
            pack_southbound_frame([])

    def test_too_many_commands_rejected(self):
        with pytest.raises(FrameError):
            pack_southbound_frame([1, 2, 3, 4])

    def test_two_commands_with_data_rejected(self):
        with pytest.raises(FrameError):
            pack_southbound_frame([1, 2], bytes(WRITE_DATA_BYTES))

    def test_oversized_command_rejected(self):
        with pytest.raises(FrameError):
            pack_southbound_frame([1 << 24])

    def test_short_data_payload_rejected(self):
        with pytest.raises(FrameError):
            pack_southbound_frame([1], b"short")

    def test_wrong_length_rejected(self):
        with pytest.raises(FrameError):
            unpack_southbound_frame(b"\x00" * (SOUTH_FRAME_BYTES - 1))
        with pytest.raises(FrameError):
            unpack_southbound_frame(b"\x00" * (SOUTH_FRAME_BYTES + 1))

    def test_malformed_header_rejected(self):
        raw = bytearray(pack_southbound_frame([1, 2, 3]))
        raw[0] = (4 << 1)  # four commands can never fit a frame
        body = bytes(raw[:-2])
        fixed = body + frame_crc(body).to_bytes(2, "big")
        with pytest.raises(FrameError, match="malformed header"):
            unpack_southbound_frame(fixed)

    def test_zero_commands_without_data_rejected(self):
        raw = bytearray(pack_southbound_frame([1]))
        raw[0] = 0  # 0 commands, no data: an empty frame
        body = bytes(raw[:-2])
        fixed = body + frame_crc(body).to_bytes(2, "big")
        with pytest.raises(FrameError, match="malformed header"):
            unpack_southbound_frame(fixed)

    def test_dirty_unused_slot_rejected(self):
        raw = bytearray(pack_southbound_frame([7]))
        raw[1 + 3] = 0x5A  # first byte of command slot 1 (unused)
        body = bytes(raw[:-2])
        fixed = body + frame_crc(body).to_bytes(2, "big")
        with pytest.raises(FrameError, match="not zeroed"):
            unpack_southbound_frame(fixed)

    def test_command_only_frame_with_data_bits_rejected(self):
        raw = bytearray(pack_southbound_frame([7]))
        raw[-3] = 0x01  # last payload byte, still CRC-corrected below
        body = bytes(raw[:-2])
        fixed = body + frame_crc(body).to_bytes(2, "big")
        with pytest.raises(FrameError, match="data bits"):
            unpack_southbound_frame(fixed)


class TestNorthboundRoundTrip:
    def test_round_trip(self):
        payload = bytes(range(READ_DATA_BYTES))
        raw = pack_northbound_frame(payload)
        assert len(raw) == NORTH_FRAME_BYTES
        assert unpack_northbound_frame(raw) == payload

    @given(payload=read_payload)
    @settings(max_examples=80, deadline=None)
    def test_random_round_trip(self, payload):
        assert unpack_northbound_frame(pack_northbound_frame(payload)) == payload

    def test_wrong_payload_size_rejected(self):
        with pytest.raises(FrameError):
            pack_northbound_frame(b"\x00" * (READ_DATA_BYTES - 1))

    def test_wrong_frame_size_rejected(self):
        with pytest.raises(FrameError):
            unpack_northbound_frame(b"\x00" * (NORTH_FRAME_BYTES + 4))


class TestCrcDetection:
    def test_every_single_bit_flip_detected_southbound(self):
        raw = pack_southbound_frame([0x123456], bytes(range(WRITE_DATA_BYTES)))
        for bit in range(8 * len(raw)):
            flipped = bytearray(raw)
            flipped[bit // 8] ^= 1 << (bit % 8)
            with pytest.raises(FrameError):
                unpack_southbound_frame(bytes(flipped))

    def test_every_single_bit_flip_detected_northbound(self):
        raw = pack_northbound_frame(bytes(range(READ_DATA_BYTES)))
        for bit in range(8 * len(raw)):
            flipped = bytearray(raw)
            flipped[bit // 8] ^= 1 << (bit % 8)
            with pytest.raises(FrameError):
                unpack_northbound_frame(bytes(flipped))

    def test_injector_corruption_is_detectable(self):
        # The timing model injects corruption probabilistically; this pins
        # the correspondence to a wire-level event: a seeded one-bit flip
        # from the injector always fails frame decode.
        injector = FaultInjector(FaultConfig(enabled=True, error_rate=1.0))
        raw = pack_northbound_frame(bytes(READ_DATA_BYTES))
        for _ in range(64):
            with pytest.raises(FrameError):
                unpack_northbound_frame(injector.corrupt_frame(raw))

    def test_corrupt_frame_rejects_empty_input(self):
        injector = FaultInjector(FaultConfig())
        with pytest.raises(ValueError):
            injector.corrupt_frame(b"")

    def test_crc_reference_value_stable(self):
        # Golden value for CRC-16/CCITT-FALSE over b"123456789".
        assert frame_crc(b"123456789") == 0x29B1
