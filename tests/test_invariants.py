"""Randomised end-to-end invariants (hypothesis).

These drive the bare memory controller and the full system with generated
request patterns and configurations, asserting properties that must hold
for *any* input: conservation (every request completes exactly once),
latency floors, DRAM-operation consistency, and determinism.
"""

import dataclasses

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.config import (
    AmbPrefetchConfig,
    Associativity,
    MemoryConfig,
    MemoryKind,
    ddr2_baseline,
    fbdimm_amb_prefetch,
    fbdimm_baseline,
)
from repro.controller.controller import MemoryController
from repro.controller.transaction import MemoryRequest, RequestKind
from repro.engine.simulator import Simulator
from repro.system import run_system

#: (kind, line, arrival-gap) request descriptors.
request_lists = st.lists(
    st.tuples(
        st.sampled_from([RequestKind.DEMAND_READ, RequestKind.WRITE,
                         RequestKind.SW_PREFETCH]),
        st.integers(min_value=0, max_value=4000),
        st.integers(min_value=0, max_value=50_000),
    ),
    min_size=1,
    max_size=60,
)

memory_variants = st.sampled_from([
    MemoryConfig(kind=MemoryKind.DDR2),
    MemoryConfig(kind=MemoryKind.FBDIMM),
    fbdimm_amb_prefetch().memory,
    fbdimm_amb_prefetch(
        prefetch=AmbPrefetchConfig(region_cachelines=8)
    ).memory,
    fbdimm_amb_prefetch(
        prefetch=AmbPrefetchConfig(associativity=Associativity.DIRECT)
    ).memory,
    fbdimm_amb_prefetch(
        prefetch=AmbPrefetchConfig(full_latency_hits=True)
    ).memory,
])


def drive(memory: MemoryConfig, asks):
    sim = Simulator()
    controller = MemoryController(sim, memory)
    completed = []
    requests = []
    time = 0
    for kind, line, gap in asks:
        time += gap
        req = MemoryRequest(
            kind=kind, line_addr=line, core_id=0, arrival=time,
            on_complete=completed.append,
        )
        requests.append(req)
        sim.schedule_at(time, lambda r=req: controller.submit(r))
    sim.run(max_events=2_000_000)
    return controller, requests, completed


class TestControllerConservation:
    @given(memory=memory_variants, asks=request_lists)
    @settings(max_examples=30, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_every_request_completes_exactly_once(self, memory, asks):
        controller, requests, completed = drive(memory, asks)
        assert len(completed) == len(requests)
        assert {r.req_id for r in completed} == {r.req_id for r in requests}
        assert controller.drained()

    @given(memory=memory_variants, asks=request_lists)
    @settings(max_examples=20, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_latency_floors(self, memory, asks):
        _, requests, _ = drive(memory, asks)
        overhead = 12_000
        for req in requests:
            assert req.finish_time >= req.arrival + overhead
            if req.kind.is_read and not req.amb_hit:
                # A real DRAM access can't beat overhead + tRCD + tCL.
                assert req.latency >= overhead + 30_000

    @given(asks=request_lists)
    @settings(max_examples=20, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_dram_ops_consistent_close_page(self, asks):
        """Close page without prefetch: ACT == PRE == column accesses."""
        controller, requests, _ = drive(MemoryConfig(kind=MemoryKind.FBDIMM), asks)
        controller.finalize()
        stats = controller.stats
        assert stats.activates == stats.column_accesses
        assert stats.activates == len(requests)

    @given(asks=request_lists)
    @settings(max_examples=20, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_prefetch_never_loses_requests(self, asks):
        controller, requests, completed = drive(fbdimm_amb_prefetch().memory, asks)
        assert len(completed) == len(requests)
        controller.finalize()
        stats = controller.stats
        # Hits + group fetches account for every read; prefetched lines
        # come only from group fetches (K-1 each).
        assert stats.prefetched_lines % 3 == 0


class TestSystemDeterminism:
    @given(
        seed=st.integers(min_value=0, max_value=2**31),
        program=st.sampled_from(["swim", "vpr", "gap"]),
    )
    @settings(max_examples=6, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_bitwise_reproducible(self, seed, program):
        config = dataclasses.replace(
            fbdimm_amb_prefetch(1), seed=seed, instructions_per_core=3_000
        )
        a = run_system(config, [program])
        b = run_system(config, [program])
        assert a.elapsed_ps == b.elapsed_ps
        assert a.core_ipcs == b.core_ipcs
        assert a.mem.activates == b.mem.activates
        assert a.mem.amb_hits == b.mem.amb_hits

    @given(
        cores=st.sampled_from([1, 2]),
        kind=st.sampled_from(["ddr2", "fbd", "ap"]),
    )
    @settings(max_examples=6, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_rates_are_sane(self, cores, kind):
        factory = {
            "ddr2": ddr2_baseline, "fbd": fbdimm_baseline,
            "ap": fbdimm_amb_prefetch,
        }[kind]
        config = dataclasses.replace(
            factory(cores), instructions_per_core=4_000
        )
        programs = ["swim", "gap"][:cores]
        result = run_system(config, programs)
        peak = config.memory.peak_bandwidth_gbs()
        assert 0 < result.utilized_bandwidth_gbs <= peak
        assert all(0 < ipc <= 8 for ipc in result.core_ipcs)
        assert result.avg_read_latency_ns >= 40.0
