"""Metric merge semantics and parallel-runner aggregation.

Counters sum, histograms merge bucket-wise (exactly equivalent to
observing both sample streams), gauges take the incoming value, and
``execute_runs(..., metrics=registry)`` folds per-worker registries into
one — identically at any job count.  Also pins the ``summarize_capture``
edge cases: empty capture, only-retry-phase spans, ``top_sites`` larger
than the site count.
"""

import pytest

from repro.telemetry.export import TelemetryCapture, summarize_capture
from repro.telemetry.registry import Counter, Gauge, Histogram, MetricsRegistry
from repro.telemetry.spans import RequestTrace


class TestCounterMerge:
    def test_counters_sum(self):
        a, b = Counter("c"), Counter("c")
        a.inc(3)
        b.inc(4)
        a.merge(b)
        assert a.value == 7
        assert b.value == 4  # source untouched

    def test_merging_zero_is_identity(self):
        a = Counter("c")
        a.inc(5)
        a.merge(Counter("c"))
        assert a.value == 5


class TestGaugeMerge:
    def test_last_write_wins(self):
        a, b = Gauge("g"), Gauge("g")
        a.set(1.5)
        b.set(9.0)
        a.merge(b)
        assert a.value == 9.0


class TestHistogramMerge:
    def test_merge_equals_observing_both_streams(self):
        left, right, combined = (
            Histogram("h"), Histogram("h"), Histogram("h")
        )
        first = [0, 1, 2, 3, 100, 5_000]
        second = [7, 7, 900_000, 2]
        for v in first:
            left.observe(v)
            combined.observe(v)
        for v in second:
            right.observe(v)
            combined.observe(v)
        left.merge(right)
        assert left.snapshot() == combined.snapshot()

    def test_merge_into_empty(self):
        empty, full = Histogram("h"), Histogram("h")
        for v in (10, 20, 30):
            full.observe(v)
        empty.merge(full)
        assert empty.snapshot() == full.snapshot()
        # And the other direction: merging an empty histogram changes nothing.
        before = full.snapshot()
        full.merge(Histogram("h"))
        assert full.snapshot() == before

    def test_min_max_combine(self):
        a, b = Histogram("h"), Histogram("h")
        a.observe(50)
        b.observe(5)
        b.observe(500)
        a.merge(b)
        assert (a.min, a.max, a.count) == (5, 500, 3)


class TestRegistryMerge:
    def test_creates_missing_and_folds_existing(self):
        ours, theirs = MetricsRegistry(), MetricsRegistry()
        ours.counter("shared").inc(1)
        theirs.counter("shared").inc(2)
        theirs.counter("theirs.only", "docs").inc(7)
        theirs.histogram("lat").observe(100)
        theirs.gauge("bw").set(3.5)
        ours.merge(theirs)
        assert ours.counter("shared").value == 3
        assert ours.counter("theirs.only").value == 7
        assert ours.counter("theirs.only").help == "docs"
        assert ours.histogram("lat").count == 1
        assert ours.gauge("bw").value == 3.5

    def test_type_conflict_raises(self):
        ours, theirs = MetricsRegistry(), MetricsRegistry()
        ours.counter("x")
        theirs.gauge("x")
        with pytest.raises(TypeError, match="already registered"):
            ours.merge(theirs)


class TestParallelAggregation:
    @pytest.fixture(scope="class")
    def pairs(self):
        import dataclasses

        from repro.config import fbdimm_amb_prefetch

        pairs = []
        for k in (2, 4):
            config = fbdimm_amb_prefetch(num_cores=2).with_prefetch(
                region_cachelines=k
            )
            config = dataclasses.replace(
                config, instructions_per_core=3_000, seed=7
            )
            pairs.append((config, ("swim", "mgrid")))
        return pairs

    def test_serial_and_parallel_aggregates_match(self, pairs):
        from repro.experiments.parallel import execute_runs

        serial, parallel = MetricsRegistry(), MetricsRegistry()
        execute_runs(pairs, jobs=1, metrics=serial)
        execute_runs(pairs, jobs=2, metrics=parallel)
        assert serial.snapshot() == parallel.snapshot()
        # The merged registry really is the fold, not the last worker.
        from repro.system import run_system
        from repro.telemetry.registry import registry_from_stats

        expected = sum(
            registry_from_stats(run_system(c, p).mem)
            .counter("mem.demand_reads").value
            for c, p in pairs
        )
        assert serial.counter("mem.demand_reads").value == expected

    def test_aggregate_metrics_returns_fresh_registry(self, pairs):
        from repro.experiments.parallel import aggregate_metrics, execute_runs

        results = execute_runs(pairs, jobs=1)
        merged = aggregate_metrics(results)
        assert isinstance(merged, MetricsRegistry)
        assert merged.counter("mem.demand_reads").value > 0


class TestSummarizeCaptureEdges:
    def test_empty_capture(self):
        text = summarize_capture(TelemetryCapture())
        assert "0 request traces" in text
        # No completed requests, samples, metrics or profile sections.
        assert "latency ns:" not in text
        assert "event-loop profile" not in text

    def test_only_retry_phase_spans(self):
        # A trace that saw a link retry but never completed: it must not
        # reach the latency histograms (latency_ps is undefined) and the
        # completed count stays zero.
        trace = RequestTrace(req_id=1, kind="read", core_id=0, line_addr=64)
        trace.mark("retry", 1_000)
        capture = TelemetryCapture(requests=[trace])
        text = summarize_capture(capture)
        assert "1 request traces" in text
        assert "completed:" not in text
        assert "latency ns:" not in text

    def test_top_sites_larger_than_site_count(self):
        capture = TelemetryCapture(
            profile=[
                {"site": "a.b", "subsystem": "cpu", "events": 3,
                 "wall_s": 0.002},
                {"site": "c.d", "subsystem": "dram", "events": 1,
                 "wall_s": 0.001},
                {"stack": ["a.b", "c.d"], "subsystem": "dram", "events": 1,
                 "wall_s": 0.001},
            ]
        )
        text = summarize_capture(capture, top_sites=50)
        assert "a.b" in text and "c.d" in text
        site_lines = [line for line in text.splitlines() if " ms" in line]
        assert len(site_lines) == 2  # stack records not double-listed
        assert "subsystem wall time: cpu 67%, dram 33%" in text

    def test_zero_wall_profile_has_no_share_line(self):
        capture = TelemetryCapture(
            profile=[{"site": "a.b", "subsystem": "cpu", "events": 1,
                      "wall_s": 0.0}]
        )
        text = summarize_capture(capture)
        assert "subsystem wall time" not in text
        assert "a.b" in text
