"""Phase-changing workload tests."""

import dataclasses
import itertools

import pytest

from repro.config import fbdimm_amb_prefetch
from repro.system import System
from repro.workloads.phases import Phase, PhasedTrace, alternating, phase_boundaries
from repro.workloads.spec import PROGRAMS, ProgramProfile
from repro.workloads.trace import validate

STREAMY = PROGRAMS["swim"]
IRREGULAR = PROGRAMS["vpr"]


def take(trace, n):
    return list(itertools.islice(iter(trace), n))


class TestPhasedTrace:
    def test_monotone_across_boundaries(self):
        trace = PhasedTrace([Phase(STREAMY, 2_000), Phase(IRREGULAR, 2_000)])
        events = take(trace, 400)
        validate(events)

    def test_phase_density_changes(self):
        """The streamy phase (MPKI 30) is denser than the irregular one."""
        trace = PhasedTrace([Phase(STREAMY, 10_000), Phase(IRREGULAR, 10_000)],
                            software_prefetch=False)
        events = take(trace, 2_000)
        phase1 = [e for e in events if e.inst < 10_000]
        phase2 = [e for e in events if 10_000 <= e.inst < 20_000]
        assert len(phase1) > 2 * len(phase2)

    def test_cycles_repeat_with_fresh_randomness(self):
        trace = PhasedTrace([Phase(IRREGULAR, 500)])
        events = take(trace, 60)
        assert events[-1].inst > 500  # crossed into later cycles
        validate(events)

    def test_empty_phases_rejected(self):
        with pytest.raises(ValueError):
            PhasedTrace([])

    def test_zero_length_phase_rejected(self):
        with pytest.raises(ValueError):
            Phase(STREAMY, 0)

    def test_alternating_helper(self):
        trace = alternating(STREAMY, IRREGULAR, phase_instructions=1_000)
        events = take(trace, 100)
        validate(events)

    def test_boundaries(self):
        phases = [Phase(STREAMY, 100), Phase(IRREGULAR, 50)]
        assert phase_boundaries(phases, cycles=2) == [100, 150, 250, 300]

    def test_determinism(self):
        a = take(PhasedTrace([Phase(STREAMY, 1_000)], seed=4), 100)
        b = take(PhasedTrace([Phase(STREAMY, 1_000)], seed=4), 100)
        assert a == b


class TestPhasedEndToEnd:
    def test_amb_cache_survives_phase_changes(self):
        """A run spanning several phase changes completes and still finds
        coverage during the streamy phases."""
        profile_stream = dataclasses.replace(STREAMY, name="ph-stream")
        profile_random = ProgramProfile(
            name="ph-random", base_ipc=1.2, mpki=8.0, write_fraction=0.2,
            streams=2, run_length=1, sw_prefetch_coverage=0.0,
        )
        trace = PhasedTrace(
            [Phase(profile_stream, 4_000), Phase(profile_random, 4_000)],
            software_prefetch=False,
        )
        config = dataclasses.replace(
            fbdimm_amb_prefetch(1), instructions_per_core=16_000,
            software_prefetch=False,
        )
        result = System.from_traces(config, [trace], base_ipcs=[1.0]).run()
        assert result.mem.demand_reads > 0
        assert 0.1 < result.prefetch_coverage < 0.75
