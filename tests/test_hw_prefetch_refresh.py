"""Hardware stream prefetcher and DRAM refresh tests."""

import dataclasses

import pytest

from repro.config import CpuConfig, DramTimings, PagePolicy, fbdimm_baseline
from repro.cpu.core import Core
from repro.cpu.l2 import L2FillTable
from repro.cpu.mshr import Limiter
from repro.dram.bank import Bank, RankTimer
from repro.dram.resources import BusResource
from repro.dram.timing import TimingPs
from repro.engine.simulator import Simulator
from repro.system import run_system
from repro.workloads.trace import TraceEvent, TraceKind


class FakeMemory:
    def __init__(self, sim, latency_ps=63_000):
        self.sim = sim
        self.latency_ps = latency_ps
        self.submitted = []

    def submit(self, req):
        self.submitted.append(req)
        self.sim.schedule(self.latency_ps, lambda: req.complete(self.sim.now))


def run_core(events, config, target=5_000):
    sim = Simulator()
    memory = FakeMemory(sim)
    core = Core(
        sim=sim, core_id=0, config=config, base_ipc=1.0, trace=iter(events),
        controller=memory, l2=L2FillTable(4096), l2_mshr=Limiter(64),
        target_instructions=target, on_finished=lambda c: None,
    )
    core.start()
    sim.run(max_events=500_000)
    return core, memory


def stream_trace(lines, start_inst=100, stride_inst=100):
    events = [
        TraceEvent(start_inst + i * stride_inst, TraceKind.READ, line)
        for i, line in enumerate(lines)
    ]
    tail = [
        TraceEvent(10**9 + i, TraceKind.READ, 10**8 + i) for i in range(5)
    ]
    return iter(events + tail)


class TestHwPrefetcher:
    def test_disabled_by_default(self):
        core, memory = run_core(stream_trace([10, 11, 12]), CpuConfig())
        assert core.stats.hw_prefetches_issued == 0

    def test_detects_ascending_stream(self):
        config = CpuConfig(hw_prefetch_degree=2)
        core, memory = run_core(stream_trace([10, 11, 12]), config)
        assert core.stats.hw_prefetches_issued > 0

    def test_no_prefetch_for_random_misses(self):
        config = CpuConfig(hw_prefetch_degree=2)
        core, memory = run_core(stream_trace([10, 500, 9000]), config)
        assert core.stats.hw_prefetches_issued == 0

    def test_prefetched_lines_turn_demands_into_hits(self):
        config = CpuConfig(hw_prefetch_degree=4)
        lines = list(range(100, 112))
        core, memory = run_core(stream_trace(lines, stride_inst=500), config)
        assert core.stats.l2_prefetch_hits + core.stats.l2_merges > 0

    def test_degree_bounds_requests_per_miss(self):
        config = CpuConfig(hw_prefetch_degree=2)
        core, memory = run_core(stream_trace([10, 11]), config)
        prefetches = [
            r for r in memory.submitted if r.kind.name == "SW_PREFETCH"
        ]
        assert len(prefetches) <= 2

    def test_validation(self):
        with pytest.raises(ValueError):
            CpuConfig(hw_prefetch_degree=-1)

    def test_end_to_end_speedup_without_sw_prefetch(self):
        """HW prefetching replaces some of SP's benefit (Section 5.4's
        expectation that results would be similar)."""
        base = dataclasses.replace(
            fbdimm_baseline(1), software_prefetch=False,
            instructions_per_core=15_000,
        )
        off = run_system(base, ["swim"])
        on = run_system(base.with_cpu(hw_prefetch_degree=4), ["swim"])
        assert sum(on.core_ipcs) > sum(off.core_ipcs)


T = TimingPs.from_config(DramTimings(), 3000, 4)


class TestBankRefresh:
    def test_refresh_blocks_bank_for_trfc(self):
        bank = Bank(0, T, PagePolicy.CLOSE_PAGE)
        bank.refresh(now=0, trfc_ps=127_500)
        assert bank.ready_at == 127_500
        assert bank.stats.refreshes == 1

    def test_refresh_closes_open_row(self):
        bank = Bank(0, T, PagePolicy.OPEN_PAGE)
        bank.read(0, 5, 1, BusResource("b"), RankTimer())
        bank.refresh(now=1_000_000, trfc_ps=127_500)
        assert bank.open_row is None

    def test_refresh_queues_behind_busy_bank(self):
        bank = Bank(0, T, PagePolicy.CLOSE_PAGE)
        bank.read(0, 5, 1, BusResource("b"), RankTimer())
        busy_until = bank.ready_at
        bank.refresh(now=0, trfc_ps=127_500)
        assert bank.ready_at == busy_until + 127_500


class TestSystemRefresh:
    def test_refresh_fires_and_costs_performance(self):
        # An aggressive 1 us interval makes the cost visible in a short
        # run (the realistic 7.8 us tREFI needs longer runs to matter).
        base = dataclasses.replace(
            fbdimm_baseline(1), instructions_per_core=10_000
        )
        no_refresh = run_system(base, ["swim"])
        with_refresh = run_system(
            base.with_memory(refresh_interval_ns=1_000.0), ["swim"]
        )
        assert sum(with_refresh.core_ipcs) < sum(no_refresh.core_ipcs)
        assert with_refresh.elapsed_ps > no_refresh.elapsed_ps

    def test_realistic_refresh_effect_is_bounded(self):
        """tRFC/tREFI = 127.5/7800 = 1.6 % of time; the hit must be of
        that order, not catastrophic."""
        base = dataclasses.replace(
            fbdimm_baseline(1), instructions_per_core=30_000
        )
        no_refresh = sum(run_system(base, ["swim"]).core_ipcs)
        with_refresh = sum(
            run_system(
                base.with_memory(refresh_interval_ns=7_800.0), ["swim"]
            ).core_ipcs
        )
        assert 0.85 * no_refresh < with_refresh <= no_refresh
