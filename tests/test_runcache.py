"""Tests for the persistent run cache: keys, round trips, and robustness.

The fuzz section pins the hard guarantee of docs/PARALLEL.md: a cache
entry that is truncated, corrupted, bit-flipped, or written by another
code/format version is quarantined and recomputed — it can never crash a
sweep or silently poison its results.
"""

import dataclasses
import random
import shutil

import pytest

from repro.config import fbdimm_amb_prefetch, fbdimm_baseline
from repro.experiments.runcache import (
    CACHE_FORMAT,
    RunCache,
    code_salt,
    run_key,
)
from repro.experiments.runner import ExperimentContext
from repro.system import run_system

INSTS = 1500
PROGRAMS = ("swim",)


def _config():
    return dataclasses.replace(
        fbdimm_baseline(num_cores=1), instructions_per_core=INSTS
    )


@pytest.fixture(scope="module")
def small_result():
    return run_system(_config(), PROGRAMS)


class TestRunKey:
    def test_key_is_pinned_to_field_values(self):
        rebuilt = dataclasses.replace(_config(), seed=_config().seed)
        assert _config() is not rebuilt
        assert run_key(_config(), PROGRAMS) == run_key(rebuilt, PROGRAMS)

    def test_key_sees_every_config_field(self):
        changed = dataclasses.replace(_config(), seed=999)
        assert run_key(_config(), PROGRAMS) != run_key(changed, PROGRAMS)

    def test_key_sees_programs_and_their_order(self):
        key = run_key(_config(), ("swim", "vpr"))
        assert key != run_key(_config(), ("vpr", "swim"))
        assert key != run_key(_config(), ("swim",))

    def test_key_includes_the_code_salt(self):
        assert run_key(_config(), PROGRAMS, salt="aaaa") != run_key(
            _config(), PROGRAMS, salt="bbbb"
        )

    def test_salt_is_stable_within_a_process(self):
        assert code_salt() == code_salt()
        assert len(code_salt()) == 16


class TestStoreLoad:
    def test_round_trip(self, tmp_path, small_result):
        cache = RunCache(tmp_path)
        key = run_key(_config(), PROGRAMS)
        cache.store(key, small_result)
        loaded = cache.load(key)
        assert loaded == small_result
        assert loaded.canonical_json() == small_result.canonical_json()
        assert cache.stats.stores == 1 and cache.stats.hits == 1

    def test_miss_on_unknown_key(self, tmp_path):
        cache = RunCache(tmp_path)
        assert cache.load("0" * 64) is None
        assert cache.stats.misses == 1

    def test_store_leaves_no_temp_files(self, tmp_path, small_result):
        cache = RunCache(tmp_path)
        cache.store(run_key(_config(), PROGRAMS), small_result)
        assert not list(tmp_path.rglob("*.tmp*"))

    def test_store_is_idempotent(self, tmp_path, small_result):
        cache = RunCache(tmp_path)
        key = run_key(_config(), PROGRAMS)
        path = cache.store(key, small_result)
        body = path.read_text()
        cache.store(key, small_result)
        assert path.read_text() == body

    def test_purge_and_summary(self, tmp_path, small_result):
        cache = RunCache(tmp_path)
        for seed in (1, 2, 3):
            config = dataclasses.replace(_config(), seed=seed)
            cache.store(run_key(config, PROGRAMS), small_result)
        summary = cache.summary()
        assert summary["entries"] == 3
        assert summary["bytes"] > 0
        assert summary["format"] == CACHE_FORMAT
        assert cache.purge() == 3
        assert cache.summary()["entries"] == 0


class TestCorruptionFuzz:
    """Defective entries must quarantine and miss — never raise, never lie."""

    @pytest.fixture()
    def entry(self, tmp_path, small_result):
        cache = RunCache(tmp_path)
        key = run_key(_config(), PROGRAMS)
        path = cache.store(key, small_result)
        return cache, key, path

    def _assert_quarantined(self, cache, key, path):
        assert cache.load(key) is None
        assert not path.exists()
        assert len(list(cache.quarantined())) == 1
        assert cache.stats.quarantined == 1

    def test_truncated_entry(self, entry):
        cache, key, path = entry
        lines = path.read_text().splitlines()
        path.write_text(lines[0] + "\n")  # payload line lost
        self._assert_quarantined(cache, key, path)

    def test_partially_written_payload(self, entry):
        cache, key, path = entry
        body = path.read_text()
        path.write_text(body[: len(body) // 2])
        self._assert_quarantined(cache, key, path)

    def test_garbage_bytes(self, entry):
        cache, key, path = entry
        path.write_bytes(b"\x00\xffnot json at all\n{{{\n")
        self._assert_quarantined(cache, key, path)

    def test_format_version_mismatch(self, entry):
        cache, key, path = entry
        header, payload = path.read_text().splitlines()
        header = header.replace(f'"format":{CACHE_FORMAT}', '"format":999')
        path.write_text(header + "\n" + payload + "\n")
        self._assert_quarantined(cache, key, path)

    def test_salt_mismatch(self, entry):
        cache, key, path = entry
        header, payload = path.read_text().splitlines()
        header = header.replace(code_salt(), "f" * 16)
        path.write_text(header + "\n" + payload + "\n")
        self._assert_quarantined(cache, key, path)

    def test_entry_under_wrong_key(self, entry):
        cache, key, path = entry
        other = "ab" + key[2:]
        wrong = cache.path_for(other)
        wrong.parent.mkdir(parents=True, exist_ok=True)
        shutil.copy(path, wrong)
        assert cache.load(other) is None
        assert cache.stats.quarantined == 1
        assert cache.load(key) is not None  # the honest copy still serves

    def test_random_single_byte_flips_never_poison(self, entry):
        """The payload checksum turns any bit rot into a clean miss."""
        cache, key, path = entry
        pristine = path.read_bytes()
        rng = random.Random(20260805)
        for _ in range(40):
            corrupt = bytearray(pristine)
            offset = rng.randrange(len(corrupt))
            flip = rng.randrange(1, 256)
            corrupt[offset] ^= flip
            path.parent.mkdir(parents=True, exist_ok=True)
            path.write_bytes(bytes(corrupt))
            assert cache.load(key) is None  # and never raises

    def test_quarantined_entry_is_recomputed(self, tmp_path):
        ctx = ExperimentContext(instructions=INSTS, cache=tmp_path)
        first = ctx.run(fbdimm_baseline(num_cores=1), PROGRAMS)
        assert ctx.fresh_runs == 1
        [path] = list(ctx.cache.entries())
        path.write_text("corrupted\n")

        again = ExperimentContext(instructions=INSTS, cache=tmp_path)
        second = again.run(fbdimm_baseline(num_cores=1), PROGRAMS)
        assert again.fresh_runs == 1 and again.disk_hits == 0
        assert again.cache.stats.quarantined == 1
        assert second.canonical_json() == first.canonical_json()
        # the recomputed entry is stored back and serves the next context
        third = ExperimentContext(instructions=INSTS, cache=tmp_path)
        assert third.run(fbdimm_baseline(num_cores=1), PROGRAMS) == first
        assert third.fresh_runs == 0 and third.disk_hits == 1


class TestContextIntegration:
    def test_disk_hits_serve_without_simulation(self, tmp_path):
        config = fbdimm_amb_prefetch(num_cores=1)
        warm = ExperimentContext(instructions=INSTS, cache=tmp_path)
        result = warm.run(config, PROGRAMS)
        cold = ExperimentContext(instructions=INSTS, cache=tmp_path)
        assert cold.run(config, PROGRAMS) == result
        assert cold.fresh_runs == 0 and cold.disk_hits == 1

    def test_different_instruction_budget_misses(self, tmp_path):
        config = fbdimm_baseline(num_cores=1)
        a = ExperimentContext(instructions=INSTS, cache=tmp_path)
        a.run(config, PROGRAMS)
        b = ExperimentContext(instructions=INSTS * 2, cache=tmp_path)
        b.run(config, PROGRAMS)
        assert b.fresh_runs == 1 and b.disk_hits == 0
