"""Tier-1 tests for ``repro.bench``: stats, harness, schema, compare, report.

The acceptance behaviours pinned here:

* ``repro bench run --quick`` (exercised through one real scenario at tiny
  scale plus synthetic scenarios for the rest) emits a schema-valid BENCH
  document whose scenarios carry events/sec mean + 95% bootstrap CI;
* comparing a BENCH file against itself exits 0;
* comparing against a hand-degraded copy (-20% throughput) exits nonzero
  with a readable diff;
* wall-clock access stays quarantined in ``repro.bench.clock`` (the
  determinism lint covers the rest of the package).
"""

import copy
import json

import pytest

from repro.bench.compare import NOISE_CAP, compare_docs
from repro.bench.harness import HarnessConfig, run_scenario, run_suite, stat_of
from repro.bench.report import render_report, trajectory
from repro.bench.scenarios import (
    SCENARIOS,
    Prepared,
    Scenario,
    ScenarioRun,
    resolve_scenarios,
)
from repro.bench.schema import (
    CURRENT_BENCH_INDEX,
    build_bench_doc,
    list_bench_files,
    load_bench,
    machine_fingerprint,
    save_bench,
    validate_bench,
)
from repro.bench.stats import bootstrap_ci, detect_warmup, mean, relative_width


# ----------------------------------------------------------------------
# Synthetic scenarios: deterministic counts, controllable wall time
# ----------------------------------------------------------------------


def fake_scenario(name="fake", events=1000, requests=100, nondet=False):
    state = {"calls": 0}

    def prepare(instructions, seed):
        def run():
            state["calls"] += 1
            bump = state["calls"] if nondet else 0
            return ScenarioRun(
                events=events + bump,
                requests=requests,
                simulated_ps=10_000,
                metrics={"sum_ipc": 1.5},
            )

        return Prepared(run=run)

    return Scenario(name=name, description="synthetic", prepare=prepare)


def quick_config(**overrides):
    defaults = dict(
        instructions=2000, trials=3, warmup=1, bootstrap_resamples=100
    )
    defaults.update(overrides)
    return HarnessConfig(**defaults)


class TestStats:
    def test_bootstrap_ci_brackets_mean_and_is_deterministic(self):
        samples = [10.0, 11.0, 9.5, 10.5, 10.2]
        lo, hi = bootstrap_ci(samples, resamples=500, seed=0)
        assert lo <= mean(samples) <= hi
        assert (lo, hi) == bootstrap_ci(samples, resamples=500, seed=0)

    def test_bootstrap_ci_single_sample_degenerates(self):
        assert bootstrap_ci([7.0]) == (7.0, 7.0)

    def test_bootstrap_ci_rejects_empty(self):
        with pytest.raises(ValueError):
            bootstrap_ci([])

    def test_detect_warmup_drops_cold_leading_samples(self):
        # First trial 3x slower than steady state: clearly cold.
        walls = [3.0, 1.0, 1.02, 0.98, 1.01]
        assert detect_warmup(walls, tolerance=0.10) == 1

    def test_detect_warmup_keeps_stable_series(self):
        walls = [1.0, 1.01, 0.99, 1.02]
        assert detect_warmup(walls, tolerance=0.10) == 0

    def test_detect_warmup_respects_max_drop(self):
        walls = [5.0, 4.0, 3.0, 1.0]
        assert detect_warmup(walls, tolerance=0.05, max_drop=2) <= 2

    def test_relative_width(self):
        assert relative_width(90.0, 110.0, 100.0) == pytest.approx(0.2)
        assert relative_width(0.0, 0.0, 0.0) == 0.0


class TestHarness:
    def test_run_scenario_shapes_and_determinism_fields(self):
        result = run_scenario(fake_scenario(), quick_config())
        assert result.events == 1000
        assert result.requests == 100
        assert result.trials >= 2
        assert result.warmup_dropped >= 1
        lo, hi = result.events_per_s.ci95
        assert 0 < lo <= result.events_per_s.mean <= hi
        assert len(result.events_per_s.samples) == result.trials
        assert result.metrics == {"sum_ipc": 1.5}

    def test_nondeterministic_scenario_aborts(self):
        with pytest.raises(RuntimeError, match="nondeterministic"):
            run_scenario(fake_scenario(nondet=True), quick_config())

    def test_cleanup_runs_even_on_failure(self):
        cleaned = []

        def prepare(instructions, seed):
            def run():
                raise RuntimeError("boom")

            return Prepared(run=run, cleanup=lambda: cleaned.append(True))

        scenario = Scenario(name="x", description="", prepare=prepare)
        with pytest.raises(RuntimeError, match="boom"):
            run_scenario(scenario, quick_config())
        assert cleaned == [True]

    def test_quick_config_caps(self):
        quick = HarnessConfig(instructions=40_000, trials=5).quick()
        assert quick.instructions <= 8_000
        assert quick.trials <= 3
        assert quick.warmup == 1

    def test_real_scenario_smoke(self):
        # One genuine simulator scenario at tiny scale: the integration
        # seam between scenarios and the system factory.
        scenario = resolve_scenarios(["ddr2-1ch"])[0]
        result = run_scenario(
            scenario, quick_config(instructions=1500, trials=2)
        )
        assert result.events > 0
        assert result.requests > 0
        assert result.simulated_ps > 0
        assert result.metrics["sum_ipc"] > 0

    def test_resolve_scenarios(self):
        assert [s.name for s in resolve_scenarios([])] == list(SCENARIOS)
        assert [s.name for s in resolve_scenarios(["all"])] == list(SCENARIOS)
        assert [s.name for s in resolve_scenarios(["fbd-4ch", "ddr2-1ch"])] == [
            "fbd-4ch", "ddr2-1ch"
        ]
        with pytest.raises(KeyError, match="unknown scenario"):
            resolve_scenarios(["nope"])


@pytest.fixture
def bench_doc():
    results = run_suite(
        [fake_scenario("a"), fake_scenario("b", events=2000)], quick_config()
    )
    return build_bench_doc(
        results, quick_config(), index=CURRENT_BENCH_INDEX, quick=True,
        timestamp="2026-01-01T00:00:00+00:00",
    )


class TestSchema:
    def test_built_doc_is_valid(self, bench_doc):
        assert validate_bench(bench_doc) == []
        assert bench_doc["format"] == "repro-bench"
        assert bench_doc["index"] == CURRENT_BENCH_INDEX
        assert set(bench_doc["scenarios"]) == {"a", "b"}

    def test_save_load_round_trip(self, bench_doc, tmp_path):
        path = save_bench(tmp_path / "BENCH_5.json", bench_doc)
        assert load_bench(path) == json.loads(path.read_text())

    def test_save_refuses_invalid(self, tmp_path):
        with pytest.raises(ValueError, match="refusing to write"):
            save_bench(tmp_path / "BENCH_5.json", {"format": "nope"})

    @pytest.mark.parametrize(
        "mutate, problem",
        [
            (lambda d: d.pop("format"), "format"),
            (lambda d: d.update(version=99), "version"),
            (lambda d: d.update(index=-1), "index"),
            (lambda d: d.pop("machine"), "machine"),
            (lambda d: d["harness"].pop("trials"), "harness.trials"),
            (lambda d: d.update(scenarios={}), "scenarios"),
            (lambda d: d["scenarios"]["a"].update(events=-1), "events"),
            (lambda d: d["scenarios"]["a"].pop("wall_s"), "wall_s"),
            (
                lambda d: d["scenarios"]["a"]["events_per_s"].update(
                    ci95=[2.0, 1.0]
                ),
                "ci95",
            ),
            (
                lambda d: d["scenarios"]["a"]["events_per_s"].update(
                    samples=[]
                ),
                "samples",
            ),
        ],
    )
    def test_validate_flags_each_break(self, bench_doc, mutate, problem):
        doc = copy.deepcopy(bench_doc)
        mutate(doc)
        problems = validate_bench(doc)
        assert problems, f"expected a problem mentioning {problem}"
        assert any(problem in p for p in problems)

    def test_load_rejects_non_json(self, tmp_path):
        path = tmp_path / "BENCH_1.json"
        path.write_text("not json")
        with pytest.raises(ValueError, match="not readable as JSON"):
            load_bench(path)

    def test_list_bench_files_sorted(self, bench_doc, tmp_path):
        for index in (10, 2, 5):
            doc = copy.deepcopy(bench_doc)
            doc["index"] = index
            save_bench(tmp_path / f"BENCH_{index}.json", doc)
        (tmp_path / "BENCH_x.json").write_text("{}")  # name mismatch: skipped
        assert [i for i, _ in list_bench_files(tmp_path)] == [2, 5, 10]


def degrade(doc, factor=0.8):
    """A copy of ``doc`` with throughput scaled by ``factor``."""
    out = copy.deepcopy(doc)
    for block in out["scenarios"].values():
        for key in ("events_per_s", "requests_per_s"):
            stat = block[key]
            stat["mean"] *= factor
            stat["ci95"] = [v * factor for v in stat["ci95"]]
            stat["samples"] = [v * factor for v in stat["samples"]]
    return out


class TestCompare:
    def test_self_compare_is_clean(self, bench_doc):
        comparison = compare_docs(bench_doc, bench_doc)
        assert comparison.exit_code == 0
        assert comparison.findings == []
        assert "OK: no regressions" in comparison.format()

    def test_twenty_percent_drop_gates(self, bench_doc):
        comparison = compare_docs(bench_doc, degrade(bench_doc, 0.8))
        assert comparison.exit_code == 1
        assert len(comparison.regressions) == 4  # 2 scenarios x 2 stats
        text = comparison.format()
        assert "REGRESSION" in text and "-20.0%" in text and "FAIL" in text

    def test_noise_cap_cannot_hide_large_drop(self, bench_doc):
        # Blow the baseline CI wide open; the cap must still gate -20%.
        noisy = copy.deepcopy(bench_doc)
        for block in noisy["scenarios"].values():
            stat = block["events_per_s"]
            stat["ci95"] = [stat["mean"] * 0.1, stat["mean"] * 3.0]
        comparison = compare_docs(noisy, degrade(noisy, 1 - NOISE_CAP - 0.05))
        assert any(
            f.metric == "events_per_s" for f in comparison.regressions
        )

    def test_improvement_is_not_a_regression(self, bench_doc):
        comparison = compare_docs(bench_doc, degrade(bench_doc, 1.5))
        assert comparison.exit_code == 0
        assert len(comparison.improvements) == 4

    def test_cross_machine_throughput_is_advisory(self, bench_doc):
        other = degrade(bench_doc, 0.5)
        other["machine"] = dict(other["machine"], node="elsewhere")
        comparison = compare_docs(bench_doc, other)
        assert comparison.exit_code == 0
        assert not comparison.same_machine
        assert any(f.kind == "warning" for f in comparison.findings)
        # --strict restores gating.
        assert compare_docs(bench_doc, other, strict=True).exit_code == 1

    def test_event_count_drift_warns_then_gates_with_strict(self, bench_doc):
        drifted = copy.deepcopy(bench_doc)
        drifted["scenarios"]["a"]["events"] += 1
        comparison = compare_docs(bench_doc, drifted)
        assert comparison.exit_code == 0
        assert any(
            f.kind == "warning" and f.metric == "events"
            for f in comparison.findings
        )
        strict = compare_docs(bench_doc, drifted, strict_events=True)
        assert strict.exit_code == 1

    def test_scenario_set_changes_reported(self, bench_doc):
        trimmed = copy.deepcopy(bench_doc)
        trimmed["scenarios"]["c"] = trimmed["scenarios"].pop("a")
        comparison = compare_docs(bench_doc, trimmed)
        kinds = {(f.scenario, f.kind) for f in comparison.findings}
        assert ("a", "warning") in kinds  # missing in new
        assert ("c", "note") in kinds  # new, no baseline
        assert comparison.exit_code == 0

    def test_markdown_report_renders(self, bench_doc):
        text = compare_docs(bench_doc, degrade(bench_doc)).to_markdown()
        assert "| scenario | metric |" in text and "FAIL" in text


class TestReport:
    def test_trajectory_and_dashboard(self, bench_doc, tmp_path):
        save_bench(tmp_path / "BENCH_5.json", bench_doc)
        later = degrade(bench_doc, 1.1)
        later["index"] = 6
        save_bench(tmp_path / "BENCH_6.json", later)
        series = trajectory(tmp_path)
        assert [i for i, _ in series["a"]] == [5, 6]
        text = render_report(tmp_path)
        assert "BENCH_5" in text and "BENCH_6" in text
        assert "+10.0%" in text  # delta vs previous point
        assert "latest metrics" in text
        markdown = render_report(tmp_path, markdown=True)
        assert "| bench |" in markdown

    def test_empty_directory_message(self, tmp_path):
        assert "no BENCH_<n>.json" in render_report(tmp_path)


class TestCli:
    def test_validate_compare_report_end_to_end(self, bench_doc, tmp_path, capsys):
        from repro.bench.cli import main

        old = tmp_path / "BENCH_5.json"
        save_bench(old, bench_doc)
        bad = tmp_path / "BENCH_6.json"
        save_bench(bad, dict(degrade(bench_doc, 0.7), index=6))

        assert main(["validate", str(old)]) == 0
        assert main(["compare", str(old), str(old)]) == 0
        report = tmp_path / "diff.md"
        assert main(
            ["compare", str(old), str(bad), "--report", str(report)]
        ) == 1
        assert "FAIL" in report.read_text()
        assert main(["report", "--root", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "performance trajectory" in out

    def test_validate_rejects_corrupt_file(self, tmp_path, capsys):
        from repro.bench.cli import main

        path = tmp_path / "BENCH_9.json"
        path.write_text('{"format": "wrong"}')
        assert main(["validate", str(path)]) == 1
        assert "INVALID" in capsys.readouterr().err

    def test_main_parser_routes_bench(self):
        from repro.__main__ import build_parser

        args = build_parser().parse_args(
            ["bench", "compare", "a.json", "b.json", "--strict"]
        )
        assert args.bench_command == "compare"
        assert args.strict is True

    def test_main_parser_run_profile_flag(self):
        from repro.__main__ import build_parser

        parser = build_parser()
        assert parser.parse_args(["run"]).profile is None
        assert parser.parse_args(["run", "--profile"]).profile == 15
        assert parser.parse_args(["run", "--profile", "5"]).profile == 5


class TestClockIsolation:
    def test_bench_package_passes_determinism_lint(self):
        from pathlib import Path

        from repro.check.determinism import lint_tree

        root = Path(__file__).resolve().parents[1] / "src" / "repro" / "bench"
        findings = lint_tree(root)
        assert findings == [], [f.format() for f in findings]
