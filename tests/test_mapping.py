"""Address-mapping tests: interleaving schemes and region co-location."""

import pytest
from hypothesis import given, strategies as st

from repro.config import (
    AmbPrefetchConfig,
    InterleaveScheme,
    MemoryConfig,
    MemoryKind,
)
from repro.controller.mapping import AddressMapper


def mapper_for(scheme, k=4):
    prefetch = AmbPrefetchConfig(
        enabled=scheme is not InterleaveScheme.CACHELINE, region_cachelines=k
    )
    kind = MemoryKind.FBDIMM
    config = MemoryConfig(kind=kind, interleave=scheme, prefetch=prefetch)
    return AddressMapper(config)


class TestCachelineInterleave:
    def test_consecutive_lines_rotate_channels(self):
        m = mapper_for(InterleaveScheme.CACHELINE)
        channels = [m.map(i).channel for i in range(8)]
        assert channels == [0, 1, 2, 3, 0, 1, 2, 3]

    def test_then_rotate_dimms(self):
        m = mapper_for(InterleaveScheme.CACHELINE)
        assert m.map(0).dimm == 0
        assert m.map(4).dimm == 1
        assert m.map(12).dimm == 3
        assert m.map(16).dimm == 0

    def test_then_rotate_banks(self):
        m = mapper_for(InterleaveScheme.CACHELINE)
        assert m.map(0).bank == 0
        assert m.map(16).bank == 1
        assert m.map(48).bank == 3
        assert m.map(64).bank == 0

    def test_adjacent_lines_never_share_a_bank_page(self):
        m = mapper_for(InterleaveScheme.CACHELINE)
        a, b = m.map(0), m.map(1)
        assert (a.channel, a.dimm, a.bank) != (b.channel, b.dimm, b.bank)


class TestMultiCachelineInterleave:
    def test_region_lines_share_bank_and_row(self):
        m = mapper_for(InterleaveScheme.MULTI_CACHELINE, k=4)
        for region in (0, 1, 7, 123):
            mapped = [m.map(line) for line in m.region_lines_of(region)]
            coords = {(x.channel, x.dimm, x.bank, x.row) for x in mapped}
            assert len(coords) == 1, "a region must live in one DRAM page"

    def test_region_lines_are_adjacent_in_page(self):
        m = mapper_for(InterleaveScheme.MULTI_CACHELINE, k=4)
        mapped = [m.map(line) for line in m.region_lines_of(5)]
        slots = [x.line_in_page for x in mapped]
        assert slots == list(range(slots[0], slots[0] + 4))

    def test_consecutive_regions_rotate_channels(self):
        m = mapper_for(InterleaveScheme.MULTI_CACHELINE, k=4)
        assert m.map(0).channel == 0
        assert m.map(4).channel == 1
        assert m.map(8).channel == 2
        assert m.map(16).channel == 0

    def test_region_of(self):
        m = mapper_for(InterleaveScheme.MULTI_CACHELINE, k=4)
        assert m.region_of(0) == 0
        assert m.region_of(3) == 0
        assert m.region_of(4) == 1

    def test_k8(self):
        m = mapper_for(InterleaveScheme.MULTI_CACHELINE, k=8)
        mapped = [m.map(line) for line in m.region_lines_of(3)]
        assert len({(x.channel, x.dimm, x.bank, x.row) for x in mapped}) == 1


class TestPageInterleave:
    def test_whole_page_shares_bank(self):
        m = mapper_for(InterleaveScheme.PAGE)
        lines_per_page = m.config.lines_per_page
        mapped = [m.map(i) for i in range(lines_per_page)]
        assert len({(x.channel, x.dimm, x.bank, x.row) for x in mapped}) == 1

    def test_next_page_moves_channel(self):
        m = mapper_for(InterleaveScheme.PAGE)
        lines_per_page = m.config.lines_per_page
        assert m.map(lines_per_page).channel == 1


class TestValidationAndInverse:
    def test_negative_address_rejected(self):
        with pytest.raises(ValueError):
            mapper_for(InterleaveScheme.CACHELINE).map(-1)

    def test_indivisible_page_rejected(self):
        prefetch = AmbPrefetchConfig(enabled=True, region_cachelines=7)
        with pytest.raises(ValueError):
            AddressMapper(
                MemoryConfig(
                    interleave=InterleaveScheme.MULTI_CACHELINE, prefetch=prefetch
                )
            )

    @given(st.integers(min_value=0, max_value=2**26 - 1))
    def test_unmap_roundtrip_cacheline(self, line):
        m = mapper_for(InterleaveScheme.CACHELINE)
        assert m.unmap(m.map(line)) == line

    @given(st.integers(min_value=0, max_value=2**26 - 1))
    def test_unmap_roundtrip_multicacheline(self, line):
        m = mapper_for(InterleaveScheme.MULTI_CACHELINE, k=4)
        assert m.unmap(m.map(line)) == line

    @given(st.integers(min_value=0, max_value=2**24))
    def test_coordinates_in_range(self, line):
        m = mapper_for(InterleaveScheme.MULTI_CACHELINE, k=4)
        x = m.map(line)
        assert 0 <= x.channel < 4
        assert 0 <= x.dimm < 4
        assert 0 <= x.bank < 4
        assert 0 <= x.row < m.rows
        assert 0 <= x.line_in_page < m.lines_per_page
        assert 0 <= x.line_in_region < 4
