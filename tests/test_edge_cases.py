"""Targeted edge-case tests across the timing-critical modules."""

import dataclasses
from collections import deque


from repro.config import (
    DramTimings,
    MemoryConfig,
    MemoryKind,
    PagePolicy,
    fbdimm_amb_prefetch,
    fbdimm_baseline,
)
from repro.controller.controller import MemoryController
from repro.controller.scheduler import HitFirstScheduler
from repro.controller.transaction import MemoryRequest, RequestKind
from repro.dram.bank import Bank, RankTimer
from repro.dram.resources import BusResource
from repro.dram.timing import TimingPs
from repro.engine.simulator import Simulator
from repro.system import run_system

T = TimingPs.from_config(DramTimings(), 3000, 4)


class TestBankEdges:
    def test_tras_limits_early_precharge(self):
        """A single fast read still holds the row open tRAS before PRE."""
        bank = Bank(0, T, PagePolicy.CLOSE_PAGE)
        bank.read(0, 5, 1, BusResource("b"), RankTimer())
        # PRE at max(tRAS, RD+tRPD) = max(39, 15+9) = 39; ready at
        # max(tRC, 39+tRP) = max(54, 54) = 54 ns.
        assert bank.ready_at == 54_000

    def test_twpd_dominates_write_precharge(self):
        bank = Bank(0, T, PagePolicy.CLOSE_PAGE)
        bank.write(0, 5, BusResource("b"), RankTimer())
        # WR at tRCD=15; PRE at max(ACT+tRAS, WR+tWPD)=max(39, 51)=51;
        # ready at max(tRC, 51+tRP)=66 ns.
        assert bank.ready_at == 66_000

    def test_group_read_with_congested_bus_stretches_tail(self):
        bank = Bank(0, T, PagePolicy.CLOSE_PAGE)
        bus = BusResource("b")
        bus.reserve(30_000, 24_000)  # busy [30, 54) ns
        result = bank.read(0, 5, 2, bus, RankTimer())
        # First burst wants 30 ns but the bus is busy until 54 ns.
        assert result.data_starts[0] == 54_000
        assert result.data_starts[1] == 66_000

    def test_open_page_write_then_read_same_row(self):
        bank = Bank(0, T, PagePolicy.OPEN_PAGE)
        bus, rank = BusResource("b"), RankTimer()
        bank.write(0, 5, bus, rank)
        result = bank.read(bank.column_ok, 5, 1, bus, rank)
        assert result.row_hit
        # tWTR after the write burst still gates the read command.
        write_data_end = T.tRCD + T.tWL + T.burst
        assert result.data_starts[0] - T.tCL >= write_data_end + T.tWTR

    def test_back_to_back_different_rows_close_page(self):
        bank = Bank(0, T, PagePolicy.CLOSE_PAGE)
        bus, rank = BusResource("b"), RankTimer()
        first = bank.read(0, 5, 1, bus, rank)
        second = bank.read(0, 99, 1, bus, rank)
        assert second.command_start - first.command_start >= T.tRC

    def test_estimate_is_consistent_with_actual_issue(self):
        bank = Bank(0, T, PagePolicy.CLOSE_PAGE)
        bus, rank = BusResource("b"), RankTimer()
        bank.read(0, 5, 1, bus, rank)
        est = bank.earliest_start(10_000, 6, rank)
        result = bank.read(10_000, 6, 1, bus, rank)
        assert result.command_start == est


class TestSchedulerEdges:
    def req(self, kind=RequestKind.DEMAND_READ, line=0):
        r = MemoryRequest(kind=kind, line_addr=line, core_id=0, arrival=0)
        r.schedulable_at = 0
        return r

    def test_single_write_no_reads_issues_immediately(self):
        s = HitFirstScheduler(write_drain_threshold=16)
        w = deque([self.req(RequestKind.WRITE)])
        chosen, est, is_write = s.select(0, deque(), w, lambda r: 0, lambda r: False)
        assert is_write and est == 0

    def test_sw_prefetch_goes_through_read_queue(self):
        s = HitFirstScheduler(write_drain_threshold=16)
        r = deque([self.req(RequestKind.SW_PREFETCH)])
        chosen, _, is_write = s.select(0, r, deque(), lambda r: 0, lambda r: False)
        assert not is_write

    def test_selection_is_stable_under_equal_keys(self):
        s = HitFirstScheduler(write_drain_threshold=16)
        reads = deque(self.req(line=i) for i in range(5))
        chosen, _, _ = s.select(0, reads, deque(), lambda r: 0, lambda r: False)
        assert chosen is reads[0]  # FIFO among ties

    def test_hysteresis_resets_after_full_drain(self):
        s = HitFirstScheduler(write_drain_threshold=2)
        reads = deque([self.req()])
        s.select(0, reads, deque(self.req(RequestKind.WRITE) for _ in range(2)),
                 lambda r: 0, lambda r: False)
        assert s._draining_writes
        # Queue fully drained: flag clears even with reads present.
        s.select(0, reads, deque(), lambda r: 0, lambda r: False)
        assert not s._draining_writes


class TestControllerEdges:
    def drive(self, memory, reqs):
        sim = Simulator()
        controller = MemoryController(sim, memory)
        done = []
        for kind, line, at in reqs:
            r = MemoryRequest(kind=kind, line_addr=line, core_id=0,
                              arrival=at, on_complete=done.append)
            sim.schedule_at(at, lambda rr=r: controller.submit(rr))
        sim.run(max_events=500_000)
        return controller, done

    def test_same_line_twice_without_prefetch(self):
        memory = MemoryConfig(kind=MemoryKind.FBDIMM)
        controller, done = self.drive(
            memory,
            [(RequestKind.DEMAND_READ, 7, 0), (RequestKind.DEMAND_READ, 7, 0)],
        )
        assert len(done) == 2
        controller.finalize()
        assert controller.stats.activates == 2  # no magic dedup

    def test_write_then_read_same_line_ordering(self):
        memory = fbdimm_amb_prefetch().memory
        controller, done = self.drive(
            memory,
            [(RequestKind.WRITE, 3, 0), (RequestKind.DEMAND_READ, 3, 0)],
        )
        assert len(done) == 2

    def test_burst_of_64_reads_all_complete(self):
        memory = fbdimm_baseline().memory
        reqs = [(RequestKind.DEMAND_READ, i * 7, 0) for i in range(64)]
        controller, done = self.drive(memory, reqs)
        assert len(done) == 64
        assert controller.drained()

    def test_backlog_is_fifo(self):
        memory = dataclasses.replace(fbdimm_baseline().memory, buffer_entries=1)
        reqs = [(RequestKind.DEMAND_READ, i, 0) for i in range(5)]
        controller, done = self.drive(memory, reqs)
        finish_order = [r.line_addr for r in done]
        assert finish_order == sorted(finish_order)

    def test_inflight_caps_respected(self):
        memory = fbdimm_baseline().memory
        sim = Simulator()
        controller = MemoryController(sim, memory)
        for i in range(200):
            r = MemoryRequest(kind=RequestKind.DEMAND_READ, line_addr=i,
                              core_id=0, arrival=0)
            controller.submit(r)
        peak = [0]

        def watch():
            current = max(
                ch.inflight_reads + ch.inflight_writes
                for ch in controller.channels
            )
            peak[0] = max(peak[0], current)
            if controller.outstanding():
                sim.schedule(1_000, watch)

        sim.schedule(1_000, watch)
        sim.run(max_events=2_000_000)
        cap = controller.channels[0].max_read_inflight + \
            controller.channels[0].max_write_inflight
        assert 0 < peak[0] <= cap

    def test_region_spanning_writes_invalidate_only_their_line(self):
        memory = fbdimm_amb_prefetch().memory
        controller, done = self.drive(
            memory,
            [
                (RequestKind.DEMAND_READ, 0, 0),  # fetches region 0-3
                (RequestKind.WRITE, 1, 1_200_000),
                (RequestKind.DEMAND_READ, 2, 2_400_000),  # line 2 still cached
                (RequestKind.DEMAND_READ, 1, 3_600_000),  # line 1 was killed
            ],
        )
        reads = [r for r in done if r.kind is RequestKind.DEMAND_READ]
        by_line = {r.line_addr: r for r in reads}
        assert by_line[2].amb_hit
        assert not by_line[1].amb_hit


class TestSystemEdges:
    def test_one_instruction_target(self):
        config = dataclasses.replace(
            fbdimm_baseline(1), instructions_per_core=1
        )
        result = run_system(config, ["swim"])
        assert result.core_instructions == [1]

    def test_identical_programs_on_all_cores(self):
        config = dataclasses.replace(
            fbdimm_baseline(2), instructions_per_core=4_000
        )
        result = run_system(config, ["swim", "swim"])
        # Same program, disjoint address spaces: similar but not identical
        # progress (different per-core seeds).
        assert all(i > 0 for i in result.core_instructions)

    def test_software_prefetch_off_increases_demand_reads(self):
        base = dataclasses.replace(
            fbdimm_baseline(1), instructions_per_core=8_000
        )
        with_sp = run_system(base, ["swim"])
        without_sp = run_system(
            dataclasses.replace(base, software_prefetch=False), ["swim"]
        )
        assert without_sp.mem.demand_reads > with_sp.mem.demand_reads
        assert without_sp.mem.sw_prefetch_reads == 0
