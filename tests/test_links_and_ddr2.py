"""FB-DIMM link and DDR2-channel component tests."""


from repro.channel.ddr2_bus import Ddr2Dimm
from repro.channel.fbdimm_link import FbdimmLinks
from repro.config import MemoryConfig, MemoryKind
from repro.controller.mapping import AddressMapper
from repro.dram.resources import BusResource, TaggedBusResource
from repro.dram.timing import TimingPs


def fbd_config(**kw):
    return MemoryConfig(kind=MemoryKind.FBDIMM, **kw)


class TestFbdimmLinks:
    def test_frame_arithmetic_at_667(self):
        links = FbdimmLinks(fbd_config(), channel_id=0)
        assert links.frame_ps == 6000
        assert links.read_frames == 2  # 64 B at 32 B per frame
        assert links.write_frames == 4  # 64 B at 16 B per frame

    def test_hop_penalty_without_vrl_is_farthest(self):
        links = FbdimmLinks(fbd_config(), channel_id=0)
        # 4 DIMMs x 3 ns regardless of target DIMM.
        assert links.hop_penalty(0) == 12_000
        assert links.hop_penalty(3) == 12_000

    def test_hop_penalty_with_vrl_scales_with_distance(self):
        links = FbdimmLinks(fbd_config(variable_read_latency=True), channel_id=0)
        assert links.hop_penalty(0) == 3_000
        assert links.hop_penalty(3) == 12_000

    def test_three_commands_share_one_frame(self):
        links = FbdimmLinks(fbd_config(), channel_id=0)
        # Frame [0, 6000) carries up to three commands, all arriving with
        # the same command delay; the fourth spills to the next frame.
        assert links.send_command_ps(0) == 3_000
        assert links.send_command_ps(0) == 3_000
        assert links.send_command_ps(0) == 3_000
        assert links.send_command_ps(0) == 6_000 + 3_000

    def test_command_waits_for_frame_boundary(self):
        links = FbdimmLinks(fbd_config(), channel_id=0)
        assert links.send_command_ps(1) == 6_000 + 3_000  # next frame at 6 ns

    def test_send_write_streams_four_frames(self):
        links = FbdimmLinks(fbd_config(), channel_id=0)
        arrival = links.send_write_ps(0, dimm=0)
        assert arrival == 4 * 6000 + 3000 + 12_000

    def test_return_read_critical_word(self):
        links = FbdimmLinks(fbd_config(), channel_id=0)
        # Northbound grid is phase-locked at the command delay: 9000 is a
        # frame boundary (6000 + 3000 phase).
        ret = links.return_read(data_ready=9_000, dimm=1)
        assert ret.link_start == 9_000
        assert ret.critical_at_mc == 9_000 + 6000 + 12_000
        assert ret.full_at_mc == 9_000 + 12_000 + 12_000

    def test_return_read_waits_for_frame_boundary(self):
        links = FbdimmLinks(fbd_config(), channel_id=0)
        ret = links.return_read(data_ready=10_000, dimm=0)
        assert ret.link_start == 15_000  # next phase-3000 boundary

    def test_northbound_serialises_reads(self):
        links = FbdimmLinks(fbd_config(), channel_id=0)
        first = links.return_read(3_000, dimm=0)
        second = links.return_read(3_000, dimm=1)
        assert second.link_start >= first.link_start + 12_000

    def test_command_rides_in_write_data_frame(self):
        links = FbdimmLinks(fbd_config(), channel_id=0)
        links.send_write_ps(0, dimm=0)  # data in frames 0-3, one cmd slot each
        assert links.send_command_ps(0) == 3_000  # shares frame 0
        # A second command cannot share a data-carrying frame... and the
        # next three frames carry data with one spare command slot each.
        assert links.send_command_ps(0) == 6_000 + 3_000

    def test_frame_scales_with_data_rate(self):
        links = FbdimmLinks(fbd_config(data_rate_mts=800), channel_id=0)
        assert links.frame_ps == 5000


class TestDdr2Dimm:
    def make(self):
        config = MemoryConfig(kind=MemoryKind.DDR2)
        timing = TimingPs.from_config(
            config.timings, config.dram_clock_ps, config.burst_clocks
        )
        data = TaggedBusResource("data", switch_gap_ps=timing.clock)
        cmd = BusResource("cmd")
        dimm = Ddr2Dimm(config, timing, 0, 0, data, cmd)
        mapper = AddressMapper(config)
        return dimm, mapper, timing, data

    def dimm0_line(self, mapper):
        return 0  # line 0 -> channel 0, dimm 0 under cacheline interleave

    def test_read_timeline_includes_command_latch(self):
        dimm, mapper, t, _ = self.make()
        result = dimm.read_line(0, mapper.map(self.dimm0_line(mapper)))
        # cmd bus at 0, latch +1 clock, ACT, RD at +tRCD, data at +tCL.
        assert result.data_starts[0] == t.clock + t.tRCD + t.tCL

    def test_shared_data_bus_switch_gap(self):
        dimm, mapper, t, data = self.make()
        line = self.dimm0_line(mapper)
        first = dimm.read_line(0, mapper.map(line))
        # A write burst after a read burst pays the turnaround gap.
        second = dimm.write_line(first.data_times[0], mapper.map(line + 64))
        assert second.data_starts[0] >= first.data_times[0] + t.clock

    def test_bank_op_counts(self):
        dimm, mapper, _, _ = self.make()
        line = self.dimm0_line(mapper)
        dimm.read_line(0, mapper.map(line))
        dimm.write_line(100_000, mapper.map(line + 64))
        assert dimm.bank_operation_counts() == (2, 2)
