"""End-to-end System tests: small full-stack runs."""

import dataclasses

import pytest

from repro.config import ddr2_baseline, fbdimm_amb_prefetch, fbdimm_baseline
from repro.system import System, run_system


def small(config, insts=5_000):
    return dataclasses.replace(config, instructions_per_core=insts)


class TestRunBasics:
    def test_single_core_run_completes(self):
        result = run_system(small(fbdimm_baseline(1)), ["swim"])
        assert result.elapsed_ps > 0
        assert result.core_instructions == [5_000]
        assert result.mem.demand_reads > 0
        assert 0 < result.core_ipcs[0] <= 1.0  # below swim's base IPC

    def test_program_count_must_match_cores(self):
        with pytest.raises(ValueError, match="cores"):
            System(small(fbdimm_baseline(2)), ["swim"])

    def test_system_runs_once(self):
        system = System(small(fbdimm_baseline(1)), ["swim"])
        system.run()
        with pytest.raises(RuntimeError):
            system.run()

    def test_multicore_stops_at_first_finisher(self):
        result = run_system(small(fbdimm_baseline(2)), ["wupwise", "swim"])
        # wupwise (higher base IPC, fewer misses) finishes first.
        assert max(result.core_instructions) == 5_000
        assert min(result.core_instructions) < 5_000

    def test_ipc_by_program(self):
        result = run_system(small(fbdimm_baseline(2)), ["gap", "vortex"])
        assert set(result.ipc_by_program) == {"gap", "vortex"}


class TestDeterminism:
    def test_same_seed_same_result(self):
        a = run_system(small(fbdimm_amb_prefetch(1)), ["equake"])
        b = run_system(small(fbdimm_amb_prefetch(1)), ["equake"])
        assert a.elapsed_ps == b.elapsed_ps
        assert a.core_ipcs == b.core_ipcs
        assert a.mem.demand_reads == b.mem.demand_reads
        assert a.mem.activates == b.mem.activates

    def test_different_seed_differs(self):
        cfg = small(fbdimm_baseline(1))
        a = run_system(cfg, ["equake"])
        b = run_system(dataclasses.replace(cfg, seed=999), ["equake"])
        assert a.elapsed_ps != b.elapsed_ps


class TestResultProperties:
    def test_latency_in_sane_range(self):
        result = run_system(small(fbdimm_baseline(1)), ["vpr"])
        assert 63.0 <= result.avg_read_latency_ns < 300.0

    def test_bandwidth_below_peak(self):
        result = run_system(small(ddr2_baseline(1)), ["swim"])
        assert 0 < result.utilized_bandwidth_gbs < result.config.memory.peak_bandwidth_gbs()

    def test_coverage_zero_without_prefetch(self):
        result = run_system(small(fbdimm_baseline(1)), ["swim"])
        assert result.prefetch_coverage == 0.0

    def test_coverage_bounded_with_prefetch(self):
        result = run_system(small(fbdimm_amb_prefetch(1)), ["swim"])
        k = result.config.memory.prefetch.region_cachelines
        assert 0 < result.prefetch_coverage <= (k - 1) / k

    def test_smt_speedup_against_reference(self):
        single = run_system(small(ddr2_baseline(1)), ["gap"])
        ref = {"gap": single.core_ipcs[0], "vortex": 1.0}
        multi = run_system(small(ddr2_baseline(2)), ["gap", "vortex"])
        speedup = multi.smt_speedup(ref)
        assert speedup > 0

    def test_dram_op_accounting_consistent(self):
        result = run_system(small(fbdimm_baseline(1)), ["swim"])
        m = result.mem
        # Close page, no prefetch: one ACT and one column op per access.
        assert m.activates == m.column_accesses
        completed = m.total_reads + m.writes
        in_flight_slack = 64  # transactions issued but unfinished at stop
        assert completed <= m.column_accesses <= completed + in_flight_slack


class TestPaperHeadlines:
    """Cheap versions of the paper's headline claims (full versions live
    in the benchmark harness)."""

    def test_ap_beats_fbd_on_a_streamy_program(self):
        fbd = run_system(small(fbdimm_baseline(1), 15_000), ["swim"])
        ap = run_system(small(fbdimm_amb_prefetch(1), 15_000), ["swim"])
        assert sum(ap.core_ipcs) > sum(fbd.core_ipcs)

    def test_ap_cuts_activates(self):
        fbd = run_system(small(fbdimm_baseline(1), 15_000), ["swim"])
        ap = run_system(small(fbdimm_amb_prefetch(1), 15_000), ["swim"])
        assert ap.mem.activates < fbd.mem.activates
        assert ap.mem.column_accesses > fbd.mem.column_accesses

    def test_ap_latency_lower(self):
        fbd = run_system(small(fbdimm_baseline(1), 15_000), ["swim"])
        ap = run_system(small(fbdimm_amb_prefetch(1), 15_000), ["swim"])
        assert ap.avg_read_latency_ns < fbd.avg_read_latency_ns
