"""Per-prefetch lifecycle spans: tracer, capture round-trip, CLI.

Covers the observability plumbing around :mod:`repro.prefetch`: the
``PrefetchTrace`` span type, the tracer's bounded prefetch recording, the
telemetry capture JSONL round-trip of ``pf`` records, the Chrome-trace
counter track, and the ``repro prefetch`` CLI.
"""

from __future__ import annotations

import dataclasses
import json

import pytest

from repro.config import fbdimm_amb_prefetch
from repro.system import System
from repro.telemetry import Tracer, build_capture, load_capture, save_capture
from repro.telemetry.export import (
    chrome_trace,
    summarize_capture,
    validate_chrome_trace,
)
from repro.telemetry.spans import PF_OUTCOMES, PrefetchTrace

INSTS = 2000
SEED = 12345
PROGRAMS = ("wupwise", "swim", "mgrid", "applu")


def _lifecycle_config(**kwargs):
    config = fbdimm_amb_prefetch(num_cores=len(PROGRAMS), logic_channels=4)
    config = dataclasses.replace(
        config, instructions_per_core=INSTS, seed=SEED, **kwargs
    )
    prefetch = dataclasses.replace(config.memory.prefetch, lifecycle=True)
    return dataclasses.replace(
        config, memory=dataclasses.replace(config.memory, prefetch=prefetch)
    )


def _traced_run(config):
    tracer = Tracer()
    machine = System(config, PROGRAMS, tracer=tracer)
    result = machine.run()
    capture = build_capture(
        result, tracer,
        check_events=machine.controller.collect_check_events(),
    )
    return result, tracer, capture


@pytest.fixture(scope="module")
def traced():
    return _traced_run(_lifecycle_config())


class TestPrefetchTraceSpan:
    def test_mark_and_close(self):
        trace = PrefetchTrace(line_addr=42)
        trace.mark("issue", 100)
        trace.mark("fill", 400)
        trace.close("used", 900)
        assert trace.outcome == "used"
        assert trace.fill_latency_ps == 300
        assert trace.lifetime_ps == 800
        assert trace.phase_time("end") == 900

    def test_unknown_phase_and_outcome_rejected(self):
        trace = PrefetchTrace(line_addr=1)
        with pytest.raises(ValueError):
            trace.mark("bogus", 0)
        with pytest.raises(ValueError):
            trace.close("bogus", 0)

    def test_record_round_trip(self):
        trace = PrefetchTrace(line_addr=7)
        trace.mark("issue", 10)
        trace.mark("fill", 20)
        trace.close("evicted_unused", 30)
        record = trace.to_record()
        assert record["type"] == "pf"
        back = PrefetchTrace.from_record(
            {k: v for k, v in record.items() if k != "type"}
        )
        assert back.line_addr == trace.line_addr
        assert back.phases == trace.phases
        assert back.outcome == trace.outcome

    def test_open_span_has_no_latencies(self):
        trace = PrefetchTrace(line_addr=7)
        trace.mark("issue", 10)
        assert trace.fill_latency_ps is None
        assert trace.lifetime_ps is None
        assert "out" not in trace.to_record()


class TestTracerBounds:
    def test_capacity_bound_counts_drops(self):
        tracer = Tracer(max_prefetches=2)
        assert tracer.new_prefetch_trace(1, 0) is not None
        assert tracer.new_prefetch_trace(2, 0) is not None
        assert tracer.new_prefetch_trace(3, 0) is None
        assert len(tracer.prefetches) == 2
        assert tracer.dropped_prefetches == 1


class TestTracedLifecycleRun:
    def test_spans_reconcile_with_stats(self, traced):
        result, tracer, _ = traced
        assert tracer.prefetches  # the run did record prefetch spans
        by_outcome = {}
        for trace in tracer.prefetches:
            assert trace.outcome in PF_OUTCOMES
            assert trace.phase_time("issue") is not None
            assert trace.phase_time("end") is not None
            by_outcome[trace.outcome] = by_outcome.get(trace.outcome, 0) + 1
        mem = result.mem
        # Nothing was dropped at the default bound, so the spans ARE the
        # taxonomy: per-outcome span counts equal the stats buckets.
        assert tracer.dropped_prefetches == 0
        assert len(tracer.prefetches) == mem.pf_issued
        assert by_outcome.get("used", 0) == mem.pf_used
        assert by_outcome.get("late_unused", 0) == mem.pf_late_unused
        assert by_outcome.get("evicted_unused", 0) == mem.pf_evicted_unused
        assert by_outcome.get("invalidated", 0) == mem.pf_invalidated
        assert by_outcome.get("resident_at_end", 0) == mem.pf_resident_at_end

    def test_fill_latency_is_causal(self, traced):
        _, tracer, _ = traced
        filled = [t for t in tracer.prefetches
                  if t.fill_latency_ps is not None]
        assert filled
        for trace in filled:
            assert trace.fill_latency_ps > 0
            assert trace.lifetime_ps >= trace.fill_latency_ps

    def test_capture_round_trip_preserves_pf_records(self, traced, tmp_path):
        _, tracer, capture = traced
        assert len(capture.prefetches) == len(tracer.prefetches)
        assert capture.meta["traced_prefetches"] == len(tracer.prefetches)
        path = tmp_path / "capture.jsonl"
        save_capture(path, capture)
        loaded = load_capture(path)
        assert len(loaded.prefetches) == len(capture.prefetches)
        assert [t.to_record() for t in loaded.prefetches] == [
            t.to_record() for t in capture.prefetches
        ]

    def test_summary_mentions_prefetch_traces(self, traced):
        _, _, capture = traced
        assert "prefetch traces:" in summarize_capture(capture)

    def test_untraced_lifecycle_keeps_stats_only(self):
        machine = System(_lifecycle_config(), PROGRAMS)
        result = machine.run()
        assert result.mem.pf_issued > 0  # counters work without a tracer


class TestChromeTraceTrack:
    def test_lifecycle_windows_emit_counter_track(self):
        config = _lifecycle_config().with_timeline(window_ns=500.0)
        _, _, capture = _traced_run(config)
        assert capture.timeline
        doc = chrome_trace(capture)
        assert validate_chrome_trace(doc) == []
        names = {e["name"] for e in doc["traceEvents"]}
        assert "prefetch lifecycle" in names

    def test_lifecycle_off_windows_have_no_track(self):
        config = fbdimm_amb_prefetch(num_cores=4, logic_channels=4)
        config = dataclasses.replace(
            config, instructions_per_core=INSTS, seed=SEED
        ).with_timeline(window_ns=500.0)
        _, _, capture = _traced_run(config)
        assert capture.timeline
        doc = chrome_trace(capture)
        assert validate_chrome_trace(doc) == []
        names = {e["name"] for e in doc["traceEvents"]}
        assert "prefetch lifecycle" not in names


class TestPrefetchCli:
    def test_report_text(self, capsys):
        from repro.prefetch.cli import main

        code = main(["report", "--workload", "4C-1", "--insts", "2000"])
        out = capsys.readouterr().out
        assert code == 0
        assert "prefetch lifecycle:" in out
        assert "conservation: issued == sum(outcomes) holds" in out

    def test_report_json_and_trace_out(self, capsys, tmp_path):
        from repro.prefetch.cli import main

        trace_path = tmp_path / "pf.jsonl"
        code = main([
            "report", "--workload", "4C-1", "--insts", "2000",
            "--json", "--trace-out", str(trace_path),
        ])
        out = capsys.readouterr().out
        assert code == 0
        payload = json.loads(out[out.index("{"):])
        assert payload["conservation_delta"] == 0
        assert payload["issued"] > 0
        loaded = load_capture(trace_path)
        assert loaded.prefetches
        assert len(loaded.prefetches) == payload["issued"]

    def test_policies_listing(self, capsys):
        from repro.prefetch.cli import main

        assert main(["policies"]) == 0
        assert "region" in capsys.readouterr().out

    def test_unknown_policy_exits_2(self, capsys):
        from repro.prefetch.cli import main

        with pytest.raises(SystemExit):
            main(["report", "--policy", "bogus"])

    def test_top_level_cli_exposes_prefetch(self, capsys):
        from repro.__main__ import main

        assert main(["prefetch", "policies"]) == 0
        assert "region" in capsys.readouterr().out
