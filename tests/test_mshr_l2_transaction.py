"""Unit tests for the limiter (MSHRs), the L2 fill table, and transactions."""

import pytest

from repro.controller.transaction import MemoryRequest, RequestKind
from repro.cpu.l2 import L2FillTable
from repro.cpu.mshr import Limiter


class TestLimiter:
    def test_acquire_until_full(self):
        lim = Limiter(2)
        assert lim.try_acquire()
        assert lim.try_acquire()
        assert not lim.try_acquire()
        assert lim.available == 0

    def test_release_frees_slot(self):
        lim = Limiter(1)
        lim.try_acquire()
        lim.release()
        assert lim.try_acquire()

    def test_release_without_acquire_raises(self):
        with pytest.raises(RuntimeError):
            Limiter(1).release()

    def test_waiters_fire_once_on_release(self):
        lim = Limiter(1)
        lim.try_acquire()
        calls = []
        lim.add_waiter(lambda: calls.append(1))
        lim.release()
        assert calls == [1]
        lim.try_acquire()
        lim.release()
        assert calls == [1]  # one-shot

    def test_peak_tracking(self):
        lim = Limiter(3)
        lim.try_acquire()
        lim.try_acquire()
        lim.release()
        assert lim.peak == 2

    def test_zero_capacity_rejected(self):
        with pytest.raises(ValueError):
            Limiter(0)


class TestL2FillTable:
    def test_miss_before_fill(self):
        l2 = L2FillTable(16)
        assert l2.probe(5, now=0) == ("miss", None)

    def test_inflight_then_hit(self):
        l2 = L2FillTable(16)
        l2.start_fill(5)
        status, entry = l2.probe(5, now=10)
        assert status == "inflight"
        l2.complete_fill(5, time_ps=20)
        status, _ = l2.probe(5, now=30)
        assert status == "hit"
        assert l2.demand_hits == 1
        assert l2.demand_merges == 1

    def test_future_ready_time_counts_as_inflight(self):
        l2 = L2FillTable(16)
        l2.start_fill(5)
        l2.complete_fill(5, time_ps=100)
        status, _ = l2.probe(5, now=50)
        assert status == "inflight"

    def test_waiters_fire_on_completion(self):
        l2 = L2FillTable(16)
        l2.start_fill(5)
        _, entry = l2.probe(5, now=0)
        woken = []
        entry.waiters.append(lambda: woken.append(1))
        l2.complete_fill(5, time_ps=10)
        assert woken == [1]

    def test_invalidate_wakes_waiters(self):
        """A store to an in-flight fill must not strand merged demands."""
        l2 = L2FillTable(16)
        l2.start_fill(5)
        _, entry = l2.probe(5, now=0)
        woken = []
        entry.waiters.append(lambda: woken.append(1))
        l2.invalidate(5)
        assert woken == [1]
        assert not l2.has_line(5)

    def test_capacity_evicts_completed_only(self):
        l2 = L2FillTable(2)
        l2.start_fill(1)
        l2.complete_fill(1, 0)
        l2.start_fill(2)  # in flight
        l2.start_fill(3)  # exceeds capacity -> evict line 1 (completed)
        assert not l2.has_line(1)
        assert l2.has_line(2) and l2.has_line(3)

    def test_eviction_skips_entries_with_waiters(self):
        l2 = L2FillTable(1)
        l2.start_fill(1)
        l2.complete_fill(1, 100)
        _, entry = l2.probe(1, now=0)  # inflight (ready in future)
        entry.waiters.append(lambda: None)
        l2.start_fill(2)
        assert l2.has_line(1), "waited-on entry must survive eviction"

    def test_duplicate_start_fill_is_idempotent(self):
        l2 = L2FillTable(16)
        l2.start_fill(5)
        l2.start_fill(5)
        assert l2.fills_started == 1

    def test_complete_unknown_fill_is_noop(self):
        l2 = L2FillTable(16)
        l2.complete_fill(9, 10)
        assert l2.fills_completed == 0

    def test_bad_capacity(self):
        with pytest.raises(ValueError):
            L2FillTable(0)


class TestMemoryRequest:
    def test_latency_requires_completion(self):
        r = MemoryRequest(RequestKind.DEMAND_READ, 1, 0, arrival=100)
        with pytest.raises(ValueError):
            _ = r.latency

    def test_complete_sets_latency_and_fires_callback(self):
        done = []
        r = MemoryRequest(
            RequestKind.DEMAND_READ, 1, 0, arrival=100, on_complete=done.append
        )
        r.complete(163)
        assert r.latency == 63
        assert done == [r]

    def test_kind_is_read(self):
        assert RequestKind.DEMAND_READ.is_read
        assert RequestKind.SW_PREFETCH.is_read
        assert not RequestKind.WRITE.is_read

    def test_request_ids_unique(self):
        a = MemoryRequest(RequestKind.WRITE, 1, 0, arrival=0)
        b = MemoryRequest(RequestKind.WRITE, 1, 0, arrival=0)
        assert a.req_id != b.req_id
