"""QueueSampler lifetime tests: detach, duration/sample bounds, export."""

import dataclasses

import pytest

from repro.config import fbdimm_baseline
from repro.stats.sampling import QueueSampler, Sample
from repro.system import System
from repro.telemetry import MetricsRegistry


def build_system(programs=("swim",), insts=8_000):
    config = dataclasses.replace(
        fbdimm_baseline(len(programs)), instructions_per_core=insts
    )
    return System(config, list(programs))


class TestLifetime:
    def test_detach_stops_sampling(self):
        system = build_system()
        sampler = QueueSampler(period_ps=50_000)
        sampler.attach(system.sim, system.controller)
        assert sampler.attached
        sampler.detach()
        assert not sampler.attached
        system.run()
        assert sampler.samples == []  # pending tick fired as a no-op

    def test_max_samples_bounds_recording(self):
        system = build_system()
        sampler = QueueSampler(period_ps=10_000, max_samples=5)
        sampler.attach(system.sim, system.controller)
        system.run()
        assert len(sampler.samples) == 5
        assert not sampler.attached

    def test_max_duration_bounds_recording(self):
        system = build_system()
        sampler = QueueSampler(period_ps=10_000, max_duration_ps=100_000)
        sampler.attach(system.sim, system.controller)
        result = system.run()
        assert result.elapsed_ps > 100_000
        assert sampler.samples
        assert all(s.time_ps <= 110_000 for s in sampler.samples)
        assert not sampler.attached

    def test_double_attach_rejected(self):
        system = build_system()
        sampler = QueueSampler(period_ps=50_000)
        sampler.attach(system.sim, system.controller)
        with pytest.raises(RuntimeError):
            sampler.attach(system.sim, system.controller)

    def test_detach_then_reattach(self):
        system = build_system()
        sampler = QueueSampler(period_ps=50_000)
        sampler.attach(system.sim, system.controller)
        sampler.detach()
        sampler.attach(system.sim, system.controller)
        system.run()
        assert sampler.samples

    def test_stale_tick_cannot_resurrect_after_reattach(self):
        """Regression: detach left its scheduled tick pending; a re-attach
        must not let that stale tick record and re-arm alongside the new
        chain (which doubled the sampling cadence)."""
        system = build_system()
        sampler = QueueSampler(period_ps=50_000)
        sampler.attach(system.sim, system.controller)
        sampler.detach()
        sampler.attach(system.sim, system.controller)
        system.run()
        times = [s.time_ps for s in sampler.samples]
        assert len(times) >= 2
        assert len(times) == len(set(times))  # no duplicated sample instants
        gaps = {b - a for a, b in zip(times, times[1:])}
        assert gaps == {50_000}  # single chain: exactly one period apart

    def test_double_detach_is_noop(self):
        sampler = QueueSampler(period_ps=50_000)
        sampler.detach()  # never attached: still safe
        sampler.detach()
        system = build_system()
        sampler.attach(system.sim, system.controller)
        sampler.detach()
        sampler.detach()
        assert not sampler.attached
        system.run()
        assert sampler.samples == []
        # ...and the sampler is still reusable after the run.
        assert sampler.to_records() == []

    def test_observe_into_after_detach_reattach_cycle(self):
        """detach -> observe_into -> re-attach keeps the series coherent."""
        system = build_system()
        sampler = QueueSampler(period_ps=25_000)
        sampler.attach(system.sim, system.controller)
        sampler.detach()
        registry = MetricsRegistry()
        sampler.observe_into(registry)  # empty fold is fine
        sampler.attach(system.sim, system.controller)
        system.run()
        sampler.observe_into(registry)
        snap = registry.snapshot()
        assert snap["sample.queue_depth"]["count"] == len(sampler.samples)


class TestExportRouting:
    def test_to_records_match_samples(self):
        sampler = QueueSampler()
        sampler.samples.append(Sample(
            time_ps=10, queued_requests=3, inflight_reads=1,
            inflight_writes=0, backlog=2,
        ))
        [record] = sampler.to_records()
        assert record == {
            "time_ps": 10, "queued_requests": 3, "inflight_reads": 1,
            "inflight_writes": 0, "backlog": 2,
        }

    def test_observe_into_registry(self):
        sampler = QueueSampler()
        for depth in (0, 2, 8):
            sampler.samples.append(Sample(
                time_ps=depth, queued_requests=depth, inflight_reads=depth,
                inflight_writes=1, backlog=0,
            ))
        registry = MetricsRegistry()
        sampler.observe_into(registry)
        snap = registry.snapshot()
        assert snap["sample.queue_depth"]["count"] == 3
        assert snap["sample.queue_depth"]["max"] == 8
        assert snap["sample.inflight"]["sum"] == 13
        assert snap["sample.backlog"]["max"] == 0

    def test_real_run_records_flow_into_capture(self):
        system = build_system()
        sampler = QueueSampler(period_ps=50_000)
        sampler.attach(system.sim, system.controller)
        system.run()
        records = sampler.to_records()
        assert len(records) == len(sampler.samples)
        assert all("queued_requests" in r for r in records)
