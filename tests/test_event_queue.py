"""Unit tests for the event queue: ordering, ties, cancellation."""

import pytest
from hypothesis import given, strategies as st

from repro.engine.event_queue import EventQueue


def drain(queue):
    out = []
    while True:
        event = queue.pop()
        if event is None:
            return out
        out.append(event)


class TestOrdering:
    def test_pops_in_time_order(self):
        q = EventQueue()
        q.push(30, lambda: None)
        q.push(10, lambda: None)
        q.push(20, lambda: None)
        assert [e.time for e in drain(q)] == [10, 20, 30]

    def test_same_time_pops_in_insertion_order(self):
        q = EventQueue()
        order = []
        q.push(5, lambda: order.append("a"))
        q.push(5, lambda: order.append("b"))
        q.push(5, lambda: order.append("c"))
        for event in drain(q):
            event.callback()
        assert order == ["a", "b", "c"]

    def test_pop_empty_returns_none(self):
        assert EventQueue().pop() is None

    @given(st.lists(st.integers(min_value=0, max_value=10_000), max_size=60))
    def test_pop_sequence_is_sorted(self, times):
        q = EventQueue()
        for t in times:
            q.push(t, lambda: None)
        popped = [e.time for e in drain(q)]
        assert popped == sorted(times)


class TestCancellation:
    def test_cancelled_event_is_skipped(self):
        q = EventQueue()
        keep = q.push(1, lambda: None)
        victim = q.push(2, lambda: None)
        victim.cancel()
        assert [e.time for e in drain(q)] == [1]
        assert keep.time == 1

    def test_len_ignores_cancelled(self):
        q = EventQueue()
        q.push(1, lambda: None)
        victim = q.push(2, lambda: None)
        assert len(q) == 2
        victim.cancel()
        assert len(q) == 1

    def test_peek_time_skips_cancelled_head(self):
        q = EventQueue()
        head = q.push(1, lambda: None)
        q.push(7, lambda: None)
        head.cancel()
        assert q.peek_time() == 7

    def test_peek_time_empty(self):
        assert EventQueue().peek_time() is None


class TestValidation:
    def test_negative_time_rejected(self):
        with pytest.raises(ValueError):
            EventQueue().push(-1, lambda: None)


class TestLiveCounterAndCompaction:
    def test_len_is_constant_time_counter(self):
        q = EventQueue()
        events = [q.push(i, lambda: None) for i in range(10)]
        assert len(q) == 10
        for event in events[:4]:
            event.cancel()
        assert len(q) == 6
        q.pop()
        assert len(q) == 5

    def test_double_cancel_counts_once(self):
        q = EventQueue()
        event = q.push(1, lambda: None)
        q.push(2, lambda: None)
        event.cancel()
        event.cancel()
        assert len(q) == 1

    def test_cancel_after_pop_does_not_corrupt_counter(self):
        q = EventQueue()
        event = q.push(1, lambda: None)
        q.push(2, lambda: None)
        assert q.pop() is event
        event.cancel()  # already fired; must be a no-op for the queue
        assert len(q) == 1
        assert q.pop().time == 2

    def test_heavy_cancellation_compacts_heap(self):
        q = EventQueue()
        victims = [q.push(i, lambda: None) for i in range(200)]
        keep = q.push(10_000, lambda: None)
        assert q.heap_size == 201
        for victim in victims:
            victim.cancel()
        # Compaction fires whenever garbage exceeds half the heap, so the
        # heap shrinks far below the raw push count and ends under the
        # 64-entry floor where compaction stops bothering.
        assert q.heap_size < 64
        assert len(q) == 1
        assert q.pop() is keep

    def test_small_heaps_never_compact(self):
        q = EventQueue()
        victims = [q.push(i, lambda: None) for i in range(10)]
        for victim in victims:
            victim.cancel()
        assert q.heap_size == 10  # below the compaction floor
        assert len(q) == 0
        assert q.pop() is None

    def test_order_preserved_across_compaction(self):
        q = EventQueue()
        keepers = []
        for i in range(300):
            event = q.push(1000 - i, lambda: None)
            if i % 3:
                event.cancel()
            else:
                keepers.append(event.time)
        popped = [e.time for e in drain(q)]
        assert popped == sorted(keepers)
