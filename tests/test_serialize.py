"""Round-trip tests for the typed JSON codec behind the run cache.

The cache and the differential tests rely on serialisation being *exact*:
``from_dict(to_dict(x)) == x`` and the canonical JSON text being stable,
so two results can be compared byte-for-byte.
"""

import dataclasses
import json
from typing import Dict, List, Optional, Tuple

import pytest

from repro.config import (
    AmbPrefetchConfig,
    Associativity,
    InterleaveScheme,
    PagePolicy,
    PrefetchLocation,
    ReplacementPolicy,
    SystemConfig,
    ddr2_baseline,
    ddr3_memory_overrides,
    fbdimm_amb_prefetch,
    fbdimm_baseline,
)
from repro.serialize import canonical_dumps, decode_value, encode_value
from repro.stats.collector import MemSystemStats
from repro.system import SimulationResult, run_system


def _small(config: SystemConfig) -> SystemConfig:
    return dataclasses.replace(config, instructions_per_core=1500)


CONFIGS = [
    ddr2_baseline(num_cores=1),
    fbdimm_baseline(num_cores=4),
    fbdimm_amb_prefetch(num_cores=2),
    fbdimm_amb_prefetch(
        num_cores=1,
        prefetch=AmbPrefetchConfig(
            region_cachelines=8,
            cache_entries=128,
            associativity=Associativity.FOUR_WAY,
            replacement=ReplacementPolicy.LRU,
            location=PrefetchLocation.CONTROLLER,
        ),
    ),
    fbdimm_amb_prefetch(
        num_cores=1,
        interleave=InterleaveScheme.PAGE,
        page_policy=PagePolicy.OPEN_PAGE,
    ),
    fbdimm_baseline(num_cores=1, **ddr3_memory_overrides(1066)),
]


class TestPrimitives:
    def test_primitives_pass_through(self):
        for value in (0, -3, 1.5, "x", True, False, None):
            assert encode_value(value) == value

    def test_enum_encodes_by_name(self):
        assert encode_value(Associativity.FULL) == "FULL"
        assert decode_value("FULL", Associativity) is Associativity.FULL

    def test_unencodable_is_a_hard_error(self):
        with pytest.raises(TypeError):
            encode_value(object())
        with pytest.raises(TypeError):
            encode_value({1, 2, 3})

    def test_float_json_fidelity(self):
        values = [0.1, 1.0 / 3.0, 2.5e-17, 39.0, 1e300]
        text = canonical_dumps(encode_value(values))
        assert json.loads(text) == values

    def test_canonical_text_is_key_order_independent(self):
        assert canonical_dumps({"b": 1, "a": 2}) == canonical_dumps({"a": 2, "b": 1})


class TestConfigRoundTrip:
    @pytest.mark.parametrize("config", CONFIGS, ids=range(len(CONFIGS)))
    def test_round_trip_is_exact(self, config):
        restored = SystemConfig.from_dict(config.to_dict())
        assert restored == config
        assert canonical_dumps(restored.to_dict()) == canonical_dumps(config.to_dict())

    def test_unknown_keys_are_ignored(self):
        raw = fbdimm_baseline().to_dict()
        raw["from_the_future"] = 42
        assert SystemConfig.from_dict(raw) == fbdimm_baseline()

    def test_missing_keys_take_field_defaults(self):
        raw = fbdimm_baseline().to_dict()
        del raw["seed"]
        assert SystemConfig.from_dict(raw).seed == SystemConfig().seed


@dataclasses.dataclass
class _Nested:
    per_core: Dict[int, List[int]]
    pair: Tuple[int, str]
    maybe: Optional[float] = None


class TestTypedContainers:
    def test_int_dict_keys_survive_json(self):
        value = _Nested(per_core={3: [1, 2], 0: []}, pair=(7, "x"), maybe=0.25)
        raw = json.loads(canonical_dumps(encode_value(value)))
        assert decode_value(raw, _Nested) == value

    def test_none_optional(self):
        value = _Nested(per_core={}, pair=(0, ""), maybe=None)
        assert decode_value(encode_value(value), _Nested) == value

    def test_mem_stats_round_trip(self):
        stats = MemSystemStats(
            demand_reads=10,
            per_channel_busy_ps={"nb0": 123, "sb0": 456},
            per_core_reads={0: [5, 7], 2: [1]},
            first_activity_ps=-1,
        )
        raw = json.loads(canonical_dumps(encode_value(stats)))
        assert decode_value(raw, MemSystemStats) == stats


class TestResultRoundTrip:
    @pytest.fixture(scope="class")
    def result(self):
        return run_system(_small(fbdimm_amb_prefetch(num_cores=1)), ("swim",))

    def test_result_round_trip_is_exact(self, result):
        restored = SimulationResult.from_dict(result.to_dict())
        assert restored == result
        assert restored.canonical_json() == result.canonical_json()

    def test_canonical_json_round_trips_through_text(self, result):
        text = result.canonical_json()
        again = SimulationResult.from_dict(json.loads(text))
        assert again.canonical_json() == text


class TestOptionalFieldElision:
    """Regression guard for ``ENCODE_OPTIONAL_FIELDS`` (the PR-9 device
    refactor).

    The device-generation fields late-added to :class:`MemoryConfig` and
    :class:`MemSystemStats` are elided from the encoding while at their
    defaults.  That elision is what keeps every pre-refactor conformance
    digest, run-cache key and regression golden byte-identical for DDR2
    configurations — if a default value ever starts serialising, all of
    them churn at once.
    """

    def test_memory_config_defaults_elide_device_fields(self):
        raw = ddr2_baseline().to_dict()
        assert "tFAW_ns" not in raw["memory"]
        assert "device" not in raw["memory"]

    def test_memory_config_non_defaults_serialise(self):
        raw = ddr2_baseline().with_device("ddr4-2400").to_dict()
        assert raw["memory"]["device"] == "ddr4-2400"
        assert raw["memory"]["tFAW_ns"] == pytest.approx(26 * 0.833)

    def test_mem_stats_defaults_elide_faw_counters(self):
        raw = encode_value(MemSystemStats(demand_reads=3))
        assert "faw_stalls" not in raw
        assert "faw_stall_ps" not in raw

    def test_mem_stats_non_defaults_serialise(self):
        stats = MemSystemStats(faw_stalls=2, faw_stall_ps=12_000)
        raw = encode_value(stats)
        assert raw["faw_stalls"] == 2
        assert raw["faw_stall_ps"] == 12_000

    def test_elided_and_explicit_forms_round_trip(self):
        for config in (
            ddr2_baseline(),
            fbdimm_baseline().with_device("ddr3-1333"),
        ):
            assert SystemConfig.from_dict(config.to_dict()) == config
        for stats in (
            MemSystemStats(demand_reads=1),
            MemSystemStats(faw_stalls=5, faw_stall_ps=999),
        ):
            raw = json.loads(canonical_dumps(encode_value(stats)))
            assert decode_value(raw, MemSystemStats) == stats

    def test_device_config_canonical_text_differs_only_in_new_keys(self):
        base = json.loads(canonical_dumps(ddr2_baseline().to_dict()))
        mapped = json.loads(
            canonical_dumps(ddr2_baseline().with_device("ddr3-1333").to_dict())
        )
        changed = {
            key
            for key in set(base["memory"]) | set(mapped["memory"])
            if base["memory"].get(key) != mapped["memory"].get(key)
        }
        # The preset rewrites exactly the fields it declares: the two new
        # optional keys plus the organization/timing/refresh overrides.
        assert changed == {
            "device", "tFAW_ns", "data_rate_mts", "timings",
            "refresh_interval_ns", "refresh_cycle_ns", "banks_per_dimm",
            "page_bytes", "rows_per_bank",
        }


class TestSlotsCompat:
    """Regression guard for the PR-8 ``__slots__`` rewrite.

    The hot classes (TraceEvent, MappedAddress, MemoryRequest, Core, the
    DRAM banks) carry ``__slots__`` and therefore no ``__dict__``; the
    codec must keep working off dataclass *fields* — a ``vars()``-based
    shortcut would crash on them — and slotted dataclasses, should one
    enter the result tree, must round-trip like any other.
    """

    def test_slotted_dataclass_round_trips(self):
        @dataclasses.dataclass
        class Slotted:
            __slots__ = ("count", "scale")
            count: int
            scale: float

        value = Slotted(count=3, scale=0.125)
        encoded = encode_value(value)
        assert encoded == {"count": 3, "scale": 0.125}
        raw = json.loads(canonical_dumps(encoded))
        assert decode_value(raw, Slotted) == value

    def test_slotted_dataclass_nested_in_containers(self):
        @dataclasses.dataclass
        class Inner:
            __slots__ = ("x",)
            x: int

        @dataclasses.dataclass
        class Outer:
            items: List[Inner]
            by_name: Dict[str, Inner]

        value = Outer(items=[Inner(1), Inner(2)], by_name={"a": Inner(3)})
        raw = json.loads(canonical_dumps(encode_value(value)))
        assert decode_value(raw, Outer) == value

    def test_hot_path_slots_classes_stay_unencodable(self):
        """The slotted non-dataclass hot classes never silently reach the
        cache: encode is a hard TypeError, not a lossy best-effort."""
        from repro.controller.mapping import MappedAddress
        from repro.controller.transaction import MemoryRequest, RequestKind
        from repro.workloads.trace import TraceEvent, TraceKind

        for value in (
            TraceEvent(0, TraceKind.READ, 5),
            MappedAddress(0, 0, 0, 0, 0, 0, 0, 0),
            MemoryRequest(RequestKind.DEMAND_READ, 1, 0, 0),
        ):
            assert not hasattr(value, "__dict__")  # the premise of the test
            with pytest.raises(TypeError):
                encode_value(value)
