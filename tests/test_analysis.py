"""Analysis-package tests: latency distributions, utilisation, sampling,
and run reports."""

import dataclasses

import pytest

from repro.analysis.latency import LatencyDistribution, histogram_ns
from repro.analysis.report import run_report
from repro.analysis.utilisation import channel_utilisation_report, utilisation_summary
from repro.config import (
    InterleaveScheme,
    PagePolicy,
    fbdimm_amb_prefetch,
    fbdimm_baseline,
)
from repro.stats.collector import MemSystemStats
from repro.stats.sampling import QueueSampler
from repro.system import System


def small_run(config=None, insts=8_000, programs=("swim",), capture=False,
              sampler=None):
    config = dataclasses.replace(
        config or fbdimm_baseline(len(programs)), instructions_per_core=insts
    )
    system = System(config, list(programs))
    if capture:
        system.controller.stats.enable_latency_capture()
    if sampler is not None:
        sampler.attach(system.sim, system.controller)
    return system.run()


class TestLatencyDistribution:
    def test_from_samples(self):
        dist = LatencyDistribution.from_samples_ps([63_000, 63_000, 100_000])
        assert dist.count == 3
        assert dist.min_ns == pytest.approx(63.0)
        assert dist.max_ns == pytest.approx(100.0)
        assert dist.mean_ns == pytest.approx(75.333, abs=0.01)
        assert dist.p50_ns == pytest.approx(63.0)

    def test_requires_samples(self):
        with pytest.raises(ValueError):
            LatencyDistribution.from_samples_ps([])

    def test_from_stats_requires_capture(self):
        with pytest.raises(ValueError):
            LatencyDistribution.from_stats(MemSystemStats())

    def test_capture_through_a_real_run(self):
        result = small_run(capture=True)
        dist = LatencyDistribution.from_stats(result.mem)
        assert dist.count == result.mem.demand_reads
        assert dist.min_ns >= 63.0  # idle latency is the floor
        assert dist.p50_ns <= dist.p90_ns <= dist.p99_ns <= dist.max_ns

    def test_queueing_tail(self):
        dist = LatencyDistribution.from_samples_ps([63_000] * 99 + [163_000])
        assert dist.queueing_tail_ns > 0

    def test_format(self):
        dist = LatencyDistribution.from_samples_ps([63_000])
        assert "p99" in dist.format()


class TestHistogram:
    def test_buckets_and_overflow(self):
        counts = histogram_ns([10_000, 20_000, 400_000], bucket_ns=15.0, max_ns=60.0)
        assert counts["0-15"] == 1
        assert counts["15-30"] == 1
        assert counts["60+"] == 1
        assert sum(counts.values()) == 3

    def test_validation(self):
        with pytest.raises(ValueError):
            histogram_ns([], bucket_ns=0)


class TestUtilisation:
    def test_report_sorted_and_bounded(self):
        result = small_run()
        report = channel_utilisation_report(result.mem)
        assert report, "FB-DIMM runs must track link occupancy"
        fractions = [r.busy_fraction for r in report]
        assert fractions == sorted(fractions, reverse=True)
        assert all(0 <= f <= 1 for f in fractions)

    def test_summary_keys(self):
        result = small_run()
        summary = utilisation_summary(result.mem)
        assert summary["utilized_bandwidth_gbs"] > 0
        assert 0 < summary["mean_link_busy_fraction"] <= 1
        assert summary["links_tracked"] == 8  # 4 channels x north+south

    def test_empty_stats(self):
        assert channel_utilisation_report(MemSystemStats()) == []


class TestQueueSampler:
    def test_collects_samples(self):
        sampler = QueueSampler(period_ps=50_000)
        small_run(sampler=sampler)
        assert len(sampler.samples) > 10
        assert sampler.mean_inflight() > 0

    def test_aggregates_on_empty(self):
        sampler = QueueSampler()
        assert sampler.mean_queue_depth() == 0.0
        assert sampler.peak_queue_depth() == 0
        assert sampler.backlog_fraction() == 0.0

    def test_period_validation(self):
        sampler = QueueSampler(period_ps=0)
        with pytest.raises(ValueError):
            sampler.attach(None, None)

    def test_loaded_system_queues(self):
        sampler = QueueSampler(period_ps=50_000)
        small_run(
            config=fbdimm_baseline(4),
            programs=("swim", "mgrid", "applu", "equake"),
            sampler=sampler,
        )
        assert sampler.peak_queue_depth() > 0


class TestRunReport:
    def test_report_mentions_key_facts(self):
        result = small_run(config=fbdimm_amb_prefetch(1))
        text = run_report(result)
        assert "fbdimm" in text
        assert "AMB prefetching: K=4" in text
        assert "swim" in text
        assert "coverage" in text
        assert "ACT/PRE" in text

    def test_report_without_prefetch(self):
        result = small_run()
        assert "AMB prefetching: off" in run_report(result)

    def test_report_per_core_queueing_column(self):
        result = small_run(
            config=fbdimm_baseline(2), programs=("swim", "mgrid")
        )
        text = run_report(result)
        assert "queueing" in text
        # Every core accumulated the third (queue-delay) counter.
        for entry in result.mem.per_core_reads.values():
            assert len(entry) == 3
            assert entry[2] >= 0

    def test_report_tolerates_legacy_two_field_entries(self):
        result = small_run()
        result.mem.per_core_reads[0] = [5, 315_000]  # pre-queue-delay shape
        assert "63.0ns" in run_report(result)

    def test_report_all_reads_latency_line(self):
        # read_latency_sum_ps covers sw-prefetch reads too; the report
        # must surface it, not just the demand-only average.
        result = small_run()
        mem = result.mem
        assert mem.total_reads > mem.demand_reads  # sw prefetch ran
        expected_ns = mem.read_latency_sum_ps / mem.total_reads / 1000
        text = run_report(result)
        assert f"incl. sw-prefetch {expected_ns:.1f} ns" in text

    def test_report_row_buffer_line_open_page(self):
        config = fbdimm_baseline(1).with_memory(
            page_policy=PagePolicy.OPEN_PAGE,
            interleave=InterleaveScheme.PAGE,
        )
        result = small_run(config=config)
        mem = result.mem
        assert mem.row_hits + mem.row_misses > 0
        text = run_report(result)
        assert (
            f"row buffer: {mem.row_hits} hits, {mem.row_misses} misses"
            in text
        )

    def test_report_close_page_omits_row_buffer_line(self):
        # Close page never re-hits a row, so the line would be 0/0 noise.
        result = small_run()
        assert result.mem.row_hits + result.mem.row_misses == 0
        assert "row buffer:" not in run_report(result)

    def test_report_faults_line_counts_injections(self):
        config = fbdimm_baseline(1).with_faults(error_rate=0.02)
        result = small_run(config=config)
        mem = result.mem
        assert mem.faults_injected > 0
        assert f"faults: {mem.faults_injected} injected" in run_report(result)
