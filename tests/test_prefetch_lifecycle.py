"""Prefetch lifecycle observability: taxonomy, invariant, zero overhead.

Pins the repro.prefetch contract end to end:

* the conservation invariant ``issued == used + evicted_unused +
  late_unused + invalidated + resident_at_end`` holds on every bench
  scenario (and on adversarial random event sequences, via hypothesis);
* lifecycle tracking is observation-only — enabling it never changes the
  simulated outcome;
* the edge cases each land in their taxonomy bucket: late fills,
  evictions racing pending fills, parity invalidations under
  fault injection;
* the ``PrefetchPolicy`` boundary re-hosts the paper's region prefetcher
  bit-identically;
* the lifecycle-derived coverage reproduces the legacy Figure 8 metric
  exactly.
"""

from __future__ import annotations

import dataclasses

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import (
    AmbPrefetchConfig,
    Associativity,
    PrefetchLocation,
    fbdimm_amb_prefetch,
)
from repro.prefetch.lifecycle import OUTCOMES, PrefetchLifecycle, conservation_delta
from repro.prefetch.policy import (
    RegionPrefetchPolicy,
    create_policy,
    policy_names,
    register_policy,
)
from repro.serialize import encode_value
from repro.stats import metrics
from repro.stats.collector import MemSystemStats
from repro.system import run_system

INSTS = 2000
SEED = 12345
PROGRAMS = ("wupwise", "swim", "mgrid", "applu")


def _with_lifecycle(config, **prefetch_overrides):
    prefetch = dataclasses.replace(
        config.memory.prefetch, lifecycle=True, **prefetch_overrides
    )
    return dataclasses.replace(
        config,
        memory=dataclasses.replace(config.memory, prefetch=prefetch),
    )


def _run_ap(insts: int = INSTS, programs=PROGRAMS, **prefetch_overrides):
    config = fbdimm_amb_prefetch(num_cores=len(programs), logic_channels=4)
    config = dataclasses.replace(
        config, instructions_per_core=insts, seed=SEED
    )
    return run_system(_with_lifecycle(config, **prefetch_overrides), programs)


def _assert_conserved(stats: MemSystemStats, where: str = "") -> None:
    delta = conservation_delta(stats)
    assert delta == 0, (
        f"{where}: issued {stats.pf_issued} != used {stats.pf_used} "
        f"+ evicted {stats.pf_evicted_unused} + late {stats.pf_late_unused} "
        f"+ invalidated {stats.pf_invalidated} "
        f"+ resident {stats.pf_resident_at_end} (delta {delta:+d})"
    )


class TestConservationOnBenchScenarios:
    """The invariant holds on every prefetch-enabled bench scenario."""

    def _prefetching_bench_pairs(self):
        from tests.test_engine_conformance import _bench_cases

        for name, pairs in sorted(_bench_cases().items()):
            for config, programs in pairs:
                if config.memory.prefetch.enabled:
                    yield name, config, programs

    def test_every_bench_scenario_conserves(self):
        checked = issued = 0
        for name, config, programs in self._prefetching_bench_pairs():
            result = run_system(_with_lifecycle(config), programs)
            _assert_conserved(result.mem, name)
            issued += result.mem.pf_issued
            checked += 1
        assert checked >= 3  # ap, ap-timeline, ap-faults at minimum
        assert issued > 0  # the scenarios did exercise the tracker

    def test_controller_side_buffer_conserves(self):
        result = _run_ap(location=PrefetchLocation.CONTROLLER)
        assert result.mem.pf_issued > 0
        _assert_conserved(result.mem, "mc-side")

    def test_hits_counted_like_amb_hits(self):
        result = _run_ap()
        assert result.mem.pf_hits == result.mem.amb_hits
        assert metrics.lifecycle_coverage(result.mem) == pytest.approx(
            metrics.prefetch_coverage(result.mem), abs=0
        )


class TestZeroOverhead:
    """Lifecycle tracking observes; it never changes the simulation."""

    def test_simulation_outcome_identical_with_lifecycle_on(self):
        config = fbdimm_amb_prefetch(num_cores=4, logic_channels=4)
        config = dataclasses.replace(
            config, instructions_per_core=INSTS, seed=SEED
        )
        off = run_system(config, PROGRAMS)
        on = run_system(_with_lifecycle(config), PROGRAMS)

        assert on.elapsed_ps == off.elapsed_ps
        assert on.core_ipcs == off.core_ipcs
        assert on.events_fired == off.events_fired
        off_mem = encode_value(off.mem)
        on_mem = encode_value(on.mem)
        pf_keys = {k for k in on_mem if k.startswith("pf_")}
        assert pf_keys  # the lifecycle run did record the taxonomy
        for key in pf_keys:
            on_mem.pop(key, None)
        assert on_mem == off_mem

    def test_defaults_are_elided_from_canonical_encodings(self):
        # Config: a pre-existing serialized AmbPrefetchConfig must decode
        # (and re-encode) unchanged, so the new fields hide at defaults.
        encoded = encode_value(AmbPrefetchConfig())
        assert "policy" not in encoded and "lifecycle" not in encoded
        encoded = encode_value(AmbPrefetchConfig(policy="region"))
        assert "policy" not in encoded  # default value, still elided
        # Stats: a lifecycle-off run encodes no pf_* fields at all.
        assert not any(
            key.startswith("pf_") for key in encode_value(MemSystemStats())
        )
        # Windows: same for the per-window taxonomy deltas.
        from repro.timeline.records import WindowRecord

        assert not any(
            key.startswith("pf_")
            for key in encode_value(WindowRecord(index=0, start_ps=0, end_ps=1))
        )


class TestEdgeCases:
    def test_late_fill_lands_in_late_unused(self):
        # Demand reads racing their own region's in-flight fill are the
        # common case at K=4; the merge path must charge ``late_unused``.
        result = _run_ap()
        assert result.mem.pf_late_unused > 0
        _assert_conserved(result.mem, "late-fill")

    def test_eviction_racing_pending_fill(self):
        # A 2-entry direct-mapped tag store thrashes: fills evict lines
        # whose replacement fetch is often already in flight.  Evictions
        # and re-issues must charge exactly one ``evicted_unused`` each.
        result = _run_ap(
            cache_entries=2, associativity=Associativity.DIRECT
        )
        assert result.mem.pf_evicted_unused > 0
        assert result.mem.pf_table_evictions > 0
        _assert_conserved(result.mem, "evict-race")

    def test_parity_invalidation_under_faults(self):
        config = fbdimm_amb_prefetch(num_cores=4, logic_channels=4)
        config = dataclasses.replace(
            config, instructions_per_core=INSTS, seed=SEED
        ).with_faults(error_rate=1e-3, amb_bitflip_rate=0.2)
        result = run_system(_with_lifecycle(config), PROGRAMS)
        assert result.mem.amb_parity_errors > 0
        assert result.mem.pf_invalidated > 0
        _assert_conserved(result.mem, "parity")

    def test_tag_store_counters_surface_in_stats(self):
        result = _run_ap()
        mem = result.mem
        assert mem.pf_table_lookups > 0
        assert mem.pf_table_hits > 0
        assert mem.pf_table_inserts > 0
        assert mem.pf_table_invalidations >= 0
        # The fold is gated on lifecycle: an off run keeps the fields 0.
        config = fbdimm_amb_prefetch(num_cores=4, logic_channels=4)
        config = dataclasses.replace(
            config, instructions_per_core=500, seed=SEED
        )
        off = run_system(config, PROGRAMS)
        assert off.mem.pf_table_lookups == 0


# ----------------------------------------------------------------------
# Property: the conservation invariant on adversarial event sequences
# ----------------------------------------------------------------------

_LINES = st.integers(min_value=0, max_value=7)

_EVENTS = st.one_of(
    st.tuples(st.just("issue"), st.lists(_LINES, max_size=4)),
    st.tuples(st.just("fill"), st.lists(_LINES, max_size=4)),
    st.tuples(st.just("hit"), _LINES),
    st.tuples(st.just("late"), _LINES),
    st.tuples(st.just("evict"), _LINES),
    st.tuples(st.just("invalidate"), _LINES),
    st.tuples(st.just("reset"), st.none()),
)


class TestConservationProperty:
    @settings(max_examples=200, deadline=None)
    @given(st.lists(_EVENTS, max_size=60))
    def test_random_event_sequences_conserve(self, events):
        stats = MemSystemStats()
        tracker = PrefetchLifecycle(stats)
        for kind, arg in events:
            if kind == "issue":
                tracker.on_issue(arg)
            elif kind == "fill":
                tracker.on_fill(arg)
            elif kind == "hit":
                tracker.on_hit(arg)
            elif kind == "late":
                tracker.on_late(arg)
            elif kind == "evict":
                tracker.on_evict(arg)
            elif kind == "invalidate":
                tracker.on_invalidate(arg)
            else:  # reset: mirror the controller's call order
                stats.reset_measurement()
                tracker.on_measurement_reset()
        # Mid-run, the delta equals exactly the open instances...
        assert conservation_delta(stats) == tracker.open_instances()
        # ...and finalize closes the taxonomy.
        tracker.finalize()
        assert tracker.open_instances() == 0
        _assert_conserved(stats, "property")
        for name in ("pf_issued", "pf_used", "pf_evicted_unused",
                     "pf_late_unused", "pf_invalidated",
                     "pf_resident_at_end"):
            assert getattr(stats, name) >= 0


# ----------------------------------------------------------------------
# The PrefetchPolicy boundary
# ----------------------------------------------------------------------


class TestPolicyBoundary:
    @settings(max_examples=200, deadline=None)
    @given(
        st.integers(min_value=1, max_value=16),
        st.integers(min_value=0, max_value=10_000),
    )
    def test_region_policy_matches_legacy_formula(self, k, demanded):
        policy = RegionPrefetchPolicy(k)
        base = (demanded // k) * k
        legacy_group = [demanded] + [
            line for line in range(base, base + k) if line != demanded
        ]
        assert [demanded] + policy.prefetch_lines(demanded) == legacy_group

    def test_region_policy_excludes_demanded_line(self):
        policy = RegionPrefetchPolicy(4)
        for demanded in range(12):
            companions = policy.prefetch_lines(demanded)
            assert demanded not in companions
            assert len(companions) == 3
            assert companions == sorted(companions)

    def test_registry(self):
        assert "region" in policy_names()
        policy = create_policy(AmbPrefetchConfig(region_cachelines=8))
        assert isinstance(policy, RegionPrefetchPolicy)
        assert policy.region_cachelines == 8
        assert policy.name == "region"

    def test_unknown_policy_rejected_at_creation_and_config(self):
        # dataclasses.replace re-runs __post_init__, so the config itself
        # rejects an unknown name before create_policy ever sees it...
        with pytest.raises(ValueError, match="bogus"):
            dataclasses.replace(AmbPrefetchConfig(), policy="bogus")
        with pytest.raises(ValueError, match="bogus"):
            AmbPrefetchConfig(policy="bogus")
        # ...and create_policy rejects a name bypassing validation.
        bogus = AmbPrefetchConfig()
        object.__setattr__(bogus, "policy", "bogus")
        with pytest.raises(ValueError, match="region"):
            create_policy(bogus)

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ValueError, match="already registered"):
            register_policy("region")(lambda config: RegionPrefetchPolicy(1))

    def test_training_hooks_are_optional_noops(self):
        policy = RegionPrefetchPolicy(4)
        policy.observe_hit(3)
        policy.observe_miss(5)
        assert policy.prefetch_lines(5) == [4, 6, 7]

    def test_invalid_region_size_rejected(self):
        with pytest.raises(ValueError):
            RegionPrefetchPolicy(0)


# ----------------------------------------------------------------------
# Derived metrics and the fig08 regression
# ----------------------------------------------------------------------


class TestDerivedMetrics:
    def test_zero_denominators_are_zero(self):
        stats = MemSystemStats()
        assert metrics.prefetch_accuracy(stats) == 0.0
        assert metrics.prefetch_pollution(stats) == 0.0
        assert metrics.prefetch_timeliness(stats) == 0.0
        assert metrics.lifecycle_coverage(stats) == 0.0

    def test_metrics_follow_the_taxonomy(self):
        stats = MemSystemStats()
        stats.pf_issued = 10
        stats.pf_used = 6
        stats.pf_late_unused = 2
        stats.pf_evicted_unused = 1
        stats.pf_invalidated = 1
        stats.demand_reads = 20
        stats.pf_hits = 8
        assert metrics.prefetch_accuracy(stats) == 0.6
        assert metrics.prefetch_pollution(stats) == 0.1
        assert metrics.prefetch_timeliness(stats) == 6 / 8
        assert metrics.lifecycle_coverage(stats) == 8 / 20

    def test_outcomes_tuple_matches_stats_fields(self):
        stats = MemSystemStats()
        for outcome in OUTCOMES:
            assert hasattr(stats, f"pf_{outcome}")


class TestFig08Regression:
    def test_lifecycle_coverage_reproduces_figure8(self):
        from repro.experiments.fig08_coverage import lifecycle_crosscheck
        from repro.experiments.runner import ExperimentContext

        ctx = ExperimentContext(instructions=800, seed=SEED, quick=True)
        problems = lifecycle_crosscheck(ctx)
        assert problems == []


# ----------------------------------------------------------------------
# Reporting surfaces
# ----------------------------------------------------------------------


class TestReportSurfaces:
    def test_run_report_includes_lifecycle_section(self):
        from repro.analysis.report import run_report

        result = _run_ap()
        text = run_report(result)
        assert "prefetch lifecycle:" in text
        assert "accuracy" in text and "pollution" in text
        assert "prefetch tag store:" in text

    def test_run_report_omits_lifecycle_when_off(self):
        from repro.analysis.report import run_report

        config = fbdimm_amb_prefetch(num_cores=2, logic_channels=2)
        config = dataclasses.replace(
            config, instructions_per_core=500, seed=SEED
        )
        text = run_report(run_system(config, ("wupwise", "swim")))
        assert "prefetch lifecycle:" not in text

    def test_lifecycle_report_renders_and_reconciles(self):
        from repro.prefetch.report import lifecycle_report, lifecycle_summary

        result = _run_ap()
        text = lifecycle_report(result.mem, label="test")
        assert "conservation: issued == sum(outcomes) holds" in text
        summary = lifecycle_summary(result.mem)
        assert summary["conservation_delta"] == 0
        assert summary["issued"] == result.mem.pf_issued
        assert summary["table_evictions"] == result.mem.pf_table_evictions

    def test_lifecycle_report_without_prefetches(self):
        from repro.prefetch.report import lifecycle_report

        assert "no prefetches issued" in lifecycle_report(MemSystemStats())

    def test_registry_exports_lifecycle_series(self):
        from repro.telemetry.registry import registry_from_stats

        result = _run_ap()
        snapshot = registry_from_stats(result.mem).snapshot()
        assert snapshot["mem.pf_issued"]["value"] == result.mem.pf_issued
        assert snapshot["mem.pf_table_evictions"]["value"] == (
            result.mem.pf_table_evictions
        )
        assert snapshot["mem.prefetch_accuracy"]["value"] == pytest.approx(
            metrics.prefetch_accuracy(result.mem)
        )
        assert snapshot["mem.lifecycle_coverage"]["value"] == pytest.approx(
            metrics.lifecycle_coverage(result.mem)
        )


class TestTimelineTaxonomy:
    def test_window_sums_reconcile_with_final_stats(self):
        config = fbdimm_amb_prefetch(num_cores=4, logic_channels=4)
        config = dataclasses.replace(
            config, instructions_per_core=INSTS, seed=SEED
        ).with_timeline(window_ns=500.0)
        result = run_system(_with_lifecycle(config), PROGRAMS)
        timeline = result.timeline
        assert timeline is not None and timeline.windows
        mem = result.mem
        for field, expected in (
            ("pf_issued", mem.pf_issued),
            ("pf_used", mem.pf_used),
            ("pf_evicted_unused", mem.pf_evicted_unused),
            ("pf_late_unused", mem.pf_late_unused),
            ("pf_invalidated", mem.pf_invalidated),
        ):
            total = sum(getattr(w, field) for w in timeline.windows)
            assert total == expected, field
        _assert_conserved(mem, "timeline")

    def test_timeline_report_shows_taxonomy_line(self):
        from repro.timeline.report import timeline_report

        config = fbdimm_amb_prefetch(num_cores=4, logic_channels=4)
        config = dataclasses.replace(
            config, instructions_per_core=INSTS, seed=SEED
        ).with_timeline(window_ns=500.0)
        result = run_system(_with_lifecycle(config), PROGRAMS)
        assert result.timeline is not None
        assert "prefetch lifecycle:" in timeline_report(result.timeline)
