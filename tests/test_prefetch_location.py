"""Controller-side prefetch buffering (PrefetchLocation.CONTROLLER)."""

import dataclasses


from repro.config import (
    AmbPrefetchConfig,
    PrefetchLocation,
    fbdimm_amb_prefetch,
    fbdimm_baseline,
)
from repro.controller.controller import MemoryController
from repro.controller.transaction import MemoryRequest, RequestKind
from repro.engine.simulator import Simulator
from repro.system import run_system

MC = AmbPrefetchConfig(location=PrefetchLocation.CONTROLLER)


class Harness:
    def __init__(self, memory):
        self.sim = Simulator()
        self.controller = MemoryController(self.sim, memory)
        self.done = []

    def submit(self, line, kind=RequestKind.DEMAND_READ, at=0):
        req = MemoryRequest(kind=kind, line_addr=line, core_id=0, arrival=at,
                            on_complete=self.done.append)
        self.sim.schedule_at(at, lambda: self.controller.submit(req))
        return req

    def run(self):
        self.sim.run(max_events=1_000_000)


def mc_memory():
    return fbdimm_amb_prefetch(prefetch=MC).memory


class TestControllerBufferPaths:
    def test_miss_still_costs_63ns(self):
        h = Harness(mc_memory())
        req = h.submit(0)
        h.run()
        assert req.latency == 63_000

    def test_hit_is_served_at_controller_overhead_only(self):
        h = Harness(mc_memory())
        h.submit(0, at=0)
        hit = h.submit(1, at=1_000_000)
        h.run()
        assert hit.amb_hit
        # No channel round trip at all: just the 12 ns controller overhead.
        assert hit.latency == 12_000

    def test_amb_tables_absent(self):
        h = Harness(mc_memory())
        channel = h.controller.channels[0]
        assert channel.mc_table is not None
        assert all(amb.table is None for amb in channel.ambs)

    def test_miss_moves_whole_region_over_channel(self):
        h = Harness(mc_memory())
        h.submit(0, at=0)
        h.run()
        h.controller.finalize()
        stats = h.controller.stats
        # 1 demanded + 3 prefetched lines crossed the channel.
        assert stats.bytes_read == 4 * 64
        assert stats.prefetched_lines == 3
        assert stats.activates == 1
        assert stats.column_accesses == 4

    def test_amb_placement_moves_only_demanded_line(self):
        h = Harness(fbdimm_amb_prefetch().memory)
        h.submit(0, at=0)
        h.run()
        h.controller.finalize()
        assert h.controller.stats.bytes_read == 64

    def test_write_invalidates_controller_buffer(self):
        h = Harness(mc_memory())
        h.submit(0, at=0)
        h.submit(1, kind=RequestKind.WRITE, at=1_000_000)
        third = h.submit(1, at=2_000_000)
        h.run()
        assert not third.amb_hit

    def test_merge_with_inflight_region(self):
        h = Harness(mc_memory())
        h.submit(0, at=0)
        merged = h.submit(1, at=40_000)
        h.run()
        assert merged.amb_hit
        h.controller.finalize()
        assert h.controller.stats.activates == 1

    def test_capacity_scales_with_dimms(self):
        h = Harness(mc_memory())
        channel = h.controller.channels[0]
        memory = mc_memory()
        expected = memory.prefetch.cache_entries * memory.dimms_per_channel
        assert channel.mc_table.config.cache_entries == expected


class TestEndToEndComparison:
    def test_controller_placement_loses_at_high_core_count(self):
        """The paper's argument: buffering in front of the channel burns
        the bandwidth multi-core processors are short of."""
        def total_ipc(prefetch, cores, programs):
            cfg = fbdimm_amb_prefetch(num_cores=cores, prefetch=prefetch)
            cfg = dataclasses.replace(cfg, instructions_per_core=15_000)
            return sum(run_system(cfg, programs).core_ipcs)

        programs = [
            "wupwise", "swim", "mgrid", "applu", "vpr", "equake",
            "facerec", "lucas",
        ]
        amb = total_ipc(AmbPrefetchConfig(), 8, programs)
        mc = total_ipc(MC, 8, programs)
        assert amb > mc

    def test_controller_placement_viable_at_one_core(self):
        def total_ipc(config):
            cfg = dataclasses.replace(config, instructions_per_core=15_000)
            return sum(run_system(cfg, ["swim"]).core_ipcs)

        base = total_ipc(fbdimm_baseline(1))
        mc = total_ipc(fbdimm_amb_prefetch(1, prefetch=MC))
        assert mc > base  # with bandwidth to spare it still helps
