"""Ablations beyond the paper's figures (DESIGN.md Section 5).

* **VRL** — Variable Read Latency on vs off under AMB prefetching.  The
  paper reports "very similar" improvement either way.
* **Page interleaving** — AMB prefetching over open-page + page
  interleaving, Figure 2's alternative layout.
* **Replacement** — FIFO (the paper's choice) vs LRU for the AMB cache.
  The paper argues LRU is wrong at this level because a block that just
  hit is now cached on-chip.
"""

from __future__ import annotations


from repro.config import (
    AmbPrefetchConfig,
    InterleaveScheme,
    PagePolicy,
    ReplacementPolicy,
    fbdimm_amb_prefetch,
    fbdimm_baseline,
)
from repro.experiments.runner import ExperimentContext, ResultTable, mean

CORE_COUNTS = (1, 4)


def plan(ctx: ExperimentContext) -> list:
    """Every run the three ablations need, for prefetching as one batch."""
    pairs = ctx.reference_plan()
    for cores in CORE_COUNTS:
        for workload in ctx.workloads_for(cores):
            programs = tuple(ctx.programs_of(workload))
            for vrl in (False, True):
                pairs.append(
                    (fbdimm_baseline(num_cores=cores, variable_read_latency=vrl),
                     programs)
                )
                pairs.append(
                    (fbdimm_amb_prefetch(num_cores=cores, variable_read_latency=vrl),
                     programs)
                )
            pairs.append(
                (fbdimm_amb_prefetch(
                    num_cores=cores,
                    interleave=InterleaveScheme.PAGE,
                    page_policy=PagePolicy.OPEN_PAGE,
                ), programs)
            )
            for policy in (ReplacementPolicy.FIFO, ReplacementPolicy.LRU):
                prefetch = AmbPrefetchConfig(replacement=policy)
                pairs.append(
                    (fbdimm_amb_prefetch(num_cores=cores, prefetch=prefetch),
                     programs)
                )
    return pairs


def run_vrl(ctx: ExperimentContext) -> ResultTable:
    """AP improvement with and without Variable Read Latency."""
    table = ResultTable(
        title="Ablation: AMB prefetching with/without VRL",
        columns=["cores", "improvement_no_vrl", "improvement_vrl"],
    )
    for cores in CORE_COUNTS:
        rows = {"off": [], "on": []}
        for workload in ctx.workloads_for(cores):
            programs = ctx.programs_of(workload)
            for key, vrl in (("off", False), ("on", True)):
                base = fbdimm_baseline(num_cores=cores, variable_read_latency=vrl)
                ap = fbdimm_amb_prefetch(num_cores=cores, variable_read_latency=vrl)
                ratio = ctx.smt_speedup(ctx.run(ap, programs)) / ctx.smt_speedup(
                    ctx.run(base, programs)
                )
                rows[key].append(ratio)
        table.add(
            cores=cores,
            improvement_no_vrl=mean(rows["off"]) - 1.0,
            improvement_vrl=mean(rows["on"]) - 1.0,
        )
    return table


def run_page_interleave(ctx: ExperimentContext) -> ResultTable:
    """AP over open-page/page-interleaved FB-DIMM vs the close-page default."""
    table = ResultTable(
        title="Ablation: AP with page interleaving (open page)",
        columns=["cores", "multi_cacheline_ap", "page_interleave_ap"],
    )
    for cores in CORE_COUNTS:
        multi, page = [], []
        for workload in ctx.workloads_for(cores):
            programs = ctx.programs_of(workload)
            multi.append(
                ctx.smt_speedup(ctx.run(fbdimm_amb_prefetch(num_cores=cores), programs))
            )
            page_cfg = fbdimm_amb_prefetch(
                num_cores=cores,
                interleave=InterleaveScheme.PAGE,
                page_policy=PagePolicy.OPEN_PAGE,
            )
            page.append(ctx.smt_speedup(ctx.run(page_cfg, programs)))
        table.add(cores=cores, multi_cacheline_ap=mean(multi), page_interleave_ap=mean(page))
    return table


def run_replacement(ctx: ExperimentContext) -> ResultTable:
    """FIFO vs LRU AMB-cache replacement."""
    table = ResultTable(
        title="Ablation: AMB-cache replacement policy",
        columns=["cores", "fifo", "lru"],
    )
    for cores in CORE_COUNTS:
        values = {ReplacementPolicy.FIFO: [], ReplacementPolicy.LRU: []}
        for workload in ctx.workloads_for(cores):
            programs = ctx.programs_of(workload)
            for policy in values:
                prefetch = AmbPrefetchConfig(replacement=policy)
                cfg = fbdimm_amb_prefetch(num_cores=cores, prefetch=prefetch)
                values[policy].append(ctx.smt_speedup(ctx.run(cfg, programs)))
        table.add(
            cores=cores,
            fifo=mean(values[ReplacementPolicy.FIFO]),
            lru=mean(values[ReplacementPolicy.LRU]),
        )
    return table


def main() -> None:
    ctx = ExperimentContext()
    for fn in (run_vrl, run_page_interleave, run_replacement):
        print(fn(ctx).format())
        print()


if __name__ == "__main__":
    main()
