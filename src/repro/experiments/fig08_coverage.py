"""Figure 8: prefetch coverage and efficiency across AMB-cache variants.

Varies, one axis at a time around the default (#CL=4, 64 entries, fully
associative):

* region size / interleave granularity #CL in {2, 4, 8};
* AMB-cache entries in {32, 64, 128};
* tag-store associativity in {direct, 2-way, full}.

Expected shapes: coverage rises with #CL (bounded by (K-1)/K) while
efficiency falls; more entries and more associativity help both, mildly.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.config import AmbPrefetchConfig, Associativity, fbdimm_amb_prefetch
from repro.experiments.runner import ExperimentContext, ResultTable, mean

#: (label, prefetch-config) variants, the figure's bar groups.
VARIANTS: List[Tuple[str, AmbPrefetchConfig]] = [
    ("#CL=2", AmbPrefetchConfig(region_cachelines=2)),
    ("#CL=4 (default)", AmbPrefetchConfig(region_cachelines=4)),
    ("#CL=8", AmbPrefetchConfig(region_cachelines=8)),
    ("#entry=32", AmbPrefetchConfig(cache_entries=32)),
    ("#entry=128", AmbPrefetchConfig(cache_entries=128)),
    ("Set=direct", AmbPrefetchConfig(associativity=Associativity.DIRECT)),
    ("Set=2", AmbPrefetchConfig(associativity=Associativity.TWO_WAY)),
]

CORE_COUNTS = (1, 4)


def plan(ctx: ExperimentContext) -> list:
    """Every run Figure 8 needs (coverage/efficiency need no references)."""
    pairs = []
    for _, prefetch in VARIANTS:
        for cores in CORE_COUNTS:
            for workload in ctx.workloads_for(cores):
                programs = tuple(ctx.programs_of(workload))
                config = fbdimm_amb_prefetch(num_cores=cores, prefetch=prefetch)
                pairs.append((config, programs))
    return pairs


def run(ctx: ExperimentContext) -> ResultTable:
    """Average coverage/efficiency of each variant."""
    table = ResultTable(
        title="Figure 8: AMB-prefetch coverage and efficiency",
        columns=["variant", "cores", "coverage", "efficiency", "bound"],
    )
    for label, prefetch in VARIANTS:
        for cores in CORE_COUNTS:
            coverages, efficiencies = [], []
            for workload in ctx.workloads_for(cores):
                programs = ctx.programs_of(workload)
                config = fbdimm_amb_prefetch(num_cores=cores, prefetch=prefetch)
                result = ctx.run(config, programs)
                coverages.append(result.prefetch_coverage)
                efficiencies.append(result.prefetch_efficiency)
            k = prefetch.region_cachelines
            table.add(
                variant=label,
                cores=cores,
                coverage=mean(coverages),
                efficiency=mean(efficiencies),
                bound=(k - 1) / k,
            )
    return table


def lifecycle_crosscheck(ctx: ExperimentContext) -> List[str]:
    """Recompute Figure 8's coverage from the lifecycle taxonomy.

    Re-runs every variant with ``AmbPrefetchConfig.lifecycle=True`` and
    checks, per run, that (a) the conservation invariant holds and
    (b) :func:`repro.stats.metrics.lifecycle_coverage` — coverage rebuilt
    from the per-prefetch outcome counters — equals the legacy
    ``prefetch_coverage`` *exactly* (both count hits at read completion,
    so any drift is a lifecycle-accounting bug, not noise).

    Returns human-readable mismatches; empty means the cross-check
    passed.  Deliberately separate from :func:`plan`/:func:`run`, whose
    lifecycle-off runs stay digest-pinned.
    """
    import dataclasses

    from repro.prefetch.lifecycle import conservation_delta
    from repro.stats import metrics

    problems: List[str] = []
    for label, prefetch in VARIANTS:
        for cores in CORE_COUNTS:
            for workload in ctx.workloads_for(cores):
                programs = ctx.programs_of(workload)
                config = fbdimm_amb_prefetch(
                    num_cores=cores,
                    prefetch=dataclasses.replace(prefetch, lifecycle=True),
                )
                result = ctx.run(config, programs)
                where = f"{label} cores={cores} workload={workload}"
                delta = conservation_delta(result.mem)
                if delta != 0:
                    problems.append(
                        f"{where}: conservation delta {delta:+d}"
                    )
                legacy = metrics.prefetch_coverage(result.mem)
                rebuilt = metrics.lifecycle_coverage(result.mem)
                if rebuilt != legacy:
                    problems.append(
                        f"{where}: lifecycle coverage {rebuilt!r}"
                        f" != legacy {legacy!r}"
                    )
    return problems


def main() -> None:
    ctx = ExperimentContext()
    print(run(ctx).format())


if __name__ == "__main__":
    main()
