"""Golden-number regression harness.

The simulator is deterministic, so a fixed set of tiny scenarios has
exactly reproducible outputs.  This module runs that set and compares
against golden values stored in ``goldens.json`` next to this file —
catching *any* unintended behavioural change, not just broken invariants.

Regenerate after an intentional model change::

    python -m repro.experiments.regression --update
"""

from __future__ import annotations

import dataclasses
import json
from pathlib import Path
from typing import Dict, List, Optional

from repro.config import (
    AmbPrefetchConfig,
    SystemConfig,
    ddr2_baseline,
    fbdimm_amb_prefetch,
    fbdimm_baseline,
)
from repro.system import run_system

GOLDEN_PATH = Path(__file__).with_name("goldens.json")

#: Metrics captured per scenario.  Integers only — float metrics would need
#: tolerance plumbing, and the integer counters pin behaviour just as hard.
_METRICS = (
    "elapsed_ps",
    "demand_reads",
    "writes",
    "amb_hits",
    "activates",
    "column_accesses",
    "prefetched_lines",
)


def _scenarios() -> Dict[str, "tuple[SystemConfig, List[str]]"]:
    def small(config: SystemConfig) -> SystemConfig:
        return dataclasses.replace(config, instructions_per_core=6_000)

    return {
        "ddr2-swim": (small(ddr2_baseline(1)), ["swim"]),
        "fbd-swim": (small(fbdimm_baseline(1)), ["swim"]),
        "ap-swim": (small(fbdimm_amb_prefetch(1)), ["swim"]),
        "ap-k8-vpr": (
            small(
                fbdimm_amb_prefetch(
                    1, prefetch=AmbPrefetchConfig(region_cachelines=8)
                )
            ),
            ["vpr"],
        ),
        "fbd-2core": (small(fbdimm_baseline(2)), ["gap", "vortex"]),
        "ap-2core-nosp": (
            dataclasses.replace(
                small(fbdimm_amb_prefetch(2)), software_prefetch=False
            ),
            ["wupwise", "equake"],
        ),
    }


def capture() -> Dict[str, Dict[str, int]]:
    """Run every scenario and capture its golden metrics."""
    snapshot: Dict[str, Dict[str, int]] = {}
    for name, (config, programs) in _scenarios().items():
        result = run_system(config, programs)
        snapshot[name] = {
            "elapsed_ps": result.elapsed_ps,
            "demand_reads": result.mem.demand_reads,
            "writes": result.mem.writes,
            "amb_hits": result.mem.amb_hits,
            "activates": result.mem.activates,
            "column_accesses": result.mem.column_accesses,
            "prefetched_lines": result.mem.prefetched_lines,
        }
    return snapshot


def load_goldens() -> Dict[str, Dict[str, int]]:
    """Stored golden values; raises if never generated."""
    if not GOLDEN_PATH.exists():
        raise FileNotFoundError(
            f"{GOLDEN_PATH} missing - run python -m repro.experiments.regression --update"
        )
    return json.loads(GOLDEN_PATH.read_text(encoding="utf-8"))


def save_goldens(snapshot: Dict[str, Dict[str, int]]) -> None:
    GOLDEN_PATH.write_text(
        json.dumps(snapshot, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )


def compare() -> List[str]:
    """Differences between current behaviour and the goldens (empty = ok)."""
    goldens = load_goldens()
    current = capture()
    problems: List[str] = []
    for name in sorted(set(goldens) | set(current)):
        if name not in goldens:
            problems.append(f"{name}: new scenario (regenerate goldens)")
            continue
        if name not in current:
            problems.append(f"{name}: scenario removed (regenerate goldens)")
            continue
        for metric in _METRICS:
            expected = goldens[name].get(metric)
            actual = current[name].get(metric)
            if expected != actual:
                problems.append(f"{name}.{metric}: golden {expected} != {actual}")
    return problems


def main(argv: Optional[List[str]] = None) -> int:
    import argparse

    parser = argparse.ArgumentParser()
    parser.add_argument("--update", action="store_true",
                        help="regenerate goldens.json from current behaviour")
    args = parser.parse_args(argv)
    if args.update:
        save_goldens(capture())
        print(f"wrote {GOLDEN_PATH}")
        return 0
    problems = compare()
    if problems:
        print("\n".join(problems))
        return 1
    print("all golden values match")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
