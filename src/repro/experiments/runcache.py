"""Content-addressed on-disk cache of simulation results.

Every run is identified by a stable SHA-256 over the *values* of its
:class:`~repro.config.SystemConfig`, its program list, and a code-version
salt hashed from the simulator's own sources — so editing the model
invalidates the whole cache automatically while editing the experiment
drivers (which only orchestrate runs) does not.

Layout under the cache root (default ``.repro-cache/``)::

    <root>/<key[:2]>/<key>.jsonl   two JSONL records: header, result payload
    <root>/quarantine/             entries that failed to load

Writes are atomic (temp file + ``os.replace``), so a parallel sweep whose
workers race on the same key can never leave a torn entry.  Loads are
corruption-tolerant: an entry that is truncated, unparsable, or written by
a different cache-format version is moved to ``quarantine/`` and reported
as a miss, which makes the caller recompute it — a bad entry can never
crash a sweep or poison its results.
"""

from __future__ import annotations

import contextlib
import hashlib
import json
import os
from dataclasses import dataclass
from functools import lru_cache
from pathlib import Path
from typing import Iterator, Optional, Sequence, Union

from repro.config import SystemConfig
from repro.serialize import canonical_dumps
from repro.system import SimulationResult

#: On-disk entry format version; bump when the serialisation changes shape.
#: Entries written under another version are quarantined at load.
CACHE_FORMAT = 1

#: Default cache root, relative to the invoking process's working directory.
DEFAULT_CACHE_DIR = ".repro-cache"

#: Top-level ``repro`` subpackages excluded from the code-version salt:
#: experiment drivers only *orchestrate* runs (every model parameter they
#: control travels inside SystemConfig, which is part of the key), so
#: editing them must not throw away valid simulation results.
_SALT_EXCLUDE = frozenset({"experiments"})


@lru_cache(maxsize=1)
def code_salt() -> str:
    """Hash of the simulator's source files (the cache-invalidation salt)."""
    import repro

    root = Path(repro.__file__).resolve().parent
    digest = hashlib.sha256()
    for path in sorted(root.rglob("*.py")):
        relative = path.relative_to(root)
        if relative.parts[0] in _SALT_EXCLUDE:
            continue
        digest.update(str(relative).encode())
        digest.update(b"\0")
        digest.update(path.read_bytes())
        digest.update(b"\0")
    return digest.hexdigest()[:16]


def run_key(
    config: SystemConfig,
    programs: Sequence[str],
    *,
    salt: Optional[str] = None,
) -> str:
    """Content hash identifying one ``run_system(config, programs)`` call.

    Pinned to field *values*: two configs built independently (or derived
    via ``dataclasses.replace``) with equal fields produce the same key.
    """
    payload = {
        "format": CACHE_FORMAT,
        "salt": salt if salt is not None else code_salt(),
        "config": config.to_dict(),
        "programs": list(programs),
    }
    return hashlib.sha256(canonical_dumps(payload).encode()).hexdigest()


@dataclass
class CacheStats:
    """Load/store accounting for one :class:`RunCache` instance."""

    hits: int = 0
    misses: int = 0
    stores: int = 0
    quarantined: int = 0


class RunCache:
    """Persistent result store keyed by :func:`run_key`."""

    def __init__(self, root: Union[str, Path] = DEFAULT_CACHE_DIR) -> None:
        self.root = Path(root)
        self.stats = CacheStats()

    def path_for(self, key: str) -> Path:
        return self.root / key[:2] / f"{key}.jsonl"

    # -- load ----------------------------------------------------------

    def load(self, key: str) -> Optional[SimulationResult]:
        """Return the cached result for ``key``, or None on miss.

        Any defect in the entry — truncation, corrupt JSON, format or salt
        mismatch, a payload that does not decode — quarantines the file and
        counts as a miss.
        """
        path = self.path_for(key)
        try:
            data = path.read_bytes()
        except OSError:
            self.stats.misses += 1
            return None
        try:
            result = self._parse_entry(data.decode("utf-8"), key)
        except Exception:
            self._quarantine(path)
            self.stats.misses += 1
            return None
        self.stats.hits += 1
        return result

    def _parse_entry(self, text: str, key: str) -> SimulationResult:
        lines = text.splitlines()
        if len(lines) < 2:
            raise ValueError("truncated cache entry")
        header = json.loads(lines[0])
        if header.get("format") != CACHE_FORMAT:
            raise ValueError(f"cache format mismatch: {header.get('format')}")
        if header.get("key") != key:
            raise ValueError("cache entry key mismatch")
        if header.get("salt") != code_salt():
            raise ValueError("cache entry salt mismatch")
        digest = hashlib.sha256(lines[1].encode()).hexdigest()
        if header.get("payload_sha256") != digest:
            raise ValueError("cache payload checksum mismatch")
        return SimulationResult.from_dict(json.loads(lines[1]))

    # -- store ---------------------------------------------------------

    def store(self, key: str, result: SimulationResult) -> Path:
        """Write one entry atomically; concurrent writers cannot tear it."""
        path = self.path_for(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        payload = canonical_dumps(result.to_dict())
        header = {
            "format": CACHE_FORMAT,
            "key": key,
            "salt": code_salt(),
            "payload_sha256": hashlib.sha256(payload.encode()).hexdigest(),
        }
        body = canonical_dumps(header) + "\n" + payload + "\n"
        temp = path.with_name(f"{path.name}.tmp{os.getpid()}")
        temp.write_text(body)
        os.replace(temp, path)
        self.stats.stores += 1
        return path

    # -- maintenance ---------------------------------------------------

    def entries(self) -> Iterator[Path]:
        """All live (non-quarantined) entry files."""
        if not self.root.is_dir():
            return
        for shard in sorted(self.root.iterdir()):
            if not shard.is_dir() or shard.name == "quarantine":
                continue
            for path in sorted(shard.glob("*.jsonl")):
                yield path

    def quarantined(self) -> Iterator[Path]:
        yield from sorted(self.root.joinpath("quarantine").glob("*"))

    def summary(self) -> dict:
        """Stats for the ``cache`` CLI and the CI artifact."""
        paths = list(self.entries())
        return {
            "root": str(self.root),
            "entries": len(paths),
            "bytes": sum(p.stat().st_size for p in paths),
            "quarantined": len(list(self.quarantined())),
            "salt": code_salt(),
            "format": CACHE_FORMAT,
            "session": {
                "hits": self.stats.hits,
                "misses": self.stats.misses,
                "stores": self.stats.stores,
                "quarantined": self.stats.quarantined,
            },
        }

    def purge(self) -> int:
        """Delete every entry (quarantine included); return files removed."""
        removed = 0
        for path in list(self.entries()) + list(self.quarantined()):
            with contextlib.suppress(OSError):
                path.unlink()
                removed += 1
        return removed

    def _quarantine(self, path: Path) -> None:
        quarantine = self.root / "quarantine"
        # A cache defect must never take the sweep down.
        with contextlib.suppress(OSError):
            quarantine.mkdir(parents=True, exist_ok=True)
            os.replace(path, quarantine / path.name)
            self.stats.quarantined += 1
