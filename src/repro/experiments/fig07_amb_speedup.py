"""Figure 7: overall performance of AMB prefetching.

Per-workload SMT speedups of FB-DIMM with (FBD-AP) and without (FBD) AMB
prefetching, default configuration: two logic channels, four-cacheline
interleaving, 64-entry fully associative AMB cache, software prefetching
on.  Expected shape: AP improves every workload (no negative speedups),
averaging in the mid-teens percent.
"""

from __future__ import annotations

from repro.config import fbdimm_amb_prefetch, fbdimm_baseline
from repro.experiments.runner import ExperimentContext, ResultTable, mean

CORE_COUNTS = (1, 2, 4, 8)


def plan(ctx: ExperimentContext) -> list:
    """Every run Figure 7 needs, for :meth:`ExperimentContext.prefetch`."""
    pairs = ctx.reference_plan()
    for cores in CORE_COUNTS:
        for workload in ctx.workloads_for(cores):
            programs = tuple(ctx.programs_of(workload))
            pairs.append((fbdimm_baseline(num_cores=cores), programs))
            pairs.append((fbdimm_amb_prefetch(num_cores=cores), programs))
    return pairs


def run(ctx: ExperimentContext) -> ResultTable:
    """FBD vs FBD-AP SMT speedups for every workload."""
    table = ResultTable(
        title="Figure 7: AMB prefetching performance",
        columns=["workload", "cores", "fbd", "fbd_ap", "improvement"],
    )
    for cores in CORE_COUNTS:
        for workload in ctx.workloads_for(cores):
            programs = ctx.programs_of(workload)
            fbd = ctx.smt_speedup(ctx.run(fbdimm_baseline(num_cores=cores), programs))
            ap = ctx.smt_speedup(
                ctx.run(fbdimm_amb_prefetch(num_cores=cores), programs)
            )
            table.add(
                workload=workload,
                cores=cores,
                fbd=fbd,
                fbd_ap=ap,
                improvement=ap / fbd - 1.0,
            )
    return table


def group_means(table: ResultTable) -> ResultTable:
    """Average improvement per core count (paper: 16.0/19.4/16.3/15.0 %)."""
    summary = ResultTable(
        title="Figure 7 summary: average AP improvement per core count",
        columns=["cores", "fbd", "fbd_ap", "improvement"],
    )
    for cores in CORE_COUNTS:
        rows = [r for r in table.rows if r["cores"] == cores]
        if not rows:
            continue
        fbd = mean([float(r["fbd"]) for r in rows])
        ap = mean([float(r["fbd_ap"]) for r in rows])
        summary.add(cores=cores, fbd=fbd, fbd_ap=ap, improvement=ap / fbd - 1.0)
    return summary


def main() -> None:
    ctx = ExperimentContext()
    table = run(ctx)
    print(table.format())
    print()
    print(group_means(table).format())


if __name__ == "__main__":
    main()
