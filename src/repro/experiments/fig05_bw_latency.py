"""Figure 5: average utilised bandwidth vs average read latency, DDR2 vs
FB-DIMM.

Reuses Figure 4's runs (the context memoises them).  Expected shape: at low
utilised bandwidth (single-core) DDR2's latency is slightly lower; at high
utilised bandwidth (8-core) FB-DIMM moves more data at lower latency.
"""

from __future__ import annotations

from repro.config import ddr2_baseline, fbdimm_baseline
from repro.experiments.fig04_smt_speedup import CORE_COUNTS
from repro.experiments.runner import ExperimentContext, ResultTable, mean


def plan(ctx: ExperimentContext) -> list:
    """Every run Figure 5 needs (Figure 4's, minus the SMT references)."""
    pairs = []
    for cores in CORE_COUNTS:
        for workload in ctx.workloads_for(cores):
            programs = tuple(ctx.programs_of(workload))
            pairs.append((ddr2_baseline(num_cores=cores), programs))
            pairs.append((fbdimm_baseline(num_cores=cores), programs))
    return pairs


def run(ctx: ExperimentContext) -> ResultTable:
    """Per-workload (bandwidth, latency) points for both systems."""
    table = ResultTable(
        title="Figure 5: utilised bandwidth (GB/s) vs average latency (ns)",
        columns=[
            "workload", "cores",
            "ddr2_bw", "ddr2_latency", "fbd_bw", "fbd_latency",
        ],
    )
    for cores in CORE_COUNTS:
        for workload in ctx.workloads_for(cores):
            programs = ctx.programs_of(workload)
            ddr2 = ctx.run(ddr2_baseline(num_cores=cores), programs)
            fbd = ctx.run(fbdimm_baseline(num_cores=cores), programs)
            table.add(
                workload=workload,
                cores=cores,
                ddr2_bw=ddr2.utilized_bandwidth_gbs,
                ddr2_latency=ddr2.avg_read_latency_ns,
                fbd_bw=fbd.utilized_bandwidth_gbs,
                fbd_latency=fbd.avg_read_latency_ns,
            )
    return table


def group_means(table: ResultTable) -> ResultTable:
    """Average bandwidth/latency per core count (the paper's text values)."""
    summary = ResultTable(
        title="Figure 5 summary: averages per core count",
        columns=["cores", "ddr2_bw", "ddr2_latency", "fbd_bw", "fbd_latency"],
    )
    for cores in CORE_COUNTS:
        rows = [r for r in table.rows if r["cores"] == cores]
        if not rows:
            continue
        summary.add(
            cores=cores,
            ddr2_bw=mean([float(r["ddr2_bw"]) for r in rows]),
            ddr2_latency=mean([float(r["ddr2_latency"]) for r in rows]),
            fbd_bw=mean([float(r["fbd_bw"]) for r in rows]),
            fbd_latency=mean([float(r["fbd_latency"]) for r in rows]),
        )
    return summary


def main() -> None:
    ctx = ExperimentContext()
    table = run(ctx)
    print(table.format())
    print()
    print(group_means(table).format())


if __name__ == "__main__":
    main()
