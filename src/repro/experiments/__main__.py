"""Command-line entry point: regenerate any (or every) paper result.

Usage::

    python -m repro.experiments <experiment> [--insts N] [--seed S] [--quick]
    python -m repro.experiments all --quick --jobs 4

Experiments: latency, fig04 .. fig13, ablations.

Each experiment first *plans* its full set of independent runs, which are
fanned out across ``--jobs`` worker processes and served from / written to
the persistent run cache (``.repro-cache/`` by default; ``--no-cache``
disables it).  Results are bit-identical at any job count — see
docs/PARALLEL.md.
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import TYPE_CHECKING, Iterable, List, Optional

from repro.experiments import (
    ExperimentContext,
)
from repro.experiments import (
    ablations,
    hw_prefetch,
    prefetch_location,
    validation,
    fig04_smt_speedup,
    fig05_bw_latency,
    fig06_bandwidth_impact,
    fig07_amb_speedup,
    fig08_coverage,
    fig09_decomposition,
    fig10_bw_latency_ap,
    fig11_sensitivity,
    fig12_sw_prefetch,
    fig13_power,
    latency_breakdown,
)

if TYPE_CHECKING:
    from repro.experiments.runner import RunProgress

EXPERIMENTS = {
    "latency": lambda ctx: [latency_breakdown.run(ctx)],
    "fig04": lambda ctx: (
        lambda t: [t, fig04_smt_speedup.group_means(t)]
    )(fig04_smt_speedup.run(ctx)),
    "fig05": lambda ctx: (
        lambda t: [t, fig05_bw_latency.group_means(t)]
    )(fig05_bw_latency.run(ctx)),
    "fig06": lambda ctx: [fig06_bandwidth_impact.run(ctx)],
    "fig07": lambda ctx: (
        lambda t: [t, fig07_amb_speedup.group_means(t)]
    )(fig07_amb_speedup.run(ctx)),
    "fig08": lambda ctx: [fig08_coverage.run(ctx)],
    "fig09": lambda ctx: [fig09_decomposition.run(ctx)],
    "fig10": lambda ctx: [fig10_bw_latency_ap.run(ctx)],
    "fig11": lambda ctx: [fig11_sensitivity.run(ctx)],
    "fig12": lambda ctx: [fig12_sw_prefetch.run(ctx)],
    "fig13": lambda ctx: [fig13_power.run(ctx)],
    "ablations": lambda ctx: [
        ablations.run_vrl(ctx),
        ablations.run_page_interleave(ctx),
        ablations.run_replacement(ctx),
    ],
    "location": lambda ctx: [prefetch_location.run(ctx)],
    "hwprefetch": lambda ctx: [hw_prefetch.run(ctx)],
    "validation": lambda ctx: [
        validation.run_saturation(ctx),
        validation.run_pointer_chase(ctx),
    ],
}

#: Run enumeration per experiment, for the parallel/cached prefetch pass.
PLANS = {
    "latency": latency_breakdown.plan,
    "fig04": fig04_smt_speedup.plan,
    "fig05": fig05_bw_latency.plan,
    "fig06": fig06_bandwidth_impact.plan,
    "fig07": fig07_amb_speedup.plan,
    "fig08": fig08_coverage.plan,
    "fig09": fig09_decomposition.plan,
    "fig10": fig10_bw_latency_ap.plan,
    "fig11": fig11_sensitivity.plan,
    "fig12": fig12_sw_prefetch.plan,
    "fig13": fig13_power.plan,
    "ablations": ablations.plan,
    "location": prefetch_location.plan,
    "hwprefetch": hw_prefetch.plan,
    "validation": validation.plan,
}


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Regenerate the paper's tables and figures.",
    )
    parser.add_argument("experiment", choices=sorted(EXPERIMENTS) + ["all"])
    parser.add_argument("--insts", type=int, default=40_000,
                        help="instructions per core per run (default 40k)")
    parser.add_argument("--seed", type=int, default=12345)
    parser.add_argument("--quick", action="store_true",
                        help="subset of workloads per core-count group")
    parser.add_argument("--export", metavar="DIR",
                        help="also write each table as CSV and Markdown")
    parser.add_argument("--trace-out", metavar="DIR",
                        help="record a telemetry capture per fresh run")
    parser.add_argument("--heartbeat", type=float, default=10.0, metavar="SEC",
                        help="progress heartbeat period (0 = silent)")
    parser.add_argument("--jobs", type=int, default=1, metavar="N",
                        help="worker processes for independent runs")
    parser.add_argument("--no-cache", action="store_true",
                        help="skip the persistent run cache entirely")
    parser.add_argument("--cache-dir", default=None, metavar="DIR",
                        help="run-cache directory (default .repro-cache)")
    parser.add_argument("--cache-report", metavar="PATH",
                        help="write cache/run statistics as JSON (CI artifact)")
    args = parser.parse_args(argv)

    export_dir = None
    if args.export:
        from pathlib import Path

        export_dir = Path(args.export)
        export_dir.mkdir(parents=True, exist_ok=True)

    cache = None
    if not args.no_cache:
        from repro.experiments.runcache import DEFAULT_CACHE_DIR, RunCache

        cache = RunCache(args.cache_dir or DEFAULT_CACHE_DIR)

    names = sorted(EXPERIMENTS) if args.experiment == "all" else [args.experiment]
    heartbeat = _make_heartbeat(args.heartbeat, names)
    ctx = ExperimentContext(
        instructions=args.insts, seed=args.seed, quick=args.quick,
        progress=heartbeat, trace_dir=args.trace_out or None,
        jobs=args.jobs, cache=cache,
    )
    invocation_start = time.time()  # det: allow — progress reporting
    pairs = [pair for name in names for pair in PLANS[name](ctx)]
    if pairs:
        heartbeat.begin("prefetch")
        counts = ctx.prefetch(pairs)
        print(
            f"[prefetch: {counts['fresh']} simulated (--jobs {ctx.jobs}), "
            f"{counts['disk']} served from cache]\n"
        )
    for position, name in enumerate(names):
        heartbeat.begin(name)
        start = time.time()  # det: allow — progress reporting, not model time
        tables = EXPERIMENTS[name](ctx)
        for index, table in enumerate(tables):
            print(table.format())
            print()
            if export_dir is not None:
                from repro.experiments.export import write_csv, write_markdown

                stem = name if len(tables) == 1 else f"{name}-{index}"
                write_csv(table, export_dir / f"{stem}.csv")
                write_markdown(table, export_dir / f"{stem}.md")
        elapsed = time.time() - start  # det: allow — progress reporting
        done = position + 1
        remaining = len(names) - done
        eta = ""
        if remaining:
            total = time.time() - invocation_start  # det: allow — progress
            eta = f", ETA ~{total / done * remaining:.0f}s for {remaining} more"
        print(f"[{name}: {elapsed:.1f}s, {ctx.runs_executed} fresh runs{eta}]\n")
    served = ctx.disk_hits + ctx.fresh_runs
    fraction = ctx.disk_hits / served if served else 0.0
    if ctx.cache is not None:
        summary = ctx.cache.summary()
        print(
            f"[cache: {ctx.fresh_runs} simulated, {ctx.disk_hits} from disk "
            f"({fraction:.0%}), {summary['entries']} entries "
            f"({summary['bytes'] / 1e6:.1f} MB) in {summary['root']}]"
        )
    if args.cache_report:
        import json as _json
        from pathlib import Path as _Path

        report = {
            "experiments": names,
            "jobs": ctx.jobs,
            "fresh_runs": ctx.fresh_runs,
            "disk_hits": ctx.disk_hits,
            "served_from_cache_fraction": fraction,
            "cache": ctx.cache.summary() if ctx.cache is not None else None,
        }
        _Path(args.cache_report).write_text(_json.dumps(report, indent=2) + "\n")
    return 0


class _Heartbeat:
    """Throttled progress reporter fed by ExperimentContext's callback."""

    def __init__(self, period_s: float, names: Iterable[str]) -> None:
        self.period_s = period_s
        self.names = list(names)
        self.experiment = ""
        self.start = time.time()  # det: allow — progress reporting
        self.last_print = self.start
        self.runs_at_start = 0

    def begin(self, name: str) -> None:
        """A new experiment is starting; reset the per-experiment counters."""
        self.experiment = name
        self.last_print = time.time()  # det: allow — progress reporting

    def __call__(self, progress: RunProgress) -> None:
        if self.period_s <= 0:
            return
        now = time.time()  # det: allow — progress reporting
        if now - self.last_print < self.period_s:
            return
        self.last_print = now
        wall = max(now - self.start, 1e-9)
        rate = progress.total_events / wall
        position = (
            self.names.index(self.experiment) + 1
            if self.experiment in self.names else 0
        )
        print(
            f"  [heartbeat {self.experiment} ({position}/{len(self.names)}): "
            f"{progress.runs} runs, {progress.total_events / 1e6:.1f}M events, "
            f"{rate / 1e3:.0f}k events/s; last run "
            f"'{'+'.join(progress.programs)}' {progress.wall_s:.1f}s]",
            flush=True,
        )


def _make_heartbeat(period_s: float, names: Iterable[str]) -> _Heartbeat:
    return _Heartbeat(period_s, names)


if __name__ == "__main__":
    sys.exit(main())
