"""Figure 12: AMB prefetching and software cache prefetching are
complementary.

Four systems per core count, all FB-DIMM, all normalised to
no-prefetching-at-all:

* NONE  — neither prefetcher;
* SP    — software cache prefetching only;
* AP    — AMB prefetching only;
* AP+SP — both (the paper's default configuration).

Expected shapes: SP > AP for 1-4 cores, AP > SP at 8 cores (SP's extra
channel traffic hurts when bandwidth is scarce); AP+SP is close to the sum
of the individual gains.
"""

from __future__ import annotations

import dataclasses

from repro.config import SystemConfig, fbdimm_amb_prefetch, fbdimm_baseline
from repro.experiments.runner import ExperimentContext, ResultTable, mean

CORE_COUNTS = (1, 2, 4, 8)


def _with_sp(config: SystemConfig, enabled: bool) -> SystemConfig:
    return dataclasses.replace(config, software_prefetch=enabled)


def plan(ctx: ExperimentContext) -> list:
    """Every run Figure 12 needs, for :meth:`ExperimentContext.prefetch`."""
    pairs = ctx.reference_plan()
    for cores in CORE_COUNTS:
        for workload in ctx.workloads_for(cores):
            programs = tuple(ctx.programs_of(workload))
            base = fbdimm_baseline(num_cores=cores)
            ap_cfg = fbdimm_amb_prefetch(num_cores=cores)
            for config in (base, ap_cfg):
                for enabled in (False, True):
                    pairs.append((_with_sp(config, enabled), programs))
    return pairs


def run(ctx: ExperimentContext) -> ResultTable:
    """Average relative SMT speedup of NONE/SP/AP/AP+SP per core count."""
    table = ResultTable(
        title="Figure 12: relative speedup of AP, SP and AP+SP",
        columns=["cores", "sp", "ap", "ap_sp", "additivity"],
    )
    for cores in CORE_COUNTS:
        sums = {"none": [], "sp": [], "ap": [], "ap_sp": []}
        for workload in ctx.workloads_for(cores):
            programs = ctx.programs_of(workload)
            base = fbdimm_baseline(num_cores=cores)
            ap_cfg = fbdimm_amb_prefetch(num_cores=cores)
            sums["none"].append(
                ctx.smt_speedup(ctx.run(_with_sp(base, False), programs))
            )
            sums["sp"].append(ctx.smt_speedup(ctx.run(_with_sp(base, True), programs)))
            sums["ap"].append(
                ctx.smt_speedup(ctx.run(_with_sp(ap_cfg, False), programs))
            )
            sums["ap_sp"].append(
                ctx.smt_speedup(ctx.run(_with_sp(ap_cfg, True), programs))
            )
        none = mean(sums["none"])
        sp = mean(sums["sp"]) / none
        ap = mean(sums["ap"]) / none
        ap_sp = mean(sums["ap_sp"]) / none
        # additivity ~ 1.0 means the combined gain equals the sum of the
        # individual gains (the paper's complementarity claim).
        expected = 1.0 + (sp - 1.0) + (ap - 1.0)
        table.add(cores=cores, sp=sp, ap=ap, ap_sp=ap_sp, additivity=ap_sp / expected)
    return table


def main() -> None:
    ctx = ExperimentContext()
    print(run(ctx).format())


if __name__ == "__main__":
    main()
