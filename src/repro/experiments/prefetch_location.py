"""Ablation: where should the prefetch buffer live?

The paper's central design argument (Sections 1 and 6): prefetching to the
memory controller (Lin, Reinhardt and Burger's scheme) reduces hit latency
more, but every miss drags the whole region across the channel — the
resource multi-core processors are short of.  AMB prefetching buffers
*behind* the channel and only moves lines that are actually demanded.

Expected shape: CONTROLLER placement matches or slightly beats AMB at one
core (bandwidth to spare, 12 ns hits) and falls well behind at eight cores
(K x northbound traffic per miss).
"""

from __future__ import annotations

from repro.config import (
    AmbPrefetchConfig,
    PrefetchLocation,
    fbdimm_amb_prefetch,
    fbdimm_baseline,
)
from repro.experiments.runner import ExperimentContext, ResultTable, mean

CORE_COUNTS = (1, 4, 8)

MC_PREFETCH = AmbPrefetchConfig(location=PrefetchLocation.CONTROLLER)


def plan(ctx: ExperimentContext) -> list:
    """Every run this ablation needs, for :meth:`ExperimentContext.prefetch`."""
    pairs = ctx.reference_plan()
    for cores in CORE_COUNTS:
        for workload in ctx.workloads_for(cores):
            programs = tuple(ctx.programs_of(workload))
            pairs.append((fbdimm_baseline(num_cores=cores), programs))
            pairs.append((fbdimm_amb_prefetch(num_cores=cores), programs))
            pairs.append(
                (fbdimm_amb_prefetch(num_cores=cores, prefetch=MC_PREFETCH),
                 programs)
            )
    return pairs


def run(ctx: ExperimentContext) -> ResultTable:
    """Average speedup over plain FBD for both buffer placements."""
    table = ResultTable(
        title="Ablation: AMB-side vs controller-side prefetch buffering",
        columns=[
            "cores", "amb_speedup", "controller_speedup",
            "amb_bw_gbs", "controller_bw_gbs",
        ],
    )
    for cores in CORE_COUNTS:
        amb_gain, mc_gain, amb_bw, mc_bw = [], [], [], []
        for workload in ctx.workloads_for(cores):
            programs = ctx.programs_of(workload)
            base = ctx.smt_speedup(ctx.run(fbdimm_baseline(num_cores=cores), programs))
            amb = ctx.run(fbdimm_amb_prefetch(num_cores=cores), programs)
            mc = ctx.run(
                fbdimm_amb_prefetch(num_cores=cores, prefetch=MC_PREFETCH), programs
            )
            amb_gain.append(ctx.smt_speedup(amb) / base)
            mc_gain.append(ctx.smt_speedup(mc) / base)
            amb_bw.append(amb.utilized_bandwidth_gbs)
            mc_bw.append(mc.utilized_bandwidth_gbs)
        table.add(
            cores=cores,
            amb_speedup=mean(amb_gain),
            controller_speedup=mean(mc_gain),
            amb_bw_gbs=mean(amb_bw),
            controller_bw_gbs=mean(mc_bw),
        )
    return table


def main() -> None:
    print(run(ExperimentContext()).format())


if __name__ == "__main__":
    main()
