"""Export :class:`ResultTable` to CSV and Markdown.

Keeps the experiment drivers output-format-agnostic while letting users
pipe regenerated figures straight into spreadsheets or documents.
"""

from __future__ import annotations

import csv
import io
from pathlib import Path
from typing import Union

from repro.experiments.runner import ResultTable


def to_csv(table: ResultTable) -> str:
    """Render a table as CSV text (header row first)."""
    buffer = io.StringIO()
    writer = csv.writer(buffer)
    writer.writerow(table.columns)
    for row in table.rows:
        writer.writerow([row.get(column, "") for column in table.columns])
    return buffer.getvalue()


def write_csv(table: ResultTable, path: Union[str, Path]) -> None:
    """Write a table to a CSV file."""
    Path(path).write_text(to_csv(table), encoding="utf-8")


def to_markdown(table: ResultTable) -> str:
    """Render a table as a GitHub-flavoured Markdown table."""

    def fmt(value: object) -> str:
        if isinstance(value, float):
            return f"{value:.3f}"
        return str(value)

    lines = [f"### {table.title}", ""]
    lines.append("| " + " | ".join(str(c) for c in table.columns) + " |")
    lines.append("|" + "|".join("---" for _ in table.columns) + "|")
    for row in table.rows:
        lines.append(
            "| " + " | ".join(fmt(row.get(c, "")) for c in table.columns) + " |"
        )
    return "\n".join(lines) + "\n"


def write_markdown(table: ResultTable, path: Union[str, Path]) -> None:
    """Write a table to a Markdown file."""
    Path(path).write_text(to_markdown(table), encoding="utf-8")
