"""Figure 13: DRAM dynamic power of AMB-prefetching variants, relative to
FB-DIMM without prefetching.

AMB-cache hits skip the activate/precharge pair (the 4x-cost operation);
group fetches add extra column accesses.  The balance point the paper
finds: savings for K <= 4, eroding (and possibly negative at 8 cores) for
K = 8; larger/more associative buffers save a little more.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.config import AmbPrefetchConfig, Associativity, fbdimm_amb_prefetch, fbdimm_baseline
from repro.experiments.runner import ExperimentContext, ResultTable, mean
from repro.power.energy import relative_dynamic_power_from_commands

VARIANTS: List[Tuple[str, AmbPrefetchConfig]] = [
    ("#CL=2", AmbPrefetchConfig(region_cachelines=2)),
    ("#CL=4 (default)", AmbPrefetchConfig()),
    ("#CL=8", AmbPrefetchConfig(region_cachelines=8)),
    ("#entry=128", AmbPrefetchConfig(cache_entries=128)),
    ("4-way/64", AmbPrefetchConfig(associativity=Associativity.FOUR_WAY)),
]

CORE_COUNTS = (1, 4, 8)


def plan(ctx: ExperimentContext) -> list:
    """Every run Figure 13 needs (relative power needs no references)."""
    pairs = []
    for _, prefetch in VARIANTS:
        for cores in CORE_COUNTS:
            for workload in ctx.workloads_for(cores):
                programs = tuple(ctx.programs_of(workload))
                pairs.append((fbdimm_baseline(num_cores=cores), programs))
                pairs.append(
                    (fbdimm_amb_prefetch(num_cores=cores, prefetch=prefetch), programs)
                )
    return pairs


def run(ctx: ExperimentContext) -> ResultTable:
    """Relative dynamic power plus ACT/CAS count deltas per variant."""
    table = ResultTable(
        title="Figure 13: relative DRAM dynamic power (FBD = 1.0)",
        columns=[
            "variant", "cores", "relative_power",
            "act_change", "cas_change",
        ],
    )
    for label, prefetch in VARIANTS:
        for cores in CORE_COUNTS:
            powers, act_changes, cas_changes = [], [], []
            for workload in ctx.workloads_for(cores):
                programs = ctx.programs_of(workload)
                base = ctx.run(fbdimm_baseline(num_cores=cores), programs)
                ap = ctx.run(
                    fbdimm_amb_prefetch(num_cores=cores, prefetch=prefetch), programs
                )
                # The per-command accountant (RD/WR split + refreshes)
                # reduces exactly to the old aggregate PowerModel on
                # refresh-free runs, so the figure's numbers are
                # unchanged — pinned by tests/test_timeline.py.
                powers.append(
                    relative_dynamic_power_from_commands(ap.mem, base.mem)
                )
                act_changes.append(ap.mem.activates / max(1, base.mem.activates) - 1.0)
                cas_changes.append(
                    ap.mem.column_accesses / max(1, base.mem.column_accesses) - 1.0
                )
            table.add(
                variant=label,
                cores=cores,
                relative_power=mean(powers),
                act_change=mean(act_changes),
                cas_change=mean(cas_changes),
            )
    return table


def main() -> None:
    ctx = ExperimentContext()
    print(run(ctx).format())


if __name__ == "__main__":
    main()
