"""Substrate validation with open-loop synthetic workloads.

Before trusting the SPEC-profile results, these experiments confirm the
memory substrate behaves like the hardware it models:

* **stream saturation** — enough sequential streams must drive a channel
  near its theoretical data-bus efficiency;
* **latency vs load** — average latency must sit at the idle value under
  light load and grow smoothly toward saturation (the classic
  characterisation curve);
* **pointer chase** — a fully dependent access chain must observe ~idle
  latency per access regardless of the system's bandwidth.
"""

from __future__ import annotations

import dataclasses
from typing import Optional

from repro.config import SystemConfig, fbdimm_baseline
from repro.experiments.runner import ExperimentContext, ResultTable
from repro.system import System
from repro.workloads.synthetic import SyntheticSpec, pointer_chase, stream


def _run_streams(
    config: SystemConfig, num_streams: int, gap_insts: int, instructions: int
) -> "tuple[float, float]":
    """(utilised bandwidth GB/s, avg latency ns) for N stream cores."""
    config = dataclasses.replace(
        config,
        cpu=dataclasses.replace(config.cpu, num_cores=num_streams),
        instructions_per_core=instructions,
        software_prefetch=False,
    )
    # Stagger the start lines: bare (i << 26) offsets are congruent mod
    # the interleave rotation, which would phase-lock every stream onto
    # the same bank sequence.
    traces = [
        stream(
            SyntheticSpec(gap_insts=gap_insts, seed=i),
            base_line=(i << 26) + i * 13,
        )
        for i in range(num_streams)
    ]
    result = System.from_traces(
        config, traces, base_ipcs=[2.0] * num_streams
    ).run()
    return result.utilized_bandwidth_gbs, result.avg_read_latency_ns


def plan(ctx: Optional[ExperimentContext] = None) -> list:
    """Nothing to prefetch: validation builds systems from raw synthetic
    traces, which are not addressable by the (config, programs) run key."""
    return []


def run_saturation(ctx: Optional[ExperimentContext] = None) -> ResultTable:
    """Bandwidth and latency as offered load rises (more stream cores)."""
    instructions = ctx.instructions if ctx else 30_000
    table = ResultTable(
        title="Validation: stream load vs bandwidth and latency (FB-DIMM)",
        columns=["stream_cores", "bandwidth_gbs", "latency_ns", "peak_fraction"],
    )
    base = fbdimm_baseline()
    peak = base.memory.peak_bandwidth_gbs()
    for cores in (1, 2, 4, 8):
        bandwidth, latency = _run_streams(base, cores, gap_insts=12, instructions=instructions)
        table.add(
            stream_cores=cores,
            bandwidth_gbs=bandwidth,
            latency_ns=latency,
            peak_fraction=bandwidth / peak,
        )
    return table


def run_pointer_chase(ctx: Optional[ExperimentContext] = None) -> ResultTable:
    """A dependent chain must see roughly the idle latency per access."""
    instructions = ctx.instructions if ctx else 30_000
    table = ResultTable(
        title="Validation: pointer chase sees idle latency",
        columns=["system", "latency_ns"],
    )
    for label, config in (("fbdimm", fbdimm_baseline()),):
        config = dataclasses.replace(
            config, instructions_per_core=instructions, software_prefetch=False
        )
        trace = pointer_chase(SyntheticSpec(seed=7))
        result = System.from_traces(config, [trace], base_ipcs=[2.0]).run()
        table.add(system=label, latency_ns=result.avg_read_latency_ns)
    return table


def main() -> None:
    print(run_saturation().format())
    print()
    print(run_pointer_chase().format())


if __name__ == "__main__":
    main()
