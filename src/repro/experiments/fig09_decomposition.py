"""Figure 9: decomposing the AMB-prefetching gain.

Three systems per core count:

* FBD      — plain FB-DIMM;
* FBD-APFL — AMB prefetching with *full-latency* hits: a hit still pays
  tRCD + tCL but performs no bank activity, so any gain over FBD comes
  purely from better bandwidth utilisation (fewer bank conflicts);
* FBD-AP   — the real thing; its gain over FBD-APFL is the idle-latency
  reduction.

Expected shape: both components contribute comparably, with the
bandwidth-utilisation share growing with the core count.
"""

from __future__ import annotations

from repro.config import AmbPrefetchConfig, fbdimm_amb_prefetch, fbdimm_baseline
from repro.experiments.runner import ExperimentContext, ResultTable, mean

CORE_COUNTS = (1, 2, 4, 8)

APFL = AmbPrefetchConfig(enabled=True, full_latency_hits=True)


def plan(ctx: ExperimentContext) -> list:
    """Every run Figure 9 needs, for :meth:`ExperimentContext.prefetch`."""
    pairs = ctx.reference_plan()
    for cores in CORE_COUNTS:
        for workload in ctx.workloads_for(cores):
            programs = tuple(ctx.programs_of(workload))
            pairs.append((fbdimm_baseline(num_cores=cores), programs))
            pairs.append(
                (fbdimm_amb_prefetch(num_cores=cores, prefetch=APFL), programs)
            )
            pairs.append((fbdimm_amb_prefetch(num_cores=cores), programs))
    return pairs


def run(ctx: ExperimentContext) -> ResultTable:
    """Average SMT speedups of FBD / FBD-APFL / FBD-AP per core count."""
    table = ResultTable(
        title="Figure 9: decomposition of the AP performance gain",
        columns=[
            "cores", "fbd", "fbd_apfl", "fbd_ap",
            "bandwidth_gain", "latency_gain",
        ],
    )
    for cores in CORE_COUNTS:
        fbd_vals, apfl_vals, ap_vals = [], [], []
        for workload in ctx.workloads_for(cores):
            programs = ctx.programs_of(workload)
            fbd_vals.append(
                ctx.smt_speedup(ctx.run(fbdimm_baseline(num_cores=cores), programs))
            )
            apfl_vals.append(
                ctx.smt_speedup(
                    ctx.run(fbdimm_amb_prefetch(num_cores=cores, prefetch=APFL), programs)
                )
            )
            ap_vals.append(
                ctx.smt_speedup(
                    ctx.run(fbdimm_amb_prefetch(num_cores=cores), programs)
                )
            )
        fbd, apfl, ap = mean(fbd_vals), mean(apfl_vals), mean(ap_vals)
        table.add(
            cores=cores,
            fbd=fbd,
            fbd_apfl=apfl,
            fbd_ap=ap,
            bandwidth_gain=apfl / fbd - 1.0,
            latency_gain=ap / apfl - 1.0,
        )
    return table


def main() -> None:
    ctx = ExperimentContext()
    print(run(ctx).format())


if __name__ == "__main__":
    main()
