"""Figure 4: SMT speedup of 1-, 2-, 4- and 8-core execution, DDR2 vs FB-DIMM.

Reference points are single-threaded execution on DDR2, so the single-core
DDR2 bars are 1.0 by construction.  Expected shape: FB-DIMM performs
comparably or slightly worse for 1-2 cores and better for 4-8 cores.
"""

from __future__ import annotations

from repro.config import ddr2_baseline, fbdimm_baseline
from repro.experiments.runner import ExperimentContext, ResultTable, mean

CORE_COUNTS = (1, 2, 4, 8)


def plan(ctx: ExperimentContext) -> list:
    """Every run Figure 4 needs, for :meth:`ExperimentContext.prefetch`."""
    pairs = ctx.reference_plan()
    for cores in CORE_COUNTS:
        for workload in ctx.workloads_for(cores):
            programs = tuple(ctx.programs_of(workload))
            pairs.append((ddr2_baseline(num_cores=cores), programs))
            pairs.append((fbdimm_baseline(num_cores=cores), programs))
    return pairs


def run(ctx: ExperimentContext) -> ResultTable:
    """SMT speedup of every workload on both memory systems."""
    table = ResultTable(
        title="Figure 4: SMT speedup, DDR2 vs FB-DIMM",
        columns=["workload", "cores", "ddr2", "fbdimm"],
    )
    for cores in CORE_COUNTS:
        for workload in ctx.workloads_for(cores):
            programs = ctx.programs_of(workload)
            ddr2 = ctx.run(ddr2_baseline(num_cores=cores), programs)
            fbd = ctx.run(fbdimm_baseline(num_cores=cores), programs)
            table.add(
                workload=workload,
                cores=cores,
                ddr2=ctx.smt_speedup(ddr2),
                fbdimm=ctx.smt_speedup(fbd),
            )
    return table


def group_means(table: ResultTable) -> ResultTable:
    """Per-core-count average speedups (the paper's summary sentences)."""
    summary = ResultTable(
        title="Figure 4 summary: average SMT speedup per core count",
        columns=["cores", "ddr2", "fbdimm", "fbd_over_ddr2"],
    )
    for cores in CORE_COUNTS:
        rows = [r for r in table.rows if r["cores"] == cores]
        if not rows:
            continue
        ddr2 = mean([float(r["ddr2"]) for r in rows])
        fbd = mean([float(r["fbdimm"]) for r in rows])
        summary.add(cores=cores, ddr2=ddr2, fbdimm=fbd, fbd_over_ddr2=fbd / ddr2)
    return summary


def main() -> None:
    ctx = ExperimentContext()
    table = run(ctx)
    print(table.format())
    print()
    print(group_means(table).format())


if __name__ == "__main__":
    main()
