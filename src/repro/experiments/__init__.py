"""Experiment drivers: one module per table/figure of the paper.

Every module exposes ``run(ctx) -> ResultTable`` (or a list of tables) where
``ctx`` is an :class:`~repro.experiments.runner.ExperimentContext` that
memoises simulation runs, so figures sharing configurations (4 & 5, 7 & 10)
pay for them once.  ``python -m repro.experiments <name>`` prints any one of
them; ``all`` regenerates the full evaluation.
"""

from repro.experiments.runner import ExperimentContext, ResultTable

__all__ = ["ExperimentContext", "ResultTable"]
