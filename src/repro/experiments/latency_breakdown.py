"""Section 4's idle-latency claim: 63 ns per miss, 33 ns per AMB-cache hit.

Drives a bare memory controller (no cores) with single requests on an
otherwise idle system, so the measured latencies are pure service times:

* FB-DIMM miss:  12 controller + 3 command + 15 tRCD + 15 tCL + 6 data
  + 4 x 3 AMB hops = 63 ns;
* FB-DIMM AMB-cache hit: the tRCD + tCL disappear = 33 ns;
* DDR2 reference: 12 + 3 command + 3 latch + 30 + 12 burst = 60 ns.
"""

from __future__ import annotations

from typing import List, Optional

from repro.config import (
    MemoryConfig,
    ddr2_baseline,
    fbdimm_amb_prefetch,
    fbdimm_baseline,
)
from repro.controller.controller import MemoryController
from repro.controller.transaction import MemoryRequest, RequestKind
from repro.engine.simulator import Simulator
from repro.experiments.runner import ExperimentContext, ResultTable


def _idle_read_latency_ns(memory: MemoryConfig, line_addrs: List[int]) -> float:
    """Latency of the *last* of a sequence of back-to-back idle reads.

    Earlier reads warm the AMB cache; each read fully drains before the
    next is injected, so no queueing ever occurs.
    """
    sim = Simulator()
    controller = MemoryController(sim, memory)
    finished: List[MemoryRequest] = []
    inject_at = 0
    frame = memory.frame_ps
    for line in line_addrs:
        request = MemoryRequest(
            kind=RequestKind.DEMAND_READ,
            line_addr=line,
            core_id=0,
            arrival=inject_at,
            on_complete=finished.append,
        )
        sim.schedule_fire(inject_at, lambda r=request: controller.submit(r))
        sim.run(max_events=10_000)
        # A quiet microsecond between reads, frame-aligned so the idle
        # latency is not inflated by up to one frame of grid alignment.
        inject_at = -(-(sim.now + 1_000_000) // frame) * frame
    assert len(finished) == len(line_addrs)
    return finished[-1].latency / 1000.0


def plan(ctx: Optional[ExperimentContext] = None) -> list:
    """Nothing to prefetch: this experiment drives a bare controller with
    single injected requests, not ``run_system`` sweeps."""
    return []


def run(ctx: Optional[ExperimentContext] = None) -> ResultTable:
    """Measure the idle read latencies of all three systems."""
    table = ResultTable(
        title="Idle memory read latency (Section 4)",
        columns=["system", "case", "latency_ns"],
    )
    ddr2 = ddr2_baseline().memory
    fbd = fbdimm_baseline().memory
    ap = fbdimm_amb_prefetch().memory

    table.add(system="DDR2", case="miss", latency_ns=_idle_read_latency_ns(ddr2, [0]))
    table.add(system="FBD", case="miss", latency_ns=_idle_read_latency_ns(fbd, [0]))
    # First read of a region misses and fills the AMB cache; the second
    # read, one line over, is the AMB-cache hit.
    table.add(
        system="FBD-AP", case="miss", latency_ns=_idle_read_latency_ns(ap, [0])
    )
    table.add(
        system="FBD-AP", case="amb hit", latency_ns=_idle_read_latency_ns(ap, [0, 1])
    )
    return table


def main() -> None:
    print(run().format())


if __name__ == "__main__":
    main()
