"""Figure 6: performance impact of channel data rate and channel count.

Sweeps the data rate over {533, 667, 800} MT/s and the number of *logic*
channels over {1, 2, 4} for both DDR2 and FB-DIMM, reporting the average
SMT speedup per core count.  Expected shape: performance rises with
bandwidth everywhere; channel count matters far more for 8 cores than for
one; FB-DIMM's relative standing improves with core count.
"""

from __future__ import annotations

from repro.config import ddr2_baseline, fbdimm_baseline
from repro.experiments.runner import ExperimentContext, ResultTable, mean

DATA_RATES = (533, 667, 800)
LOGIC_CHANNELS = (1, 2, 4)
CORE_COUNTS = (1, 4, 8)


def plan(ctx: ExperimentContext) -> list:
    """Every run Figure 6 needs, for :meth:`ExperimentContext.prefetch`."""
    pairs = ctx.reference_plan()
    for factory in (ddr2_baseline, fbdimm_baseline):
        for rate in DATA_RATES:
            for channels in LOGIC_CHANNELS:
                for cores in CORE_COUNTS:
                    for workload in ctx.workloads_for(cores):
                        programs = tuple(ctx.programs_of(workload))
                        config = factory(
                            num_cores=cores,
                            data_rate_mts=rate,
                            logic_channels=channels,
                        )
                        pairs.append((config, programs))
    return pairs


def run(ctx: ExperimentContext) -> ResultTable:
    """Average SMT speedup for each (rate, channels, system, cores) cell."""
    table = ResultTable(
        title="Figure 6: bandwidth impact (avg SMT speedup)",
        columns=["system", "data_rate", "logic_channels", "cores", "speedup"],
    )
    for system_name, factory in (("ddr2", ddr2_baseline), ("fbdimm", fbdimm_baseline)):
        for rate in DATA_RATES:
            for channels in LOGIC_CHANNELS:
                for cores in CORE_COUNTS:
                    speedups = []
                    for workload in ctx.workloads_for(cores):
                        programs = ctx.programs_of(workload)
                        config = factory(
                            num_cores=cores,
                            data_rate_mts=rate,
                            logic_channels=channels,
                        )
                        result = ctx.run(config, programs)
                        speedups.append(ctx.smt_speedup(result))
                    table.add(
                        system=system_name,
                        data_rate=rate,
                        logic_channels=channels,
                        cores=cores,
                        speedup=mean(speedups),
                    )
    return table


def gain(table: ResultTable, system: str, cores: int, *,
         rate_from: int = 533, rate_to: int = 667, channels: int = 2) -> float:
    """Speedup gain from raising the data rate at fixed channel count."""
    lo = _cell(table, system, rate_from, channels, cores)
    hi = _cell(table, system, rate_to, channels, cores)
    return hi / lo


def channel_gain(table: ResultTable, system: str, cores: int, *,
                 ch_from: int = 1, ch_to: int = 2, rate: int = 667) -> float:
    """Speedup gain from adding logic channels at fixed data rate."""
    lo = _cell(table, system, rate, ch_from, cores)
    hi = _cell(table, system, rate, ch_to, cores)
    return hi / lo


def _cell(table: ResultTable, system: str, rate: int, channels: int, cores: int) -> float:
    for row in table.rows:
        if (
            row["system"] == system
            and row["data_rate"] == rate
            and row["logic_channels"] == channels
            and row["cores"] == cores
        ):
            return float(row["speedup"])
    raise KeyError((system, rate, channels, cores))


def main() -> None:
    ctx = ExperimentContext()
    table = run(ctx)
    print(table.format())
    for cores in CORE_COUNTS:
        print(
            f"cores={cores}: FBD 533->667 gain {gain(table, 'fbdimm', cores):.3f}, "
            f"1->2 channels {channel_gain(table, 'fbdimm', cores):.3f}, "
            f"2->4 channels {channel_gain(table, 'fbdimm', cores, ch_from=2, ch_to=4):.3f}"
        )


if __name__ == "__main__":
    main()
