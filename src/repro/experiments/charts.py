"""Terminal bar charts for experiment tables.

Renders one numeric column of a :class:`ResultTable` as horizontal ASCII
bars — enough to eyeball every figure of the paper straight from a shell,
no plotting stack required.
"""

from __future__ import annotations

from typing import Optional

from repro.experiments.runner import ResultTable

BAR_CHAR = "#"


def bar_chart(
    table: ResultTable,
    value_column: str,
    label_columns: Optional[list] = None,
    width: int = 50,
    baseline: Optional[float] = None,
) -> str:
    """Render ``value_column`` as horizontal bars.

    Args:
        table: The experiment result.
        value_column: Numeric column to plot.
        label_columns: Columns concatenated into each row label (defaults
            to every non-value column).
        width: Maximum bar width in characters.
        baseline: When given, a ``|`` marker is drawn at this value (e.g.
            1.0 for normalised results).
    """
    if width < 4:
        raise ValueError("width must be at least 4")
    if value_column not in table.columns:
        raise KeyError(value_column)
    label_columns = label_columns or [
        c for c in table.columns if c != value_column
    ]
    values = []
    for row in table.rows:
        value = row.get(value_column)
        if not isinstance(value, (int, float)):
            raise ValueError(f"non-numeric value in {value_column!r}: {value!r}")
        values.append(float(value))
    if not values:
        return f"== {table.title} == (empty)"

    top = max(max(values), baseline or 0.0, 1e-12)
    labels = [
        " ".join(str(row.get(c, "")) for c in label_columns)
        for row in table.rows
    ]
    label_width = max(len(label) for label in labels)

    lines = [f"== {table.title} [{value_column}] =="]
    marker_pos = None
    if baseline is not None and baseline > 0:
        marker_pos = round(baseline / top * width)
    for label, value in zip(labels, values):
        bar_len = max(0, round(value / top * width))
        bar = BAR_CHAR * bar_len
        if marker_pos is not None and 0 <= marker_pos <= width:
            padded = list(bar.ljust(width))
            if marker_pos < len(padded):
                padded[marker_pos] = "|"
            bar = "".join(padded).rstrip()
        lines.append(f"{label.ljust(label_width)}  {bar} {value:.3f}")
    return "\n".join(lines)


def sparkline(values: list, width: int = 40) -> str:
    """A one-line trend of a numeric sequence (for sweep summaries)."""
    if not values:
        raise ValueError("no values")
    blocks = " .:-=+*#%@"
    lo, hi = min(values), max(values)
    span = (hi - lo) or 1.0
    step = max(1, len(values) // width)
    sampled = values[::step][:width]
    return "".join(
        blocks[min(len(blocks) - 1, int((v - lo) / span * (len(blocks) - 1)))]
        for v in sampled
    )
