"""Ablation: AMB prefetching under a hardware stream prefetcher.

The paper evaluates AP with *software* prefetching only, arguing that
hardware prefetching would behave similarly (Section 5.4) but declining to
evaluate it because of design-variant explosion.  This ablation runs the
simplest reliable hardware scheme — a tagged next-line stream prefetcher at
the L2 — instead of software prefetching, and measures whether AP's gain
survives, which is the paper's conjecture.
"""

from __future__ import annotations

import dataclasses

from repro.config import SystemConfig, fbdimm_amb_prefetch, fbdimm_baseline
from repro.experiments.runner import ExperimentContext, ResultTable, mean

CORE_COUNTS = (1, 4)
HW_DEGREE = 4


def _with_hw(config: SystemConfig) -> SystemConfig:
    config = dataclasses.replace(config, software_prefetch=False)
    return config.with_cpu(hw_prefetch_degree=HW_DEGREE)


def plan(ctx: ExperimentContext) -> list:
    """Every run this ablation needs, for :meth:`ExperimentContext.prefetch`."""
    pairs = ctx.reference_plan()
    for cores in CORE_COUNTS:
        for workload in ctx.workloads_for(cores):
            programs = tuple(ctx.programs_of(workload))
            for factory in (fbdimm_baseline, fbdimm_amb_prefetch):
                pairs.append((factory(num_cores=cores), programs))
                pairs.append((_with_hw(factory(num_cores=cores)), programs))
    return pairs


def run(ctx: ExperimentContext) -> ResultTable:
    """AP improvement with SW prefetching vs with a HW stream prefetcher."""
    table = ResultTable(
        title="Ablation: AP gain under software vs hardware prefetching",
        columns=["cores", "ap_gain_with_sw", "ap_gain_with_hw"],
    )
    for cores in CORE_COUNTS:
        sw_gains, hw_gains = [], []
        for workload in ctx.workloads_for(cores):
            programs = ctx.programs_of(workload)
            base_sw = ctx.smt_speedup(
                ctx.run(fbdimm_baseline(num_cores=cores), programs)
            )
            ap_sw = ctx.smt_speedup(
                ctx.run(fbdimm_amb_prefetch(num_cores=cores), programs)
            )
            sw_gains.append(ap_sw / base_sw)
            base_hw = ctx.smt_speedup(
                ctx.run(_with_hw(fbdimm_baseline(num_cores=cores)), programs)
            )
            ap_hw = ctx.smt_speedup(
                ctx.run(_with_hw(fbdimm_amb_prefetch(num_cores=cores)), programs)
            )
            hw_gains.append(ap_hw / base_hw)
        table.add(
            cores=cores,
            ap_gain_with_sw=mean(sw_gains) - 1.0,
            ap_gain_with_hw=mean(hw_gains) - 1.0,
        )
    return table


def main() -> None:
    print(run(ExperimentContext()).format())


if __name__ == "__main__":
    main()
