"""Process-pool fan-out for independent simulation runs.

Every figure of the paper is a sweep of independent ``run_system`` calls;
this module runs a batch of ``(SystemConfig, programs)`` pairs across a
:class:`concurrent.futures.ProcessPoolExecutor`.  The simulator is fully
deterministic given its config and seed, so a worker process produces a
result bit-identical to the same run executed inline — parallelism changes
wall-clock time and nothing else (pinned by tests/test_parallel.py).

Results are returned in *submission order* regardless of completion order,
so callers that zip them back onto their inputs stay deterministic.  The
optional ``on_result`` callback fires in completion order and carries each
worker's wall-clock seconds, which is what feeds the experiments CLI's
events/sec + ETA heartbeats for runs that happened in another process.
"""

from __future__ import annotations

import time
from concurrent.futures import ProcessPoolExecutor, as_completed
from typing import Callable, List, Optional, Sequence, Tuple

from repro.config import SystemConfig
from repro.system import SimulationResult, run_system

#: One unit of work: the exact arguments of a ``run_system`` call.
RunPair = Tuple[SystemConfig, Tuple[str, ...]]

#: Completion callback: (index into the input batch, result, worker wall s).
ResultCallback = Callable[[int, SimulationResult, float], None]


def simulate_one(pair: RunPair) -> Tuple[SimulationResult, float]:
    """Worker entry point: run one pair, timing it for the heartbeats.

    Module-level (not nested) so it pickles across the process boundary.
    """
    config, programs = pair
    start = time.perf_counter()  # det: allow — heartbeat wall time
    result = run_system(config, programs)
    wall = time.perf_counter() - start  # det: allow — heartbeat wall time
    return result, wall


def execute_runs(
    pairs: Sequence[RunPair],
    jobs: int = 1,
    on_result: Optional[ResultCallback] = None,
) -> List[SimulationResult]:
    """Run every pair, fanning out across ``jobs`` worker processes.

    ``jobs <= 1`` (or a single pair) runs inline with no pool overhead;
    either way the returned list aligns index-for-index with ``pairs``.
    """
    pairs = list(pairs)
    results: List[Optional[SimulationResult]] = [None] * len(pairs)
    if jobs <= 1 or len(pairs) <= 1:
        for index, pair in enumerate(pairs):
            result, wall = simulate_one(pair)
            results[index] = result
            if on_result is not None:
                on_result(index, result, wall)
        return results  # type: ignore[return-value]
    with ProcessPoolExecutor(max_workers=min(jobs, len(pairs))) as pool:
        futures = {
            pool.submit(simulate_one, pair): index
            for index, pair in enumerate(pairs)
        }
        for future in as_completed(futures):
            index = futures[future]
            result, wall = future.result()
            results[index] = result
            if on_result is not None:
                on_result(index, result, wall)
    return results  # type: ignore[return-value]
