"""Process-pool fan-out for independent simulation runs.

Every figure of the paper is a sweep of independent ``run_system`` calls;
this module runs a batch of ``(SystemConfig, programs)`` pairs across a
:class:`concurrent.futures.ProcessPoolExecutor`.  The simulator is fully
deterministic given its config and seed, so a worker process produces a
result bit-identical to the same run executed inline — parallelism changes
wall-clock time and nothing else (pinned by tests/test_parallel.py).

Results are returned in *submission order* regardless of completion order,
so callers that zip them back onto their inputs stay deterministic.  The
optional ``on_result`` callback fires in completion order and carries each
worker's wall-clock seconds, which is what feeds the experiments CLI's
events/sec + ETA heartbeats for runs that happened in another process.
"""

from __future__ import annotations

import time
from concurrent.futures import ProcessPoolExecutor, as_completed
from typing import TYPE_CHECKING, Callable, List, Optional, Sequence, Tuple

from repro.config import SystemConfig
from repro.system import SimulationResult, run_system

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.telemetry.registry import MetricsRegistry

#: One unit of work: the exact arguments of a ``run_system`` call.
RunPair = Tuple[SystemConfig, Tuple[str, ...]]

#: Completion callback: (index into the input batch, result, worker wall s).
ResultCallback = Callable[[int, SimulationResult, float], None]


def simulate_one(pair: RunPair) -> Tuple[SimulationResult, float]:
    """Worker entry point: run one pair, timing it for the heartbeats.

    Module-level (not nested) so it pickles across the process boundary.
    """
    config, programs = pair
    start = time.perf_counter()  # det: allow — heartbeat wall time
    result = run_system(config, programs)
    wall = time.perf_counter() - start  # det: allow — heartbeat wall time
    return result, wall


def execute_runs(
    pairs: Sequence[RunPair],
    jobs: int = 1,
    on_result: Optional[ResultCallback] = None,
    metrics: Optional["MetricsRegistry"] = None,
) -> List[SimulationResult]:
    """Run every pair, fanning out across ``jobs`` worker processes.

    ``jobs <= 1`` (or a single pair) runs inline with no pool overhead;
    either way the returned list aligns index-for-index with ``pairs``.

    When ``metrics`` is given, every run's counters and histograms are
    folded into it (via :func:`repro.telemetry.registry_from_stats` and
    ``MetricsRegistry.merge``) in submission order, so per-worker metrics
    aggregate deterministically instead of being dropped at the process
    boundary.  Fan-out order never changes the merged snapshot.
    """
    pairs = list(pairs)
    results: List[Optional[SimulationResult]] = [None] * len(pairs)
    if jobs <= 1 or len(pairs) <= 1:
        for index, pair in enumerate(pairs):
            result, wall = simulate_one(pair)
            results[index] = result
            if on_result is not None:
                on_result(index, result, wall)
    else:
        with ProcessPoolExecutor(max_workers=min(jobs, len(pairs))) as pool:
            futures = {
                pool.submit(simulate_one, pair): index
                for index, pair in enumerate(pairs)
            }
            for future in as_completed(futures):
                index = futures[future]
                result, wall = future.result()
                results[index] = result
                if on_result is not None:
                    on_result(index, result, wall)
    if metrics is not None:
        aggregate_metrics(results, metrics)  # type: ignore[arg-type]
    return results  # type: ignore[return-value]


def aggregate_metrics(
    results: Sequence[SimulationResult],
    registry: Optional["MetricsRegistry"] = None,
) -> "MetricsRegistry":
    """Merge every run's stats into one registry, in the given order.

    Counters sum and latency histograms merge bucket-wise across runs;
    gauges (derived point-in-time quantities) keep the last run's value —
    recompute aggregates from the merged counters where it matters.
    """
    from repro.telemetry.registry import MetricsRegistry, registry_from_stats

    merged = registry if registry is not None else MetricsRegistry()
    for result in results:
        merged.merge(registry_from_stats(result.mem))
    return merged
