"""Figure 10: utilised bandwidth vs average latency, FB-DIMM with and
without AMB prefetching.

Reuses Figure 7's runs.  Expected shape: for every workload FBD-AP moves
more data per second at lower average read latency than FBD.
"""

from __future__ import annotations

from repro.config import fbdimm_amb_prefetch, fbdimm_baseline
from repro.experiments.fig07_amb_speedup import CORE_COUNTS
from repro.experiments.runner import ExperimentContext, ResultTable


def plan(ctx: ExperimentContext) -> list:
    """Every run Figure 10 needs (Figure 7's, minus the SMT references)."""
    pairs = []
    for cores in CORE_COUNTS:
        for workload in ctx.workloads_for(cores):
            programs = tuple(ctx.programs_of(workload))
            pairs.append((fbdimm_baseline(num_cores=cores), programs))
            pairs.append((fbdimm_amb_prefetch(num_cores=cores), programs))
    return pairs


def run(ctx: ExperimentContext) -> ResultTable:
    """Per-workload (bandwidth, latency) pairs for FBD and FBD-AP."""
    table = ResultTable(
        title="Figure 10: bandwidth vs latency, FBD vs FBD-AP",
        columns=[
            "workload", "cores",
            "fbd_bw", "fbd_latency", "ap_bw", "ap_latency",
        ],
    )
    for cores in CORE_COUNTS:
        for workload in ctx.workloads_for(cores):
            programs = ctx.programs_of(workload)
            fbd = ctx.run(fbdimm_baseline(num_cores=cores), programs)
            ap = ctx.run(fbdimm_amb_prefetch(num_cores=cores), programs)
            table.add(
                workload=workload,
                cores=cores,
                fbd_bw=fbd.utilized_bandwidth_gbs,
                fbd_latency=fbd.avg_read_latency_ns,
                ap_bw=ap.utilized_bandwidth_gbs,
                ap_latency=ap.avg_read_latency_ns,
            )
    return table


def main() -> None:
    ctx = ExperimentContext()
    print(run(ctx).format())


if __name__ == "__main__":
    main()
