"""Figure 11: sensitivity of FBD-AP performance to its configuration.

Varies interleave granularity (#CL 2/4/8), AMB-cache size (32/64/128
entries) and tag-store associativity (direct/2-way/full), each normalised
to the default (#CL=4, 64 entries, fully associative).

Expected shapes: 1-2 cores prefer larger #CL while 4-8 cores peak at 4;
32 vs 64 vs 128 entries are close; 2-way associativity reaches ~98 % of
full while direct-mapped loses several percent, worse at high core counts.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.config import AmbPrefetchConfig, Associativity, fbdimm_amb_prefetch
from repro.experiments.runner import ExperimentContext, ResultTable, mean

VARIANTS: List[Tuple[str, AmbPrefetchConfig]] = [
    ("#CL=2", AmbPrefetchConfig(region_cachelines=2)),
    ("#CL=4 (default)", AmbPrefetchConfig()),
    ("#CL=8", AmbPrefetchConfig(region_cachelines=8)),
    ("#entry=32", AmbPrefetchConfig(cache_entries=32)),
    ("#entry=64 (default)", AmbPrefetchConfig()),
    ("#entry=128", AmbPrefetchConfig(cache_entries=128)),
    ("Set=direct", AmbPrefetchConfig(associativity=Associativity.DIRECT)),
    ("Set=2", AmbPrefetchConfig(associativity=Associativity.TWO_WAY)),
    ("Set=full (default)", AmbPrefetchConfig()),
]

CORE_COUNTS = (1, 2, 4, 8)


def plan(ctx: ExperimentContext) -> list:
    """Every run Figure 11 needs, for :meth:`ExperimentContext.prefetch`."""
    pairs = ctx.reference_plan()
    for cores in CORE_COUNTS:
        for workload in ctx.workloads_for(cores):
            programs = tuple(ctx.programs_of(workload))
            pairs.append((fbdimm_amb_prefetch(num_cores=cores), programs))
            for _, prefetch in VARIANTS:
                config = fbdimm_amb_prefetch(num_cores=cores, prefetch=prefetch)
                pairs.append((config, programs))
    return pairs


def run(ctx: ExperimentContext) -> ResultTable:
    """Average speedup of each variant, normalised to the default config."""
    table = ResultTable(
        title="Figure 11: AP sensitivity (normalised to default)",
        columns=["variant", "cores", "normalised"],
    )
    defaults = {}
    for cores in CORE_COUNTS:
        values = []
        for workload in ctx.workloads_for(cores):
            programs = ctx.programs_of(workload)
            result = ctx.run(fbdimm_amb_prefetch(num_cores=cores), programs)
            values.append(ctx.smt_speedup(result))
        defaults[cores] = mean(values)

    for label, prefetch in VARIANTS:
        for cores in CORE_COUNTS:
            values = []
            for workload in ctx.workloads_for(cores):
                programs = ctx.programs_of(workload)
                config = fbdimm_amb_prefetch(num_cores=cores, prefetch=prefetch)
                values.append(ctx.smt_speedup(ctx.run(config, programs)))
            table.add(
                variant=label, cores=cores, normalised=mean(values) / defaults[cores]
            )
    return table


def main() -> None:
    ctx = ExperimentContext()
    print(run(ctx).format())


if __name__ == "__main__":
    main()
