"""Shared harness for the paper's experiments.

:class:`ExperimentContext` owns the knobs every figure shares (instruction
budget, seed, workload subset) and memoises :func:`repro.system.run_system`
calls by ``(config, programs)`` so that figures reusing each other's runs —
Figure 5 reads Figure 4's, Figure 10 reads Figure 7's — don't re-simulate.

The SMT-speedup reference points are the twelve programs' IPCs on the
single-core DDR2 system (Section 5.2), computed lazily and cached.
"""

from __future__ import annotations

import dataclasses
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

from repro.config import SystemConfig, ddr2_baseline
from repro.system import SimulationResult, run_system
from repro.workloads.multiprog import SINGLE_CORE, workloads_by_cores


@dataclass
class ResultTable:
    """A printable experiment result: ordered columns, one dict per row."""

    title: str
    columns: List[str]
    rows: List[Dict[str, object]] = field(default_factory=list)

    def add(self, **values: object) -> None:
        """Append a row; keys must match the declared columns."""
        unknown = set(values) - set(self.columns)
        if unknown:
            raise KeyError(f"unknown columns {sorted(unknown)}")
        self.rows.append(values)

    def column(self, name: str) -> List[object]:
        """All values of one column, in row order."""
        if name not in self.columns:
            raise KeyError(name)
        return [row.get(name) for row in self.rows]

    def row_for(self, key_column: str, key: object) -> Dict[str, object]:
        """The first row whose ``key_column`` equals ``key``."""
        for row in self.rows:
            if row.get(key_column) == key:
                return row
        raise KeyError(f"no row with {key_column}={key!r}")

    def format(self) -> str:
        """Fixed-width text rendering, suitable for EXPERIMENTS.md."""

        def fmt(value: object) -> str:
            if isinstance(value, float):
                return f"{value:.3f}"
            return str(value)

        header = [str(c) for c in self.columns]
        body = [[fmt(row.get(c, "")) for c in self.columns] for row in self.rows]
        widths = [
            max(len(header[i]), *(len(r[i]) for r in body)) if body else len(header[i])
            for i in range(len(header))
        ]
        lines = [f"== {self.title} =="]
        lines.append("  ".join(h.ljust(w) for h, w in zip(header, widths)))
        lines.append("  ".join("-" * w for w in widths))
        for row in body:
            lines.append("  ".join(v.ljust(w) for v, w in zip(row, widths)))
        return "\n".join(lines)


@dataclass(frozen=True)
class RunProgress:
    """What one completed simulation contributed, for heartbeat callbacks."""

    runs: int  # distinct simulations so far (this one included)
    total_events: int  # events fired across all of them
    wall_s: float  # wall-clock seconds of this run
    events: int  # events fired by this run
    programs: Tuple[str, ...]


class ExperimentContext:
    """Run cache plus shared experiment parameters.

    The in-memory memo is a read-through layer over an optional persistent
    :class:`~repro.experiments.runcache.RunCache`: a run is recalled from
    memory first, then from disk, and only simulated when both miss (every
    fresh result is written back to disk).  Independent runs can be fanned
    out across worker processes with :meth:`prefetch`.

    Args:
        instructions: Per-core instruction budget of every run.  The paper
            uses 100 M-instruction SimPoints; the synthetic traces reach
            stable rates far sooner, so the default keeps the whole
            evaluation laptop-fast.  Increase for tighter numbers.
        seed: Workload generation seed.
        quick: When true, each multi-core group is represented by a subset
            of its workloads (the benchmark harness uses this).
        progress: Called with a :class:`RunProgress` after every fresh
            (non-cached) simulation — the experiments CLI uses it for
            heartbeats.  Must not mutate the context.
        trace_dir: When set, every fresh run records a telemetry capture
            into ``trace_dir/run-NNN-<programs>.jsonl``.  Tracing hooks
            live in-process, so a tracing context always runs serially.
        jobs: Worker processes for :meth:`prefetch` (1 = inline).
        cache: Persistent run cache — a ``RunCache``, a directory path to
            create one at, or None (default) for no disk cache.
    """

    def __init__(
        self,
        instructions: int = 40_000,
        seed: int = 12345,
        quick: bool = False,
        progress: Optional[Callable[[RunProgress], None]] = None,
        trace_dir: Optional[Union[str, Path]] = None,
        jobs: int = 1,
        cache: Optional[Union[str, Path, "RunCache"]] = None,
    ) -> None:
        self.instructions = instructions
        self.seed = seed
        self.quick = quick
        self.progress = progress
        self.trace_dir = Path(trace_dir) if trace_dir is not None else None
        self.jobs = max(1, int(jobs))
        if isinstance(cache, (str, Path)):
            from repro.experiments.runcache import RunCache

            cache = RunCache(cache)
        self.cache = cache
        self.total_events = 0
        self.fresh_runs = 0  # simulations actually executed
        self.disk_hits = 0  # runs recalled from the persistent cache
        self._cache: Dict[Tuple[SystemConfig, Tuple[str, ...]], SimulationResult] = {}
        self._reference: Optional[Dict[str, float]] = None

    # ------------------------------------------------------------------

    def run(self, config: SystemConfig, programs: Sequence[str]) -> SimulationResult:
        """Run (or recall) one simulation with the context's budget/seed."""
        config = self._normalize(config)
        key = (config, tuple(programs))
        if key not in self._cache:
            result = self._load_from_disk(config, key[1])
            if result is None:
                result = self._run_fresh(config, key[1])
            self._cache[key] = result
        return self._cache[key]

    def prefetch(self, pairs: Sequence[Tuple[SystemConfig, Sequence[str]]]) -> Dict[str, int]:
        """Warm the memo for a batch of runs, fanning misses out in parallel.

        Every figure module exposes ``plan(ctx)`` returning the pairs its
        ``run(ctx)`` will request; prefetching that plan first lets the
        figure's own (serial, order-dependent) arithmetic be served entirely
        from the memo.  Returns how each pair was satisfied:
        ``{"memo": .., "disk": .., "fresh": ..}``.
        """
        missing: List[Tuple[SystemConfig, Tuple[str, ...]]] = []
        queued = set()
        counts = {"memo": 0, "disk": 0, "fresh": 0}
        for config, programs in pairs:
            config = self._normalize(config)
            key = (config, tuple(programs))
            if key in self._cache:
                counts["memo"] += 1
                continue
            if key in queued:
                continue
            result = self._load_from_disk(config, key[1])
            if result is not None:
                self._cache[key] = result
                counts["disk"] += 1
                continue
            queued.add(key)
            missing.append((config, key[1]))
        counts["fresh"] = len(missing)
        if not missing:
            return counts
        if self.jobs <= 1 or len(missing) == 1 or self.trace_dir is not None:
            for config, programs in missing:
                self._cache[(config, programs)] = self._run_fresh(config, programs)
            return counts

        from repro.experiments.parallel import execute_runs

        def on_result(index: int, result: SimulationResult, wall: float) -> None:
            config, programs = missing[index]
            self._store_to_disk(config, programs, result)
            self._note_fresh(result, wall, programs)

        results = execute_runs(missing, jobs=self.jobs, on_result=on_result)
        for pair, result in zip(missing, results):
            self._cache[pair] = result
        return counts

    def _normalize(self, config: SystemConfig) -> SystemConfig:
        return dataclasses.replace(
            config, instructions_per_core=self.instructions, seed=self.seed
        )

    def _run_fresh(
        self, config: SystemConfig, programs: Tuple[str, ...]
    ) -> SimulationResult:
        start = time.perf_counter()  # det: allow — heartbeat wall time
        result = (run_system(config, programs) if self.trace_dir is None
                  else self._run_traced(config, programs))
        wall = time.perf_counter() - start  # det: allow — heartbeat wall time
        self._store_to_disk(config, programs, result)
        self._note_fresh(result, wall, programs)
        return result

    def _note_fresh(
        self, result: SimulationResult, wall: float, programs: Tuple[str, ...]
    ) -> None:
        """Book-keeping shared by inline and worker-process completions."""
        self.fresh_runs += 1
        self.total_events += result.events_fired
        if self.progress is not None:
            self.progress(
                RunProgress(
                    runs=self.fresh_runs,
                    total_events=self.total_events,
                    wall_s=wall,
                    events=result.events_fired,
                    programs=programs,
                )
            )

    def _load_from_disk(
        self, config: SystemConfig, programs: Tuple[str, ...]
    ) -> Optional[SimulationResult]:
        if self.cache is None:
            return None
        from repro.experiments.runcache import run_key

        result = self.cache.load(run_key(config, programs))
        if result is not None:
            self.disk_hits += 1
        return result

    def _store_to_disk(
        self, config: SystemConfig, programs: Tuple[str, ...],
        result: SimulationResult,
    ) -> None:
        if self.cache is None:
            return
        from repro.experiments.runcache import run_key

        self.cache.store(run_key(config, programs), result)

    def _run_traced(
        self, config: SystemConfig, programs: Tuple[str, ...]
    ) -> SimulationResult:
        from repro.system import System
        from repro.telemetry import Tracer, build_capture, save_capture

        assert self.trace_dir is not None
        tracer = Tracer()
        machine = System(config, programs, tracer=tracer)
        result = machine.run()
        capture = build_capture(
            result, tracer,
            check_events=machine.controller.collect_check_events(),
        )
        self.trace_dir.mkdir(parents=True, exist_ok=True)
        stem = f"run-{self.fresh_runs:03d}-{'+'.join(programs)}"
        save_capture(self.trace_dir / f"{stem}.jsonl", capture)
        return result

    @property
    def runs_executed(self) -> int:
        """Simulations actually executed (cache hits excluded)."""
        return self.fresh_runs

    # ------------------------------------------------------------------

    def workloads_for(self, cores: int) -> List[str]:
        """Workload names for a core count, honouring ``quick`` mode."""
        names = workloads_by_cores(cores)
        if self.quick:
            limit = 4 if cores == 1 else 2
            names = names[:limit]
        return names

    def programs_of(self, workload: str) -> List[str]:
        from repro.workloads.multiprog import workload_programs

        return workload_programs(workload)

    # ------------------------------------------------------------------

    def reference_plan(self) -> List[Tuple[SystemConfig, Tuple[str, ...]]]:
        """The runs behind :meth:`reference_ipcs`, for :meth:`prefetch`.

        Any figure plan whose ``run`` computes SMT speedups should include
        these, since the first speedup triggers all twelve reference runs.
        """
        return [(ddr2_baseline(num_cores=1), (p,)) for p in SINGLE_CORE]

    def reference_ipcs(self) -> Dict[str, float]:
        """Per-program IPC on the single-core DDR2 system (the SMT-speedup
        denominator used throughout Section 5)."""
        if self._reference is None:
            reference: Dict[str, float] = {}
            for program in SINGLE_CORE:
                result = self.run(ddr2_baseline(num_cores=1), [program])
                reference[program] = result.core_ipcs[0]
            self._reference = reference
        return self._reference

    def smt_speedup(self, result: SimulationResult) -> float:
        """SMT speedup of a run against the DDR2 single-core references."""
        return result.smt_speedup(self.reference_ipcs())

    def speedup_vs(
        self, config: SystemConfig, baseline: SystemConfig, workload: str
    ) -> float:
        """Ratio of SMT speedups of two configs on one workload."""
        programs = self.programs_of(workload)
        cpu_a = dataclasses.replace(config.cpu, num_cores=len(programs))
        cpu_b = dataclasses.replace(baseline.cpu, num_cores=len(programs))
        cfg_a = dataclasses.replace(config, cpu=cpu_a)
        cfg_b = dataclasses.replace(baseline, cpu=cpu_b)
        a = self.smt_speedup(self.run(cfg_a, programs))
        b = self.smt_speedup(self.run(cfg_b, programs))
        return a / b


def mean(values: Sequence[float]) -> float:
    """Arithmetic mean (the paper's group summary)."""
    if not values:
        raise ValueError("mean of empty sequence")
    return sum(values) / len(values)
