"""Declarative parameter sweeps.

A :class:`Sweep` runs the cartesian product of named parameter axes
through a user factory and collects a metric from each run into a
:class:`ResultTable`.  Used by the tuning example and handy for ad-hoc
design-space exploration::

    sweep = Sweep(
        axes={"k": [2, 4, 8], "cores": [1, 4]},
        build=lambda k, cores: fbdimm_amb_prefetch(
            num_cores=cores, prefetch=AmbPrefetchConfig(region_cachelines=k)
        ),
        workload=lambda cores: workloads_by_cores(cores)[0],
    )
    table = sweep.run(ctx, metric=lambda r: sum(r.core_ipcs))
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterator, List, Sequence, Tuple

from repro.config import SystemConfig
from repro.experiments.runner import ExperimentContext, ResultTable
from repro.system import SimulationResult
from repro.workloads.multiprog import workload_programs


@dataclass
class Sweep:
    """Cartesian sweep over configuration axes.

    Attributes:
        axes: Ordered mapping of axis name to its values.
        build: Callable receiving one keyword per axis, returning the
            SystemConfig to run.
        workload: Workload name, or a callable of the axes returning one.
        metric_name: Column name for the collected metric.
    """

    axes: Dict[str, Sequence]
    build: Callable
    workload: object = "4C-1"
    metric_name: str = "metric"
    points_run: int = field(default=0, init=False)

    def _workload_for(self, point: Dict[str, object]) -> str:
        if callable(self.workload):
            usable = {
                k: v for k, v in point.items()
                if k in self.workload.__code__.co_varnames
            }
            return self.workload(**usable)
        return str(self.workload)

    def _points(
        self,
    ) -> Iterator[
        Tuple[Dict[str, object], str, Sequence[str], SystemConfig]
    ]:
        """(point, workload, programs, config) for every cell, in axis order."""
        names: List[str] = list(self.axes)
        for combo in itertools.product(*(self.axes[n] for n in names)):
            point = dict(zip(names, combo))
            workload = self._workload_for(point)
            programs = workload_programs(workload)
            config = self.build(**point)
            if config.cpu.num_cores != len(programs):
                config = config.with_cpu(num_cores=len(programs))
            yield point, workload, programs, config

    def plan(self, ctx: ExperimentContext) -> list:
        """Every run the sweep needs, for :meth:`ExperimentContext.prefetch`."""
        if not self.axes:
            raise ValueError("sweep needs at least one axis")
        return [
            (config, tuple(programs))
            for _, _, programs, config in self._points()
        ]

    def run(
        self,
        ctx: ExperimentContext,
        metric: Callable[[SimulationResult], float],
    ) -> ResultTable:
        """Execute every point; one table row per point.

        Independent points are first fanned out across the context's
        worker processes (``ctx.jobs``); the collection loop below is then
        served entirely from the context's memo.
        """
        if not self.axes:
            raise ValueError("sweep needs at least one axis")
        ctx.prefetch(self.plan(ctx))
        names: List[str] = list(self.axes)
        table = ResultTable(
            title=f"Sweep over {', '.join(names)}",
            columns=names + ["workload", self.metric_name],
        )
        for point, workload, programs, config in self._points():
            result = ctx.run(config, programs)
            self.points_run += 1
            table.add(**point, workload=workload, **{self.metric_name: metric(result)})
        return table
