"""Statistics for the benchmark harness: warmup detection and bootstrap CIs.

Pure functions over sample lists — no clocks, no I/O — so the analysis
itself is deterministic and unit-testable.  The bootstrap uses a seeded
``random.Random``, making confidence intervals reproducible given the
same samples.
"""

from __future__ import annotations

import random
from typing import List, Sequence, Tuple


def mean(samples: Sequence[float]) -> float:
    """Arithmetic mean; raises on an empty sequence."""
    if not samples:
        raise ValueError("mean of empty sequence")
    return sum(samples) / len(samples)


def median(samples: Sequence[float]) -> float:
    """Median; raises on an empty sequence."""
    if not samples:
        raise ValueError("median of empty sequence")
    ordered = sorted(samples)
    mid = len(ordered) // 2
    if len(ordered) % 2:
        return float(ordered[mid])
    return (ordered[mid - 1] + ordered[mid]) / 2.0


def detect_warmup(
    samples: Sequence[float],
    tolerance: float = 0.10,
    max_drop: int = -1,
) -> int:
    """How many leading samples to drop as warm-up.

    The first trials of a benchmark pay one-off costs (imports, allocator
    growth, cold CPU caches), inflating wall time.  A sample is considered
    warmed up once it lies within ``tolerance`` (relative) of the median
    of the remaining samples; everything before the first such sample is
    warm-up.  At most ``max_drop`` samples are dropped (default: half the
    series), so a noisy series never discards the bulk of its data.
    """
    if tolerance < 0:
        raise ValueError("tolerance must be >= 0")
    count = len(samples)
    if count <= 1:
        return 0
    if max_drop < 0:
        max_drop = count // 2
    max_drop = min(max_drop, count - 1)
    for drop in range(max_drop + 1):
        stable = median(samples[drop:])
        if stable == 0:
            return drop
        if abs(samples[drop] - stable) <= tolerance * stable:
            return drop
    return max_drop


def bootstrap_ci(
    samples: Sequence[float],
    confidence: float = 0.95,
    resamples: int = 1000,
    seed: int = 0,
) -> Tuple[float, float]:
    """Percentile-bootstrap confidence interval for the mean.

    Resamples with replacement ``resamples`` times using a seeded RNG, so
    the interval is a deterministic function of (samples, confidence,
    resamples, seed).  A single sample yields a degenerate [x, x]
    interval.
    """
    if not samples:
        raise ValueError("bootstrap over empty sample set")
    if not 0 < confidence < 1:
        raise ValueError(f"confidence must be in (0, 1), got {confidence}")
    if resamples < 1:
        raise ValueError("resamples must be >= 1")
    values = list(samples)
    if len(values) == 1:
        return values[0], values[0]
    rng = random.Random(seed)
    count = len(values)
    means: List[float] = []
    for _ in range(resamples):
        total = 0.0
        for _ in range(count):
            total += values[rng.randrange(count)]
        means.append(total / count)
    means.sort()
    alpha = (1.0 - confidence) / 2.0

    def percentile(p: float) -> float:
        # Linear interpolation between closest ranks.
        rank = p * (len(means) - 1)
        low = int(rank)
        high = min(low + 1, len(means) - 1)
        frac = rank - low
        return means[low] * (1 - frac) + means[high] * frac

    return percentile(alpha), percentile(1.0 - alpha)


def relative_width(lo: float, hi: float, center: float) -> float:
    """CI width as a fraction of its center (0 when the center is 0)."""
    if center == 0:
        return 0.0
    return (hi - lo) / abs(center)
