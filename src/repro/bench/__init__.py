"""``repro.bench`` — simulator performance observability.

Three layers (see docs/BENCHMARKING.md):

* **Measurement** — :mod:`repro.bench.scenarios` names the workloads,
  :mod:`repro.bench.harness` runs them with warmup detection and
  bootstrap confidence intervals, :mod:`repro.bench.clock` isolates the
  wall-clock reads so the determinism lint stays clean.
* **Attribution** — ``repro bench profile`` drives the hierarchical
  :class:`repro.engine.profiler.EventLoopProfiler` and exports flame
  stacks / Chrome traces.
* **Trajectory** — :mod:`repro.bench.schema` defines ``BENCH_<n>.json``,
  :mod:`repro.bench.compare` gates regressions, and
  :mod:`repro.bench.report` renders the dashboard.
"""

from repro.bench.compare import NOISE_CAP, Comparison, Finding, compare_docs
from repro.bench.harness import (
    HarnessConfig,
    ScenarioResult,
    ThroughputStat,
    run_scenario,
    run_suite,
    stat_of,
)
from repro.bench.report import render_report, trajectory
from repro.bench.scenarios import SCENARIOS, Scenario, ScenarioRun, resolve_scenarios
from repro.bench.schema import (
    BENCH_FORMAT,
    BENCH_VERSION,
    CURRENT_BENCH_INDEX,
    bench_path,
    build_bench_doc,
    list_bench_files,
    load_bench,
    machine_fingerprint,
    save_bench,
    validate_bench,
)
from repro.bench.stats import bootstrap_ci, detect_warmup, relative_width

__all__ = [
    "BENCH_FORMAT",
    "BENCH_VERSION",
    "CURRENT_BENCH_INDEX",
    "Comparison",
    "Finding",
    "HarnessConfig",
    "NOISE_CAP",
    "SCENARIOS",
    "Scenario",
    "ScenarioResult",
    "ScenarioRun",
    "ThroughputStat",
    "bench_path",
    "bootstrap_ci",
    "build_bench_doc",
    "compare_docs",
    "detect_warmup",
    "list_bench_files",
    "load_bench",
    "machine_fingerprint",
    "relative_width",
    "render_report",
    "resolve_scenarios",
    "run_scenario",
    "run_suite",
    "save_bench",
    "stat_of",
    "trajectory",
    "validate_bench",
]
