"""The perf dashboard: BENCH trajectory + telemetry metrics, rendered.

``repro bench report`` scans a directory (the repo root by default) for
``BENCH_<n>.json`` files and renders, per scenario, the events/sec
trajectory across bench indices — mean, 95% CI, delta versus the
previous point and a text sparkbar — followed by the latest point's
telemetry-derived metrics (latency, bandwidth, IPC, coverage come from
the same :class:`~repro.telemetry.registry.MetricsRegistry` adapters
the trace CLI uses).
"""

from __future__ import annotations

from pathlib import Path
from typing import Dict, List, Optional, Tuple, Union

from repro.bench.schema import list_bench_files, load_bench

#: Sparkbar glyph ramp (ASCII-safe fallback intentionally avoided: these
#: render fine in CI logs and modern terminals alike).
_BARS = " ▁▂▃▄▅▆▇█"


def _spark(values: List[float]) -> str:
    top = max(values) if values else 0.0
    if top <= 0:
        return " " * len(values)
    glyphs = []
    for value in values:
        rank = round(value / top * (len(_BARS) - 1))
        glyphs.append(_BARS[max(0, min(rank, len(_BARS) - 1))])
    return "".join(glyphs)


def trajectory(
    root: Union[str, Path]
) -> Dict[str, List[Tuple[int, Dict[str, object]]]]:
    """scenario -> [(bench index, scenario block)] across all BENCH files."""
    series: Dict[str, List[Tuple[int, Dict[str, object]]]] = {}
    for index, path in list_bench_files(root):
        doc = load_bench(path)
        scenarios = doc.get("scenarios", {})
        if not isinstance(scenarios, dict):
            continue
        for name, block in scenarios.items():
            if isinstance(block, dict):
                series.setdefault(name, []).append((index, block))
    return series


def _mean_of(block: Dict[str, object], key: str) -> Optional[float]:
    stat = block.get(key)
    if isinstance(stat, dict) and isinstance(stat.get("mean"), (int, float)):
        return float(stat["mean"])  # type: ignore[arg-type]
    return None


def render_report(root: Union[str, Path], markdown: bool = False) -> str:
    """The dashboard text (or markdown) for one BENCH directory."""
    series = trajectory(root)
    if not series:
        return (
            f"no BENCH_<n>.json files under {Path(root).resolve()} — "
            "run `repro bench run` first"
        )
    lines: List[str] = []
    if markdown:
        lines.append("# Performance trajectory")
        lines.append("")
    else:
        lines.append("performance trajectory")
        lines.append("=" * 22)
    for name in sorted(series):
        points = series[name]
        means = [m for _, block in points
                 if (m := _mean_of(block, "events_per_s")) is not None]
        if markdown:
            lines.append(f"## {name}")
            lines.append("")
            lines.append("| bench | events/s | 95% CI | Δ prev | req/s | wall s |")
            lines.append("|---|---|---|---|---|---|")
        else:
            latest_desc = points[-1][1].get("description", "")
            lines.append("")
            lines.append(f"{name} — {latest_desc}")
            header = (
                f"  {'bench':<9} {'events/s':>12} {'95% CI':>25} "
                f"{'Δ prev':>8} {'req/s':>10} {'wall s':>8}"
            )
            lines.append(header)
        previous: Optional[float] = None
        for index, block in points:
            mean = _mean_of(block, "events_per_s")
            req = _mean_of(block, "requests_per_s")
            wall = _mean_of(block, "wall_s")
            stat = block.get("events_per_s")
            ci = stat.get("ci95") if isinstance(stat, dict) else None
            ci_text = (
                f"[{ci[0]:,.0f}, {ci[1]:,.0f}]"
                if isinstance(ci, list) and len(ci) == 2 else "-"
            )
            delta = (
                f"{mean / previous - 1:+.1%}"
                if mean is not None and previous not in (None, 0) else "-"
            )
            mean_text = f"{mean:,.0f}" if mean is not None else "-"
            req_text = f"{req:,.0f}" if req is not None else "-"
            wall_text = f"{wall:.3f}" if wall is not None else "-"
            if markdown:
                lines.append(
                    f"| BENCH_{index} | {mean_text} | {ci_text} | {delta} "
                    f"| {req_text} | {wall_text} |"
                )
            else:
                lines.append(
                    f"  BENCH_{index:<3} {mean_text:>12} {ci_text:>25} "
                    f"{delta:>8} {req_text:>10} {wall_text:>8}"
                )
            previous = mean
        if not markdown and len(means) > 1:
            lines.append(f"  trend: {_spark(means)}")
        # Latest point's registry-derived metrics.
        latest = points[-1][1]
        metrics = latest.get("metrics")
        if isinstance(metrics, dict) and metrics:
            pairs = ", ".join(
                f"{key}={value}" for key, value in sorted(metrics.items())
            )
            if markdown:
                lines.append("")
                lines.append(f"latest metrics: `{pairs}`")
                lines.append("")
            else:
                lines.append(f"  latest metrics: {pairs}")
    return "\n".join(lines)
