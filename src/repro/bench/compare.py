"""CI-aware comparison of two BENCH files: the perf regression gate.

``repro bench compare OLD NEW`` answers one question with a clean exit
code: *did performance regress beyond noise?*  The rules:

* **Throughput** (events/sec, requests/sec) regresses when the new mean
  falls below the old by more than an adaptive threshold:
  ``max(--threshold, old CI relative width)`` capped at ``NOISE_CAP``.
  A wide (noisy) baseline CI widens the tolerance; the cap guarantees a
  genuine slowdown of more than ``NOISE_CAP`` (default 15%) can never
  hide behind noise.
* **Machines** — throughput is only gating when both files carry the
  same machine fingerprint.  Cross-machine comparisons (the committed
  baseline vs. a CI runner) demote throughput findings to warnings;
  ``--strict`` restores gating.
* **Determinism** — per-scenario ``events``/``requests`` are exact
  functions of the config, identical on any machine.  A mismatch means
  the simulated behaviour changed; it is reported as a warning (the
  usual case: an intentional model change that needs a fresh baseline)
  or, with ``--strict-events``, as a regression.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.bench.stats import relative_width

#: Ceiling on how much of the tolerance can come from baseline noise: a
#: slowdown beyond threshold+cap always gates, however noisy the CI.
NOISE_CAP = 0.15

#: Throughput statistics that gate (wall_s is their reciprocal — skipped).
_GATED_STATS = ("events_per_s", "requests_per_s")


@dataclass(frozen=True)
class Finding:
    """One comparison outcome for one scenario/metric."""

    scenario: str
    metric: str
    kind: str  # "regression" | "improvement" | "warning" | "note"
    detail: str


@dataclass
class Comparison:
    """Everything ``compare`` concluded, renderable and gateable."""

    old_index: int
    new_index: int
    same_machine: bool
    threshold: float
    findings: List[Finding] = field(default_factory=list)

    @property
    def regressions(self) -> List[Finding]:
        return [f for f in self.findings if f.kind == "regression"]

    @property
    def improvements(self) -> List[Finding]:
        return [f for f in self.findings if f.kind == "improvement"]

    @property
    def exit_code(self) -> int:
        return 1 if self.regressions else 0

    def format(self) -> str:
        """Readable diff: verdict first, then per-finding detail."""
        machines = (
            "same machine"
            if self.same_machine
            else "different machines: throughput findings advisory"
        )
        lines = [
            f"bench compare: BENCH_{self.old_index} -> BENCH_{self.new_index} "
            f"({machines}; threshold {self.threshold:.0%}, "
            f"noise cap {NOISE_CAP:.0%})"
        ]
        if not self.findings:
            lines.append("  no differences beyond noise")
        order = {"regression": 0, "warning": 1, "improvement": 2, "note": 3}
        marks = {
            "regression": "REGRESSION",
            "improvement": "improved",
            "warning": "warning",
            "note": "note",
        }
        for finding in sorted(
            self.findings, key=lambda f: (order[f.kind], f.scenario, f.metric)
        ):
            lines.append(
                f"  [{marks[finding.kind]}] {finding.scenario}.{finding.metric}: "
                f"{finding.detail}"
            )
        verdict = (
            f"FAIL: {len(self.regressions)} regression(s)"
            if self.regressions
            else "OK: no regressions"
        )
        lines.append(verdict)
        return "\n".join(lines)

    def to_markdown(self) -> str:
        """Markdown report for CI artifacts / PR comments."""
        lines = [
            f"## Bench comparison: `BENCH_{self.old_index}` → "
            f"`BENCH_{self.new_index}`",
            "",
            f"- machines: {'identical' if self.same_machine else 'different (throughput advisory)'}",
            f"- threshold: {self.threshold:.0%} (noise-adaptive, capped at {NOISE_CAP:.0%})",
            f"- verdict: {'**FAIL** — regression detected' if self.regressions else '**OK**'}",
            "",
        ]
        if self.findings:
            lines += [
                "| scenario | metric | kind | detail |",
                "|---|---|---|---|",
            ]
            for f in self.findings:
                lines.append(
                    f"| {f.scenario} | {f.metric} | {f.kind} | {f.detail} |"
                )
        else:
            lines.append("No differences beyond noise.")
        return "\n".join(lines) + "\n"


def _stat_view(scenario: Dict[str, object], key: str) -> Optional[Tuple[float, float, float]]:
    """(mean, ci_lo, ci_hi) of one stat block, or None if malformed."""
    stat = scenario.get(key)
    if not isinstance(stat, dict):
        return None
    mean = stat.get("mean")
    ci = stat.get("ci95")
    if not isinstance(mean, (int, float)):
        return None
    if isinstance(ci, list) and len(ci) == 2:
        return float(mean), float(ci[0]), float(ci[1])
    return float(mean), float(mean), float(mean)


def compare_docs(
    old: Dict[str, object],
    new: Dict[str, object],
    threshold: float = 0.05,
    strict: bool = False,
    strict_events: bool = False,
) -> Comparison:
    """Compare two validated BENCH documents (see module docstring)."""
    same_machine = old.get("machine") == new.get("machine")
    gating = same_machine or strict
    result = Comparison(
        old_index=int(old.get("index", -1)),
        new_index=int(new.get("index", -1)),
        same_machine=same_machine,
        threshold=threshold,
    )
    old_scenarios: Dict[str, Dict[str, object]] = old.get("scenarios", {})  # type: ignore[assignment]
    new_scenarios: Dict[str, Dict[str, object]] = new.get("scenarios", {})  # type: ignore[assignment]

    for name in old_scenarios:
        if name not in new_scenarios:
            result.findings.append(Finding(
                name, "scenario", "warning", "present in old, missing in new"
            ))
    for name in new_scenarios:
        if name not in old_scenarios:
            result.findings.append(Finding(
                name, "scenario", "note", "new scenario (no baseline)"
            ))

    for name in sorted(set(old_scenarios) & set(new_scenarios)):
        old_s, new_s = old_scenarios[name], new_scenarios[name]

        # Deterministic counts: must match bit-for-bit on unchanged code.
        for key in ("events", "requests", "simulated_ps"):
            old_v, new_v = old_s.get(key), new_s.get(key)
            if old_v != new_v:
                kind = "regression" if strict_events else "warning"
                result.findings.append(Finding(
                    name, key, kind,
                    f"simulated behaviour changed: {old_v} -> {new_v} "
                    f"(model change? regenerate the baseline)",
                ))

        # Deterministic derived metrics (latency, bandwidth, IPC).
        old_metrics = old_s.get("metrics") or {}
        new_metrics = new_s.get("metrics") or {}
        if isinstance(old_metrics, dict) and isinstance(new_metrics, dict):
            for key in sorted(set(old_metrics) & set(new_metrics)):
                a, b = old_metrics[key], new_metrics[key]
                if (isinstance(a, (int, float)) and isinstance(b, (int, float))
                        and abs(a - b) > 1e-9 * max(1.0, abs(a))):
                    result.findings.append(Finding(
                        name, f"metrics.{key}", "note", f"{a} -> {b}"
                    ))

        # Throughput: adaptive-threshold gate.
        for key in _GATED_STATS:
            old_stat = _stat_view(old_s, key)
            new_stat = _stat_view(new_s, key)
            if old_stat is None or new_stat is None:
                continue
            old_mean, old_lo, old_hi = old_stat
            new_mean, new_lo, new_hi = new_stat
            if old_mean <= 0:
                continue
            ratio = new_mean / old_mean
            noise = min(relative_width(old_lo, old_hi, old_mean), NOISE_CAP)
            tolerance = max(threshold, noise)
            detail = (
                f"{old_mean:,.0f} -> {new_mean:,.0f} "
                f"({ratio - 1:+.1%}; tolerance ±{tolerance:.0%}, "
                f"old CI [{old_lo:,.0f}, {old_hi:,.0f}], "
                f"new CI [{new_lo:,.0f}, {new_hi:,.0f}])"
            )
            if ratio < 1 - tolerance:
                kind = "regression" if gating else "warning"
                result.findings.append(Finding(name, key, kind, detail))
            elif ratio > 1 + tolerance:
                result.findings.append(Finding(name, key, "improvement", detail))
    return result
