"""Named benchmark scenarios: what ``repro bench`` measures.

Each scenario is a self-contained unit of simulator work chosen to stress
one performance-relevant path:

* ``ddr2-1ch`` — a single-channel DDR2 system, the leanest hot loop
  (bidirectional bus, no AMB or link framing).
* ``fbd-4ch`` — four logic channels of plain FB-DIMM: link frame
  scheduling and the daisy chain, no prefetching.
* ``fbd-4ch-ap`` — the same with AMB prefetching on: adds the prefetch
  engine, AMB caches and multi-cacheline interleave.
* ``fbd-4ch-ap-timeline`` — the prefetch scenario with the windowed
  timeline recording on: same simulated work, so its requests/s against
  ``fbd-4ch-ap`` measures the collector's overhead (CI asserts < 5%;
  events/s is *not* comparable because the window ticks add events).
* ``fbd-4ch-ap-faults`` — AMB prefetching plus seeded link fault
  injection: CRC checks, retries and replay scheduling on the hot path.
* ``sweep-cold`` — a 4-point prefetch sweep executed through the
  parallel runner against an empty run cache: process fan-out, simulate
  and cache-store cost.
* ``sweep-warm`` — the same sweep served entirely from a pre-populated
  run cache: deserialize-and-return cost, the fast path every warm
  ``repro experiments`` invocation takes.

A scenario exposes ``prepare(instructions, seed)`` returning a
:class:`Prepared` holding the thunk the harness times plus a cleanup
hook; preparation (temp dirs, cache population) happens outside the
timed region.  Thunks return a :class:`ScenarioRun` whose
``events``/``requests``/``simulated_ps`` are deterministic functions of
the config — identical across trials and machines — while wall time is
what varies and gets the statistics.
"""

from __future__ import annotations

import dataclasses
import shutil
import tempfile
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Sequence, Tuple

from repro.config import (
    SystemConfig,
    ddr2_baseline,
    fbdimm_amb_prefetch,
    fbdimm_baseline,
)
from repro.system import SimulationResult, run_system

#: The timed unit of work; everything outside it is setup.
RunThunk = Callable[[], "ScenarioRun"]


@dataclass(frozen=True)
class ScenarioRun:
    """Deterministic counts produced by one timed scenario execution."""

    events: int
    requests: int
    simulated_ps: int
    metrics: Dict[str, float] = field(default_factory=dict)


@dataclass(frozen=True)
class Prepared:
    """A scenario readied for timing: the thunk plus teardown."""

    run: RunThunk
    cleanup: Callable[[], None] = lambda: None


@dataclass(frozen=True)
class Scenario:
    """A named benchmark workload."""

    name: str
    description: str
    prepare: Callable[[int, int], "Prepared"]
    #: Relative instruction budget multiplier (sweeps run several small
    #: simulations, so they scale the per-run budget down).
    insts_scale: float = 1.0


def _requests_of(result: SimulationResult) -> int:
    mem = result.mem
    return mem.demand_reads + mem.sw_prefetch_reads + mem.writes


def _collect(results: Sequence[SimulationResult]) -> ScenarioRun:
    """Fold one-or-many results into a ScenarioRun with registry metrics."""
    from repro.experiments.parallel import aggregate_metrics

    registry = aggregate_metrics(results)

    def counter(name: str) -> int:
        metric = registry.get(name)
        return int(metric.value) if metric is not None else 0

    reads = counter("mem.demand_reads")
    latency_sum_ps = counter("mem.demand_latency_sum_ps")
    metrics = {
        "sum_ipc": round(sum(sum(r.core_ipcs) for r in results), 6),
        "avg_read_latency_ns": round(
            latency_sum_ps / reads / 1000.0 if reads else 0.0, 3
        ),
        "utilized_bandwidth_gbs": round(
            sum(r.utilized_bandwidth_gbs for r in results) / len(results), 3
        ),
        "prefetch_coverage": round(
            sum(r.prefetch_coverage for r in results) / len(results), 6
        ),
    }
    return ScenarioRun(
        events=sum(r.events_fired for r in results),
        requests=sum(_requests_of(r) for r in results),
        simulated_ps=sum(r.elapsed_ps for r in results),
        metrics=metrics,
    )


def _with_budget(config: SystemConfig, instructions: int, seed: int) -> SystemConfig:
    return dataclasses.replace(
        config, instructions_per_core=instructions, seed=seed
    )


# ----------------------------------------------------------------------
# Single-system scenarios
# ----------------------------------------------------------------------


def _system_scenario(
    build: Callable[[], SystemConfig],
    programs: Tuple[str, ...],
    device: str = "ddr2-667",
) -> Callable[[int, int], Prepared]:
    def prepare(instructions: int, seed: int) -> Prepared:
        config = build()
        if device != "ddr2-667":
            config = config.with_device(device)
        config = _with_budget(config, instructions, seed)

        def run() -> ScenarioRun:
            return _collect([run_system(config, programs)])

        return Prepared(run=run)

    return prepare


# ----------------------------------------------------------------------
# Parallel-sweep scenarios (cold vs. warm run cache)
# ----------------------------------------------------------------------


def _sweep_pairs(
    instructions: int, seed: int, device: str = "ddr2-667"
) -> List[Tuple[SystemConfig, Tuple[str, ...]]]:
    """A small prefetch-degree sweep, the shape every figure module has."""
    programs = ("wupwise", "swim")
    pairs = []
    for k in (1, 2, 4, 8):
        config = fbdimm_amb_prefetch(num_cores=2).with_prefetch(
            region_cachelines=k
        )
        if device != "ddr2-667":
            config = config.with_device(device)
        pairs.append((_with_budget(config, instructions, seed), programs))
    return pairs


def _prepare_sweep_cold(
    instructions: int, seed: int, device: str = "ddr2-667"
) -> Prepared:
    from repro.experiments.parallel import execute_runs

    pairs = _sweep_pairs(instructions, seed, device)

    def run() -> ScenarioRun:
        from repro.experiments.runcache import RunCache, run_key

        tmp = tempfile.mkdtemp(prefix="repro-bench-cold-")
        try:
            cache = RunCache(tmp)
            results = execute_runs(pairs, jobs=2)
            for (config, programs), result in zip(pairs, results):
                cache.store(run_key(config, programs), result)
            return _collect(results)
        finally:
            shutil.rmtree(tmp, ignore_errors=True)

    return Prepared(run=run)


def _prepare_sweep_warm(
    instructions: int, seed: int, device: str = "ddr2-667"
) -> Prepared:
    from repro.experiments.parallel import execute_runs
    from repro.experiments.runcache import RunCache, run_key

    pairs = _sweep_pairs(instructions, seed, device)
    tmp = tempfile.mkdtemp(prefix="repro-bench-warm-")
    cache = RunCache(tmp)
    for (config, programs), result in zip(pairs, execute_runs(pairs, jobs=2)):
        cache.store(run_key(config, programs), result)

    def run() -> ScenarioRun:
        results = []
        for config, programs in pairs:
            result = cache.load(run_key(config, programs))
            if result is None:  # pragma: no cover - cache corrupted mid-bench
                raise RuntimeError("warm sweep missed the run cache")
            results.append(result)
        return _collect(results)

    return Prepared(
        run=run, cleanup=lambda: shutil.rmtree(tmp, ignore_errors=True)
    )


# ----------------------------------------------------------------------
# Registry
# ----------------------------------------------------------------------

def build_scenarios(device: str = "ddr2-667") -> Dict[str, Scenario]:
    """The scenario registry with every config mapped onto ``device``.

    ``ddr2-667`` (the paper's generation, and every preset builder's
    default) applies no override, so the default registry is byte-for-byte
    the historical one and existing bench baselines stay comparable.
    """
    import functools

    def partial_prepare(prepare: Callable) -> Callable[[int, int], Prepared]:
        return functools.partial(prepare, device=device)

    return {
        scenario.name: scenario
        for scenario in (
            Scenario(
                name="ddr2-1ch",
                description="single-channel DDR2, 2 cores (leanest hot loop)",
                prepare=_system_scenario(
                    lambda: ddr2_baseline(num_cores=2, logic_channels=1),
                    ("wupwise", "swim"),
                    device=device,
                ),
            ),
            Scenario(
                name="fbd-4ch",
                description="4-channel FB-DIMM, 4 cores, no prefetch",
                prepare=_system_scenario(
                    lambda: fbdimm_baseline(num_cores=4, logic_channels=4),
                    ("wupwise", "swim", "mgrid", "applu"),
                    device=device,
                ),
            ),
            Scenario(
                name="fbd-4ch-ap",
                description="4-channel FB-DIMM + AMB prefetch, 4 cores",
                prepare=_system_scenario(
                    lambda: fbdimm_amb_prefetch(num_cores=4, logic_channels=4),
                    ("wupwise", "swim", "mgrid", "applu"),
                    device=device,
                ),
            ),
            Scenario(
                name="fbd-4ch-ap-timeline",
                description="fbd-4ch-ap with the windowed timeline recording on",
                prepare=_system_scenario(
                    lambda: fbdimm_amb_prefetch(
                        num_cores=4, logic_channels=4
                    ).with_timeline(window_ns=1000.0),
                    ("wupwise", "swim", "mgrid", "applu"),
                    device=device,
                ),
            ),
            Scenario(
                name="fbd-4ch-ap-faults",
                description="4-channel FB-DIMM + AMB prefetch + link faults",
                prepare=_system_scenario(
                    lambda: fbdimm_amb_prefetch(
                        num_cores=4, logic_channels=4
                    ).with_faults(error_rate=1e-2),
                    ("wupwise", "swim", "mgrid", "applu"),
                    device=device,
                ),
            ),
            Scenario(
                name="sweep-cold",
                description="4-point prefetch sweep, parallel runner, cold cache",
                prepare=partial_prepare(_prepare_sweep_cold),
                insts_scale=0.5,
            ),
            Scenario(
                name="sweep-warm",
                description="4-point prefetch sweep served from a warm run cache",
                prepare=partial_prepare(_prepare_sweep_warm),
                insts_scale=0.5,
            ),
        )
    }


#: The default (paper-generation) registry; ``repro bench --device`` and
#: the conformance suite rebuild it per generation via build_scenarios.
SCENARIOS: Dict[str, Scenario] = build_scenarios()


def resolve_scenarios(
    names: Sequence[str], device: str = "ddr2-667"
) -> List[Scenario]:
    """Look up scenarios by name, preserving order; '' or 'all' means all."""
    registry = SCENARIOS if device == "ddr2-667" else build_scenarios(device)
    wanted = [n for n in names if n]
    if not wanted or wanted == ["all"]:
        return list(registry.values())
    missing = [n for n in wanted if n not in registry]
    if missing:
        raise KeyError(
            f"unknown scenario(s) {missing}; available: {sorted(registry)}"
        )
    return [registry[n] for n in wanted]
