"""The bench subsystem's only wall-clock access point.

Everything in :mod:`repro.bench` measures *host* time — that is the
quantity under study — but the determinism lint (``repro.check --lint``)
rightly treats stray wall-clock reads as a smell.  Concentrating every
read here keeps the rest of the benchmarking code clock-free and makes
the suppression surface exactly one module wide.
"""

from __future__ import annotations

import time
from typing import Any, Callable, Tuple, TypeVar

T = TypeVar("T")


def perf_counter_s() -> float:
    """Monotonic wall-clock seconds (the trial timer)."""
    return time.perf_counter()  # det: allow — bench measures wall time by design


def timed(fn: Callable[..., T], *args: Any, **kwargs: Any) -> Tuple[T, float]:
    """Call ``fn`` and return ``(result, elapsed wall seconds)``."""
    start = perf_counter_s()
    result = fn(*args, **kwargs)
    return result, perf_counter_s() - start


def utc_timestamp() -> str:
    """ISO-8601 UTC timestamp for BENCH file metadata."""
    stamp = time.gmtime(time.time())  # det: allow — BENCH metadata timestamp
    return time.strftime("%Y-%m-%dT%H:%M:%SZ", stamp)
