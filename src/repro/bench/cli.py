"""``repro bench`` — run, validate, compare, report, profile.

Subcommands::

    repro bench run [--quick] [--scenarios a,b] [--out BENCH_5.json]
    repro bench validate BENCH_5.json
    repro bench compare BENCH_4.json BENCH_5.json [--report diff.md]
    repro bench report [--root .] [--markdown]
    repro bench profile [--workload 4C-1] [--flame out.folded] [--chrome out.json]

Also reachable as ``python -m repro.bench``.  Exit codes: 0 ok,
1 regression / invalid schema, 2 usage or I/O error (matching
``repro.check`` and ``repro.trace``).
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import Callable, List, Optional

from repro.bench.compare import compare_docs
from repro.bench.harness import HarnessConfig, ScenarioResult, run_suite
from repro.bench.report import render_report
from repro.bench.schema import (
    CURRENT_BENCH_INDEX,
    build_bench_doc,
    load_bench,
    save_bench,
)
from repro.bench.scenarios import SCENARIOS, resolve_scenarios


def _guarded(
    func: Callable[[argparse.Namespace], int],
) -> Callable[[argparse.Namespace], int]:
    """Turn I/O and schema errors into exit code 2 regardless of whether
    the command is reached via ``python -m repro bench`` or
    ``python -m repro.bench``."""

    def wrapper(args: argparse.Namespace) -> int:
        try:
            return func(args)
        except (OSError, ValueError) as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2

    return wrapper


def _format_results(results: List[ScenarioResult]) -> str:
    header = (
        f"{'scenario':<20} {'events':>10} {'events/s':>12} "
        f"{'95% CI':>25} {'req/s':>10} {'wall s':>8} {'warm':>4}"
    )
    lines = [header, "-" * len(header)]
    for result in results:
        lo, hi = result.events_per_s.ci95
        lines.append(
            f"{result.name:<20} {result.events:>10} "
            f"{result.events_per_s.mean:>12,.0f} "
            f"{f'[{lo:,.0f}, {hi:,.0f}]':>25} "
            f"{result.requests_per_s.mean:>10,.0f} "
            f"{result.wall_s.mean:>8.3f} {result.warmup_dropped:>4}"
        )
    return "\n".join(lines)


def cmd_run(args: argparse.Namespace) -> int:
    config = HarnessConfig(
        instructions=args.insts,
        seed=args.seed,
        trials=args.trials,
        warmup=args.warmup,
        bootstrap_resamples=args.bootstrap,
    )
    if args.quick:
        config = config.quick()
    if not args.no_heartbeat:
        config.progress = lambda line: print(f"  [{line}]", flush=True)
    try:
        scenarios = resolve_scenarios(
            (args.scenarios or "").split(","), device=args.device
        )
    except KeyError as exc:
        print(f"error: {exc.args[0]}", file=sys.stderr)
        return 2
    print(
        f"bench run: {len(scenarios)} scenario(s), "
        f"{config.warmup}+{config.trials} trials, "
        f"{config.instructions} instructions/core, "
        f"device {args.device}"
        f"{' (quick)' if args.quick else ''}"
    )
    results = run_suite(scenarios, config)
    doc = build_bench_doc(
        results, config, index=args.index, quick=args.quick
    )
    out = Path(args.out) if args.out else Path(f"BENCH_{args.index}.json")
    save_bench(out, doc)
    print()
    print(_format_results(results))
    print(f"\nwrote {out} (schema-valid, {len(results)} scenarios)")
    return 0


def cmd_validate(args: argparse.Namespace) -> int:
    try:
        doc = load_bench(args.bench)
    except ValueError as exc:
        print(f"INVALID: {exc}", file=sys.stderr)
        return 1
    scenarios = doc.get("scenarios", {})
    print(f"{args.bench}: OK (index {doc.get('index')}, "
          f"{len(scenarios)} scenarios)")
    return 0


def cmd_compare(args: argparse.Namespace) -> int:
    old = load_bench(args.old)
    new = load_bench(args.new)
    comparison = compare_docs(
        old, new,
        threshold=args.threshold,
        strict=args.strict,
        strict_events=args.strict_events,
    )
    print(comparison.format())
    if args.report:
        Path(args.report).write_text(comparison.to_markdown(), encoding="utf-8")
        print(f"(markdown report -> {args.report})")
    return comparison.exit_code


def cmd_report(args: argparse.Namespace) -> int:
    print(render_report(args.root, markdown=args.markdown))
    return 0


def cmd_profile(args: argparse.Namespace) -> int:
    from repro.__main__ import _build_config
    from repro.engine.profiler import EventLoopProfiler, parse_collapsed
    from repro.system import System
    from repro.telemetry import (
        Tracer,
        build_capture,
        validate_chrome_trace,
        write_chrome_trace,
    )
    from repro.workloads.multiprog import workload_programs

    programs = workload_programs(args.workload)
    config = _build_config(args, args.system)
    tracer = Tracer() if args.chrome else None
    machine = System(config, programs, tracer=tracer)
    profiler = EventLoopProfiler()
    machine.sim.profiler = profiler
    result = machine.run()
    print(profiler.tree_report(limit=args.top))
    if args.flame:
        lines = profiler.to_collapsed()
        text = "\n".join(lines) + ("\n" if lines else "")
        # Round-trip through the parser: a file we cannot re-read is a bug.
        parse_collapsed(text)
        Path(args.flame).write_text(text, encoding="utf-8")
        print(f"\nflame stacks -> {args.flame} ({len(lines)} stacks; "
              f"feed to flamegraph.pl / speedscope)")
    if args.chrome:
        assert tracer is not None
        capture = build_capture(
            result, tracer,
            check_events=machine.controller.collect_check_events(),
            profile=profiler.to_records() + profiler.stack_records(),
        )
        doc = write_chrome_trace(args.chrome, capture)
        problems = validate_chrome_trace(doc)
        if problems:
            for problem in problems[:10]:
                print(f"INVALID: {problem}", file=sys.stderr)
            return 1
        print(f"chrome trace -> {args.chrome} (schema OK, includes the "
              f"profiler track)")
    return 0


def configure_parser(parser: argparse.ArgumentParser) -> None:
    """Attach the bench subcommands to ``parser`` (the ``bench`` node)."""
    sub = parser.add_subparsers(dest="bench_command", required=True)

    run_p = sub.add_parser(
        "run", help="measure the named scenarios, emit BENCH_<n>.json"
    )
    run_p.add_argument("--quick", action="store_true",
                       help="reduced scale: fewer instructions and trials")
    run_p.add_argument("--scenarios", default="",
                       help=f"comma list from {sorted(SCENARIOS)} (default all)")
    from repro.dram.devices import device_names

    run_p.add_argument("--device", choices=device_names(), default="ddr2-667",
                       help="DRAM device generation preset applied to every "
                            "scenario (see docs/DEVICES.md)")
    run_p.add_argument("--insts", type=int, default=40_000,
                       help="instructions/core per run")
    run_p.add_argument("--trials", type=int, default=5)
    run_p.add_argument("--warmup", type=int, default=2,
                       help="minimum leading trials to drop")
    run_p.add_argument("--bootstrap", type=int, default=1000,
                       help="bootstrap resamples for the CIs")
    run_p.add_argument("--seed", type=int, default=12345)
    run_p.add_argument("--index", type=int, default=CURRENT_BENCH_INDEX,
                       help="BENCH series index to stamp")
    run_p.add_argument("-o", "--out", default=None,
                       help="output path (default BENCH_<index>.json)")
    run_p.add_argument("--no-heartbeat", action="store_true",
                       help="suppress per-trial progress lines")
    run_p.set_defaults(func=_guarded(cmd_run))

    val_p = sub.add_parser("validate", help="schema-check one BENCH file")
    val_p.add_argument("bench")
    val_p.set_defaults(func=_guarded(cmd_validate))

    cmp_p = sub.add_parser(
        "compare", help="diff two BENCH files; exit 1 on regression"
    )
    cmp_p.add_argument("old")
    cmp_p.add_argument("new")
    cmp_p.add_argument("--threshold", type=float, default=0.05,
                       help="base relative tolerance (default 5%%)")
    cmp_p.add_argument("--strict", action="store_true",
                       help="gate throughput even across machines")
    cmp_p.add_argument("--strict-events", action="store_true",
                       help="treat simulated-count changes as regressions")
    cmp_p.add_argument("--report", default=None, metavar="PATH",
                       help="also write a markdown report")
    cmp_p.set_defaults(func=_guarded(cmd_compare))

    rep_p = sub.add_parser(
        "report", help="render the BENCH_* trajectory dashboard"
    )
    rep_p.add_argument("--root", default=".",
                       help="directory holding BENCH_<n>.json files")
    rep_p.add_argument("--markdown", action="store_true")
    rep_p.set_defaults(func=_guarded(cmd_report))

    prof_p = sub.add_parser(
        "profile", help="hierarchical event-loop profile of one run"
    )
    prof_p.add_argument("--workload", default="4C-1")
    prof_p.add_argument("--system", choices=("ddr2", "fbd", "fbd-ap"),
                        default="fbd-ap")
    prof_p.add_argument("--insts", type=int, default=50_000)
    prof_p.add_argument("--seed", type=int, default=12345)
    prof_p.add_argument("--no-sw-prefetch", action="store_true")
    prof_p.add_argument("--device", choices=device_names(),
                        default="ddr2-667",
                        help="DRAM device generation preset")
    prof_p.add_argument("--k", type=int, default=4)
    prof_p.add_argument("--entries", type=int, default=64)
    prof_p.add_argument("--assoc",
                        choices=("direct", "2way", "4way", "full"),
                        default="full")
    prof_p.add_argument("--top", type=int, default=15,
                        help="callback sites to list")
    prof_p.add_argument("--flame", default=None, metavar="PATH",
                        help="write collapsed-stack flame file")
    prof_p.add_argument("--chrome", default=None, metavar="PATH",
                        help="write Chrome trace with the profiler track")
    prof_p.set_defaults(func=_guarded(cmd_profile))


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench",
        description="Simulator performance benchmarking and profiling.",
    )
    configure_parser(parser)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
