"""The ``BENCH_<n>.json`` performance-trajectory file format.

One BENCH file records one bench run: machine fingerprint, harness
configuration and per-scenario statistics.  Files live at the repo root
and are numbered by PR (``BENCH_5.json`` is this repo's first baseline);
together they form the perf trajectory ``repro bench report`` renders
and ``repro bench compare`` gates on.

:func:`validate_bench` is the schema check, in the same spirit as
:func:`repro.telemetry.validate_chrome_trace`: it returns a list of
problems, empty when the document is valid, and CI runs it over every
emitted file.
"""

from __future__ import annotations

import json
import os
import platform
import re
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.bench.harness import HarnessConfig, ScenarioResult

BENCH_FORMAT = "repro-bench"
BENCH_VERSION = 1

#: The index of the BENCH file this code version emits by default; bump it
#: in the PR that wants a new point on the trajectory.
CURRENT_BENCH_INDEX = 5

_BENCH_NAME = re.compile(r"^BENCH_(\d+)\.json$")

#: Per-scenario throughput statistics every BENCH file must carry.
_STAT_KEYS = ("events_per_s", "requests_per_s", "wall_s")


def machine_fingerprint() -> Dict[str, object]:
    """Where the numbers were taken; compare treats cross-machine
    throughput differences as advisory rather than gating."""
    return {
        "node": platform.node(),
        "machine": platform.machine(),
        "system": platform.system(),
        "python": platform.python_version(),
        "cpus": os.cpu_count() or 1,
    }


def build_bench_doc(
    results: Sequence[ScenarioResult],
    config: HarnessConfig,
    index: int = CURRENT_BENCH_INDEX,
    quick: bool = False,
    timestamp: Optional[str] = None,
) -> Dict[str, object]:
    """Assemble the BENCH document for one finished suite run."""
    from repro.bench import clock

    doc: Dict[str, object] = {
        "format": BENCH_FORMAT,
        "version": BENCH_VERSION,
        "index": index,
        "recorded_at": timestamp if timestamp is not None else clock.utc_timestamp(),
        "machine": machine_fingerprint(),
        "harness": {
            "quick": quick,
            "instructions": config.instructions,
            "seed": config.seed,
            "trials": config.trials,
            "warmup": config.warmup,
            "bootstrap_resamples": config.bootstrap_resamples,
        },
        "scenarios": {result.name: result.to_dict() for result in results},
    }
    return doc


def bench_path(root: Union[str, Path], index: int) -> Path:
    return Path(root) / f"BENCH_{index}.json"


def save_bench(path: Union[str, Path], doc: Dict[str, object]) -> Path:
    """Validate then write a BENCH document (refuses to write a bad one)."""
    problems = validate_bench(doc)
    if problems:
        raise ValueError(
            "refusing to write invalid BENCH document: " + "; ".join(problems[:5])
        )
    path = Path(path)
    path.write_text(json.dumps(doc, indent=2, sort_keys=False) + "\n",
                    encoding="utf-8")
    return path


def load_bench(path: Union[str, Path]) -> Dict[str, object]:
    """Load and schema-validate a BENCH file."""
    path = Path(path)
    try:
        doc = json.loads(path.read_text(encoding="utf-8"))
    except (OSError, UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ValueError(f"{path}: not readable as JSON: {exc}") from exc
    problems = validate_bench(doc)
    if problems:
        raise ValueError(f"{path}: invalid BENCH file: " + "; ".join(problems[:5]))
    return doc


def list_bench_files(root: Union[str, Path]) -> List[Tuple[int, Path]]:
    """(index, path) of every BENCH_<n>.json under ``root``, ascending."""
    found = []
    for path in Path(root).iterdir():
        match = _BENCH_NAME.match(path.name)
        if match:
            found.append((int(match.group(1)), path))
    return sorted(found)


# ----------------------------------------------------------------------
# Validation
# ----------------------------------------------------------------------


def _check_stat(where: str, stat: object, problems: List[str]) -> None:
    if not isinstance(stat, dict):
        problems.append(f"{where}: not an object")
        return
    mean = stat.get("mean")
    ci = stat.get("ci95")
    samples = stat.get("samples")
    if not isinstance(mean, (int, float)) or mean < 0:
        problems.append(f"{where}.mean: bad value {mean!r}")
    if (
        not isinstance(ci, list)
        or len(ci) != 2
        or not all(isinstance(v, (int, float)) and v >= 0 for v in ci)
    ):
        problems.append(f"{where}.ci95: expected [lo, hi], got {ci!r}")
    elif ci[0] > ci[1]:
        problems.append(f"{where}.ci95: lo {ci[0]} > hi {ci[1]}")
    if not isinstance(samples, list) or not samples:
        problems.append(f"{where}.samples: expected non-empty list")
    elif not all(isinstance(v, (int, float)) and v >= 0 for v in samples):
        problems.append(f"{where}.samples: non-numeric or negative sample")


def validate_bench(doc: object) -> List[str]:
    """Schema-check a BENCH document; returns problems (empty = valid)."""
    problems: List[str] = []
    if not isinstance(doc, dict):
        return ["document is not a JSON object"]
    if doc.get("format") != BENCH_FORMAT:
        problems.append(f"format: expected {BENCH_FORMAT!r}, got {doc.get('format')!r}")
    if doc.get("version") != BENCH_VERSION:
        problems.append(f"version: unsupported {doc.get('version')!r}")
    index = doc.get("index")
    if not isinstance(index, int) or index < 0:
        problems.append(f"index: bad value {index!r}")
    machine = doc.get("machine")
    if not isinstance(machine, dict) or "python" not in machine:
        problems.append("machine: missing fingerprint object")
    harness = doc.get("harness")
    if not isinstance(harness, dict):
        problems.append("harness: missing configuration object")
    else:
        for key in ("instructions", "seed", "trials", "warmup"):
            if not isinstance(harness.get(key), int):
                problems.append(f"harness.{key}: missing or non-integer")
    scenarios = doc.get("scenarios")
    if not isinstance(scenarios, dict) or not scenarios:
        problems.append("scenarios: expected non-empty object")
        return problems
    for name, scenario in scenarios.items():
        where = f"scenarios[{name}]"
        if not isinstance(scenario, dict):
            problems.append(f"{where}: not an object")
            continue
        for key in ("events", "requests", "simulated_ps"):
            value = scenario.get(key)
            if not isinstance(value, int) or value < 0:
                problems.append(f"{where}.{key}: bad value {value!r}")
        trials = scenario.get("trials")
        if not isinstance(trials, int) or trials < 1:
            problems.append(f"{where}.trials: bad value {trials!r}")
        metrics = scenario.get("metrics")
        if not isinstance(metrics, dict):
            problems.append(f"{where}.metrics: expected object")
        for key in _STAT_KEYS:
            if key not in scenario:
                problems.append(f"{where}: missing {key}")
            else:
                _check_stat(f"{where}.{key}", scenario[key], problems)
        stat = scenario.get("events_per_s")
        if isinstance(stat, dict) and isinstance(trials, int):
            samples = stat.get("samples")
            if isinstance(samples, list) and len(samples) != trials:
                problems.append(
                    f"{where}.events_per_s: {len(samples)} samples "
                    f"for {trials} trials"
                )
    return problems
