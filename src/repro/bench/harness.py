"""The statistical benchmark harness: trials, warmup, confidence intervals.

:func:`run_scenario` executes one named scenario ``warmup + trials``
times, drops leading trials that :func:`repro.bench.stats.detect_warmup`
flags as cold, and reports events/sec, simulated-requests/sec and wall
seconds with 95% bootstrap confidence intervals over the kept trials.

Two invariants are enforced here rather than hoped for:

* **Determinism** — every trial of a scenario must produce identical
  event/request counts (the simulator is deterministic); a mismatch
  aborts the bench loudly since it would mean the numbers measure two
  different workloads.
* **Clock isolation** — the only wall-clock reads happen through
  :mod:`repro.bench.clock`; this module is itself lint-clean.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.bench import clock
from repro.bench.scenarios import Scenario, ScenarioRun
from repro.bench.stats import bootstrap_ci, detect_warmup, mean


@dataclass(frozen=True)
class ThroughputStat:
    """Mean and 95% bootstrap CI over per-trial samples."""

    mean: float
    ci95: Tuple[float, float]
    samples: Tuple[float, ...]

    def to_dict(self) -> Dict[str, object]:
        return {
            "mean": self.mean,
            "ci95": [self.ci95[0], self.ci95[1]],
            "samples": list(self.samples),
        }


def stat_of(samples: Sequence[float], resamples: int, seed: int = 0) -> ThroughputStat:
    """Summarize trial samples: mean + seeded bootstrap 95% CI."""
    lo, hi = bootstrap_ci(samples, confidence=0.95, resamples=resamples, seed=seed)
    return ThroughputStat(
        mean=mean(samples), ci95=(lo, hi), samples=tuple(samples)
    )


@dataclass(frozen=True)
class ScenarioResult:
    """One scenario's measured outcome."""

    name: str
    description: str
    instructions: int
    trials: int
    warmup_dropped: int
    events: int
    requests: int
    simulated_ps: int
    metrics: Dict[str, float]
    events_per_s: ThroughputStat
    requests_per_s: ThroughputStat
    wall_s: ThroughputStat

    def to_dict(self) -> Dict[str, object]:
        return {
            "description": self.description,
            "instructions": self.instructions,
            "trials": self.trials,
            "warmup_dropped": self.warmup_dropped,
            "events": self.events,
            "requests": self.requests,
            "simulated_ps": self.simulated_ps,
            "metrics": dict(self.metrics),
            "events_per_s": self.events_per_s.to_dict(),
            "requests_per_s": self.requests_per_s.to_dict(),
            "wall_s": self.wall_s.to_dict(),
        }


@dataclass
class HarnessConfig:
    """Knobs shared by every scenario in one bench run."""

    instructions: int = 40_000
    seed: int = 12345
    trials: int = 5
    warmup: int = 2
    bootstrap_resamples: int = 1000
    warmup_tolerance: float = 0.10
    progress: Optional[Callable[[str], None]] = field(default=None, repr=False)

    def quick(self) -> "HarnessConfig":
        """The reduced-scale variant used by --quick and CI smoke runs."""
        return HarnessConfig(
            instructions=min(self.instructions, 8_000),
            seed=self.seed,
            trials=min(self.trials, 3),
            warmup=1,
            bootstrap_resamples=min(self.bootstrap_resamples, 300),
            warmup_tolerance=self.warmup_tolerance,
            progress=self.progress,
        )


def run_scenario(scenario: Scenario, config: HarnessConfig) -> ScenarioResult:
    """Measure one scenario: warmup + trials, then the statistics."""
    instructions = max(1000, round(config.instructions * scenario.insts_scale))
    prepared = scenario.prepare(instructions, config.seed)
    walls: List[float] = []
    baseline: Optional[ScenarioRun] = None
    try:
        total = config.warmup + config.trials
        for trial in range(total):
            outcome, wall = clock.timed(prepared.run)
            walls.append(wall)
            if baseline is None:
                baseline = outcome
            elif (outcome.events, outcome.requests, outcome.simulated_ps) != (
                baseline.events, baseline.requests, baseline.simulated_ps
            ):
                raise RuntimeError(
                    f"scenario {scenario.name!r} is nondeterministic: trial "
                    f"{trial} produced {outcome.events} events, expected "
                    f"{baseline.events}"
                )
            if config.progress is not None:
                config.progress(
                    f"{scenario.name}: trial {trial + 1}/{total} "
                    f"{outcome.events / wall:,.0f} events/s"
                )
    finally:
        prepared.cleanup()
    assert baseline is not None
    # Drop detected cold trials, but always at least the configured warmup
    # and never so many that fewer than two samples remain.
    max_drop = max(config.warmup, len(walls) - max(2, config.trials - 1))
    drop = max(
        config.warmup,
        detect_warmup(walls, tolerance=config.warmup_tolerance, max_drop=max_drop),
    )
    kept = walls[drop:]
    resamples = config.bootstrap_resamples
    return ScenarioResult(
        name=scenario.name,
        description=scenario.description,
        instructions=instructions,
        trials=len(kept),
        warmup_dropped=drop,
        events=baseline.events,
        requests=baseline.requests,
        simulated_ps=baseline.simulated_ps,
        metrics=dict(baseline.metrics),
        events_per_s=stat_of([baseline.events / w for w in kept], resamples),
        requests_per_s=stat_of([baseline.requests / w for w in kept], resamples),
        wall_s=stat_of(kept, resamples),
    )


def run_suite(
    scenarios: Sequence[Scenario], config: HarnessConfig
) -> List[ScenarioResult]:
    """Run scenarios in order; failures abort (a broken bench is a bug)."""
    return [run_scenario(scenario, config) for scenario in scenarios]
