"""Memory controller: address mapping, scheduling, and the AMB-cache tag store.

The controller is the paper's locus of intelligence: it maps physical
addresses onto channels/DIMMs/banks (Section 3.2's interleaving schemes),
reorders pending requests (hit-first, reads before writes), and holds the
prefetch information table that mirrors the contents of every AMB cache.
"""

from repro.controller.mapping import AddressMapper, MappedAddress
from repro.controller.transaction import MemoryRequest, RequestKind
from repro.controller.prefetch_table import PrefetchTable
from repro.controller.controller import MemoryController

__all__ = [
    "AddressMapper",
    "MappedAddress",
    "MemoryRequest",
    "RequestKind",
    "PrefetchTable",
    "MemoryController",
]
