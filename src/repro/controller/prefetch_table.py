"""The prefetch information table: tags of one AMB cache, held at the
memory controller (Section 3.2, Figure 3).

The data lives on the DIMM in the AMB's SRAM; the controller holds the tags
and status bits so that hit/miss is decided *before* any command crosses the
channel.  Replacement is FIFO by default — the paper argues LRU is wrong
here because a block that just hit is now cached on-chip and will not be
re-requested soon.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, Iterable, List, Optional

from repro.config import AmbPrefetchConfig, ReplacementPolicy

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.prefetch.lifecycle import PrefetchLifecycle


@dataclass
class TableStats:
    """Tag-store event counters (feed coverage/efficiency metrics)."""

    lookups: int = 0
    hits: int = 0
    inserts: int = 0
    evictions: int = 0
    invalidations: int = 0


class PrefetchTable:
    """Set-associative tag store for a single AMB cache.

    Keys are cacheline addresses.  ``Associativity.FULL`` collapses to a
    single set covering every entry.  Within a set, an :class:`OrderedDict`
    keeps insertion order (FIFO) or recency order (LRU).
    """

    def __init__(self, config: AmbPrefetchConfig) -> None:
        self.config = config
        self.ways = config.associativity.ways(config.cache_entries)
        self.num_sets = config.cache_entries // self.ways
        self._sets: List[OrderedDict] = [OrderedDict() for _ in range(self.num_sets)]
        self.stats = TableStats()
        #: Optional per-prefetch lifecycle tracker; only the eviction hook
        #: fires from here (the victim address is known nowhere else).
        self.lifecycle: "Optional[PrefetchLifecycle]" = None

    def _set_for(self, line_addr: int) -> OrderedDict:
        return self._sets[line_addr % self.num_sets]

    def lookup(self, line_addr: int) -> bool:
        """Probe for a line; counts a lookup and updates LRU order on hit."""
        self.stats.lookups += 1
        cache_set = self._set_for(line_addr)
        if line_addr in cache_set:
            self.stats.hits += 1
            if self.config.replacement is ReplacementPolicy.LRU:
                cache_set.move_to_end(line_addr)
            return True
        return False

    def contains(self, line_addr: int) -> bool:
        """Probe without touching statistics or replacement state."""
        return line_addr in self._set_for(line_addr)

    def insert(self, line_addrs: Iterable[int]) -> int:
        """Install prefetched lines; returns the number of evictions.

        Lines already present are refreshed in place (moved to the back of
        the replacement order, since the AMB rewrote the data).
        """
        evicted = 0
        for line_addr in line_addrs:
            cache_set = self._set_for(line_addr)
            if line_addr in cache_set:
                cache_set.move_to_end(line_addr)
                continue
            if len(cache_set) >= self.ways:
                victim, _ = cache_set.popitem(last=False)
                evicted += 1
                if self.lifecycle is not None:
                    self.lifecycle.on_evict(victim)
            cache_set[line_addr] = True
            self.stats.inserts += 1
        self.stats.evictions += evicted
        return evicted

    def invalidate(self, line_addr: int) -> bool:
        """Drop a line (a write made the AMB copy stale); True if present."""
        cache_set = self._set_for(line_addr)
        if line_addr in cache_set:
            del cache_set[line_addr]
            self.stats.invalidations += 1
            return True
        return False

    def occupancy(self) -> int:
        """Number of valid lines currently tracked."""
        return sum(len(s) for s in self._sets)

    def resident_lines(self) -> "Dict[int, bool]":
        """Snapshot of all resident line addresses (testing/debug aid)."""
        snapshot: Dict[int, bool] = {}
        for cache_set in self._sets:
            snapshot.update(cache_set)
        return snapshot
