"""The top-level memory controller.

Maps incoming requests, holds the finite memory buffer (64 entries, Table 1),
applies the fixed controller overhead (12 ns), and dispatches to the
per-physical-channel engines.  Requests beyond the buffer capacity wait in
an admission FIFO with their MSHR held — this is the backpressure the cores
feel when the memory system saturates.
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING, Deque, List, Optional

from repro.config import FaultConfig, MemoryConfig, MemoryKind
from repro.controller.channel_controller import (
    ChannelControllerBase,
    Ddr2ChannelController,
    FbdimmChannelController,
)
from repro.controller.mapping import AddressMapper
from repro.controller.transaction import MemoryRequest
from repro.dram.timing import TimingPs
from repro.engine.simulator import Simulator, ns
from repro.stats.collector import MemSystemStats

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.telemetry.spans import Tracer


class MemoryController:
    """Front door of the memory subsystem."""

    def __init__(
        self,
        sim: Simulator,
        config: MemoryConfig,
        check_protocol: bool = False,
        tracer: "Optional[Tracer]" = None,
        faults: "Optional[FaultConfig]" = None,
    ) -> None:
        self.sim = sim
        self.config = config
        self.check_protocol = check_protocol
        self.tracer = tracer
        self.faults = faults
        self.stats = MemSystemStats()
        self.mapper = AddressMapper(config)
        timing = TimingPs.from_config(
            config.timings, config.dram_clock_ps, config.burst_clocks
        )
        self.timing = timing
        if config.kind is MemoryKind.FBDIMM:
            self.channels: List[ChannelControllerBase] = [
                FbdimmChannelController(
                    sim, config, timing, ch, self.stats, faults=faults
                )
                for ch in range(config.physical_channels)
            ]
        else:
            self.channels = [
                Ddr2ChannelController(sim, config, timing, ch, self.stats)
                for ch in range(config.physical_channels)
            ]
        self.overhead_ps = ns(config.controller_overhead_ns)
        self.capacity = config.buffer_entries
        self.active = 0
        self.backlog: Deque[MemoryRequest] = deque()
        for channel in self.channels:
            channel.tracer = tracer
        # The Chrome-trace exporter reuses the protocol-checker command
        # journal for its per-bank spans, so tracing turns journalling on.
        if check_protocol or tracer is not None:
            for channel in self.channels:
                channel.enable_protocol_trace()

    # ------------------------------------------------------------------

    def submit(self, req: MemoryRequest) -> None:
        """Accept a request from the CPU side.

        The request is mapped, charged the controller overhead, and either
        admitted into a channel queue or parked in the admission FIFO when
        all 64 buffer entries are occupied.
        """
        req.mapped = self.mapper.map(req.line_addr)
        req.schedulable_at = req.arrival + self.overhead_ps
        self._chain_completion(req)
        admitted = self.active < self.capacity
        if self.tracer is not None:
            self.tracer.on_arrival(req, self.sim.now, backlogged=not admitted)
        if admitted:
            self._admit(req)
        else:
            self.backlog.append(req)

    def outstanding(self) -> int:
        """Requests inside the controller (buffered + backlogged)."""
        return self.active + len(self.backlog)

    def drained(self) -> bool:
        """True when no request is anywhere in the memory subsystem."""
        return self.outstanding() == 0

    # ------------------------------------------------------------------

    def _chain_completion(self, req: MemoryRequest) -> None:
        user_callback = req.on_complete

        def chained(done: MemoryRequest) -> None:
            self.active -= 1
            if self.backlog:
                self._admit(self.backlog.popleft())
            if user_callback is not None:
                user_callback(done)

        req.on_complete = chained

    def _admit(self, req: MemoryRequest) -> None:
        self.active += 1
        channel = self.channels[req.mapped.channel]
        ready = max(req.schedulable_at, self.sim.now)
        req.schedulable_at = ready
        if self.tracer is not None:
            self.tracer.on_schedulable(req, ready)
        self.sim.schedule_at(ready, lambda: channel.submit(req))

    # ------------------------------------------------------------------

    def _summed_device_counters(self) -> dict:
        totals = {
            "activates": 0, "column_accesses": 0, "prefetched_lines": 0,
            "row_hits": 0, "row_misses": 0, "busy": {},
        }
        for channel in self.channels:
            counters = channel.collect_device_counters()
            for key in ("activates", "column_accesses", "prefetched_lines",
                        "row_hits", "row_misses"):
                totals[key] += counters[key]
            totals["busy"].update(counters["busy"])
        return totals

    def collect_check_events(self) -> "list":
        """All journalled protocol-checker events, time-sorted.

        Only meaningful after construction with ``check_protocol=True``;
        returns an empty list otherwise.
        """
        events: list = []
        for channel in self.channels:
            events.extend(channel.collect_check_events())
        events.sort(key=lambda e: e.time_ps)
        return events

    def check_protocol_violations(self) -> "list":
        """Run the protocol checker over the journalled command stream.

        With fault injection enabled the checker also enforces the retry
        budget: no journalled replay may exceed ``max_retries + 1`` (the
        +1 is the post-reset recovery replay).
        """
        import dataclasses

        from repro.check.protocol import ProtocolChecker
        from repro.check.trace import TraceParams

        params = TraceParams.from_memory_config(self.config)
        if self.faults is not None and self.faults.enabled:
            params = dataclasses.replace(
                params, max_retries=self.faults.max_retries
            )
        return ProtocolChecker(params).check(self.collect_check_events())

    def mark_measurement_start(self) -> None:
        """Discard warm-up activity: measurement restarts from now.

        Device counters (which accumulate inside banks and links) are
        snapshotted and subtracted at finalize; completion-side counters
        are reset outright.
        """
        self._baseline = self._summed_device_counters()
        self.stats.reset_measurement()

    def finalize(self) -> MemSystemStats:
        """Fold per-channel device counters into the stats and return them."""
        totals = self._summed_device_counters()
        baseline = getattr(self, "_baseline", None)
        if baseline is not None:
            for key in ("activates", "column_accesses", "prefetched_lines",
                        "row_hits", "row_misses"):
                totals[key] -= baseline[key]
            totals["busy"] = {
                name: busy - baseline["busy"].get(name, 0)
                for name, busy in totals["busy"].items()
            }
        self.stats.activates += totals["activates"]
        self.stats.column_accesses += totals["column_accesses"]
        self.stats.prefetched_lines += totals["prefetched_lines"]
        self.stats.row_hits += totals["row_hits"]
        self.stats.row_misses += totals["row_misses"]
        self.stats.per_channel_busy_ps.update(totals["busy"])
        return self.stats
