"""The top-level memory controller.

Maps incoming requests, holds the finite memory buffer (64 entries, Table 1),
applies the fixed controller overhead (12 ns), and dispatches to the
per-physical-channel engines.  Requests beyond the buffer capacity wait in
an admission FIFO with their MSHR held — this is the backpressure the cores
feel when the memory system saturates.
"""

from __future__ import annotations

from collections import deque
from functools import partial
from typing import TYPE_CHECKING, Deque, List, Optional

from repro.config import FaultConfig, MemoryConfig, MemoryKind
from repro.controller.channel_controller import (
    ChannelControllerBase,
    Ddr2ChannelController,
    FbdimmChannelController,
)
from repro.controller.mapping import AddressMapper
from repro.controller.transaction import MemoryRequest
from repro.dram.timing import TimingPs
from repro.engine.simulator import Simulator, ns
from repro.stats.collector import MemSystemStats

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.prefetch.lifecycle import PrefetchLifecycle
    from repro.telemetry.spans import Tracer
    from repro.timeline.collector import TimelineCollector

#: Device/residency counter keys summed across channels and baseline-
#: subtracted at a measurement reset (see mark_measurement_start).
_DEVICE_COUNTER_KEYS = (
    "activates", "column_accesses", "prefetched_lines",
    "column_reads", "column_writes", "refreshes",
    "row_hits", "row_misses", "faw_stalls", "faw_stall_ps",
    "idle_ps", "powerdown_ps", "idle_gaps",
    "pf_table_lookups", "pf_table_hits", "pf_table_inserts",
    "pf_table_evictions", "pf_table_invalidations",
)


class MemoryController:
    """Front door of the memory subsystem."""

    def __init__(
        self,
        sim: Simulator,
        config: MemoryConfig,
        check_protocol: bool = False,
        tracer: "Optional[Tracer]" = None,
        faults: "Optional[FaultConfig]" = None,
    ) -> None:
        self.sim = sim
        self.config = config
        self.check_protocol = check_protocol
        self.tracer = tracer
        self.faults = faults
        self.stats = MemSystemStats()
        self.mapper = AddressMapper(config)
        timing = TimingPs.from_config(
            config.timings, config.dram_clock_ps, config.burst_clocks,
            tfaw_ns=config.tFAW_ns,
        )
        self.timing = timing
        if config.kind is MemoryKind.FBDIMM:
            self.channels: List[ChannelControllerBase] = [
                FbdimmChannelController(
                    sim, config, timing, ch, self.stats, faults=faults
                )
                for ch in range(config.physical_channels)
            ]
        else:
            self.channels = [
                Ddr2ChannelController(sim, config, timing, ch, self.stats)
                for ch in range(config.physical_channels)
            ]
        self.overhead_ps = ns(config.controller_overhead_ns)
        self.capacity = config.buffer_entries
        self.active = 0
        self.backlog: Deque[MemoryRequest] = deque()
        #: Optional timeline collector (repro.timeline); attached by the
        #: System when the timeline is enabled so measurement resets reach
        #: the per-window records.
        self.timeline: "Optional[TimelineCollector]" = None
        # Idle/power-down residency tracker: off (and free) by default;
        # enable_idle_tracking() arms it when the timeline is on.
        self._idle_tracking = False
        self._idle_entry_ps = 0
        self._idle_since: Optional[int] = None
        self._idle_ps = 0
        self._powerdown_ps = 0
        self._idle_gaps = 0
        for channel in self.channels:
            channel.tracer = tracer
        #: Per-prefetch lifecycle tracker (repro.prefetch), armed by the
        #: AmbPrefetchConfig.lifecycle switch; observation only.
        self.lifecycle: "Optional[PrefetchLifecycle]" = None
        if (
            config.prefetch.enabled
            and config.prefetch.lifecycle
            and config.kind is MemoryKind.FBDIMM
        ):
            from repro.prefetch.lifecycle import PrefetchLifecycle

            self.lifecycle = PrefetchLifecycle(self.stats, sim=sim, tracer=tracer)
            for channel in self.channels:
                assert isinstance(channel, FbdimmChannelController)
                channel.attach_lifecycle(self.lifecycle)
        # The Chrome-trace exporter reuses the protocol-checker command
        # journal for its per-bank spans, so tracing turns journalling on.
        if check_protocol or tracer is not None:
            for channel in self.channels:
                channel.enable_protocol_trace()

    # ------------------------------------------------------------------

    def submit(self, req: MemoryRequest) -> None:
        """Accept a request from the CPU side.

        The request is mapped, charged the controller overhead, and either
        admitted into a channel queue or parked in the admission FIFO when
        all 64 buffer entries are occupied.
        """
        if self._idle_since is not None:
            self._close_idle_gap(self.sim.now)
        req.mapped = self.mapper.map(req.line_addr)
        req.schedulable_at = req.arrival + self.overhead_ps
        self._chain_completion(req)
        admitted = self.active < self.capacity
        if self.tracer is not None:
            self.tracer.on_arrival(req, self.sim.now, backlogged=not admitted)
        if admitted:
            self._admit(req)
        else:
            self.backlog.append(req)

    def outstanding(self) -> int:
        """Requests inside the controller (buffered + backlogged)."""
        return self.active + len(self.backlog)

    def drained(self) -> bool:
        """True when no request is anywhere in the memory subsystem."""
        return self.outstanding() == 0

    # ------------------------------------------------------------------

    def _chain_completion(self, req: MemoryRequest) -> None:
        user_callback = req.on_complete

        def chained(done: MemoryRequest) -> None:
            self.active -= 1
            if self.backlog:
                self._admit(self.backlog.popleft())
            elif self._idle_tracking and self.active == 0 and self._idle_since is None:
                self._idle_since = self.sim.now
            if user_callback is not None:
                user_callback(done)

        req.on_complete = chained

    # ------------------------------------------------------------------
    # Idle/power-down residency tracking

    def enable_idle_tracking(self, entry_ps: int) -> None:
        """Arm whole-subsystem idle tracking (timeline/energy accounting).

        An idle gap opens whenever no request is outstanding anywhere in
        the memory subsystem and closes on the next arrival (or at
        finalize).  The portion of each gap beyond ``entry_ps`` counts as
        power-down residency, modelling DRAM ranks entering precharge
        power-down after a fixed idle threshold.
        """
        if entry_ps < 0:
            raise ValueError(f"entry_ps must be non-negative, got {entry_ps}")
        self._idle_tracking = True
        self._idle_entry_ps = entry_ps
        # The subsystem starts idle: the gap opens at time zero.
        self._idle_since = self.sim.now

    def _close_idle_gap(self, now: int) -> None:
        """Close the open idle gap, crediting idle/power-down residency."""
        assert self._idle_since is not None
        gap = now - self._idle_since
        self._idle_since = None
        if gap > 0:
            self._idle_ps += gap
            self._idle_gaps += 1
            if gap > self._idle_entry_ps:
                self._powerdown_ps += gap - self._idle_entry_ps

    def _admit(self, req: MemoryRequest) -> None:
        self.active += 1
        channel = self.channels[req.mapped.channel]
        ready = max(req.schedulable_at, self.sim.now)
        req.schedulable_at = ready
        if self.tracer is not None:
            self.tracer.on_schedulable(req, ready)
        self.sim.schedule_fire(ready, partial(channel.submit, req))

    # ------------------------------------------------------------------

    def _summed_device_counters(self) -> dict:
        totals: dict = {key: 0 for key in _DEVICE_COUNTER_KEYS}
        totals["busy"] = {}
        for channel in self.channels:
            counters = channel.collect_device_counters()
            for key in _DEVICE_COUNTER_KEYS:
                totals[key] += counters.get(key, 0)
            totals["busy"].update(counters["busy"])
        # Residency lives on the controller, not in the channels.
        totals["idle_ps"] += self._idle_ps
        totals["powerdown_ps"] += self._powerdown_ps
        totals["idle_gaps"] += self._idle_gaps
        return totals

    def device_counters(self) -> dict:
        """Live device/residency counter totals (timeline snapshots).

        Unlike :meth:`finalize` this performs no baseline subtraction:
        the timeline collector differences successive snapshots itself,
        so absolute values are what it needs.
        """
        return self._summed_device_counters()

    def collect_check_events(self) -> "list":
        """All journalled protocol-checker events, time-sorted.

        Only meaningful after construction with ``check_protocol=True``;
        returns an empty list otherwise.
        """
        events: list = []
        for channel in self.channels:
            events.extend(channel.collect_check_events())
        events.sort(key=lambda e: e.time_ps)
        return events

    def check_protocol_violations(self) -> "list":
        """Run the protocol checker over the journalled command stream.

        With fault injection enabled the checker also enforces the retry
        budget: no journalled replay may exceed ``max_retries + 1`` (the
        +1 is the post-reset recovery replay).
        """
        import dataclasses

        from repro.check.protocol import ProtocolChecker
        from repro.check.trace import TraceParams

        params = TraceParams.from_memory_config(self.config)
        if self.faults is not None and self.faults.enabled:
            params = dataclasses.replace(
                params, max_retries=self.faults.max_retries
            )
        return ProtocolChecker(params).check(self.collect_check_events())

    def mark_measurement_start(self) -> None:
        """Discard warm-up activity: measurement restarts from now.

        Device counters (which accumulate inside banks and links) are
        snapshotted and subtracted at finalize; completion-side counters
        are reset outright.
        """
        # Close (and reopen) any open idle gap at the boundary so the
        # warm-up share of the gap lands in the baseline snapshot.
        if self._idle_since is not None:
            self._close_idle_gap(self.sim.now)
            self._idle_since = self.sim.now
        self._baseline = self._summed_device_counters()
        self.stats.reset_measurement()
        if self.lifecycle is not None:
            # After the stats reset: re-seeds pf_issued with the in-flight
            # prefetch instances so the conservation invariant holds over
            # the measured window alone.
            self.lifecycle.on_measurement_reset()
        if self.timeline is not None:
            self.timeline.on_measurement_reset()

    def finalize(self) -> MemSystemStats:
        """Fold per-channel device counters into the stats and return them."""
        # A run can end with the subsystem idle; close the trailing gap
        # so its residency is accounted before the fold.
        if self._idle_since is not None:
            self._close_idle_gap(self.sim.now)
        if self.lifecycle is not None:
            # Close the taxonomy: still-open instances -> resident_at_end.
            self.lifecycle.finalize()
        totals = self._summed_device_counters()
        baseline = getattr(self, "_baseline", None)
        if baseline is not None:
            for key in _DEVICE_COUNTER_KEYS:
                totals[key] -= baseline[key]
            totals["busy"] = {
                name: busy - baseline["busy"].get(name, 0)
                for name, busy in totals["busy"].items()
            }
        self.stats.activates += totals["activates"]
        self.stats.column_accesses += totals["column_accesses"]
        self.stats.prefetched_lines += totals["prefetched_lines"]
        self.stats.column_reads += totals["column_reads"]
        self.stats.column_writes += totals["column_writes"]
        self.stats.refreshes += totals["refreshes"]
        self.stats.row_hits += totals["row_hits"]
        self.stats.row_misses += totals["row_misses"]
        self.stats.faw_stalls += totals["faw_stalls"]
        self.stats.faw_stall_ps += totals["faw_stall_ps"]
        self.stats.idle_ps += totals["idle_ps"]
        self.stats.powerdown_ps += totals["powerdown_ps"]
        self.stats.idle_gaps += totals["idle_gaps"]
        self.stats.pf_table_lookups += totals["pf_table_lookups"]
        self.stats.pf_table_hits += totals["pf_table_hits"]
        self.stats.pf_table_inserts += totals["pf_table_inserts"]
        self.stats.pf_table_evictions += totals["pf_table_evictions"]
        self.stats.pf_table_invalidations += totals["pf_table_invalidations"]
        self.stats.per_channel_busy_ps.update(totals["busy"])
        return self.stats
