"""Per-physical-channel issue engines.

A channel controller owns one physical channel's queues and resources and
turns scheduled requests into timed DRAM activity.  Two variants share the
queueing/scheduling skeleton:

* :class:`Ddr2ChannelController` — shared command + data bus, DIMMs directly
  on the channel;
* :class:`FbdimmChannelController` — southbound/northbound links, AMBs with
  optional AMB-cache prefetching.

Transactions are issued atomically: when the scheduler picks a request, the
controller computes the whole command/data timeline against the bank state
and bus reservations, then schedules a single completion event.  An
in-flight cap bounds how far ahead resources can be reserved, which is what
keeps the reordering window meaningful (like a real controller's finite
command pipeline).
"""

from __future__ import annotations

import dataclasses
from collections import deque
from functools import partial
from typing import TYPE_CHECKING, Deque, Iterable, Optional, Sequence

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.dram.bank import Bank
    from repro.prefetch.lifecycle import PrefetchLifecycle
    from repro.telemetry.spans import Tracer

from repro.channel.amb import Amb
from repro.channel.ddr2_bus import Ddr2Dimm
from repro.channel.fbdimm_link import FbdimmLinks
from repro.config import FaultConfig, MemoryConfig, PrefetchLocation
from repro.faults.retry import ChannelFaults
from repro.controller.prefetch_table import PrefetchTable
from repro.controller.scheduler import HitFirstScheduler
from repro.controller.transaction import MemoryRequest, RequestKind
from repro.dram.resources import BusResource, TaggedBusResource
from repro.dram.timing import TimingPs
from repro.engine.simulator import Simulator
from repro.stats.collector import MemSystemStats


class ChannelControllerBase:
    """Queueing, scheduling and completion plumbing shared by both kinds."""

    def __init__(
        self,
        sim: Simulator,
        config: MemoryConfig,
        timing: TimingPs,
        channel_id: int,
        stats: MemSystemStats,
    ) -> None:
        self.sim = sim
        self.config = config
        self.timing = timing
        self.channel_id = channel_id
        self.stats = stats
        self.read_q: Deque[MemoryRequest] = deque()
        self.write_q: Deque[MemoryRequest] = deque()
        self.scheduler = HitFirstScheduler(config.write_drain_threshold)
        # Cached bound methods for the kick loop: building the bound-method
        # objects anew on every select call is measurable at this call rate.
        self._select = self.scheduler.select
        self._estimate_fn = self._estimate
        self._is_hit_fn = self._is_hit
        # Separate read/write in-flight caps: a write drain may not
        # monopolise the issue pipeline and starve ready reads (writes are
        # posted; reads are latency-critical).
        self.max_read_inflight = max(8, 2 * config.dimms_per_channel)
        self.max_write_inflight = max(4, config.dimms_per_channel)
        self.inflight_reads = 0
        self.inflight_writes = 0
        self._wake = None  # pending future kick event, at most one outstanding
        #: Tick for which a handle-free same-tick kick is already queued.
        #: A kick at the current time can never be preempted by an earlier
        #: one, so it needs no cancellation handle — only this dedupe mark.
        self._wake_now_tick = -1
        self._pruned_at = -1  # last tick _prune ran (idempotent within one)
        #: Optional request-lifecycle tracer (assigned by MemoryController);
        #: every hook site is a no-op when this stays None.
        self.tracer: "Optional[Tracer]" = None
        #: Optional per-prefetch lifecycle tracker (repro.prefetch);
        #: attached via attach_lifecycle, None keeps every hook free.
        self.lifecycle: "Optional[PrefetchLifecycle]" = None

    # -- queue interface -------------------------------------------------

    def submit(self, req: MemoryRequest) -> None:
        """Accept a mapped, schedulable request into this channel's queues."""
        if req.kind is RequestKind.WRITE:
            self.write_q.append(req)
        else:
            self.read_q.append(req)
        self._request_kick(self.sim.now)

    def queue_len(self) -> int:
        """Requests waiting (not yet issued) on this channel."""
        return len(self.read_q) + len(self.write_q)

    # -- scheduling loop --------------------------------------------------

    def _request_kick(self, time: int) -> None:
        now = self.sim.now
        if self._wake_now_tick == now:
            return  # a kick for this very tick is already queued
        wake = self._wake
        if wake is not None and not wake.cancelled:
            if wake.time <= time:
                return
            wake.cancel()
            self._wake = None
        if time <= now:
            self._wake_now_tick = now
            self.sim.schedule_fire(now, self._kick)
        else:
            self._wake = self.sim.schedule_at(time, self._kick)

    _EMPTY: Deque[MemoryRequest] = deque()

    def _kick(self) -> None:
        self._wake = None
        self._wake_now_tick = -1
        now = self.sim.now
        if now != self._pruned_at:
            # prune_before(now) is idempotent at a fixed now (reservations
            # never end in the past), so repeated kicks within one tick
            # skip the rescan without changing any backfill search.
            self._prune(now)
            self._pruned_at = now
        while True:
            reads = self.read_q if self.inflight_reads < self.max_read_inflight else self._EMPTY
            writes = (
                self.write_q
                if self.inflight_writes < self.max_write_inflight
                else self._EMPTY
            )
            if not reads and not writes:
                return
            choice = self._select(
                now, reads, writes, self._estimate_fn, self._is_hit_fn
            )
            if choice is None:
                return
            req, est, from_writes = choice
            if est > now:
                self._request_kick(est)
                return
            if from_writes:
                self.write_q.remove(req)
                self.inflight_writes += 1
            else:
                self.read_q.remove(req)
                self.inflight_reads += 1
            req.issue_time = now
            if self.tracer is not None:
                self.tracer.on_issue(req, now)
            self.stats.note_activity(now)
            self._issue(req)

    def _start_refresh(self, rank_banks: Sequence[Sequence[Bank]]) -> None:
        """Arm periodic all-bank refresh per rank, staggered across ranks.

        Each entry of ``rank_banks`` is one rank's bank list; every tREFI
        that rank takes exactly one all-bank REF (a tRFC blackout on all
        its banks), with rank offsets spread across the interval so the
        whole channel never refreshes at once.

        Off by default (refresh_interval_ns == 0).  Note: once armed, the
        event queue never drains — run loops must stop via an explicit
        condition (System.run does; bare-controller tests should leave
        refresh off or use Simulator.run(until=...)).
        """
        from repro.engine.simulator import ns as to_ps

        interval = to_ps(self.config.refresh_interval_ns)
        if interval <= 0:
            return
        trfc = to_ps(self.config.refresh_cycle_ns)
        for index, banks in enumerate(rank_banks):
            offset = (interval * index) // max(1, len(rank_banks))

            def loop(banks: Sequence[Bank] = banks) -> None:
                for bank in banks:
                    bank.refresh(self.sim.now, trfc)
                self.sim.schedule_fire(self.sim.now + interval, lambda: loop(banks))

            self.sim.schedule_fire(offset + interval, lambda b=banks: loop(b))

    def _finish_at(self, req: MemoryRequest, finish_time: int) -> None:
        """Schedule the completion event for an issued transaction."""
        self.sim.schedule_fire(finish_time, partial(self._complete, req))

    def _complete(self, req: MemoryRequest) -> None:
        if req.kind is RequestKind.WRITE:
            self.inflight_writes -= 1
        else:
            self.inflight_reads -= 1
        now = self.sim.now
        self.stats.note_activity(now)
        queue_delay = max(0, req.issue_time - req.schedulable_at)
        if req.kind is RequestKind.WRITE:
            self.stats.record_write_completion(self.config.cacheline_bytes)
        else:
            self.stats.record_read_completion(
                latency_ps=now - req.arrival,
                queue_delay_ps=queue_delay,
                is_demand=req.kind is RequestKind.DEMAND_READ,
                amb_hit=req.amb_hit,
                line_bytes=self.config.cacheline_bytes,
                core_id=req.core_id,
            )
            if req.amb_hit and self.lifecycle is not None:
                # Counted at completion, exactly like amb_hits, so the
                # lifecycle-derived coverage matches the legacy figure.
                self.lifecycle.on_hit_completion()
        if self.tracer is not None:
            self.tracer.on_complete(req, now)
        req.complete(now)
        if self.read_q or self.write_q:
            self._request_kick(now)

    # -- protocol-checker support ------------------------------------------

    def _bank_check_events(self, dimm_id: int,
                           banks: Iterable[Bank]) -> "list":
        """Convert the banks' command logs into checker events."""
        from repro.check.trace import CheckEvent

        per_dimm = self.config.banks_per_dimm
        events = []
        for bank in banks:
            if not bank.command_log:
                continue
            for rec in bank.command_log:
                events.append(CheckEvent(
                    time_ps=rec.time_ps,
                    kind=rec.kind.value,
                    channel=self.channel_id,
                    dimm=dimm_id,
                    rank=rec.bank_id // per_dimm,
                    bank=rec.bank_id % per_dimm,
                    row=rec.row,
                ))
        return events

    def enable_protocol_trace(self) -> None:
        """Start journalling DRAM commands (and frames) for the checker."""
        raise NotImplementedError

    def collect_check_events(self) -> "list":
        """All journalled events so far, time-sorted."""
        raise NotImplementedError

    # -- hooks implemented per channel kind --------------------------------

    def _prune(self, now: int) -> None:
        """Drop expired bus reservations (keeps backfill searches short)."""
        raise NotImplementedError

    def _estimate(self, req: MemoryRequest) -> int:
        raise NotImplementedError

    def _is_hit(self, req: MemoryRequest) -> bool:
        raise NotImplementedError

    def _issue(self, req: MemoryRequest) -> None:
        raise NotImplementedError

    def collect_device_counters(self) -> "dict":
        """Side-effect-free snapshot of device activity (see controller
        finalize/warmup)."""
        raise NotImplementedError


class Ddr2ChannelController(ChannelControllerBase):
    """One conventional DDR2 channel: shared command and data buses."""

    def __init__(
        self,
        sim: Simulator,
        config: MemoryConfig,
        timing: TimingPs,
        channel_id: int,
        stats: MemSystemStats,
    ) -> None:
        super().__init__(sim, config, timing, channel_id, stats)
        gap = round(config.ddr2_switch_gap_clocks * timing.clock)
        self.data_bus = TaggedBusResource(f"ddr2-ch{channel_id}.data", switch_gap_ps=gap)
        self.command_bus = BusResource(f"ddr2-ch{channel_id}.cmd")
        self.dimms = [
            Ddr2Dimm(config, timing, channel_id, d, self.data_bus, self.command_bus)
            for d in range(config.dimms_per_channel)
        ]
        per_rank = config.banks_per_dimm
        self._start_refresh([
            dimm.banks[r * per_rank:(r + 1) * per_rank]
            for dimm in self.dimms
            for r in range(config.ranks_per_dimm)
        ])

    def _prune(self, now: int) -> None:
        # Emptiness guards saved here beat the (very frequent) no-op calls.
        if len(self.data_bus._intervals) > 1:
            self.data_bus.prune_before(now)
        if self.command_bus._intervals:
            self.command_bus.prune_before(now)

    def _estimate(self, req: MemoryRequest) -> int:
        mapped = req.mapped
        dimm = self.dimms[mapped.dimm]
        rank = mapped.rank
        bank = dimm.banks[rank * dimm._banks_per_dimm + mapped.bank]
        return bank.earliest_start(
            self.sim.now, mapped.row, dimm.rank_timers[rank]
        )

    def _is_hit(self, req: MemoryRequest) -> bool:
        mapped = req.mapped
        dimm = self.dimms[mapped.dimm]
        return dimm.banks[
            mapped.rank * dimm._banks_per_dimm + mapped.bank
        ].is_row_hit(mapped.row)

    def _issue(self, req: MemoryRequest) -> None:
        dimm = self.dimms[req.mapped.dimm]
        result = (dimm.write_line(self.sim.now, req.mapped)
                  if req.kind is RequestKind.WRITE
                  else dimm.read_line(self.sim.now, req.mapped))
        req.row_hit = result.row_hit
        if self.tracer is not None:
            self.tracer.on_data(req, result.data_starts[0])
        self._finish_at(req, result.data_times[0])

    def enable_protocol_trace(self) -> None:
        for dimm in self.dimms:
            for bank in dimm.banks:
                bank.enable_trace()

    def collect_check_events(self) -> "list":
        events = []
        for dimm in self.dimms:
            events.extend(self._bank_check_events(dimm.dimm_id, dimm.banks))
        events.sort(key=lambda e: e.time_ps)
        return events

    def collect_device_counters(self) -> "dict":
        """Snapshot of DRAM-operation counts and bus occupancy."""
        counters = {
            "activates": 0, "column_accesses": 0, "prefetched_lines": 0,
            "column_reads": 0, "column_writes": 0, "refreshes": 0,
            "row_hits": 0, "row_misses": 0,
            "faw_stalls": 0, "faw_stall_ps": 0,
            "busy": {self.data_bus.name: self.data_bus.busy_ps},
        }
        for dimm in self.dimms:
            acts, cols = dimm.bank_operation_counts()
            counters["activates"] += acts
            counters["column_accesses"] += cols
            for bank in dimm.banks:
                counters["column_reads"] += bank.stats.reads
                counters["column_writes"] += bank.stats.writes
                counters["refreshes"] += bank.stats.refreshes
                counters["row_hits"] += bank.stats.row_hits
                counters["row_misses"] += bank.stats.row_misses
                counters["faw_stalls"] += bank.stats.faw_stalls
                counters["faw_stall_ps"] += bank.stats.faw_stall_ps
        return counters


class FbdimmChannelController(ChannelControllerBase):
    """One FB-DIMM physical channel with daisy-chained AMBs.

    With ``config.prefetch.enabled`` the controller consults the prefetch
    information table before issuing: hits are served straight from the AMB
    cache (Section 3.2), misses become group fetches that fill it.
    """

    def __init__(
        self,
        sim: Simulator,
        config: MemoryConfig,
        timing: TimingPs,
        channel_id: int,
        stats: MemSystemStats,
        faults: Optional[FaultConfig] = None,
    ) -> None:
        super().__init__(sim, config, timing, channel_id, stats)
        self.links = FbdimmLinks(config, channel_id)
        self.ambs = [
            Amb(config, timing, channel_id, d) for d in range(config.dimms_per_channel)
        ]
        per_rank = config.banks_per_dimm
        self._start_refresh([
            amb.banks[r * per_rank:(r + 1) * per_rank]
            for amb in self.ambs
            for r in range(config.ranks_per_dimm)
        ])
        self.prefetch = config.prefetch
        self._pf_enabled = config.prefetch.enabled
        self._region_lines = config.prefetch.region_cachelines
        # One-entry probe memo: the scheduler always calls _estimate(req)
        # before _is_hit(req) with no state change in between, so the
        # second availability probe of the same request can reuse the
        # first's answer.  _probe_cache stays side-effect-free either way.
        self._probe_memo_req: Optional[MemoryRequest] = None
        self._probe_memo_avail: Optional[int] = None
        #: CRC retry/replay engine (None keeps the exact seed timing path).
        self.faults: Optional[ChannelFaults] = None
        #: Request currently inside _issue — context for the retry tracer
        #: hook, which fires from deep inside the link layer.
        self._issuing: Optional[MemoryRequest] = None
        if faults is not None and faults.enabled:
            self.faults = ChannelFaults(faults, config.frame_ps, channel_id, stats)
            self.faults.on_retry = self._on_fault_retry
            self.links.faults = self.faults
            for amb in self.ambs:
                amb.faults = self.faults
        # FBD-APFL (Figure 9): hits pay the full DRAM idle latency
        # (tRCD + tCL) but keep the bank idle.
        self.hit_extra_ps = (
            timing.tRCD + timing.tCL if self.prefetch.full_latency_hits else 0
        )
        # Controller-side buffering (PrefetchLocation.CONTROLLER): one tag
        # store per channel at the memory controller, with the same total
        # capacity as this channel's AMB caches would have had.
        self.mc_table: Optional[PrefetchTable] = None
        self.mc_pending: "dict[int, dict[int, int]]" = {}
        self.mc_prefetched_lines = 0
        if (
            self.prefetch.enabled
            and self.prefetch.location is PrefetchLocation.CONTROLLER
        ):
            scaled = dataclasses.replace(
                self.prefetch,
                cache_entries=self.prefetch.cache_entries
                * config.dimms_per_channel,
            )
            self.mc_table = PrefetchTable(scaled)

    def attach_lifecycle(self, lifecycle: "PrefetchLifecycle") -> None:
        """Arm per-prefetch lifecycle tracking on this channel.

        The tracker is shared across channels (one stats object); it hooks
        the controller's completion path, every AMB's fetch/fill path and
        each tag store's eviction path.
        """
        self.lifecycle = lifecycle
        for amb in self.ambs:
            amb.lifecycle = lifecycle
            if amb.table is not None:
                amb.table.lifecycle = lifecycle
        if self.mc_table is not None:
            self.mc_table.lifecycle = lifecycle

    def _prune(self, now: int) -> None:
        # Emptiness guards saved here beat the (very frequent) no-op calls.
        links = self.links
        if links.north._taken:
            links.north.prune_before(now)
        if links.south._frames:
            links.south.prune_before(now)
        for amb in self.ambs:
            bus = amb.data_bus
            if bus._intervals:
                bus.prune_before(now)

    # -- estimates ---------------------------------------------------------

    def _amb_for(self, req: MemoryRequest) -> Amb:
        return self.ambs[req.mapped.dimm]

    def _probe_cache(self, amb: Amb, line_addr: int) -> Optional[int]:
        """Stat-free availability probe used while scheduling."""
        region = line_addr // self._region_lines
        if self.mc_table is not None:
            if self.mc_table.contains(line_addr):
                return 0
            pending = self.mc_pending.get(region)
            if pending is not None and line_addr in pending:
                return pending[line_addr]
            return None
        if amb.table is None:
            return None
        if amb.table.contains(line_addr):
            return 0
        pending = amb.pending_fills.get(region)
        if pending is not None and line_addr in pending:
            return pending[line_addr]
        return None

    def _prefetch_active(self) -> bool:
        """Prefetching is configured and the channel has not degraded.

        A channel that entered fault-degraded mode stops trusting (and
        stops filling) its prefetch caches: demand reads fall back to the
        plain FB-DIMM path until the end of the run.
        """
        if not self._pf_enabled:
            return False
        faults = self.faults
        return faults is None or not faults.degraded

    def _estimate(self, req: MemoryRequest) -> int:
        mapped = req.mapped
        amb = self.ambs[mapped.dimm]
        # Inlined _prefetch_active() + _probe_cache(): this runs once per
        # scheduler candidate per kick, the hottest probe in the FBD model.
        if req.kind is not RequestKind.WRITE and self._pf_enabled and (
            self.faults is None or not self.faults.degraded
        ):
            avail = self._probe_cache(amb, req.line_addr)
            self._probe_memo_req = req
            self._probe_memo_avail = avail
            if avail is not None:
                now = self.sim.now
                return now if now >= avail else avail
        bank = amb.banks[mapped.rank * amb._banks_per_dimm + mapped.bank]
        return bank.earliest_start(
            self.sim.now, mapped.row, amb.rank_timers[mapped.rank]
        )

    def _is_hit(self, req: MemoryRequest) -> bool:
        mapped = req.mapped
        amb = self.ambs[mapped.dimm]
        if req.kind is not RequestKind.WRITE and self._pf_enabled and (
            self.faults is None or not self.faults.degraded
        ):
            if self._probe_memo_req is req:
                avail = self._probe_memo_avail
            else:
                avail = self._probe_cache(amb, req.line_addr)
            if avail is not None:
                return True
        return amb.banks[
            mapped.rank * amb._banks_per_dimm + mapped.bank
        ].is_row_hit(mapped.row)

    # -- issue paths ---------------------------------------------------------

    def _on_fault_retry(self, kind: str, time_ps: int, attempt: int) -> None:
        """ChannelFaults.on_retry hook: surface replays to the tracer."""
        if self.tracer is not None and self._issuing is not None:
            self.tracer.on_retry(self._issuing, time_ps)

    def _issue(self, req: MemoryRequest) -> None:
        self._issuing = req
        try:
            if req.kind is RequestKind.WRITE:
                self._issue_write(req)
            elif self._prefetch_active():
                self._issue_read_prefetching(req)
            else:
                self._issue_read_plain(req)
        finally:
            self._issuing = None

    def _issue_write(self, req: MemoryRequest) -> None:
        amb = self._amb_for(req)
        amb.invalidate(req.line_addr)
        if self.mc_table is not None:
            self.mc_table.invalidate(req.line_addr)
            region = req.line_addr // self.prefetch.region_cachelines
            pending = self.mc_pending.get(region)
            if pending is not None:
                pending.pop(req.line_addr, None)
            if self.lifecycle is not None:
                self.lifecycle.on_invalidate(req.line_addr)
        arrival = self.links.send_write_ps(self.sim.now, req.mapped.dimm)
        result = amb.write_line(arrival, req.mapped)
        req.row_hit = result.row_hit
        if self.tracer is not None:
            self.tracer.on_data(req, result.data_starts[0])
        self._finish_at(req, result.data_times[0])

    def _issue_read_plain(self, req: MemoryRequest) -> None:
        amb = self._amb_for(req)
        arrival = self.links.send_command_ps(self.sim.now)
        result = amb.read_line(arrival, req.mapped)
        req.row_hit = result.row_hit
        if self.tracer is not None:
            self.tracer.on_data(req, result.data_starts[0])
        ret = self.links.return_read(result.data_starts[0], req.mapped.dimm)
        self._finish_at(req, ret.critical_at_mc)

    def _issue_read_prefetching(self, req: MemoryRequest) -> None:
        if self.mc_table is not None:
            self._issue_read_mc_prefetching(req)
            return
        amb = self._amb_for(req)
        available = amb.cache_lookup(req.line_addr)
        arrival = self.links.send_command_ps(self.sim.now)
        if available is not None:
            req.amb_hit = True
            # FBD-APFL charges the hit the tRCD + tCL a miss would pay; it
            # is not additive with an in-flight fill's completion time.
            ready = max(arrival + self.hit_extra_ps, available)
            if self.tracer is not None:
                self.tracer.on_data(req, ready)
            ret = self.links.return_read(ready, req.mapped.dimm)
            self._finish_at(req, ret.critical_at_mc)
            return
        group = amb.group_fetch(arrival, req.mapped, req.line_addr)
        if self.tracer is not None:
            self.tracer.on_data(req, group.demanded_start)
        ret = self.links.return_read(group.demanded_start, req.mapped.dimm)
        region = req.line_addr // self.prefetch.region_cachelines
        self.sim.schedule_fire(group.last_fill, partial(amb.commit_fills, region))
        self._finish_at(req, ret.critical_at_mc)

    def _issue_read_mc_prefetching(self, req: MemoryRequest) -> None:
        """PrefetchLocation.CONTROLLER: the whole region crosses the channel.

        Hits are served from the controller buffer with no channel activity
        at all; misses pay K northbound line transfers instead of one -
        exactly the channel-bandwidth cost the paper's AMB placement avoids.
        """
        assert self.mc_table is not None
        region = req.line_addr // self.prefetch.region_cachelines
        if self.mc_table.lookup(req.line_addr):
            req.amb_hit = True
            if self.lifecycle is not None:
                self.lifecycle.on_hit(req.line_addr)
            amb = self._amb_for(req)
            if amb.policy is not None:
                amb.policy.observe_hit(req.line_addr)
            if self.tracer is not None:
                self.tracer.on_data(req, self.sim.now)
            self._finish_at(req, self.sim.now)
            return
        pending = self.mc_pending.get(region)
        if pending is not None and req.line_addr in pending:
            self.mc_table.stats.hits += 1
            req.amb_hit = True
            if self.lifecycle is not None:
                self.lifecycle.on_late(req.line_addr)
            ready = max(self.sim.now, pending[req.line_addr])
            if self.tracer is not None:
                self.tracer.on_data(req, ready)
            self._finish_at(req, ready)
            return

        amb = self._amb_for(req)
        arrival = self.links.send_command_ps(self.sim.now)
        if amb.policy is not None:
            amb.policy.observe_miss(req.line_addr)
        order = amb.group_order(req.line_addr)
        result = amb.group_read(arrival, req.mapped, order)
        if self.tracer is not None:
            self.tracer.on_data(req, result.data_starts[0])
        fills: "dict[int, int]" = {}
        demanded_finish = 0
        for line, start in zip(order, result.data_starts):
            ret = self.links.return_read(start, req.mapped.dimm)
            if line == req.line_addr:
                demanded_finish = ret.critical_at_mc
            else:
                fills[line] = ret.full_at_mc
                self.stats.bytes_read += self.config.cacheline_bytes
        self.mc_prefetched_lines += len(fills)
        if fills:
            self.mc_pending[region] = fills
            if self.lifecycle is not None:
                self.lifecycle.on_issue(fills)
            last_fill = max(fills.values())

            def commit(r: int = region) -> None:
                done = self.mc_pending.pop(r, None)
                if done:
                    if self.lifecycle is not None:
                        self.lifecycle.on_fill(done)
                    self.mc_table.insert(done.keys())

            self.sim.schedule_fire(last_fill, commit)
        self._finish_at(req, demanded_finish)

    def enable_protocol_trace(self) -> None:
        for amb in self.ambs:
            for bank in amb.banks:
                bank.enable_trace()
        self.links.south.enable_journal()
        self.links.north.enable_journal()

    def collect_check_events(self) -> "list":
        from repro.check.trace import CheckEvent

        events = []
        for amb in self.ambs:
            events.extend(self._bank_check_events(amb.dimm_id, amb.banks))
        if self.links.south.journal is not None:
            for kind, start, retry in self.links.south.journal:
                events.append(CheckEvent(
                    time_ps=start,
                    kind="SB_CMD" if kind == "cmd" else "SB_DATA",
                    channel=self.channel_id,
                    retry=retry,
                ))
        if self.links.north.journal is not None:
            for _, start, frames, retry in self.links.north.journal:
                events.append(CheckEvent(
                    time_ps=start, kind="NB_LINE",
                    channel=self.channel_id, frames=frames,
                    retry=retry,
                ))
        events.sort(key=lambda e: e.time_ps)
        return events

    def collect_device_counters(self) -> "dict":
        """Snapshot of DRAM activity, AMB cache fills and link occupancy."""
        counters = {
            "activates": 0, "column_accesses": 0,
            "prefetched_lines": self.mc_prefetched_lines,
            "column_reads": 0, "column_writes": 0, "refreshes": 0,
            "row_hits": 0, "row_misses": 0,
            "faw_stalls": 0, "faw_stall_ps": 0,
            "pf_table_lookups": 0, "pf_table_hits": 0, "pf_table_inserts": 0,
            "pf_table_evictions": 0, "pf_table_invalidations": 0,
            "busy": {
                self.links.north.name: self.links.north.busy_ps,
                self.links.south.name: self.links.south.busy_ps,
            },
        }
        for amb in self.ambs:
            acts, cols = amb.bank_operation_counts()
            counters["activates"] += acts
            counters["column_accesses"] += cols
            counters["prefetched_lines"] += amb.prefetched_lines
            for bank in amb.banks:
                counters["column_reads"] += bank.stats.reads
                counters["column_writes"] += bank.stats.writes
                counters["refreshes"] += bank.stats.refreshes
                counters["row_hits"] += bank.stats.row_hits
                counters["row_misses"] += bank.stats.row_misses
                counters["faw_stalls"] += bank.stats.faw_stalls
                counters["faw_stall_ps"] += bank.stats.faw_stall_ps
        if self.lifecycle is not None:
            # Tag-store counters fold only under lifecycle observability,
            # keeping default-run stats (and their digests) untouched.
            tables = [amb.table for amb in self.ambs if amb.table is not None]
            if self.mc_table is not None:
                tables.append(self.mc_table)
            for table in tables:
                table_stats = table.stats
                counters["pf_table_lookups"] += table_stats.lookups
                counters["pf_table_hits"] += table_stats.hits
                counters["pf_table_inserts"] += table_stats.inserts
                counters["pf_table_evictions"] += table_stats.evictions
                counters["pf_table_invalidations"] += table_stats.invalidations
        return counters
