"""Memory request lifecycle records."""

from __future__ import annotations

import enum
import itertools
from typing import Callable, Optional

from repro.controller.mapping import MappedAddress

_request_ids = itertools.count()


class RequestKind(enum.Enum):
    """What generated a memory request.

    DEMAND_READ: an L2 demand miss — the core stalls on it (via the ROB).
    SW_PREFETCH: a software cache-prefetch instruction's L2 fill — consumes
        the same memory resources as a demand read but never stalls the core.
    WRITE: an L2 writeback / store — posted, drained in the background.
    """

    DEMAND_READ = "read"
    SW_PREFETCH = "sw_prefetch"
    WRITE = "write"

    @property
    def is_read(self) -> bool:
        return self is not RequestKind.WRITE


class MemoryRequest:
    """One cacheline-sized transaction travelling through the controller.

    Timestamps (all picoseconds, -1 until set) let the stats layer compute
    queueing delay vs service time without re-deriving anything.

    Identity semantics: ``req_id`` is unique per request, so equality is
    identity — which keeps the controllers' ``deque.remove`` calls at
    pointer-compare cost on the issue hot path.
    """

    __slots__ = (
        "kind", "line_addr", "core_id", "arrival", "mapped", "on_complete",
        "req_id", "schedulable_at", "issue_time", "finish_time",
        "amb_hit", "row_hit",
    )

    def __init__(
        self,
        kind: RequestKind,
        line_addr: int,
        core_id: int,
        arrival: int,
        mapped: Optional[MappedAddress] = None,
        on_complete: Optional[Callable[["MemoryRequest"], None]] = None,
        req_id: Optional[int] = None,
    ) -> None:
        self.kind = kind
        self.line_addr = line_addr
        self.core_id = core_id
        self.arrival = arrival
        self.mapped = mapped
        self.on_complete = on_complete
        self.req_id = next(_request_ids) if req_id is None else req_id
        self.schedulable_at = -1  # arrival + controller overhead
        self.issue_time = -1  # first DRAM/AMB command for this request
        self.finish_time = -1  # critical data at the controller / write retired
        self.amb_hit = False  # served from the AMB cache
        self.row_hit = False  # open-page row-buffer hit

    def __repr__(self) -> str:
        return (
            f"MemoryRequest(kind={self.kind!r}, line_addr={self.line_addr},"
            f" core_id={self.core_id}, arrival={self.arrival},"
            f" req_id={self.req_id})"
        )

    @property
    def latency(self) -> int:
        """Total latency seen by the requester, in picoseconds."""
        if self.finish_time < 0:
            raise ValueError(f"request {self.req_id} has not completed")
        return self.finish_time - self.arrival

    def complete(self, finish_time: int) -> None:
        """Mark done and fire the completion callback."""
        self.finish_time = finish_time
        if self.on_complete is not None:
            self.on_complete(self)
