"""Memory request lifecycle records."""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.controller.mapping import MappedAddress

_request_ids = itertools.count()


class RequestKind(enum.Enum):
    """What generated a memory request.

    DEMAND_READ: an L2 demand miss — the core stalls on it (via the ROB).
    SW_PREFETCH: a software cache-prefetch instruction's L2 fill — consumes
        the same memory resources as a demand read but never stalls the core.
    WRITE: an L2 writeback / store — posted, drained in the background.
    """

    DEMAND_READ = "read"
    SW_PREFETCH = "sw_prefetch"
    WRITE = "write"

    @property
    def is_read(self) -> bool:
        return self is not RequestKind.WRITE


@dataclass
class MemoryRequest:
    """One cacheline-sized transaction travelling through the controller.

    Timestamps (all picoseconds, -1 until set) let the stats layer compute
    queueing delay vs service time without re-deriving anything.
    """

    kind: RequestKind
    line_addr: int
    core_id: int
    arrival: int
    mapped: Optional[MappedAddress] = None
    on_complete: Optional[Callable[["MemoryRequest"], None]] = None
    req_id: int = field(default_factory=lambda: next(_request_ids))

    schedulable_at: int = -1  # arrival + controller overhead
    issue_time: int = -1  # first DRAM/AMB command for this request
    finish_time: int = -1  # critical data at the controller / write retired
    amb_hit: bool = False  # served from the AMB cache
    row_hit: bool = False  # open-page row-buffer hit

    @property
    def latency(self) -> int:
        """Total latency seen by the requester, in picoseconds."""
        if self.finish_time < 0:
            raise ValueError(f"request {self.req_id} has not completed")
        return self.finish_time - self.arrival

    def complete(self, finish_time: int) -> None:
        """Mark done and fire the completion callback."""
        self.finish_time = finish_time
        if self.on_complete is not None:
            self.on_complete(self)
