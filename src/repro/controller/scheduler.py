"""Request reordering policy: hit-first with read priority.

The simulated controller follows the paper's policy (Section 4.1): pending
row-buffer hits are scheduled before row-buffer misses (hit-first, after
Rixner et al.), and reads are scheduled before writes unless the number of
outstanding writes exceeds a threshold — with hysteresis, so the write
drain empties half the queue before reads regain priority.

Under close-page mode there are no row hits, so hit-first degrades to
earliest-bank-ready-first, which reorders around bank conflicts the same
way (FR-FCFS without the row-hit term).
"""

from __future__ import annotations

from typing import Callable, Deque, Optional, Tuple

from repro.controller.transaction import MemoryRequest

#: How deep into each queue the scheduler looks.  Real controllers have a
#: bounded associative search; 16 keeps the model O(1)-ish per decision.
SCAN_WINDOW = 16


class HitFirstScheduler:
    """Chooses the next request from a channel's read and write queues."""

    def __init__(self, write_drain_threshold: int) -> None:
        self.write_drain_threshold = max(1, write_drain_threshold)
        self._draining_writes = False

    def _writes_win(self, reads: Deque[MemoryRequest], writes: Deque[MemoryRequest]) -> bool:
        if not writes:
            self._draining_writes = False
            return False
        if not reads:
            return True
        if self._draining_writes:
            if len(writes) <= self.write_drain_threshold // 2:
                self._draining_writes = False
        elif len(writes) >= self.write_drain_threshold:
            self._draining_writes = True
        return self._draining_writes

    def select(
        self,
        now: int,
        reads: Deque[MemoryRequest],
        writes: Deque[MemoryRequest],
        estimate: Callable[[MemoryRequest], int],
        row_hit: Callable[[MemoryRequest], bool],
    ) -> Optional[Tuple[MemoryRequest, int, bool]]:
        """Pick the best issueable request.

        Args:
            now: Current time.
            reads, writes: Per-kind FIFO queues (oldest first).
            estimate: Earliest time the request's commands could begin.
            row_hit: Whether the request would hit the open row (or the
                AMB cache, which the FB-DIMM controller treats as the
                ultimate "hit").

        Returns:
            (request, earliest_start, is_write_queue) for the winner, or
            None when both queues are empty.
        """
        if not reads and not writes:
            return None
        prefer_writes = self._writes_win(reads, writes)

        # Issueable-now requests always beat future-ready ones (a request
        # whose bank or fill frees later must not block the channel); among
        # the issueable, the preferred kind wins, then hits beat misses,
        # then oldest-first.  A ready request of the non-preferred kind
        # still issues when the preferred queue has nothing ready — this is
        # what lets FB-DIMM reads flow on the northbound link while a write
        # drain streams down the independent southbound link.
        #
        # That ranking — lexicographic over (ready, preferred, row-hit,
        # earliest-start, queue position) — lets the scan short-circuit:
        # every ready candidate has earliest-start == now exactly, so the
        # first ready row-hit in the preferred queue is globally optimal,
        # a ready preferred miss beats the whole other queue, and the
        # non-preferred queue's future candidates only matter when the
        # preferred queue is empty.  estimate/row_hit are side-effect-free
        # probes, so evaluating fewer of them cannot change the outcome.
        if prefer_writes:
            first, first_is_write = writes, True
            second, second_is_write = reads, False
        else:
            first, first_is_write = reads, False
            second, second_is_write = writes, True

        ready_req: Optional[MemoryRequest] = None
        futures: Optional[list] = None
        for position, req in enumerate(first):
            if position >= SCAN_WINDOW:
                break
            est = estimate(req)
            if est < now:
                est = now
            if req.schedulable_at > est:
                est = req.schedulable_at
            if est <= now:
                if row_hit(req):
                    return req, est, first_is_write
                if ready_req is None:
                    ready_req = req
            elif ready_req is None:
                if futures is None:
                    futures = []
                futures.append((est, position, req))
        if ready_req is not None:
            return ready_req, now, first_is_write

        ready2: Optional[MemoryRequest] = None
        futures2: Optional[list] = None
        for position, req in enumerate(second):
            if position >= SCAN_WINDOW:
                break
            est = estimate(req)
            if est < now:
                est = now
            if req.schedulable_at > est:
                est = req.schedulable_at
            if est <= now:
                if row_hit(req):
                    return req, est, second_is_write
                if ready2 is None:
                    ready2 = req
            elif ready2 is None and futures is None:
                if futures2 is None:
                    futures2 = []
                futures2.append((est, position, req))
        if ready2 is not None:
            return ready2, now, second_is_write

        if futures is not None:
            pool, pool_is_write = futures, first_is_write
        else:
            assert futures2 is not None
            pool, pool_is_write = futures2, second_is_write
        best: Optional[MemoryRequest] = None
        best_key: Optional[Tuple[int, int, int]] = None
        best_est = 0
        for est, position, req in pool:
            key = (0 if row_hit(req) else 1, est, position)
            if best_key is None or key < best_key:
                best, best_key, best_est = req, key, est
        assert best is not None
        return best, best_est, pool_is_write
