"""Request reordering policy: hit-first with read priority.

The simulated controller follows the paper's policy (Section 4.1): pending
row-buffer hits are scheduled before row-buffer misses (hit-first, after
Rixner et al.), and reads are scheduled before writes unless the number of
outstanding writes exceeds a threshold — with hysteresis, so the write
drain empties half the queue before reads regain priority.

Under close-page mode there are no row hits, so hit-first degrades to
earliest-bank-ready-first, which reorders around bank conflicts the same
way (FR-FCFS without the row-hit term).
"""

from __future__ import annotations

from typing import Callable, Deque, Optional, Tuple

from repro.controller.transaction import MemoryRequest

#: How deep into each queue the scheduler looks.  Real controllers have a
#: bounded associative search; 16 keeps the model O(1)-ish per decision.
SCAN_WINDOW = 16


class HitFirstScheduler:
    """Chooses the next request from a channel's read and write queues."""

    def __init__(self, write_drain_threshold: int) -> None:
        self.write_drain_threshold = max(1, write_drain_threshold)
        self._draining_writes = False

    def _writes_win(self, reads: Deque[MemoryRequest], writes: Deque[MemoryRequest]) -> bool:
        if not writes:
            self._draining_writes = False
            return False
        if not reads:
            return True
        if self._draining_writes:
            if len(writes) <= self.write_drain_threshold // 2:
                self._draining_writes = False
        elif len(writes) >= self.write_drain_threshold:
            self._draining_writes = True
        return self._draining_writes

    def select(
        self,
        now: int,
        reads: Deque[MemoryRequest],
        writes: Deque[MemoryRequest],
        estimate: Callable[[MemoryRequest], int],
        row_hit: Callable[[MemoryRequest], bool],
    ) -> Optional[Tuple[MemoryRequest, int, bool]]:
        """Pick the best issueable request.

        Args:
            now: Current time.
            reads, writes: Per-kind FIFO queues (oldest first).
            estimate: Earliest time the request's commands could begin.
            row_hit: Whether the request would hit the open row (or the
                AMB cache, which the FB-DIMM controller treats as the
                ultimate "hit").

        Returns:
            (request, earliest_start, is_write_queue) for the winner, or
            None when both queues are empty.
        """
        if not reads and not writes:
            return None
        prefer_writes = self._writes_win(reads, writes)

        best: Optional[MemoryRequest] = None
        best_key: Optional[Tuple[int, int, int, int, int]] = None
        best_est = 0
        best_is_write = False
        for queue, is_write in ((reads, False), (writes, True)):
            preferred = is_write == prefer_writes
            for position, req in enumerate(queue):
                if position >= SCAN_WINDOW:
                    break
                est = max(estimate(req), now, req.schedulable_at)
                # Issueable-now requests always beat future-ready ones (a
                # request whose bank or fill frees later must not block the
                # channel); among the issueable, the preferred kind wins,
                # then hits beat misses, then oldest-first.  A ready request
                # of the non-preferred kind still issues when the preferred
                # queue has nothing ready — this is what lets FB-DIMM reads
                # flow on the northbound link while a write drain streams
                # down the independent southbound link.
                key = (
                    0 if est <= now else 1,
                    0 if preferred else 1,
                    0 if row_hit(req) else 1,
                    est,
                    position,
                )
                if best_key is None or key < best_key:
                    best, best_key, best_est, best_is_write = req, key, est, is_write
        assert best is not None
        return best, best_est, best_is_write
