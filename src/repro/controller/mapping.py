"""Address interleaving: laying cachelines onto channels, DIMMs and banks.

Three schemes from Section 3.2 (Figure 2):

* **cacheline**: consecutive cachelines round-robin across channels, then
  DIMMs, then banks — maximum concurrency, no DRAM-level spatial locality.
* **multi_cacheline**: groups of K consecutive cachelines (a *region*) map to
  the same DRAM page of the same bank; consecutive regions round-robin like
  cachelines.  This is the layout AMB prefetching requires: one ACT serves
  all K lines of a region.
* **page**: the region is a whole DRAM page (open-page mode).

Addresses are cacheline indices in a flat physical space; the mapper is pure
arithmetic and fully invertible (tested by a hypothesis round-trip property).
"""

from __future__ import annotations

from typing import Any

from repro.config import MemoryConfig


class MappedAddress:
    """Where one cacheline lives in the memory system.

    A plain ``__slots__`` class: one is built per memory request on the
    submit hot path, where slot assignment beats a frozen dataclass's
    per-field ``object.__setattr__``.  Instances are value-equal and
    hashable like the old frozen dataclass, but not immutable — nothing
    in the simulator mutates a mapped address after construction.

    Attributes:
        channel: Physical channel index.
        dimm: DIMM index on that channel.
        rank: Rank on that DIMM (Table 1 uses one rank per DIMM).
        bank: Logic bank index within the rank.
        row: DRAM row (page) within the bank.
        line_in_page: Cacheline slot within the row.
        region: Global region id — lines that share a region share a row and
            are fetched together by AMB prefetching.
        line_in_region: Position of this line within its region.
    """

    __slots__ = (
        "channel", "dimm", "rank", "bank", "row",
        "line_in_page", "region", "line_in_region",
    )

    def __init__(
        self,
        channel: int,
        dimm: int,
        rank: int,
        bank: int,
        row: int,
        line_in_page: int,
        region: int,
        line_in_region: int,
    ) -> None:
        self.channel = channel
        self.dimm = dimm
        self.rank = rank
        self.bank = bank
        self.row = row
        self.line_in_page = line_in_page
        self.region = region
        self.line_in_region = line_in_region

    def _key(self) -> "tuple[int, ...]":
        return (
            self.channel, self.dimm, self.rank, self.bank, self.row,
            self.line_in_page, self.region, self.line_in_region,
        )

    def __repr__(self) -> str:
        return (
            "MappedAddress(channel={}, dimm={}, rank={}, bank={}, row={},"
            " line_in_page={}, region={}, line_in_region={})".format(*self._key())
        )

    def __eq__(self, other: Any) -> Any:
        if not isinstance(other, MappedAddress):
            return NotImplemented
        return self._key() == other._key()

    def __hash__(self) -> int:
        return hash(self._key())


class AddressMapper:
    """Maps flat cacheline addresses to physical DRAM coordinates."""

    def __init__(self, config: MemoryConfig) -> None:
        self.config = config
        self.region_lines = config.interleave_lines
        self.channels = config.physical_channels
        self.dimms = config.dimms_per_channel
        self.ranks = config.ranks_per_dimm
        self.banks = config.banks_per_dimm
        self.lines_per_page = config.lines_per_page
        if self.lines_per_page % self.region_lines:
            raise ValueError(
                f"page of {self.lines_per_page} lines not divisible by "
                f"region of {self.region_lines} lines"
            )
        self.regions_per_page = self.lines_per_page // self.region_lines
        self.rows = config.rows_per_bank

    def map(self, line_addr: int) -> MappedAddress:
        """Map a cacheline address (line index) to DRAM coordinates."""
        if line_addr < 0:
            raise ValueError(f"line address must be non-negative: {line_addr}")
        region_lines = self.region_lines
        region, line_in_region = divmod(line_addr, region_lines)
        rest, channel = divmod(region, self.channels)
        rest, dimm = divmod(rest, self.dimms)
        rest, rank = divmod(rest, self.ranks)
        local_region, bank = divmod(rest, self.banks)
        row_seq, region_in_page = divmod(local_region, self.regions_per_page)
        return MappedAddress(
            channel,
            dimm,
            rank,
            bank,
            row_seq % self.rows,
            region_in_page * region_lines + line_in_region,
            region,
            line_in_region,
        )

    def region_of(self, line_addr: int) -> int:
        """Region id of a cacheline (fast path used by the tag store)."""
        return line_addr // self.region_lines

    def region_lines_of(self, region: int) -> "list[int]":
        """All cacheline addresses belonging to ``region``, in order."""
        base = region * self.region_lines
        return list(range(base, base + self.region_lines))

    def unmap(self, mapped: MappedAddress) -> int:
        """Inverse of :meth:`map` (modulo row aliasing beyond capacity)."""
        local_region = (
            mapped.row * self.regions_per_page
            + mapped.line_in_page // self.region_lines
        )
        rest = local_region * self.banks + mapped.bank
        rest = rest * self.ranks + mapped.rank
        rest = rest * self.dimms + mapped.dimm
        region = rest * self.channels + mapped.channel
        return region * self.region_lines + mapped.line_in_region
