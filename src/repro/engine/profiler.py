"""Event-loop profiler: events fired and wall-clock time per callback site.

Attach before running::

    sim.profiler = EventLoopProfiler()
    sim.run()
    print(sim.profiler.report())

Attribution is by the callback's qualified name — bound methods show as
``ChannelControllerBase._kick``, closures as
``MemoryController._admit.<locals>.<lambda>`` — which is exactly the
granularity needed to rank hot paths before optimising one.

The profiler intentionally reads the host clock: wall time is the quantity
being measured, not model time, so the run's *simulated* behaviour is
bit-identical with or without it (the profiled loop fires the same events
in the same order).
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, Dict, List


@dataclass
class SiteProfile:
    """Accumulated cost of one callback site."""

    site: str
    events: int = 0
    wall_s: float = 0.0


def callback_site(callback: Callable[[], None]) -> str:
    """Stable attribution key for a scheduled callback."""
    func: object = callback
    # Unwrap bound methods so the class qualname is the site.
    wrapped = getattr(func, "__func__", None)
    if wrapped is not None:
        func = wrapped
    qualname = getattr(func, "__qualname__", None)
    if qualname is None:
        return repr(type(callback).__name__)
    module = getattr(func, "__module__", "")
    short_module = module.rsplit(".", 1)[-1] if module else ""
    return f"{short_module}.{qualname}" if short_module else str(qualname)


class EventLoopProfiler:
    """Per-site event counts and wall-clock attribution for a run."""

    def __init__(self) -> None:
        self.sites: Dict[str, SiteProfile] = {}
        self.total_events = 0
        self.total_wall_s = 0.0

    def time_call(self, callback: Callable[[], None]) -> None:
        """Invoke ``callback``, charging its cost to its site."""
        start = time.perf_counter()  # det: allow — profiling wall time, not model time
        callback()
        elapsed = time.perf_counter() - start  # det: allow — profiling wall time
        site = callback_site(callback)
        entry = self.sites.get(site)
        if entry is None:
            entry = SiteProfile(site=site)
            self.sites[site] = entry
        entry.events += 1
        entry.wall_s += elapsed
        self.total_events += 1
        self.total_wall_s += elapsed

    def ranked(self) -> List[SiteProfile]:
        """Sites ordered hottest-first (wall time, then events, then name)."""
        return sorted(
            self.sites.values(),
            key=lambda s: (-s.wall_s, -s.events, s.site),
        )

    def to_records(self) -> List[Dict[str, object]]:
        """JSONL-ready records, hottest-first."""
        return [
            {"site": s.site, "events": s.events, "wall_s": s.wall_s}
            for s in self.ranked()
        ]

    def report(self, limit: int = 15) -> str:
        """Fixed-width ranking of the hottest callback sites."""
        lines = [
            f"event-loop profile: {self.total_events} events, "
            f"{self.total_wall_s * 1000:.1f} ms wall",
            f"{'site':<60} {'events':>9} {'wall ms':>9} {'%':>6}",
        ]
        for entry in self.ranked()[:limit]:
            share = (
                entry.wall_s / self.total_wall_s * 100 if self.total_wall_s else 0.0
            )
            lines.append(
                f"{entry.site:<60} {entry.events:>9} "
                f"{entry.wall_s * 1000:>9.1f} {share:>5.1f}%"
            )
        return "\n".join(lines)
