"""Event-loop profiler: hierarchical wall-clock attribution by callback site.

Attach before running::

    sim.profiler = EventLoopProfiler()
    sim.run()
    print(sim.profiler.tree_report())

Attribution happens at three levels:

* **site** — the callback's qualified name (bound methods show as
  ``ChannelControllerBase._kick``, closures as
  ``MemoryController._admit.<locals>.<lambda>``), exactly the granularity
  needed to rank hot paths before optimising one.
* **subsystem** — sites are bucketed by the package they live in
  (``engine`` / ``dram`` / ``channel`` / ``controller`` / ``cpu`` /
  ``telemetry`` / ``workload`` / ``faults``), with *self* time (the
  bucket's own callbacks) distinguished from *cumulative* time (self plus
  every callback transitively scheduled by the bucket).
* **scheduling stack** — the event loop is flat, but causality is not:
  each event remembers the chain of sites that scheduled it
  (:attr:`~repro.engine.event_queue.Event.origin`), so the profiler
  accumulates flame-graph-style stacks ("``_kick`` scheduled
  ``Bank.activate`` which scheduled …").  :meth:`to_collapsed` renders
  them in the standard collapsed-stack format accepted by flamegraph.pl
  and speedscope.

The profiler intentionally reads the host clock: wall time is the quantity
being measured, not model time, so the run's *simulated* behaviour is
bit-identical with or without it (the profiled loop fires the same events
in the same order).
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, Dict, List, Tuple

#: Scheduling stacks deeper than this keep only the most recent frames;
#: direct self-scheduling (a site re-arming itself) is collapsed instead
#: of growing the stack, so steady-state loops stay one frame tall.
MAX_STACK_DEPTH = 12

#: Second component of a ``repro.*`` module path -> subsystem bucket.
_SUBSYSTEM_BUCKETS = {
    "engine": "engine",
    "dram": "dram",
    "channel": "channel",
    "controller": "controller",
    "cpu": "cpu",
    "workloads": "workload",
    "faults": "faults",
    "telemetry": "telemetry",
    "stats": "telemetry",
}


def subsystem_of(module: str) -> str:
    """Map a module path to its attribution bucket (``other`` if unknown)."""
    parts = module.split(".")
    if len(parts) >= 2 and parts[0] == "repro":
        return _SUBSYSTEM_BUCKETS.get(parts[1], "other")
    return "other"


@dataclass
class SiteProfile:
    """Accumulated cost of one callback site."""

    site: str
    subsystem: str = "other"
    events: int = 0
    wall_s: float = 0.0


@dataclass
class StackProfile:
    """Accumulated cost of one scheduling stack (leaf site last)."""

    stack: Tuple[str, ...]
    subsystem: str = "other"  # bucket of the leaf site
    events: int = 0
    wall_s: float = 0.0


@dataclass
class SubsystemProfile:
    """Self vs. cumulative cost of one subsystem bucket.

    ``self_s`` is wall time spent in the bucket's own callbacks;
    ``cum_s`` adds every callback transitively *scheduled by* the bucket
    (flame-graph semantics over the scheduling stacks, counted once per
    stack however often the bucket appears in it).
    """

    subsystem: str
    events: int = 0
    self_s: float = 0.0
    cum_s: float = 0.0


def callback_site(callback: Callable[[], None]) -> str:
    """Stable attribution key for a scheduled callback."""
    return callback_origin(callback)[0]


def callback_origin(callback: Callable[[], None]) -> Tuple[str, str]:
    """(site, subsystem bucket) attribution for a scheduled callback."""
    func: object = callback
    # Unwrap bound methods so the class qualname is the site.
    wrapped = getattr(func, "__func__", None)
    if wrapped is not None:
        func = wrapped
    qualname = getattr(func, "__qualname__", None)
    if qualname is None:
        return repr(type(callback).__name__), "other"
    module = getattr(func, "__module__", "") or ""
    short_module = module.rsplit(".", 1)[-1] if module else ""
    site = f"{short_module}.{qualname}" if short_module else str(qualname)
    return site, subsystem_of(module)


class EventLoopProfiler:
    """Per-site, per-subsystem and per-stack wall-clock attribution."""

    def __init__(self) -> None:
        self.sites: Dict[str, SiteProfile] = {}
        self.stacks: Dict[Tuple[str, ...], StackProfile] = {}
        self.total_events = 0
        self.total_wall_s = 0.0
        #: Scheduling stack of the callback currently executing (its own
        #: site included); () outside the event loop.  Events scheduled
        #: while a callback runs inherit this as their origin.
        self._active_stack: Tuple[str, ...] = ()

    # -- event-loop hooks ----------------------------------------------

    def origin_stack(self) -> Tuple[str, ...]:
        """Ancestry recorded on events scheduled right now."""
        return self._active_stack

    def time_call(
        self, callback: Callable[[], None], origin: Tuple[str, ...] = ()
    ) -> None:
        """Invoke ``callback``, charging its cost to its site and stack.

        ``origin`` is the scheduling ancestry captured when the event was
        pushed (:meth:`origin_stack` at schedule time).
        """
        site, subsystem = callback_origin(callback)
        # Collapse scheduling cycles (A -> B -> A ...) back to the first
        # occurrence, so steady-state ping-pong chains converge to one
        # stack per distinct causal path instead of growing forever.
        stack = (
            origin[: origin.index(site) + 1]
            if site in origin
            else (origin + (site,))[-MAX_STACK_DEPTH:]
        )
        previous = self._active_stack
        self._active_stack = stack
        start = time.perf_counter()  # det: allow — profiling wall time, not model time
        try:
            callback()
        finally:
            elapsed = time.perf_counter() - start  # det: allow — profiling wall time
            self._active_stack = previous
        entry = self.sites.get(site)
        if entry is None:
            entry = SiteProfile(site=site, subsystem=subsystem)
            self.sites[site] = entry
        entry.events += 1
        entry.wall_s += elapsed
        frame = self.stacks.get(stack)
        if frame is None:
            frame = StackProfile(stack=stack, subsystem=subsystem)
            self.stacks[stack] = frame
        frame.events += 1
        frame.wall_s += elapsed
        self.total_events += 1
        self.total_wall_s += elapsed

    # -- aggregation ----------------------------------------------------

    def ranked(self) -> List[SiteProfile]:
        """Sites ordered hottest-first (wall time, then events, then name)."""
        return sorted(
            self.sites.values(),
            key=lambda s: (-s.wall_s, -s.events, s.site),
        )

    def ranked_stacks(self) -> List[StackProfile]:
        """Scheduling stacks ordered hottest-first."""
        return sorted(
            self.stacks.values(),
            key=lambda s: (-s.wall_s, -s.events, s.stack),
        )

    def subsystems(self) -> List[SubsystemProfile]:
        """Per-bucket self/cumulative attribution, hottest-cum first."""
        buckets: Dict[str, SubsystemProfile] = {}

        def bucket(name: str) -> SubsystemProfile:
            entry = buckets.get(name)
            if entry is None:
                entry = SubsystemProfile(subsystem=name)
                buckets[name] = entry
            return entry

        site_buckets = {s.site: s.subsystem for s in self.sites.values()}
        for frame in self.stacks.values():
            leaf = bucket(frame.subsystem)
            leaf.events += frame.events
            leaf.self_s += frame.wall_s
            seen = {site_buckets.get(site, "other") for site in frame.stack}
            for name in seen:
                bucket(name).cum_s += frame.wall_s
        return sorted(
            buckets.values(),
            key=lambda b: (-b.cum_s, -b.self_s, b.subsystem),
        )

    # -- exports ---------------------------------------------------------

    def to_records(self) -> List[Dict[str, object]]:
        """JSONL-ready per-site records, hottest-first."""
        return [
            {
                "site": s.site,
                "subsystem": s.subsystem,
                "events": s.events,
                "wall_s": s.wall_s,
            }
            for s in self.ranked()
        ]

    def stack_records(self) -> List[Dict[str, object]]:
        """JSONL-ready per-stack records, hottest-first."""
        return [
            {
                "stack": list(s.stack),
                "subsystem": s.subsystem,
                "events": s.events,
                "wall_s": s.wall_s,
            }
            for s in self.ranked_stacks()
        ]

    def to_collapsed(self) -> List[str]:
        """Collapsed-stack flame lines: ``bucket;site;... <wall microseconds>``.

        One line per scheduling stack, rooted at the leaf's subsystem
        bucket, weighted by integer microseconds of wall time (stacks that
        round to 0 us are dropped).  Feed to flamegraph.pl / speedscope.
        """
        lines = []
        for frame in self.ranked_stacks():
            value = round(frame.wall_s * 1e6)
            if value <= 0:
                continue
            frames = ";".join((frame.subsystem,) + frame.stack)
            lines.append(f"{frames} {value}")
        return lines

    # -- reports ----------------------------------------------------------

    def report(self, limit: int = 15) -> str:
        """Fixed-width ranking of the hottest callback sites."""
        lines = [
            f"event-loop profile: {self.total_events} events, "
            f"{self.total_wall_s * 1000:.1f} ms wall",
            f"{'site':<60} {'events':>9} {'wall ms':>9} {'%':>6}",
        ]
        for entry in self.ranked()[:limit]:
            share = (
                entry.wall_s / self.total_wall_s * 100 if self.total_wall_s else 0.0
            )
            lines.append(
                f"{entry.site:<60} {entry.events:>9} "
                f"{entry.wall_s * 1000:>9.1f} {share:>5.1f}%"
            )
        return "\n".join(lines)

    def tree_report(self, limit: int = 15) -> str:
        """Subsystem self/cumulative table plus the hottest sites and stacks."""
        total = self.total_wall_s
        lines = [
            f"event-loop profile: {self.total_events} events, "
            f"{total * 1000:.1f} ms wall",
            "",
            f"{'subsystem':<12} {'events':>9} {'self ms':>9} "
            f"{'cum ms':>9} {'self %':>7} {'cum %':>7}",
        ]
        for entry in self.subsystems():
            self_share = entry.self_s / total * 100 if total else 0.0
            cum_share = entry.cum_s / total * 100 if total else 0.0
            lines.append(
                f"{entry.subsystem:<12} {entry.events:>9} "
                f"{entry.self_s * 1000:>9.1f} {entry.cum_s * 1000:>9.1f} "
                f"{self_share:>6.1f}% {cum_share:>6.1f}%"
            )
        lines.append("")
        lines.append(self.report(limit))
        hottest = [s for s in self.ranked_stacks() if len(s.stack) > 1][:5]
        if hottest:
            lines.append("")
            lines.append("hottest scheduling chains:")
            for frame in hottest:
                chain = " -> ".join(frame.stack)
                lines.append(
                    f"  {chain}  ({frame.events} events, "
                    f"{frame.wall_s * 1000:.1f} ms)"
                )
        return "\n".join(lines)


def parse_collapsed(text: str) -> List[Tuple[List[str], int]]:
    """Parse (and thereby validate) collapsed-stack flame output.

    The inverse of :meth:`EventLoopProfiler.to_collapsed`: each line must
    be ``frame;frame;... <positive integer>``.  Raises ``ValueError`` on
    any malformed line, so a round-trip through this function is the
    flame-file schema check.
    """
    parsed: List[Tuple[List[str], int]] = []
    for number, line in enumerate(text.splitlines(), start=1):
        line = line.strip()
        if not line:
            continue
        stack_part, _, value_part = line.rpartition(" ")
        if not stack_part:
            raise ValueError(f"line {number}: missing stack or value: {line!r}")
        try:
            value = int(value_part)
        except ValueError as exc:
            raise ValueError(
                f"line {number}: value {value_part!r} is not an integer"
            ) from exc
        if value <= 0:
            raise ValueError(f"line {number}: non-positive weight {value}")
        frames = stack_part.split(";")
        if not all(frames):
            raise ValueError(f"line {number}: empty frame in {stack_part!r}")
        parsed.append((frames, value))
    return parsed
