"""The simulation loop: a clock plus an event queue.

Every model component holds a reference to one :class:`Simulator` and uses
:meth:`Simulator.schedule` / :meth:`Simulator.schedule_at` to arrange its own
future work.  The loop runs until a stop condition is raised by a component
(via :meth:`Simulator.stop`) or the queue drains.

Fire-and-forget call sites — completions, admissions, refresh ticks —
should prefer :meth:`Simulator.schedule_fire`, which skips the
:class:`Event` handle allocation entirely.  Only callers that may later
``cancel()`` (or that a profiler must attribute) need the handle-returning
:meth:`schedule` / :meth:`schedule_at`.
"""

from __future__ import annotations

import gc
import heapq
from typing import TYPE_CHECKING, Callable, Optional

from repro.engine.event_queue import Event, EventQueue

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.engine.profiler import EventLoopProfiler

#: Picoseconds per nanosecond; all model parameters are given in ns and
#: converted once at configuration time.
PS_PER_NS = 1000


def ns(value: float) -> int:
    """Convert nanoseconds to the integer-picosecond time base."""
    return round(value * PS_PER_NS)


class Simulator:
    """Owns the clock and the event queue.

    The simulator knows nothing about memory systems; it only orders
    callbacks in time.  Determinism: same schedule calls -> same run.
    """

    def __init__(self) -> None:
        self.queue = EventQueue()
        self.now = 0
        self._stopped = False
        self.events_fired = 0
        #: Optional event-loop profiler; when set, :meth:`run` times every
        #: callback by site.  Fires the exact same events either way.
        self.profiler: Optional["EventLoopProfiler"] = None

    def schedule(self, delay: int, callback: Callable[[], None]) -> Event:
        """Schedule ``callback`` after ``delay`` picoseconds from now."""
        if delay < 0:
            raise ValueError(f"delay must be non-negative, got {delay}")
        event = self.queue.push(self.now + delay, callback)
        if self.profiler is not None:
            event.origin = self.profiler.origin_stack()
        return event

    def schedule_at(self, time: int, callback: Callable[[], None]) -> Event:
        """Schedule ``callback`` at absolute time, clamped to not-before-now."""
        event = self.queue.push(max(time, self.now), callback)
        if self.profiler is not None:
            event.origin = self.profiler.origin_stack()
        return event

    def schedule_fire(self, time: int, callback: Callable[[], None]) -> None:
        """Schedule ``callback`` at absolute time with no cancellation handle.

        The fire-and-forget fast path: identical firing semantics to
        :meth:`schedule_at` (clamped to not-before-now, same tie-break
        ordering) but no :class:`Event` is allocated, so the caller cannot
        cancel it.  With a profiler attached it falls back to the
        handle-carrying path so origin attribution still works.
        """
        if self.profiler is not None:
            event = self.queue.push(max(time, self.now), callback)
            event.origin = self.profiler.origin_stack()
            return
        self.queue.push_fire(max(time, self.now), callback)

    def schedule_every(self, period: int, callback: Callable[[], object]) -> Event:
        """Schedule ``callback`` every ``period`` picoseconds from now.

        The series starts at ``now + period`` and re-arms itself after
        each firing; returning ``False`` from the callback ends the
        series.  The pending tick keeps the event queue non-empty, so a
        periodic series only suits runs that end via :meth:`stop` (or an
        explicit ``until`` bound), never by queue drain.  Ticks are
        ordinary events: they fire in timestamp order and, on timestamp
        ties, in scheduling order — deterministic like everything else.
        """
        if period <= 0:
            raise ValueError(f"period must be positive, got {period}")

        def fire() -> None:
            if callback() is not False:
                self.schedule(period, fire)

        return self.schedule(period, fire)

    def stop(self) -> None:
        """Request the run loop to exit after the current event."""
        self._stopped = True

    def run(self, until: Optional[int] = None, max_events: Optional[int] = None) -> None:
        """Fire events in order until stop(), queue drain, or a limit.

        Args:
            until: Absolute time bound; events after it stay queued.
            max_events: Safety valve for tests; raises RuntimeError when hit
                so an accidental livelock fails loudly instead of hanging.

        The drain is fused with the heap: the loop pops (time, seq, item)
        entries straight off ``queue._heap`` instead of going through a
        pop/peek method pair per event — the heap invariant already yields
        the exact firing order (timestamp, then scheduling order), and
        anything not yet popped when the loop exits simply stays queued.
        ``EventQueue._compact`` rebuilds that list in place, so the local
        reference stays valid even when a dispatched callback cancels
        enough events to trigger compaction.

        The generational GC is paused for the duration of the loop: the
        loop allocates heavily (heap entries, requests, closures) but the
        only reference cycles — Event._queue back-references — are broken
        explicitly on pop/cancel, so refcounting reclaims everything and
        collector passes are pure overhead.  The previous GC state is
        restored on exit, including on exceptions.
        """
        self._stopped = False
        profiler = self.profiler
        queue = self.queue
        heap = queue._heap
        heappop = heapq.heappop
        event_cls = Event
        fired = 0
        gc_was_enabled = gc.isenabled()
        if gc_was_enabled:
            gc.disable()
        try:
            while heap and not self._stopped:
                entry = heap[0]
                item = entry[2]
                if item.__class__ is event_cls:
                    if item.cancelled:  # type: ignore[attr-defined]
                        heappop(heap)
                        queue._cancelled -= 1
                        continue
                    if until is not None and entry[0] > until:
                        # Events beyond the bound stay queued; the clock
                        # still advances to the bound itself.
                        self.now = until
                        break
                    heappop(heap)
                    queue._live -= 1
                    item._queue = None  # type: ignore[attr-defined]
                    callback = item.callback  # type: ignore[attr-defined]
                    origin = item.origin  # type: ignore[attr-defined]
                else:
                    if until is not None and entry[0] > until:
                        self.now = until
                        break
                    heappop(heap)
                    queue._live -= 1
                    callback = item
                    origin = None
                self.now = entry[0]
                if profiler is not None:
                    profiler.time_call(callback, origin or ())
                else:
                    callback()
                self.events_fired += 1
                fired += 1
                if max_events is not None and fired >= max_events:
                    raise RuntimeError(
                        f"simulation exceeded {max_events} events"
                    )
        finally:
            if gc_was_enabled:
                gc.enable()
