"""The simulation loop: a clock plus an event queue.

Every model component holds a reference to one :class:`Simulator` and uses
:meth:`Simulator.schedule` / :meth:`Simulator.schedule_at` to arrange its own
future work.  The loop runs until a stop condition is raised by a component
(via :meth:`Simulator.stop`) or the queue drains.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Optional

from repro.engine.event_queue import Event, EventQueue

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.engine.profiler import EventLoopProfiler

#: Picoseconds per nanosecond; all model parameters are given in ns and
#: converted once at configuration time.
PS_PER_NS = 1000


def ns(value: float) -> int:
    """Convert nanoseconds to the integer-picosecond time base."""
    return round(value * PS_PER_NS)


class Simulator:
    """Owns the clock and the event queue.

    The simulator knows nothing about memory systems; it only orders
    callbacks in time.  Determinism: same schedule calls -> same run.
    """

    def __init__(self) -> None:
        self.queue = EventQueue()
        self.now = 0
        self._stopped = False
        self.events_fired = 0
        #: Optional event-loop profiler; when set, :meth:`run` times every
        #: callback by site.  Fires the exact same events either way.
        self.profiler: Optional["EventLoopProfiler"] = None

    def schedule(self, delay: int, callback: Callable[[], None]) -> Event:
        """Schedule ``callback`` after ``delay`` picoseconds from now."""
        if delay < 0:
            raise ValueError(f"delay must be non-negative, got {delay}")
        event = self.queue.push(self.now + delay, callback)
        if self.profiler is not None:
            event.origin = self.profiler.origin_stack()
        return event

    def schedule_at(self, time: int, callback: Callable[[], None]) -> Event:
        """Schedule ``callback`` at absolute time, clamped to not-before-now."""
        event = self.queue.push(max(time, self.now), callback)
        if self.profiler is not None:
            event.origin = self.profiler.origin_stack()
        return event

    def schedule_every(self, period: int, callback: Callable[[], object]) -> Event:
        """Schedule ``callback`` every ``period`` picoseconds from now.

        The series starts at ``now + period`` and re-arms itself after
        each firing; returning ``False`` from the callback ends the
        series.  The pending tick keeps the event queue non-empty, so a
        periodic series only suits runs that end via :meth:`stop` (or an
        explicit ``until`` bound), never by queue drain.  Ticks are
        ordinary events: they fire in timestamp order and, on timestamp
        ties, in scheduling order — deterministic like everything else.
        """
        if period <= 0:
            raise ValueError(f"period must be positive, got {period}")

        def fire() -> None:
            if callback() is not False:
                self.schedule(period, fire)

        return self.schedule(period, fire)

    def stop(self) -> None:
        """Request the run loop to exit after the current event."""
        self._stopped = True

    def run(self, until: Optional[int] = None, max_events: Optional[int] = None) -> None:
        """Fire events in order until stop(), queue drain, or a limit.

        Args:
            until: Absolute time bound; events after it stay queued.
            max_events: Safety valve for tests; raises RuntimeError when hit
                so an accidental livelock fails loudly instead of hanging.
        """
        self._stopped = False
        profiler = self.profiler
        fired = 0
        while not self._stopped:
            next_time = self.queue.peek_time()
            if next_time is None:
                break
            if until is not None and next_time > until:
                self.now = until
                break
            event = self.queue.pop()
            assert event is not None
            self.now = event.time
            if profiler is not None:
                profiler.time_call(event.callback, event.origin or ())
            else:
                event.callback()
            self.events_fired += 1
            fired += 1
            if max_events is not None and fired >= max_events:
                raise RuntimeError(f"simulation exceeded {max_events} events")
