"""Discrete-event simulation kernel.

The whole simulator runs on a single :class:`~repro.engine.simulator.Simulator`
instance whose clock advances in integer picoseconds.  Components never poll;
they schedule callbacks for the instant at which something can change.
"""

from repro.engine.event_queue import Event, EventQueue
from repro.engine.simulator import Simulator

__all__ = ["Event", "EventQueue", "Simulator"]
