"""A deterministic priority event queue keyed on (time, sequence number).

Events that are scheduled for the same picosecond fire in the order they were
scheduled, which keeps runs bit-for-bit reproducible regardless of heap
tie-breaking.

Hot-path layout: the heap holds raw ``(time, seq, item)`` tuples, so every
sift comparison is a C-level tuple compare — ``seq`` is unique, so the item
itself is never compared.  The item is either

* an :class:`Event` (``__slots__``-carrying handle) when the caller needs
  cancellation or profiler origin tracking — :meth:`push`; or
* the bare callback when no handle is needed — :meth:`push_fire`, the
  fire-and-forget fast path most of the simulator uses.  It skips the
  handle allocation entirely: one tuple per scheduled callback.

Cancellation is O(1): a cancelled event is flagged and skipped when it
surfaces, and the queue keeps a live-event counter so ``len()`` never scans
the heap.  When cancelled events come to dominate the heap it is compacted
in place, so a workload that cancels heavily (e.g. the channel controllers'
wake events) cannot grow the heap without bound.

:meth:`EventQueue.pop_batch` drains every live entry sharing the earliest
timestamp in a single heap pass — the batched same-tick dispatch the
simulator's run loop uses instead of a peek/pop pair per event.  The batch
holds the raw heap entries, so a run loop that stops mid-batch can
:meth:`requeue` the unfired remainder with (time, seq) intact.
"""

from __future__ import annotations

import heapq
from typing import Callable, List, Optional, Tuple

#: Compaction never triggers below this heap size; the rebuild is O(n) and
#: pointless for small heaps.
_COMPACT_MIN_HEAP = 64


class Event:
    """A scheduled callback with a cancellation handle.

    Attributes:
        time: Absolute firing time in picoseconds.
        seq: Monotonic tie-breaker assigned by the queue.
        callback: Zero-argument callable invoked when the event fires.
        cancelled: Cancelled events stay in the heap but are skipped.
        origin: Scheduling ancestry (chain of profiler callback sites)
            recorded only while an
            :class:`~repro.engine.profiler.EventLoopProfiler` is attached;
            None otherwise, costing nothing on unprofiled runs.
    """

    __slots__ = ("time", "seq", "callback", "cancelled", "origin", "_queue")

    def __init__(
        self,
        time: int,
        seq: int,
        callback: Callable[[], None],
        queue: "Optional[EventQueue]" = None,
    ) -> None:
        self.time = time
        self.seq = seq
        self.callback = callback
        self.cancelled = False
        self.origin: Optional[Tuple[str, ...]] = None
        #: Back-reference so cancel() can keep the queue's live counter
        #: exact; detached (None) once the event has been popped.
        self._queue = queue

    def __repr__(self) -> str:
        state = " cancelled" if self.cancelled else ""
        return f"Event(time={self.time}, seq={self.seq}{state})"

    def cancel(self) -> None:
        """Mark the event so the queue drops it instead of firing it."""
        if self.cancelled:
            return
        self.cancelled = True
        if self._queue is not None:
            self._queue._note_cancelled()
            self._queue = None


#: One heap entry: (time, seq, item) where item is an Event or a bare
#: callback.  ``seq`` is unique per queue, so tuple comparison never
#: reaches the item.
_Entry = Tuple[int, int, object]


class EventQueue:
    """Min-heap of scheduled callbacks ordered by (time, insertion order)."""

    def __init__(self) -> None:
        self._heap: List[_Entry] = []
        self._seq = 0
        self._live = 0  # entries neither fired nor cancelled
        self._cancelled = 0  # cancelled events still occupying the heap

    def __len__(self) -> int:
        """Number of live (non-cancelled, not yet fired) entries; O(1)."""
        return self._live

    @property
    def heap_size(self) -> int:
        """Total heap entries including cancelled ones (introspection)."""
        return len(self._heap)

    def push(self, time: int, callback: Callable[[], None]) -> Event:
        """Schedule ``callback`` at absolute ``time``; returns its handle."""
        if time < 0:
            raise ValueError(f"event time must be non-negative, got {time}")
        seq = self._seq
        self._seq = seq + 1
        event = Event(time, seq, callback, self)
        heapq.heappush(self._heap, (time, seq, event))
        self._live += 1
        return event

    def push_fire(self, time: int, callback: Callable[[], None]) -> None:
        """Schedule ``callback`` with no handle (cannot be cancelled).

        The fire-and-forget fast path: the callback itself rides in the
        heap entry, skipping the :class:`Event` allocation.  Interleaves
        deterministically with :meth:`push` — both draw from the same
        sequence counter.
        """
        if time < 0:
            raise ValueError(f"event time must be non-negative, got {time}")
        seq = self._seq
        self._seq = seq + 1
        heapq.heappush(self._heap, (time, seq, callback))
        self._live += 1

    def pop(self) -> Optional[Event]:
        """Remove and return the earliest live event, or None when empty.

        Handle-free entries (``push_fire``) are wrapped in a detached
        :class:`Event` so callers see a uniform result type.
        """
        heap = self._heap
        while heap:
            time, seq, item = heapq.heappop(heap)
            if item.__class__ is Event:
                if item.cancelled:  # type: ignore[union-attr]
                    self._cancelled -= 1
                    continue
                item._queue = None  # type: ignore[union-attr]
                self._live -= 1
                return item  # type: ignore[return-value]
            self._live -= 1
            return Event(time, seq, item)  # type: ignore[arg-type]
        return None

    def pop_batch(
        self, out: List[_Entry], until: Optional[int] = None
    ) -> Optional[int]:
        """Drain every live entry at the earliest timestamp into ``out``.

        ``out`` is cleared first and refilled with raw heap entries in
        scheduling order; the shared timestamp is returned.  When the
        queue is empty — or the earliest live entry fires after ``until``
        — nothing is popped, ``out`` stays empty and None is returned
        (with ``until`` exceeded, the heap is left untouched so a later
        run can resume).

        A popped event may still be cancelled by an earlier event of the
        same batch; the dispatch loop re-checks ``cancelled`` before
        firing, exactly as the heap skip would have.
        """
        del out[:]
        heap = self._heap
        heappop = heapq.heappop
        while heap:
            head = heap[0][2]
            if head.__class__ is Event and head.cancelled:  # type: ignore[union-attr]
                heappop(heap)
                self._cancelled -= 1
                continue
            break
        if not heap:
            return None
        tick = heap[0][0]
        if until is not None and tick > until:
            return None
        append = out.append
        popped = 0
        while heap and heap[0][0] == tick:
            entry = heappop(heap)
            item = entry[2]
            if item.__class__ is Event:
                if item.cancelled:  # type: ignore[union-attr]
                    self._cancelled -= 1
                    continue
                item._queue = None  # type: ignore[union-attr]
            popped += 1
            append(entry)
        self._live -= popped
        return tick

    def requeue(self, entry: _Entry) -> None:
        """Put a popped-but-unfired batch entry back, (time, seq) intact.

        Used when a run loop stops mid-batch: the remaining batch members
        return to the heap so a later ``run()`` fires them unchanged.
        Cancelled events are dropped rather than requeued.
        """
        item = entry[2]
        if item.__class__ is Event:
            if item.cancelled:  # type: ignore[union-attr]
                return
            item._queue = self  # type: ignore[union-attr]
        heapq.heappush(self._heap, entry)
        self._live += 1

    def peek_time(self) -> Optional[int]:
        """Return the firing time of the earliest live entry, or None."""
        heap = self._heap
        while heap:
            head = heap[0][2]
            if head.__class__ is Event and head.cancelled:  # type: ignore[union-attr]
                heapq.heappop(heap)
                self._cancelled -= 1
                continue
            return heap[0][0]
        return None

    # ------------------------------------------------------------------

    def _note_cancelled(self) -> None:
        """Bookkeeping for Event.cancel(); compacts when garbage dominates."""
        self._live -= 1
        self._cancelled += 1
        if (
            len(self._heap) >= _COMPACT_MIN_HEAP
            and self._cancelled * 2 > len(self._heap)
        ):
            self._compact()

    def _compact(self) -> None:
        """Rebuild the heap without cancelled events (O(n), rare).

        In place: Simulator.run drains the heap through a local reference,
        and cancel() — hence compaction — can run from inside a dispatched
        callback, so the list object's identity must survive.
        """
        self._heap[:] = [
            entry for entry in self._heap
            if entry[2].__class__ is not Event
            or not entry[2].cancelled  # type: ignore[union-attr]
        ]
        heapq.heapify(self._heap)
        self._cancelled = 0
