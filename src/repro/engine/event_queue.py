"""A deterministic priority event queue keyed on (time, sequence number).

Events that are scheduled for the same picosecond fire in the order they were
scheduled, which keeps runs bit-for-bit reproducible regardless of heap
tie-breaking.

Cancellation is O(1): a cancelled event is flagged and skipped when it
surfaces, and the queue keeps a live-event counter so ``len()`` never scans
the heap.  When cancelled events come to dominate the heap it is compacted
in place, so a workload that cancels heavily (e.g. the channel controllers'
wake events) cannot grow the heap without bound.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Tuple

#: Compaction never triggers below this heap size; the rebuild is O(n) and
#: pointless for small heaps.
_COMPACT_MIN_HEAP = 64


@dataclass(order=True)
class Event:
    """A scheduled callback.

    Attributes:
        time: Absolute firing time in picoseconds.
        seq: Monotonic tie-breaker assigned by the queue.
        callback: Zero-argument callable invoked when the event fires.
        cancelled: Cancelled events stay in the heap but are skipped.
    """

    time: int
    seq: int
    callback: Callable[[], None] = field(compare=False)
    cancelled: bool = field(default=False, compare=False)
    #: Scheduling ancestry (chain of profiler callback sites) recorded only
    #: while an :class:`~repro.engine.profiler.EventLoopProfiler` is
    #: attached; None otherwise, costing nothing on unprofiled runs.
    origin: Optional[Tuple[str, ...]] = field(
        default=None, compare=False, repr=False
    )
    #: Back-reference so cancel() can keep the queue's live counter exact;
    #: detached (None) once the event has been popped.
    _queue: Optional["EventQueue"] = field(
        default=None, compare=False, repr=False
    )

    def cancel(self) -> None:
        """Mark the event so the queue drops it instead of firing it."""
        if self.cancelled:
            return
        self.cancelled = True
        if self._queue is not None:
            self._queue._note_cancelled()
            self._queue = None


class EventQueue:
    """Min-heap of :class:`Event` ordered by (time, insertion order)."""

    def __init__(self) -> None:
        self._heap: List[Event] = []
        self._seq = 0
        self._live = 0  # events neither fired nor cancelled
        self._cancelled = 0  # cancelled events still occupying the heap

    def __len__(self) -> int:
        """Number of live (non-cancelled, not yet fired) events; O(1)."""
        return self._live

    @property
    def heap_size(self) -> int:
        """Total heap entries including cancelled ones (introspection)."""
        return len(self._heap)

    def push(self, time: int, callback: Callable[[], None]) -> Event:
        """Schedule ``callback`` at absolute picosecond ``time``."""
        if time < 0:
            raise ValueError(f"event time must be non-negative, got {time}")
        event = Event(time=time, seq=self._seq, callback=callback, _queue=self)
        self._seq += 1
        heapq.heappush(self._heap, event)
        self._live += 1
        return event

    def pop(self) -> Optional[Event]:
        """Remove and return the earliest live event, or None when empty."""
        while self._heap:
            event = heapq.heappop(self._heap)
            if event.cancelled:
                self._cancelled -= 1
                continue
            event._queue = None  # a later cancel() must not touch counters
            self._live -= 1
            return event
        return None

    def peek_time(self) -> Optional[int]:
        """Return the firing time of the earliest live event, or None."""
        while self._heap and self._heap[0].cancelled:
            heapq.heappop(self._heap)
            self._cancelled -= 1
        if not self._heap:
            return None
        return self._heap[0].time

    # ------------------------------------------------------------------

    def _note_cancelled(self) -> None:
        """Bookkeeping for Event.cancel(); compacts when garbage dominates."""
        self._live -= 1
        self._cancelled += 1
        if (
            len(self._heap) >= _COMPACT_MIN_HEAP
            and self._cancelled * 2 > len(self._heap)
        ):
            self._compact()

    def _compact(self) -> None:
        """Rebuild the heap without cancelled events (O(n), rare)."""
        self._heap = [event for event in self._heap if not event.cancelled]
        heapq.heapify(self._heap)
        self._cancelled = 0
