"""A deterministic priority event queue keyed on (time, sequence number).

Events that are scheduled for the same picosecond fire in the order they were
scheduled, which keeps runs bit-for-bit reproducible regardless of heap
tie-breaking.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Callable, Optional


@dataclass(order=True)
class Event:
    """A scheduled callback.

    Attributes:
        time: Absolute firing time in picoseconds.
        seq: Monotonic tie-breaker assigned by the queue.
        callback: Zero-argument callable invoked when the event fires.
        cancelled: Cancelled events stay in the heap but are skipped.
    """

    time: int
    seq: int
    callback: Callable[[], None] = field(compare=False)
    cancelled: bool = field(default=False, compare=False)

    def cancel(self) -> None:
        """Mark the event so the queue drops it instead of firing it."""
        self.cancelled = True


class EventQueue:
    """Min-heap of :class:`Event` ordered by (time, insertion order)."""

    def __init__(self) -> None:
        self._heap: list[Event] = []
        self._seq = 0

    def __len__(self) -> int:
        return sum(1 for event in self._heap if not event.cancelled)

    def push(self, time: int, callback: Callable[[], None]) -> Event:
        """Schedule ``callback`` at absolute picosecond ``time``."""
        if time < 0:
            raise ValueError(f"event time must be non-negative, got {time}")
        event = Event(time=time, seq=self._seq, callback=callback)
        self._seq += 1
        heapq.heappush(self._heap, event)
        return event

    def pop(self) -> Optional[Event]:
        """Remove and return the earliest live event, or None when empty."""
        while self._heap:
            event = heapq.heappop(self._heap)
            if not event.cancelled:
                return event
        return None

    def peek_time(self) -> Optional[int]:
        """Return the firing time of the earliest live event, or None."""
        while self._heap and self._heap[0].cancelled:
            heapq.heappop(self._heap)
        if not self._heap:
            return None
        return self._heap[0].time
