"""Phase-changing workloads.

Real programs move through phases with different memory behaviour — the
very observation behind SimPoint, which the paper uses to pick its
simulation windows.  :class:`PhasedTrace` concatenates per-phase synthetic
traces so phase transitions (and their effect on a warmed-up AMB cache)
can be studied directly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Sequence, Tuple

from repro.workloads.spec import ProgramProfile, SyntheticTrace
from repro.workloads.trace import TraceEvent


@dataclass(frozen=True)
class Phase:
    """One program phase: a behaviour profile for a span of instructions."""

    profile: ProgramProfile
    instructions: int

    def __post_init__(self) -> None:
        if self.instructions < 1:
            raise ValueError("phase must span at least one instruction")


class PhasedTrace:
    """Concatenation of per-phase traces, repeated cyclically.

    Each phase generates from its own profile; instruction indices continue
    monotonically across phase boundaries.  After the last phase the cycle
    restarts (programs loop), so the trace is infinite like the plain
    generators.
    """

    def __init__(
        self, phases: Sequence[Phase], seed: int = 1, base_line: int = 0,
        software_prefetch: bool = True,
    ) -> None:
        if not phases:
            raise ValueError("need at least one phase")
        self.phases: Tuple[Phase, ...] = tuple(phases)
        self.seed = seed
        self.base_line = base_line
        self.software_prefetch = software_prefetch

    def __iter__(self) -> Iterator[TraceEvent]:
        offset = 0
        cycle = 0
        while True:
            for index, phase in enumerate(self.phases):
                inner = SyntheticTrace(
                    phase.profile,
                    seed=self.seed + 31 * cycle + index,
                    base_line=self.base_line,
                    software_prefetch=self.software_prefetch,
                )
                emitted_to = offset
                for event in inner:
                    if event.inst >= phase.instructions:
                        break
                    emitted_to = offset + event.inst
                    yield TraceEvent(
                        inst=emitted_to,
                        kind=event.kind,
                        line_addr=event.line_addr,
                    )
                offset += phase.instructions
            cycle += 1


def alternating(
    streamy: ProgramProfile,
    pointer_heavy: ProgramProfile,
    phase_instructions: int = 20_000,
    seed: int = 1,
) -> PhasedTrace:
    """The canonical two-phase pattern: stream phase then irregular phase."""
    return PhasedTrace(
        [
            Phase(streamy, phase_instructions),
            Phase(pointer_heavy, phase_instructions),
        ],
        seed=seed,
    )


def phase_boundaries(phases: Sequence[Phase], cycles: int = 1) -> List[int]:
    """Instruction indices at which phase transitions occur."""
    boundaries: List[int] = []
    offset = 0
    for _ in range(cycles):
        for phase in phases:
            offset += phase.instructions
            boundaries.append(offset)
    return boundaries
