"""The multiprogrammed workload mixes of Table 3.

Workload names follow the paper: ``<cores>C-<index>``; each runs one
distinct application per core.  ``SINGLE_CORE`` lists the twelve 1-core
workloads used both directly and as the SMT-speedup reference points.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

WORKLOADS: Dict[str, Tuple[str, ...]] = {
    # 2-core
    "2C-1": ("wupwise", "swim"),
    "2C-2": ("mgrid", "applu"),
    "2C-3": ("vpr", "equake"),
    "2C-4": ("facerec", "lucas"),
    "2C-5": ("fma3d", "parser"),
    "2C-6": ("gap", "vortex"),
    # 4-core
    "4C-1": ("wupwise", "swim", "mgrid", "applu"),
    "4C-2": ("vpr", "equake", "facerec", "lucas"),
    "4C-3": ("fma3d", "parser", "gap", "vortex"),
    "4C-4": ("wupwise", "mgrid", "vpr", "facerec"),
    "4C-5": ("fma3d", "gap", "swim", "applu"),
    "4C-6": ("equake", "lucas", "parser", "vortex"),
    # 8-core
    "8C-1": (
        "wupwise", "swim", "mgrid", "applu", "vpr", "equake", "facerec", "lucas",
    ),
    "8C-2": (
        "wupwise", "swim", "mgrid", "applu", "fma3d", "parser", "gap", "vortex",
    ),
    "8C-3": (
        "vpr", "equake", "facerec", "lucas", "fma3d", "parser", "gap", "vortex",
    ),
}

SINGLE_CORE: Tuple[str, ...] = (
    "wupwise", "swim", "mgrid", "applu", "vpr", "equake",
    "facerec", "lucas", "fma3d", "parser", "gap", "vortex",
)


def workload_programs(name: str) -> List[str]:
    """Programs of a named workload; 1-core workloads use the program name."""
    if name in WORKLOADS:
        return list(WORKLOADS[name])
    if name in SINGLE_CORE:
        return [name]
    raise KeyError(f"unknown workload {name!r}")


def workloads_by_cores(num_cores: int) -> List[str]:
    """All workload names with the given core count."""
    if num_cores == 1:
        return list(SINGLE_CORE)
    return [
        name for name, programs in WORKLOADS.items() if len(programs) == num_cores
    ]
