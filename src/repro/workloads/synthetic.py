"""Parametric synthetic traces for memory-system validation.

Independent of the SPEC2000 profiles, these generators produce canonical
access patterns — pure streams, uniform random, strided, pointer-chase —
used to validate the memory substrate itself: does a stream saturate the
channel at its theoretical rate, does random traffic expose bank conflicts,
does a dependent chain see pure latency?  (Nasr's FBsim study [16], which
the paper cites, validated FB-DIMM with exactly this kind of workload.)

All generators yield :class:`~repro.workloads.trace.TraceEvent` in strictly
increasing instruction order and are deterministic in their seed.

Generation is array-backed: each generator materialises events a chunk at
a time into a list and yields from it, so the per-event cost is one list
append plus the RNG draws instead of a full generator-frame resume per
event.  The RNG call sequence per event is identical to a naive one-at-a-
time loop (draws happen in event order inside the fill loop), so traces
are bit-for-bit unchanged for any (seed, spec).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Iterator, List

from repro.workloads.trace import TraceEvent, TraceKind

#: Events materialised per chunk.  Large enough to amortise loop setup,
#: small enough that ``record(trace, n)`` never holds a wastefully large
#: tail (a chunk is ~56 KB of event objects).
CHUNK_EVENTS = 1024


@dataclass(frozen=True)
class SyntheticSpec:
    """Common knobs for the synthetic generators.

    Attributes:
        gap_insts: Instructions between consecutive memory events — with
            the core's base IPC this sets the offered load.
        write_fraction: Share of events that are writes.
        footprint_lines: Address space the pattern walks.
        seed: Generator seed.
    """

    gap_insts: int = 50
    write_fraction: float = 0.0
    footprint_lines: int = 1 << 22
    seed: int = 1

    def __post_init__(self) -> None:
        if self.gap_insts < 1:
            raise ValueError("gap_insts must be >= 1")
        if not 0 <= self.write_fraction < 1:
            raise ValueError("write_fraction must be in [0, 1)")
        if self.footprint_lines < 1:
            raise ValueError("footprint must be >= 1 line")


def stream(spec: SyntheticSpec = SyntheticSpec(), base_line: int = 0) -> Iterator[TraceEvent]:
    """A single perfectly sequential stream — best case for AMB prefetching
    and for channel bandwidth."""
    rng_random = random.Random(spec.seed).random
    gap = spec.gap_insts
    write_fraction = spec.write_fraction
    footprint = spec.footprint_lines
    kind_read, kind_write = TraceKind.READ, TraceKind.WRITE
    make_event = TraceEvent
    inst = 0
    line = 0
    while True:
        chunk: List[TraceEvent] = []
        append = chunk.append
        for _ in range(CHUNK_EVENTS):
            inst += gap
            kind = kind_write if rng_random() < write_fraction else kind_read
            append(make_event(inst, kind, base_line + line % footprint))
            line += 1
        yield from chunk


def uniform_random(
    spec: SyntheticSpec = SyntheticSpec(), base_line: int = 0
) -> Iterator[TraceEvent]:
    """Uniformly random lines — worst case for any prefetcher, a stress
    test for bank-level parallelism."""
    rng = random.Random(spec.seed)
    rng_random = rng.random
    randrange = rng.randrange
    gap = spec.gap_insts
    write_fraction = spec.write_fraction
    footprint = spec.footprint_lines
    kind_read, kind_write = TraceKind.READ, TraceKind.WRITE
    make_event = TraceEvent
    inst = 0
    while True:
        chunk: List[TraceEvent] = []
        append = chunk.append
        for _ in range(CHUNK_EVENTS):
            inst += gap
            kind = kind_write if rng_random() < write_fraction else kind_read
            append(make_event(inst, kind, base_line + randrange(footprint)))
        yield from chunk


def strided(
    spec: SyntheticSpec = SyntheticSpec(),
    stride_lines: int = 16,
    base_line: int = 0,
) -> Iterator[TraceEvent]:
    """Fixed-stride walk.  With a stride larger than the prefetch region,
    every access misses the AMB cache but maps to rotating banks — good for
    measuring pure bank-conflict behaviour under the interleaving schemes.
    """
    if stride_lines < 1:
        raise ValueError("stride must be >= 1 line")
    rng_random = random.Random(spec.seed).random
    gap = spec.gap_insts
    write_fraction = spec.write_fraction
    footprint = spec.footprint_lines
    kind_read, kind_write = TraceKind.READ, TraceKind.WRITE
    make_event = TraceEvent
    inst = 0
    line = 0
    while True:
        chunk: List[TraceEvent] = []
        append = chunk.append
        for _ in range(CHUNK_EVENTS):
            inst += gap
            kind = kind_write if rng_random() < write_fraction else kind_read
            append(make_event(inst, kind, base_line + line % footprint))
            line += stride_lines
        yield from chunk


def pointer_chase(
    spec: SyntheticSpec = SyntheticSpec(), base_line: int = 0
) -> Iterator[TraceEvent]:
    """Serially dependent random walk: exactly one outstanding miss.

    Modelled by spacing accesses more than a ROB window apart so the core
    can never overlap them — the measured IPC then reflects the *un-hidden*
    memory latency, which is how idle-latency microbenchmarks work.
    """
    randrange = random.Random(spec.seed).randrange
    footprint = spec.footprint_lines
    kind_read = TraceKind.READ
    make_event = TraceEvent
    inst = 0
    gap = max(spec.gap_insts, 400)  # > ROB, forbids overlap at any IPC
    while True:
        chunk: List[TraceEvent] = []
        append = chunk.append
        for _ in range(CHUNK_EVENTS):
            inst += gap
            append(make_event(inst, kind_read, base_line + randrange(footprint)))
        yield from chunk


GENERATORS = {
    "stream": stream,
    "uniform_random": uniform_random,
    "strided": strided,
    "pointer_chase": pointer_chase,
}
