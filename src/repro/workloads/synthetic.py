"""Parametric synthetic traces for memory-system validation.

Independent of the SPEC2000 profiles, these generators produce canonical
access patterns — pure streams, uniform random, strided, pointer-chase —
used to validate the memory substrate itself: does a stream saturate the
channel at its theoretical rate, does random traffic expose bank conflicts,
does a dependent chain see pure latency?  (Nasr's FBsim study [16], which
the paper cites, validated FB-DIMM with exactly this kind of workload.)

All generators yield :class:`~repro.workloads.trace.TraceEvent` in strictly
increasing instruction order and are deterministic in their seed.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Iterator

from repro.workloads.trace import TraceEvent, TraceKind


@dataclass(frozen=True)
class SyntheticSpec:
    """Common knobs for the synthetic generators.

    Attributes:
        gap_insts: Instructions between consecutive memory events — with
            the core's base IPC this sets the offered load.
        write_fraction: Share of events that are writes.
        footprint_lines: Address space the pattern walks.
        seed: Generator seed.
    """

    gap_insts: int = 50
    write_fraction: float = 0.0
    footprint_lines: int = 1 << 22
    seed: int = 1

    def __post_init__(self) -> None:
        if self.gap_insts < 1:
            raise ValueError("gap_insts must be >= 1")
        if not 0 <= self.write_fraction < 1:
            raise ValueError("write_fraction must be in [0, 1)")
        if self.footprint_lines < 1:
            raise ValueError("footprint must be >= 1 line")


def stream(spec: SyntheticSpec = SyntheticSpec(), base_line: int = 0) -> Iterator[TraceEvent]:
    """A single perfectly sequential stream — best case for AMB prefetching
    and for channel bandwidth."""
    rng = random.Random(spec.seed)
    inst = 0
    line = 0
    while True:
        inst += spec.gap_insts
        kind = TraceKind.WRITE if rng.random() < spec.write_fraction else TraceKind.READ
        yield TraceEvent(inst, kind, base_line + line % spec.footprint_lines)
        line += 1


def uniform_random(
    spec: SyntheticSpec = SyntheticSpec(), base_line: int = 0
) -> Iterator[TraceEvent]:
    """Uniformly random lines — worst case for any prefetcher, a stress
    test for bank-level parallelism."""
    rng = random.Random(spec.seed)
    inst = 0
    while True:
        inst += spec.gap_insts
        kind = TraceKind.WRITE if rng.random() < spec.write_fraction else TraceKind.READ
        yield TraceEvent(inst, kind, base_line + rng.randrange(spec.footprint_lines))
        inst += 0


def strided(
    spec: SyntheticSpec = SyntheticSpec(),
    stride_lines: int = 16,
    base_line: int = 0,
) -> Iterator[TraceEvent]:
    """Fixed-stride walk.  With a stride larger than the prefetch region,
    every access misses the AMB cache but maps to rotating banks — good for
    measuring pure bank-conflict behaviour under the interleaving schemes.
    """
    if stride_lines < 1:
        raise ValueError("stride must be >= 1 line")
    rng = random.Random(spec.seed)
    inst = 0
    line = 0
    while True:
        inst += spec.gap_insts
        kind = TraceKind.WRITE if rng.random() < spec.write_fraction else TraceKind.READ
        yield TraceEvent(inst, kind, base_line + line % spec.footprint_lines)
        line += stride_lines


def pointer_chase(
    spec: SyntheticSpec = SyntheticSpec(), base_line: int = 0
) -> Iterator[TraceEvent]:
    """Serially dependent random walk: exactly one outstanding miss.

    Modelled by spacing accesses more than a ROB window apart so the core
    can never overlap them — the measured IPC then reflects the *un-hidden*
    memory latency, which is how idle-latency microbenchmarks work.
    """
    rng = random.Random(spec.seed)
    inst = 0
    gap = max(spec.gap_insts, 400)  # > ROB, forbids overlap at any IPC
    while True:
        inst += gap
        yield TraceEvent(
            inst, TraceKind.READ, base_line + rng.randrange(spec.footprint_lines)
        )


GENERATORS = {
    "stream": stream,
    "uniform_random": uniform_random,
    "strided": strided,
    "pointer_chase": pointer_chase,
}
