"""Trace event vocabulary plus record/replay helpers.

A trace is an iterator of :class:`TraceEvent` in strictly increasing
instruction order.  Synthetic generators (``repro.workloads.spec``) produce
them lazily; :func:`record` / :func:`replay` turn any prefix into a list
for deterministic regression tests and offline analysis.
"""

from __future__ import annotations

import enum
from typing import Any, Iterable, Iterator, List


class TraceKind(enum.Enum):
    """What the core does at a trace point."""

    READ = "read"  # demand L2 miss (blocks retirement via the ROB)
    WRITE = "write"  # L2 writeback / store (posted)
    PREFETCH = "prefetch"  # software cache-prefetch instruction


class TraceEvent:
    """One memory event at a given position in the instruction stream.

    A plain ``__slots__`` class (not a dataclass): generators construct
    one per event on the simulation hot path, and slot assignment is
    several times cheaper than a frozen dataclass's ``object.__setattr__``
    per field.  Value equality and hashing match the old dataclass.

    Attributes:
        inst: Index of the instruction triggering the event; generators
            guarantee strictly increasing values within one trace.
        kind: Demand read, write, or software prefetch.
        line_addr: Cacheline index in the flat physical space.
    """

    __slots__ = ("inst", "kind", "line_addr")

    def __init__(self, inst: int, kind: TraceKind, line_addr: int) -> None:
        self.inst = inst
        self.kind = kind
        self.line_addr = line_addr

    def __repr__(self) -> str:
        return (
            f"TraceEvent(inst={self.inst}, kind={self.kind},"
            f" line_addr={self.line_addr})"
        )

    def __eq__(self, other: Any) -> Any:
        if not isinstance(other, TraceEvent):
            return NotImplemented
        return (
            self.inst == other.inst
            and self.kind is other.kind
            and self.line_addr == other.line_addr
        )

    def __hash__(self) -> int:
        return hash((self.inst, self.kind, self.line_addr))


def record(trace: Iterable[TraceEvent], max_events: int) -> List[TraceEvent]:
    """Materialise the first ``max_events`` events of a trace."""
    out: List[TraceEvent] = []
    for event in trace:
        out.append(event)
        if len(out) >= max_events:
            break
    return out


def replay(events: List[TraceEvent]) -> Iterator[TraceEvent]:
    """Turn a recorded list back into a trace iterator."""
    return iter(events)


def validate(events: Iterable[TraceEvent]) -> None:
    """Raise ValueError unless instruction order is strictly increasing."""
    last = -1
    for event in events:
        if event.inst <= last:
            raise ValueError(
                f"trace order violated: inst {event.inst} after {last}"
            )
        last = event.inst
