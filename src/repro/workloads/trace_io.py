"""Trace persistence: JSON-lines save/load for recorded traces.

Lets a workload be generated once, inspected or edited offline, and
replayed deterministically — useful for regression pinning and for feeding
the simulator traces produced by external tools.

Format: one JSON object per line, ``{"i": inst, "k": kind, "a": line}``,
with a single header line carrying the format version and metadata.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, Iterable, Iterator, List, Optional, Union

from repro.workloads.trace import TraceEvent, TraceKind

FORMAT_VERSION = 1

_KIND_CODES = {TraceKind.READ: "r", TraceKind.WRITE: "w", TraceKind.PREFETCH: "p"}
_CODE_KINDS = {code: kind for kind, code in _KIND_CODES.items()}


def save_trace(
    path: Union[str, Path],
    events: Iterable[TraceEvent],
    metadata: Optional[Dict[str, object]] = None,
) -> int:
    """Write events to a JSONL file; returns the number written."""
    path = Path(path)
    count = 0
    with path.open("w", encoding="utf-8") as handle:
        header = {"version": FORMAT_VERSION, "meta": metadata or {}}
        handle.write(json.dumps(header) + "\n")
        for event in events:
            record = {
                "i": event.inst,
                "k": _KIND_CODES[event.kind],
                "a": event.line_addr,
            }
            handle.write(json.dumps(record) + "\n")
            count += 1
    return count


def load_trace_metadata(path: Union[str, Path]) -> Dict[str, object]:
    """Read only the header metadata of a saved trace."""
    with Path(path).open("r", encoding="utf-8") as handle:
        header = json.loads(handle.readline())
    if header.get("version") != FORMAT_VERSION:
        raise ValueError(
            f"unsupported trace format version {header.get('version')!r}"
        )
    return dict(header.get("meta", {}))


def load_trace(path: Union[str, Path]) -> Iterator[TraceEvent]:
    """Lazily yield events from a saved trace, validating order."""
    path = Path(path)
    with path.open("r", encoding="utf-8") as handle:
        header = json.loads(handle.readline())
        if header.get("version") != FORMAT_VERSION:
            raise ValueError(
                f"unsupported trace format version {header.get('version')!r}"
            )
        last_inst = 0
        for line_no, line in enumerate(handle, start=2):
            record = json.loads(line)
            kind = _CODE_KINDS.get(record.get("k"))
            if kind is None:
                raise ValueError(f"{path}:{line_no}: unknown kind {record.get('k')!r}")
            inst = int(record["i"])
            if inst <= last_inst:
                raise ValueError(
                    f"{path}:{line_no}: instruction order violated "
                    f"({inst} after {last_inst})"
                )
            last_inst = inst
            yield TraceEvent(inst=inst, kind=kind, line_addr=int(record["a"]))


def load_trace_list(path: Union[str, Path]) -> List[TraceEvent]:
    """Eagerly load a full saved trace."""
    return list(load_trace(path))
