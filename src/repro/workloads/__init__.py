"""Workloads: synthetic SPEC2000 memory-behaviour profiles and the paper's
multiprogrammed mixes (Table 3)."""

from repro.workloads.trace import TraceEvent, TraceKind
from repro.workloads.spec import PROGRAMS, ProgramProfile, make_trace
from repro.workloads.multiprog import WORKLOADS, workload_programs

__all__ = [
    "TraceEvent",
    "TraceKind",
    "PROGRAMS",
    "ProgramProfile",
    "make_trace",
    "WORKLOADS",
    "workload_programs",
]
