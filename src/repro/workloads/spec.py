"""Synthetic memory-behaviour profiles for the paper's twelve SPEC2000
programs.

Running the real binaries under a cycle-accurate core is out of scope (see
DESIGN.md); instead each program is summarised by the handful of parameters
that the memory system can actually observe:

* ``mpki`` — L2 demand misses per thousand instructions (traffic intensity);
* ``base_ipc`` — IPC when every access hits on-chip (compute intensity);
* ``streams`` × ``run_length`` — concurrent sequential access streams and
  how far each runs before jumping: *the* two knobs behind DRAM-level
  spatial locality (what AMB prefetching exploits) and bank conflicts
  (what it removes);
* ``write_fraction`` — share of memory events that are writebacks;
* ``sw_prefetch_coverage`` — how much of the streaming traffic the Alpha
  compiler's software prefetches cover (Section 5.4).

Values are set from published SPEC2000 characterisation ranges: the FP
streamers (swim, mgrid, applu, wupwise, lucas, facerec) are high-MPKI /
long-run; the integer codes (vpr, parser, gap, vortex) are low-MPKI /
short-run.  Absolute IPCs are not meant to match the paper — relative
behaviour across programs and configurations is what the reproduction
preserves.
"""

from __future__ import annotations

import heapq
import itertools
import random
from dataclasses import dataclass
from typing import Dict, Iterator, List, Tuple

from repro.workloads.trace import TraceEvent, TraceKind


@dataclass(frozen=True)
class ProgramProfile:
    """Memory-behaviour summary of one benchmark program."""

    name: str
    base_ipc: float
    mpki: float  # demand L2 misses per 1000 instructions
    write_fraction: float  # of all memory events
    streams: int  # concurrent sequential access streams
    run_length: int  # mean consecutive cachelines per stream run
    sw_prefetch_coverage: float  # of sequential demand reads
    sw_prefetch_distance: int = 600  # instructions of lead time
    footprint_lines: int = 1 << 22  # 256 MB at 64 B lines

    def __post_init__(self) -> None:
        if not 0 < self.base_ipc <= 8:
            raise ValueError(f"{self.name}: implausible base IPC {self.base_ipc}")
        if self.mpki <= 0:
            raise ValueError(f"{self.name}: mpki must be positive")
        if not 0 <= self.write_fraction < 1:
            raise ValueError(f"{self.name}: bad write fraction")
        if self.streams < 1 or self.run_length < 1:
            raise ValueError(f"{self.name}: need streams >= 1, run_length >= 1")
        if not 0 <= self.sw_prefetch_coverage <= 1:
            raise ValueError(f"{self.name}: bad prefetch coverage")

    @property
    def continue_probability(self) -> float:
        """Chance a stream advances sequentially instead of jumping."""
        return self.run_length / (self.run_length + 1.0)


#: The twelve memory-intensive SPEC2000 programs of Table 3 (art and mcf
#: are excluded by the paper itself).
PROGRAMS: Dict[str, ProgramProfile] = {
    p.name: p
    for p in [
        ProgramProfile("wupwise", 1.9, 9.0, 0.28, 4, 10, 0.70),
        ProgramProfile("swim", 1.0, 30.0, 0.42, 6, 20, 0.80),
        ProgramProfile("mgrid", 1.5, 15.0, 0.30, 4, 13, 0.75),
        ProgramProfile("applu", 1.3, 17.0, 0.33, 5, 11, 0.70),
        ProgramProfile("vpr", 1.2, 7.0, 0.22, 2, 3, 0.30),
        ProgramProfile("equake", 0.9, 19.0, 0.28, 3, 5, 0.55),
        ProgramProfile("facerec", 1.4, 12.0, 0.22, 3, 6, 0.60),
        ProgramProfile("lucas", 1.1, 14.0, 0.25, 4, 6, 0.65),
        ProgramProfile("fma3d", 1.0, 11.0, 0.30, 3, 4, 0.45),
        ProgramProfile("parser", 1.1, 6.0, 0.28, 2, 3, 0.25),
        ProgramProfile("gap", 1.3, 9.0, 0.26, 3, 5, 0.40),
        ProgramProfile("vortex", 1.4, 8.0, 0.33, 2, 3, 0.35),
    ]
}


class SyntheticTrace:
    """Deterministic, lazy L2-miss trace for one program instance.

    Yields :class:`TraceEvent` in strictly increasing instruction order.
    Software prefetches are emitted ``sw_prefetch_distance`` instructions
    ahead of the sequential demand reads they cover, using a small
    lookahead heap to keep emission ordered.
    """

    #: Writebacks lag demand reads by this many read events, modelling the
    #: time a dirty line survives in the L2 before eviction.
    WRITEBACK_LAG = 2000

    def __init__(
        self,
        profile: ProgramProfile,
        seed: int,
        base_line: int = 0,
        software_prefetch: bool = True,
    ) -> None:
        self.profile = profile
        self.seed = seed
        self.base_line = base_line
        self.software_prefetch = software_prefetch

    def __iter__(self) -> Iterator[TraceEvent]:
        # This generator feeds every core on every simulated tick, so the
        # loop runs with everything it touches bound to locals: RNG draw
        # methods, heap primitives, profile scalars, and the TraceKind
        # members.  The draw sequence is bit-for-bit identical to the
        # original nested-closure formulation (same RNG calls in the same
        # data-dependent order), which the conformance goldens pin.
        profile = self.profile
        rng = random.Random(f"{self.seed}:{profile.name}")
        # Same double-rounding as the original 1.0 / mean_gap expression —
        # a direct mpki / 1000.0 can differ in the last ulp and derail the
        # whole pinned draw sequence.
        mean_rate = 1.0 / (1000.0 / profile.mpki)
        footprint = profile.footprint_lines
        n_streams = profile.streams
        streams: List[int] = [rng.randrange(footprint) for _ in range(n_streams)]
        writeback_queue: List[int] = []
        heap: List[Tuple[int, int, TraceKind, int]] = []
        tie = itertools.count().__next__
        horizon = profile.sw_prefetch_distance + 2
        gen_inst = 0
        last_emitted = 0

        expovariate = rng.expovariate
        rng_random = rng.random
        randrange = rng.randrange
        heappush = heapq.heappush
        heappop = heapq.heappop
        write_fraction = profile.write_fraction
        continue_probability = profile.continue_probability
        coverage = profile.sw_prefetch_coverage
        pf_distance = profile.sw_prefetch_distance
        sw_prefetch = self.software_prefetch
        base_line = self.base_line
        lag_cap = self.WRITEBACK_LAG
        trim_at = 4 * lag_cap
        kind_read = TraceKind.READ
        kind_write = TraceKind.WRITE
        kind_prefetch = TraceKind.PREFETCH
        make_event = TraceEvent

        while True:
            while not heap or heap[0][0] > gen_inst - horizon:
                gap = round(expovariate(mean_rate))
                gen_inst += gap if gap > 1 else 1
                if writeback_queue and rng_random() < write_fraction:
                    lag = len(writeback_queue)
                    if lag > lag_cap:
                        lag = lag_cap
                    heappush(
                        heap,
                        (gen_inst, tie(), kind_write, writeback_queue.pop(-lag)),
                    )
                    continue
                stream = randrange(n_streams)
                sequential = rng_random() < continue_probability
                if sequential:
                    pos = (streams[stream] + 1) % footprint
                else:
                    pos = randrange(footprint)
                streams[stream] = pos
                line = base_line + pos
                heappush(heap, (gen_inst, tie(), kind_read, line))
                writeback_queue.append(line)
                if len(writeback_queue) > trim_at:
                    del writeback_queue[:lag_cap]
                if sw_prefetch and sequential and rng_random() < coverage:
                    pf_inst = gen_inst - pf_distance
                    if pf_inst < 1:
                        pf_inst = 1
                    heappush(heap, (pf_inst, tie(), kind_prefetch, line))
            inst, _, kind, line = heappop(heap)
            if inst <= last_emitted:
                inst = last_emitted + 1
            last_emitted = inst
            yield make_event(inst, kind, line)


def make_trace(
    program: str,
    seed: int,
    core_id: int = 0,
    software_prefetch: bool = True,
) -> SyntheticTrace:
    """Build the trace for ``program`` on a given core.

    Each core gets a disjoint 4 GB slice of the physical address space
    (``core_id << 26`` cachelines), as distinct processes would.
    """
    if program not in PROGRAMS:
        raise KeyError(
            f"unknown program {program!r}; available: {sorted(PROGRAMS)}"
        )
    return SyntheticTrace(
        PROGRAMS[program],
        seed=seed + core_id * 7919,
        base_line=core_id << 26,
        software_prefetch=software_prefetch,
    )
