"""Human-readable rendering of the prefetch lifecycle taxonomy.

``repro prefetch report`` (and tests) render one
:class:`~repro.stats.collector.MemSystemStats` snapshot as a small
table: the closed outcome taxonomy with its conservation identity, the
derived accuracy / coverage / pollution / timeliness metrics, and the
tag-store counter fold.  The renderer never recomputes outcomes — it
only formats what the tracker counted — so a report is exactly as
trustworthy as the invariant it prints.
"""

from __future__ import annotations

from typing import List

from repro.prefetch.lifecycle import conservation_delta
from repro.stats import metrics
from repro.stats.collector import MemSystemStats


def lifecycle_summary(stats: MemSystemStats) -> dict:
    """The lifecycle numbers as one flat dict (CLI --json, tests)."""
    return {
        "issued": stats.pf_issued,
        "used": stats.pf_used,
        "late_unused": stats.pf_late_unused,
        "evicted_unused": stats.pf_evicted_unused,
        "invalidated": stats.pf_invalidated,
        "resident_at_end": stats.pf_resident_at_end,
        "hits": stats.pf_hits,
        "accuracy": metrics.prefetch_accuracy(stats),
        "coverage": metrics.lifecycle_coverage(stats),
        "pollution": metrics.prefetch_pollution(stats),
        "timeliness": metrics.prefetch_timeliness(stats),
        "conservation_delta": conservation_delta(stats),
        "table_lookups": stats.pf_table_lookups,
        "table_hits": stats.pf_table_hits,
        "table_inserts": stats.pf_table_inserts,
        "table_evictions": stats.pf_table_evictions,
        "table_invalidations": stats.pf_table_invalidations,
    }


def lifecycle_report(stats: MemSystemStats, label: str = "") -> str:
    """Multi-line lifecycle report for one run's stats."""
    lines: List[str] = []
    title = f"prefetch lifecycle: {label}" if label else "prefetch lifecycle"
    lines.append(title)
    issued = stats.pf_issued
    if not issued:
        lines.append("  no prefetches issued (lifecycle tracking off, or "
                     "prefetching disabled)")
        return "\n".join(lines)

    rows = (
        ("used", stats.pf_used,
         "demand hit while resident in the prefetch cache"),
        ("late", stats.pf_late_unused,
         "demand arrived before the fill completed"),
        ("evicted unused", stats.pf_evicted_unused,
         "replaced (or superseded) without ever being hit"),
        ("invalidated", stats.pf_invalidated,
         "dropped by writes or parity faults"),
        ("resident at end", stats.pf_resident_at_end,
         "still cached when the run finished"),
    )
    lines.append(f"  issued: {issued}")
    for name, count, why in rows:
        lines.append(f"    {name:<16} {count:>9}  {count / issued:>6.1%}  {why}")

    delta = conservation_delta(stats)
    status = "holds" if delta == 0 else f"VIOLATED (delta {delta:+d})"
    lines.append(f"  conservation: issued == sum(outcomes) {status}")
    lines.append(
        f"  accuracy {metrics.prefetch_accuracy(stats):.1%}, "
        f"coverage {metrics.lifecycle_coverage(stats):.1%} "
        f"({stats.pf_hits} of {stats.total_reads} reads), "
        f"pollution {metrics.prefetch_pollution(stats):.1%}, "
        f"timeliness {metrics.prefetch_timeliness(stats):.1%}"
    )
    if stats.pf_table_lookups:
        lines.append(
            f"  tag store: {stats.pf_table_lookups} lookups "
            f"({stats.pf_table_hits} hits), {stats.pf_table_inserts} inserts, "
            f"{stats.pf_table_evictions} evictions, "
            f"{stats.pf_table_invalidations} invalidations"
        )
    return "\n".join(lines)
