"""``python -m repro.prefetch`` entry point."""

import sys

from repro.prefetch.cli import main

if __name__ == "__main__":
    sys.exit(main())
