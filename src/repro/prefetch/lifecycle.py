"""Per-prefetch lifecycle accounting: issue -> fill -> exactly one outcome.

Every prefetched line becomes one *instance* when its group fetch is
issued.  An instance is ``pending`` until its fill commits into the tag
store, ``resident`` afterwards, and ends in exactly one terminal bucket:

``used``            a demand read hit the line while resident
``late_unused``     a demand read arrived while the fill was still in
                    flight and merged with it (the prefetch was correct
                    but not timely — the demand paid part of the latency)
``evicted_unused``  replaced (or displaced by a re-fetch of the same
                    line) without ever being hit
``invalidated``     dropped by a write to the line or a fault-injection
                    parity flip before any hit
``resident_at_end`` still pending/resident when the run finalized

The closed taxonomy gives the hard conservation invariant

    issued == used + evicted_unused + late_unused + invalidated
              + resident_at_end

checked by :func:`conservation_delta`.  The tracker increments the
``pf_*`` fields of :class:`~repro.stats.collector.MemSystemStats` live, so
the timeline collector's per-window deltas see the taxonomy for free.

The tracker is observation-only and off by default
(``AmbPrefetchConfig.lifecycle``): it never schedules simulator events and
never feeds back into issue decisions, so a lifecycle-enabled run is
performance-identical to a disabled one (pinned by the zero-overhead
guard test).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Iterable, Optional

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.engine.simulator import Simulator
    from repro.stats.collector import MemSystemStats
    from repro.telemetry.spans import PrefetchTrace, Tracer

#: Instance states while open (terminal outcomes leave the table).
_PENDING = 0
_RESIDENT = 1

#: Terminal outcome labels, in invariant order.
OUTCOMES = (
    "used", "evicted_unused", "late_unused", "invalidated", "resident_at_end",
)


def conservation_delta(stats: "MemSystemStats") -> int:
    """``issued - (sum of terminal buckets)``; zero iff the taxonomy closed.

    Non-zero only while instances are still open (mid-run) or after a
    counter bug; every finalized run must report zero.
    """
    return stats.pf_issued - (
        stats.pf_used
        + stats.pf_evicted_unused
        + stats.pf_late_unused
        + stats.pf_invalidated
        + stats.pf_resident_at_end
    )


class PrefetchLifecycle:
    """Tracks every prefetched line from issue to its terminal outcome.

    One tracker serves the whole memory subsystem: line addresses map to
    exactly one channel/DIMM, so a flat ``line -> state`` table suffices
    for both buffer placements (AMB caches and the controller-side
    buffer).  All counters land in the shared ``MemSystemStats``.
    """

    __slots__ = ("stats", "_sim", "_tracer", "_open", "_traces")

    def __init__(
        self,
        stats: "MemSystemStats",
        sim: "Optional[Simulator]" = None,
        tracer: "Optional[Tracer]" = None,
    ) -> None:
        self.stats = stats
        self._sim = sim
        self._tracer = tracer if sim is not None else None
        #: line address -> _PENDING | _RESIDENT for open instances.
        self._open: Dict[int, int] = {}
        #: line address -> span of the open instance (tracing only).
        self._traces: "Dict[int, PrefetchTrace]" = {}

    # -- tracing helpers -------------------------------------------------

    def _now(self) -> int:
        assert self._sim is not None
        return self._sim.now

    def _trace_mark(self, line_addr: int, phase: str) -> None:
        trace = self._traces.get(line_addr)
        if trace is not None:
            trace.mark(phase, self._now())

    def _trace_close(self, line_addr: int, outcome: str) -> None:
        trace = self._traces.pop(line_addr, None)
        if trace is not None:
            trace.close(outcome, self._now())

    # -- event hooks (called from the AMB / channel controller) ----------

    def on_issue(self, line_addrs: Iterable[int]) -> None:
        """A group fetch booked fills for these lines.

        A line with an instance still open is being re-fetched: the old
        copy (pending or resident) is displaced before it was ever used,
        which is exactly the ``evicted_unused`` outcome.
        """
        stats = self.stats
        open_map = self._open
        for line_addr in line_addrs:
            if line_addr in open_map:
                stats.pf_evicted_unused += 1
                self._trace_close(line_addr, "evicted_unused")
            open_map[line_addr] = _PENDING
            stats.pf_issued += 1
            if self._tracer is not None:
                trace = self._tracer.new_prefetch_trace(line_addr, self._now())
                if trace is not None:
                    self._traces[line_addr] = trace

    def on_fill(self, line_addrs: Iterable[int]) -> None:
        """A group fetch completed; its lines commit into the tag store."""
        open_map = self._open
        for line_addr in line_addrs:
            if open_map.get(line_addr) == _PENDING:
                open_map[line_addr] = _RESIDENT
                if self._tracer is not None:
                    self._trace_mark(line_addr, "fill")

    def on_hit(self, line_addr: int) -> None:
        """A demand read hit the line in the tag store: ``used``."""
        if self._open.pop(line_addr, None) is not None:
            self.stats.pf_used += 1
            self._trace_close(line_addr, "used")

    def on_late(self, line_addr: int) -> None:
        """A demand read merged with the line's in-flight fill: ``late``."""
        if self._open.pop(line_addr, None) is not None:
            self.stats.pf_late_unused += 1
            self._trace_close(line_addr, "late_unused")

    def on_evict(self, line_addr: int) -> None:
        """The tag store replaced this line.

        Only a *resident* instance can be evicted: when an eviction races
        a re-fetch of the same line (the open instance is pending again),
        the displacement was already charged by :meth:`on_issue`.
        """
        if self._open.get(line_addr) == _RESIDENT:
            del self._open[line_addr]
            self.stats.pf_evicted_unused += 1
            self._trace_close(line_addr, "evicted_unused")

    def on_invalidate(self, line_addr: int) -> None:
        """A write made the copy stale, or parity caught a bit flip."""
        if self._open.pop(line_addr, None) is not None:
            self.stats.pf_invalidated += 1
            self._trace_close(line_addr, "invalidated")

    def on_hit_completion(self) -> None:
        """A read served from a prefetch buffer completed.

        Counted at the same point as ``MemSystemStats.amb_hits`` so the
        lifecycle-derived coverage reproduces the legacy figure exactly
        (including warm-up discard semantics).
        """
        self.stats.pf_hits += 1

    # -- run boundaries ---------------------------------------------------

    def on_measurement_reset(self) -> None:
        """Warm-up discard: re-seed ``pf_issued`` with the open instances.

        ``MemSystemStats.reset_measurement`` zeroed the ``pf_*`` fields;
        instances issued during warm-up are still live and will reach a
        terminal bucket inside the measured window, so they re-enter the
        ``issued`` side of the conservation invariant here.
        """
        self.stats.pf_issued += len(self._open)

    def finalize(self) -> None:
        """Close the run: every still-open instance is ``resident_at_end``."""
        remaining = len(self._open)
        if remaining:
            self.stats.pf_resident_at_end += remaining
            for line_addr in list(self._open):
                self._trace_close(line_addr, "resident_at_end")
            self._open.clear()

    # -- introspection ----------------------------------------------------

    def open_instances(self) -> int:
        """Instances not yet in a terminal bucket (testing/debug aid)."""
        return len(self._open)
