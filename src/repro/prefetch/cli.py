"""``repro prefetch`` — lifecycle observability runs and policy listing.

Subcommands::

    repro prefetch report --workload 4C-1 --k 4 [--json] [--trace-out pf.jsonl]
    repro prefetch policies

``report`` runs the FB-DIMM + AMB-prefetch system with lifecycle
tracking enabled (``AmbPrefetchConfig.lifecycle=True``) and prints the
outcome taxonomy, the derived accuracy / coverage / pollution /
timeliness metrics, and the conservation check.  Also reachable as
``python -m repro.prefetch``.  Exit codes: 0 ok, 1 conservation
violation, 2 usage or I/O error.
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import sys
from typing import Callable, List, Optional

from repro.prefetch.lifecycle import conservation_delta
from repro.prefetch.policy import policy_names
from repro.prefetch.report import lifecycle_report, lifecycle_summary


def _guarded(
    func: Callable[[argparse.Namespace], int],
) -> Callable[[argparse.Namespace], int]:
    """I/O and schema errors exit 2 (same contract as repro.timeline)."""

    def wrapper(args: argparse.Namespace) -> int:
        try:
            return func(args)
        except (OSError, ValueError) as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2

    return wrapper


def cmd_report(args: argparse.Namespace) -> int:
    from repro.__main__ import _build_config
    from repro.system import System
    from repro.workloads.multiprog import workload_programs

    config = _build_config(args, "fbd-ap")
    config = dataclasses.replace(
        config,
        memory=dataclasses.replace(
            config.memory,
            prefetch=dataclasses.replace(
                config.memory.prefetch, policy=args.policy, lifecycle=True
            ),
        ),
    )
    tracer = None
    if args.trace_out:
        from repro.telemetry import Tracer

        tracer = Tracer()
    programs = workload_programs(args.workload)
    machine = System(config, programs, tracer=tracer)
    result = machine.run()
    if tracer is not None:
        from repro.telemetry import build_capture, save_capture

        capture = build_capture(
            result, tracer,
            check_events=machine.controller.collect_check_events(),
        )
        records = save_capture(args.trace_out, capture)
        print(f"[trace: {records} records -> {args.trace_out}]")
    label = f"{args.workload}, K={args.k}, policy={args.policy}"
    if args.json:
        print(json.dumps(lifecycle_summary(result.mem), indent=2, sort_keys=True))
    else:
        print(lifecycle_report(result.mem, label=label))
    delta = conservation_delta(result.mem)
    if delta != 0:
        print(f"error: conservation invariant violated (delta {delta:+d})",
              file=sys.stderr)
        return 1
    return 0


def cmd_policies(_args: argparse.Namespace) -> int:
    print("registered prefetch policies (repro.prefetch.policy):")
    for name in policy_names():
        print(f"  {name}")
    return 0


def configure_parser(parser: argparse.ArgumentParser) -> None:
    """Attach the prefetch subcommands (shared with python -m repro)."""
    sub = parser.add_subparsers(dest="prefetch_command", required=True)

    report_p = sub.add_parser(
        "report",
        help="run fbd-ap with lifecycle tracking on and print the taxonomy",
    )
    report_p.add_argument("--workload", default="4C-1")
    report_p.add_argument("--insts", type=int, default=50_000)
    report_p.add_argument("--seed", type=int, default=12345)
    report_p.add_argument("--no-sw-prefetch", action="store_true")
    report_p.add_argument("--k", type=int, default=4,
                          help="region cachelines")
    report_p.add_argument("--entries", type=int, default=64)
    report_p.add_argument("--assoc",
                          choices=("direct", "2way", "4way", "full"),
                          default="full")
    report_p.add_argument("--policy", choices=policy_names(),
                          default="region",
                          help="prefetch policy behind the PrefetchPolicy "
                               "boundary")
    report_p.add_argument("--json", action="store_true",
                          help="print the summary as JSON instead of text")
    report_p.add_argument("--trace-out", metavar="PATH", default=None,
                          help="also record a telemetry capture with "
                               "per-prefetch lifecycle spans")
    report_p.set_defaults(func=_guarded(cmd_report))

    policies_p = sub.add_parser(
        "policies", help="list registered prefetch policies"
    )
    policies_p.set_defaults(func=_guarded(cmd_policies))


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.prefetch",
        description="prefetch lifecycle observability (see docs/PREFETCH.md)",
    )
    configure_parser(parser)
    args = parser.parse_args(argv)
    return args.func(args)
