"""The prefetch-policy interface at the AMB/controller boundary.

A policy decides *which* lines accompany a demand miss; the AMB and the
channel controller own *how* they are fetched, buffered and accounted.
The split mirrors the demand-vs-prefetch queue separation of DRAMSim-class
models: the policy sees the demand stream (miss/hit training hooks) and
answers one question — given this demanded line, which other lines should
ride along on the group fetch.

The paper's Section 3.2 region prefetcher is re-hosted here bit-identically
(:class:`RegionPrefetchPolicy`); the lifecycle counters in
:mod:`repro.prefetch.lifecycle` are shared by every policy, so future
policies (DSPatch-class dual-pattern, stride/stream) are measured by the
same accuracy/coverage/pollution/timeliness instruments.
"""

from __future__ import annotations

import abc
from typing import TYPE_CHECKING, Callable, Dict, List

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.config import AmbPrefetchConfig


class PrefetchPolicy(abc.ABC):
    """Decides the companion lines of a demand miss.

    Contract:

    * :meth:`prefetch_lines` returns the line addresses to fetch alongside
      ``demanded_line``, in fetch order, *excluding* the demanded line
      itself (the controller always fetches the demanded line first and
      cut-through-forwards it).  Lines must be non-negative and distinct.
    * :meth:`observe_hit` / :meth:`observe_miss` are training hooks called
      on the demand stream (before the corresponding fetch is issued).
      Stateless policies ignore them.
    * Policies must be deterministic: the same call sequence yields the
      same predictions (the conformance digest suite pins this).
    """

    #: Registry key; subclasses override.
    name = "abstract"

    def observe_hit(self, line_addr: int) -> None:
        """A demand read hit the prefetch buffer (training signal)."""

    def observe_miss(self, line_addr: int) -> None:
        """A demand read missed and will trigger a group fetch."""

    @abc.abstractmethod
    def prefetch_lines(self, demanded_line: int) -> List[int]:
        """Companion lines to fetch with ``demanded_line``, in order."""


class RegionPrefetchPolicy(PrefetchPolicy):
    """The paper's region prefetcher (Section 3.2), behind the interface.

    A miss to line L fetches the remaining lines of L's aligned K-line
    region in ascending address order.  This reproduces the hard-wired
    ``Amb.group_order`` behaviour exactly: the group fetch order is
    ``[demanded] + [other region lines by address]``.
    """

    name = "region"

    def __init__(self, region_cachelines: int) -> None:
        if region_cachelines < 1:
            raise ValueError("region_cachelines must be >= 1")
        self.region_cachelines = region_cachelines

    def prefetch_lines(self, demanded_line: int) -> List[int]:
        k = self.region_cachelines
        base = (demanded_line // k) * k
        return [line for line in range(base, base + k) if line != demanded_line]


#: name -> factory(config).  A factory receives the full prefetch config so
#: policies can read their geometry (K, cache size) from it.
_POLICIES: Dict[str, Callable[["AmbPrefetchConfig"], PrefetchPolicy]] = {}


def register_policy(
    name: str,
) -> Callable[
    [Callable[["AmbPrefetchConfig"], PrefetchPolicy]],
    Callable[["AmbPrefetchConfig"], PrefetchPolicy],
]:
    """Decorator registering a policy factory under ``name``."""

    def wrap(
        factory: Callable[["AmbPrefetchConfig"], PrefetchPolicy],
    ) -> Callable[["AmbPrefetchConfig"], PrefetchPolicy]:
        if name in _POLICIES:
            raise ValueError(f"prefetch policy {name!r} already registered")
        # Registration runs only at import time (decorator application in
        # a module body), so every ProcessPool worker builds an identical
        # registry — there is no run-time mutation to leak between runs.
        _POLICIES[name] = factory  # repro: ignore[worker-shared-state]
        return factory

    return wrap


@register_policy("region")
def _make_region(config: "AmbPrefetchConfig") -> PrefetchPolicy:
    return RegionPrefetchPolicy(config.region_cachelines)


def policy_names() -> List[str]:
    """Registered policy names, sorted."""
    return sorted(_POLICIES)


def create_policy(config: "AmbPrefetchConfig") -> PrefetchPolicy:
    """Instantiate the policy named by ``config.policy``."""
    try:
        factory = _POLICIES[config.policy]
    except KeyError:
        known = ", ".join(policy_names())
        raise ValueError(
            f"unknown prefetch policy {config.policy!r}; known: {known}"
        ) from None
    return factory(config)
