"""Prefetch policy boundary and per-prefetch lifecycle observability.

Two halves, both policy-agnostic:

* :mod:`repro.prefetch.policy` — the :class:`PrefetchPolicy` interface at
  the AMB/controller boundary (train on the miss stream, predict the lines
  to fetch alongside a demand miss).  The paper's region prefetcher is
  re-hosted behind it bit-identically; future policies (DSPatch-class,
  stride/stream) plug in here and are measured by the same instruments.
* :mod:`repro.prefetch.lifecycle` — a per-prefetch lifecycle tracker that
  follows every prefetched line from issue through fill to exactly one
  terminal outcome (used / late_unused / evicted_unused / invalidated /
  resident_at_end), with a hard conservation invariant over the taxonomy.

Both are off by default; an observability-off run is bit-identical to a
build without this package (pinned by the conformance digest suite).
"""

from repro.prefetch.lifecycle import PrefetchLifecycle
from repro.prefetch.policy import (
    PrefetchPolicy,
    RegionPrefetchPolicy,
    create_policy,
    policy_names,
    register_policy,
)

__all__ = [
    "PrefetchLifecycle",
    "PrefetchPolicy",
    "RegionPrefetchPolicy",
    "create_policy",
    "policy_names",
    "register_policy",
]
