"""Golden known-bad traces: the checker's own regression suite.

Each case is a small hand-built trace with exactly one seeded defect and
the rule id the checker must report for it — plus known-good traces that
must pass untouched.  ``python -m repro.check --self-test`` (run in CI)
fails if any seeded defect goes unflagged or any clean trace is flagged,
which guards the guard: a refactor that quietly blinds a rule is caught
the same way a scheduler bug would be.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from repro.check.protocol import ProtocolChecker, Violation
from repro.check.trace import CheckEvent, TraceParams, default_params
from repro.dram.timing import TimingPs


@dataclass(frozen=True)
class SelfTestCase:
    """One seeded trace and the rule(s) it must (or must not) trigger."""

    name: str
    params: TraceParams
    events: List[CheckEvent]
    expect_rules: Tuple[str, ...]  # empty = must be clean


def _ddr2() -> TraceParams:
    return default_params("ddr2")


def _fbd() -> TraceParams:
    return default_params("fbdimm")


def _legal_read(t0: int, timing: TimingPs,
                bank: int = 0, row: int = 5) -> List[CheckEvent]:
    """A protocol-legal close-page read burst starting at ``t0``."""
    act = t0
    rd = act + timing.tRCD
    pre = max(act + timing.tRAS, rd + timing.tRPD)
    return [
        CheckEvent(act, "ACT", dimm=0, rank=0, bank=bank, row=row),
        CheckEvent(rd, "RD", dimm=0, rank=0, bank=bank, row=row),
        CheckEvent(pre, "PRE", dimm=0, rank=0, bank=bank, row=row),
    ]


def cases() -> List[SelfTestCase]:
    """All self-test traces (deterministic order)."""
    out: List[SelfTestCase] = []
    fbd = _fbd()
    ddr2 = _ddr2()
    t = fbd.timing

    # -- known-good ------------------------------------------------------
    out.append(SelfTestCase(
        "good-close-page-read", fbd, _legal_read(0, t), ()
    ))
    good_two_banks = sorted(
        _legal_read(0, t, bank=0)
        # tRRD apart on the rank; bursts serialised by tCL pipelining.
        + _legal_read(t.tRRD + t.burst, t, bank=1, row=9),
        key=lambda e: e.time_ps,
    )
    out.append(SelfTestCase("good-two-banks", fbd, good_two_banks, ()))
    out.append(SelfTestCase(
        "good-frames", fbd,
        [
            CheckEvent(0, "SB_CMD"),
            CheckEvent(0, "SB_CMD"),
            CheckEvent(0, "SB_CMD"),
            CheckEvent(fbd.frame_ps, "SB_CMD"),
            CheckEvent(fbd.frame_ps, "SB_DATA"),
            CheckEvent(fbd.nb_phase_ps + 4 * fbd.frame_ps, "NB_LINE", frames=2),
            CheckEvent(fbd.nb_phase_ps + 6 * fbd.frame_ps, "NB_LINE", frames=2),
        ],
        (),
    ))

    # -- seeded timing defects ------------------------------------------
    out.append(SelfTestCase(
        "bad-trcd", fbd,
        [
            CheckEvent(0, "ACT", dimm=0, rank=0, bank=0, row=5),
            # One clock too early: violates ACT -> RD >= tRCD.
            CheckEvent(t.tRCD - t.clock, "RD", dimm=0, rank=0, bank=0, row=5),
            CheckEvent(t.tRAS, "PRE", dimm=0, rank=0, bank=0, row=5),
        ],
        ("tRCD",),
    ))
    out.append(SelfTestCase(
        "bad-tras", fbd,
        [
            CheckEvent(0, "ACT", dimm=0, rank=0, bank=0, row=5),
            CheckEvent(t.tRCD, "RD", dimm=0, rank=0, bank=0, row=5),
            CheckEvent(t.tRAS - 1, "PRE", dimm=0, rank=0, bank=0, row=5),
        ],
        ("tRAS",),
    ))
    out.append(SelfTestCase(
        "bad-trp", fbd,
        _legal_read(0, t)
        + [CheckEvent(
            max(t.tRAS, t.tRCD + t.tRPD) + t.tRP - 1, "ACT",
            dimm=0, rank=0, bank=0, row=6,
        )],
        ("tRP", "tRC"),  # early re-ACT breaks both windows
    ))
    # ACT to bank 1 one picosecond inside the tRRD window; its column
    # access and precharge are pushed late enough to keep the data bus
    # and every same-bank constraint legal, isolating the tRRD defect.
    rd2 = t.tRCD + t.tCL + t.burst  # second burst starts after the first ends
    out.append(SelfTestCase(
        "bad-trrd", fbd,
        sorted(
            _legal_read(0, t, bank=0)
            + [
                CheckEvent(t.tRRD - 1, "ACT", dimm=0, rank=0, bank=1, row=9),
                CheckEvent(rd2, "RD", dimm=0, rank=0, bank=1, row=9),
                CheckEvent(
                    max(t.tRRD - 1 + t.tRAS, rd2 + t.tRPD), "PRE",
                    dimm=0, rank=0, bank=1, row=9,
                ),
            ],
            key=lambda e: e.time_ps,
        ),
        ("tRRD",),
    ))
    # A read command issued before the write burst has drained plus tWTR
    # (same bank keeps tRRD out of the picture; the read's burst starts
    # after the write's, so the bus stays legal).
    wr_data_end = t.tRCD + t.tWL + t.burst
    rd_early = wr_data_end - 2 * t.clock  # inside the tWTR window
    out.append(SelfTestCase(
        "bad-twtr", fbd,
        [
            CheckEvent(0, "ACT", dimm=0, rank=0, bank=0, row=5),
            CheckEvent(t.tRCD, "WR", dimm=0, rank=0, bank=0, row=5),
            CheckEvent(rd_early, "RD", dimm=0, rank=0, bank=0, row=5),
            CheckEvent(
                max(t.tRAS, rd_early + t.tRPD, t.tRCD + t.tWPD), "PRE",
                dimm=0, rank=0, bank=0, row=5,
            ),
        ],
        ("tWTR",),
    ))

    # -- seeded structural defects --------------------------------------
    overlap = [
        CheckEvent(0, "ACT", dimm=0, rank=0, bank=0, row=5),
        CheckEvent(0, "ACT", dimm=0, rank=1, bank=0, row=7),
        CheckEvent(t.tRCD, "RD", dimm=0, rank=0, bank=0, row=5),
        # Same DIMM bus, burst starts mid-way through the first burst.
        CheckEvent(t.tRCD + t.burst // 2, "RD", dimm=0, rank=1, bank=0, row=7),
        CheckEvent(t.tRAS, "PRE", dimm=0, rank=0, bank=0, row=5),
        CheckEvent(t.tRAS + t.burst, "PRE", dimm=0, rank=1, bank=0, row=7),
    ]
    out.append(SelfTestCase(
        "bad-burst-overlap", fbd, overlap, ("burst-overlap",)
    ))
    out.append(SelfTestCase(
        "bad-column-to-closed-bank", fbd,
        [CheckEvent(1000, "RD", dimm=0, rank=0, bank=0, row=5)],
        ("row-state",),
    ))
    # DDR2: rank-to-rank switch without the turnaround bubble.  The two
    # bursts butt up against each other, which same-tag streaming allows
    # but a rank switch does not.
    ddr2_turnaround = [
        CheckEvent(0, "ACT", dimm=0, rank=0, bank=0, row=5),
        CheckEvent(0, "ACT", dimm=1, rank=0, bank=0, row=7),
        CheckEvent(ddr2.timing.tRCD, "RD", dimm=0, rank=0, bank=0, row=5),
        CheckEvent(ddr2.timing.tRCD + ddr2.timing.burst, "RD",
                   dimm=1, rank=0, bank=0, row=7),
        CheckEvent(ddr2.timing.tRAS, "PRE", dimm=0, rank=0, bank=0, row=5),
        CheckEvent(ddr2.timing.tRAS + ddr2.timing.burst, "PRE",
                   dimm=1, rank=0, bank=0, row=7),
    ]
    out.append(SelfTestCase(
        "bad-ddr2-turnaround", ddr2, ddr2_turnaround, ("bus-turnaround",)
    ))

    # -- seeded frame defects -------------------------------------------
    out.append(SelfTestCase(
        "bad-frame-offgrid", fbd,
        [CheckEvent(fbd.nb_phase_ps + 1, "NB_LINE", frames=2)],
        ("frame-align",),
    ))
    out.append(SelfTestCase(
        "bad-frame-reuse", fbd,
        [
            CheckEvent(fbd.nb_phase_ps, "NB_LINE", frames=2),
            CheckEvent(fbd.nb_phase_ps + fbd.frame_ps, "NB_LINE", frames=2),
        ],
        ("frame-reuse",),
    ))
    out.append(SelfTestCase(
        "bad-frame-overcommit", fbd,
        [
            CheckEvent(0, "SB_CMD"),
            CheckEvent(0, "SB_CMD"),
            CheckEvent(0, "SB_DATA"),
        ],
        ("frame-overcommit",),
    ))
    return out


def run_self_test() -> Tuple[int, List[str]]:
    """Run every case; returns (cases run, failure descriptions)."""
    failures: List[str] = []
    all_cases = cases()
    for case in all_cases:
        violations: List[Violation] = ProtocolChecker(case.params).check(
            sorted(case.events, key=lambda e: e.time_ps)
        )
        rules = {v.rule for v in violations}
        if not case.expect_rules:
            if violations:
                failures.append(
                    f"{case.name}: clean trace flagged: "
                    + "; ".join(v.format() for v in violations)
                )
            continue
        missing = [rule for rule in case.expect_rules if rule not in rules]
        if missing:
            failures.append(
                f"{case.name}: seeded {missing} not flagged "
                f"(got {sorted(rules) or 'nothing'})"
            )
        unexpected = rules - set(case.expect_rules)
        if unexpected:
            failures.append(
                f"{case.name}: unexpected extra rules {sorted(unexpected)}"
            )
    return len(all_cases), failures
