"""Command-line entry point: ``python -m repro.check``.

Modes (combinable; default with no flags is trace checking):

* ``python -m repro.check trace.jsonl [...]`` — protocol-check saved
  command traces (written by ``SystemConfig(check_protocol=True)`` runs
  or by hand; see :mod:`repro.check.trace` for the format);
* ``python -m repro.check lint [PATH ...]`` — the full static-analysis
  engine (determinism + unit-flow + shared-state + counter-drift +
  strict-typing rules; see :mod:`repro.check.lint.cli` for its options);
* ``--self-test`` — run the golden known-bad suites (seeded protocol
  traces and seeded lint fixtures);
* ``--lint [PATH ...]`` — the four legacy determinism rules only
  (defaults to the installed ``repro`` sources);
* ``--audit-configs`` — cross-field audit of the standard factory
  configurations.

Exit status: 0 clean, 1 findings/violations, 2 usage or I/O error.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List

from repro.check.config_audit import audit_system, errors_only
from repro.check.determinism import lint_file, lint_tree, repro_source_root
from repro.check.lint.selftest import run_self_test as run_lint_self_test
from repro.check.protocol import ProtocolChecker
from repro.check.selftest import run_self_test
from repro.check.trace import load_events

EXIT_CLEAN = 0
EXIT_FINDINGS = 1
EXIT_USAGE = 2


def _check_traces(paths: List[str]) -> int:
    status = EXIT_CLEAN
    for raw in paths:
        path = Path(raw)
        try:
            params, events = load_events(path)
        except (OSError, ValueError) as exc:
            print(f"{path}: cannot load trace: {exc}", file=sys.stderr)
            return EXIT_USAGE
        violations = ProtocolChecker(params).check(events)
        if violations:
            status = EXIT_FINDINGS
            print(f"{path}: {len(violations)} violation(s)")
            for violation in violations:
                print(f"  {violation.format()}")
        else:
            print(f"{path}: OK ({len(events)} events, {params.kind})")
    return status


def _run_lint(paths: List[str]) -> int:
    findings = []
    if paths:
        for raw in paths:
            path = Path(raw)
            try:
                if path.is_dir():
                    findings.extend(lint_tree(path))
                else:
                    findings.extend(lint_file(path))
            except OSError as exc:
                print(f"{path}: cannot lint: {exc}")
                return EXIT_USAGE
    else:
        root = repro_source_root()
        print(f"linting {root}")
        findings.extend(lint_tree(root))
    for finding in findings:
        print(finding.format())
    print(f"determinism lint: {len(findings)} finding(s)")
    return EXIT_FINDINGS if findings else EXIT_CLEAN


def _run_audit() -> int:
    # Imported here so plain trace checking never pulls in the factories.
    from repro.config import ddr2_baseline, fbdimm_amb_prefetch, fbdimm_baseline

    status = EXIT_CLEAN
    for name, factory in (
        ("ddr2_baseline", ddr2_baseline),
        ("fbdimm_baseline", fbdimm_baseline),
        ("fbdimm_amb_prefetch", fbdimm_amb_prefetch),
    ):
        issues = audit_system(factory())
        if issues:
            print(f"{name}: {len(issues)} issue(s)")
            for issue in issues:
                print(f"  {issue.format()}")
            if errors_only(issues):
                status = EXIT_FINDINGS
        else:
            print(f"{name}: OK")
    return status


def _run_self_test() -> int:
    count, failures = run_self_test()
    lint_count, lint_failures = run_lint_self_test()
    count += lint_count
    failures = list(failures) + list(lint_failures)
    for failure in failures:
        print(f"FAIL {failure}")
    print(f"self-test: {count} cases, {len(failures)} failure(s)")
    return EXIT_FINDINGS if failures else EXIT_CLEAN


def main(argv: List[str] | None = None) -> int:
    if argv is None:
        argv = sys.argv[1:]
    if argv and argv[0] == "lint":
        # The full rule engine has its own CLI (baseline, JSON, rule
        # selection); everything below is the legacy flag interface.
        from repro.check.lint.cli import main as lint_main

        return lint_main(argv[1:])
    parser = argparse.ArgumentParser(
        prog="python -m repro.check",
        description="DDR2/FB-DIMM protocol checker and simulator lints",
    )
    parser.add_argument(
        "traces", nargs="*", metavar="TRACE",
        help="check-trace JSONL files to validate",
    )
    parser.add_argument(
        "--self-test", action="store_true",
        help="run the golden known-bad trace suite",
    )
    parser.add_argument(
        "--lint", nargs="*", metavar="PATH", default=None,
        help="determinism lint over PATHs (default: repro sources)",
    )
    parser.add_argument(
        "--audit-configs", action="store_true",
        help="audit the standard factory configurations",
    )
    args = parser.parse_args(argv)

    selected = False
    status = EXIT_CLEAN
    if args.self_test:
        selected = True
        status = max(status, _run_self_test())
    if args.lint is not None:
        selected = True
        status = max(status, _run_lint(args.lint))
    if args.audit_configs:
        selected = True
        status = max(status, _run_audit())
    if args.traces:
        selected = True
        status = max(status, _check_traces(args.traces))
    if not selected:
        parser.print_usage(sys.stderr)
        print(
            "error: nothing to do — pass a trace file or one of "
            "--self-test/--lint/--audit-configs",
            file=sys.stderr,
        )
        return EXIT_USAGE
    return status


if __name__ == "__main__":
    sys.exit(main())
