"""Command-trace event model and JSONL persistence for the protocol checker.

A check trace is a flat, time-sorted stream of :class:`CheckEvent` records —
DRAM commands (ACT/RD/WR/PRE) located by channel/DIMM/rank/bank, plus
FB-DIMM frame-slot records (southbound command and data frames, northbound
line transfers).  The header line of a saved trace carries the
:class:`TraceParams` the checker validates against, so a trace file is
self-describing: ``python -m repro.check trace.jsonl`` needs nothing else.

Format (one JSON object per line)::

    {"version": 1, "params": {...}}
    {"t": 15000, "c": "ACT", "ch": 0, "d": 0, "r": 0, "b": 2, "row": 17}
    {"t": 45000, "c": "NB_LINE", "ch": 0, "n": 2}
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass
from pathlib import Path
from typing import Dict, Iterable, List, Tuple, Union

from repro.config import DRAM_CLOCK_PS, MemoryConfig, MemoryKind
from repro.dram.timing import TimingPs
from repro.engine.simulator import ns

FORMAT_VERSION = 1

#: DRAM command kinds (matching :class:`repro.dram.commands.CommandType`
#: values) plus the FB-DIMM frame-slot kinds.
DRAM_COMMANDS = ("ACT", "RD", "WR", "PRE")
FRAME_EVENTS = ("SB_CMD", "SB_DATA", "NB_LINE")
EVENT_KINDS = DRAM_COMMANDS + FRAME_EVENTS


@dataclass(frozen=True)
class CheckEvent:
    """One trace record: a DRAM command or an FB-DIMM frame-slot booking.

    Attributes:
        time_ps: Command instant (DRAM commands) or frame start (frames).
        kind: One of :data:`EVENT_KINDS`.
        channel: Physical channel index.
        dimm / rank / bank / row: DRAM command location (-1 where n/a).
        frames: NB_LINE only — number of contiguous northbound frames.
        retry: Frame events only — replay attempt number under fault
            injection (0 = first transmission).
    """

    time_ps: int
    kind: str
    channel: int = 0
    dimm: int = -1
    rank: int = -1
    bank: int = -1
    row: int = -1
    frames: int = 1
    retry: int = 0

    def __post_init__(self) -> None:
        if self.kind not in EVENT_KINDS:
            raise ValueError(f"unknown check-event kind {self.kind!r}")

    @property
    def is_dram_command(self) -> bool:
        return self.kind in DRAM_COMMANDS

    def location(self) -> str:
        """Human-readable location for violation messages."""
        if self.is_dram_command:
            return (
                f"ch{self.channel}.dimm{self.dimm}.rank{self.rank}"
                f".bank{self.bank}"
            )
        return f"ch{self.channel}.{self.kind.lower()}"


@dataclass(frozen=True)
class TraceParams:
    """Everything the protocol checker needs to judge a trace.

    Attributes:
        kind: ``"ddr2"`` or ``"fbdimm"`` — selects the bus/frame rules.
        timing: The Table 2 constraints in picoseconds.
        frame_ps: FB-DIMM frame period (two DRAM clocks).
        nb_phase_ps: Northbound frame-grid phase offset.
        switch_gap_ps: DDR2 data-bus turnaround/rank-switch bubble.
        banks_per_dimm: Logic banks per rank (for location sanity checks).
        max_retries: Fault-injection retry budget; 0 disables the
            retry-budget rule.  A journalled replay may reach at most
            ``max_retries + 1`` (the post-reset recovery replay).
    """

    kind: str
    timing: TimingPs
    frame_ps: int = 0
    nb_phase_ps: int = 0
    switch_gap_ps: int = 0
    banks_per_dimm: int = 4
    max_retries: int = 0

    @classmethod
    def from_memory_config(cls, config: MemoryConfig) -> "TraceParams":
        """Derive checker parameters from a simulator memory config."""
        timing = TimingPs.from_config(
            config.timings, config.dram_clock_ps, config.burst_clocks,
            tfaw_ns=config.tFAW_ns,
        )
        if config.kind is MemoryKind.FBDIMM:
            return cls(
                kind="fbdimm",
                timing=timing,
                frame_ps=config.frame_ps,
                nb_phase_ps=ns(config.command_delay_ns) % config.frame_ps,
                banks_per_dimm=config.banks_per_dimm,
            )
        return cls(
            kind="ddr2",
            timing=timing,
            switch_gap_ps=round(config.ddr2_switch_gap_clocks * config.dram_clock_ps),
            banks_per_dimm=config.banks_per_dimm,
        )

    def to_dict(self) -> Dict[str, object]:
        data = asdict(self)
        data["timing"] = asdict(self.timing)
        return data

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "TraceParams":
        timing = TimingPs(**data["timing"])  # type: ignore[arg-type]
        fields = {k: v for k, v in data.items() if k != "timing"}
        return cls(timing=timing, **fields)  # type: ignore[arg-type]


#: Default timing bundle for hand-written traces: Table 2 at 667 MT/s with
#: the standard 4-clock cacheline burst.
def default_params(kind: str = "fbdimm") -> TraceParams:
    """Checker parameters for the paper's default 667 MT/s configuration."""
    from repro.config import DramTimings

    clock = DRAM_CLOCK_PS[667]
    timing = TimingPs.from_config(DramTimings(), clock, 4)
    if kind == "fbdimm":
        return TraceParams(
            kind=kind, timing=timing, frame_ps=2 * clock,
            nb_phase_ps=ns(3.0) % (2 * clock),
        )
    if kind == "ddr2":
        return TraceParams(
            kind=kind, timing=timing, switch_gap_ps=round(1.5 * clock)
        )
    raise ValueError(f"unknown memory kind {kind!r}")


# ----------------------------------------------------------------------
# JSONL persistence
# ----------------------------------------------------------------------

_FIELD_CODES = (
    ("t", "time_ps"), ("c", "kind"), ("ch", "channel"), ("d", "dimm"),
    ("r", "rank"), ("b", "bank"), ("row", "row"), ("n", "frames"),
    ("rt", "retry"),
)
_DEFAULTS = {f.name: f.default for f in CheckEvent.__dataclass_fields__.values()}


def event_to_record(event: CheckEvent) -> Dict[str, object]:
    """Encode one event with the short JSONL field codes (defaults elided).

    Shared by the check-trace files and the telemetry capture stream, so
    both speak the same command-record dialect.
    """
    record: Dict[str, object] = {}
    for code, name in _FIELD_CODES:
        value = getattr(event, name)
        if name in ("time_ps", "kind") or value != _DEFAULTS[name]:
            record[code] = value
    return record


def record_to_event(record: Dict[str, object]) -> CheckEvent:
    """Decode one short-field-code record back into a :class:`CheckEvent`."""
    kwargs = {}
    for code, name in _FIELD_CODES:
        if code in record:
            kwargs[name] = record[code]
    return CheckEvent(**kwargs)  # type: ignore[arg-type]


def save_events(
    path: Union[str, Path],
    params: TraceParams,
    events: Iterable[CheckEvent],
) -> int:
    """Write a self-describing check trace; returns events written."""
    path = Path(path)
    count = 0
    with path.open("w", encoding="utf-8") as handle:
        header = {"version": FORMAT_VERSION, "params": params.to_dict()}
        handle.write(json.dumps(header) + "\n")
        for event in events:
            handle.write(json.dumps(event_to_record(event)) + "\n")
            count += 1
    return count


def load_events(path: Union[str, Path]) -> Tuple[TraceParams, List[CheckEvent]]:
    """Load a saved check trace: (params, time-sorted events)."""
    path = Path(path)
    with path.open("r", encoding="utf-8") as handle:
        header = json.loads(handle.readline())
        if header.get("version") != FORMAT_VERSION:
            raise ValueError(
                f"{path}: unsupported check-trace version "
                f"{header.get('version')!r}"
            )
        params = TraceParams.from_dict(header["params"])
        events: List[CheckEvent] = []
        for line_no, line in enumerate(handle, start=2):
            if not line.strip():
                continue
            record = json.loads(line)
            try:
                events.append(record_to_event(record))
            except (TypeError, ValueError) as exc:
                raise ValueError(f"{path}:{line_no}: {exc}") from exc
    events.sort(key=lambda e: e.time_ps)
    return params, events
