"""Static and dynamic correctness checks for the simulator.

Three independent passes (see ``docs/CHECKING.md``):

* :mod:`repro.check.protocol` — validates DDR2 command traces and FB-DIMM
  frame journals against the Table 2 timing constraints;
* :mod:`repro.check.lint` — the static-analysis engine: a plugin rule
  registry running the determinism rules (wall clocks, unseeded
  ``random``, set iteration, float arithmetic on picosecond times) plus
  unit-flow, worker shared-state, counter-drift and strict-typing
  analyses (``docs/STATIC_ANALYSIS.md``);
* :mod:`repro.check.determinism` — thin shim keeping the PR-1
  determinism-only entry points stable;
* :mod:`repro.check.config_audit` — cross-field consistency checks on
  :class:`~repro.config.SystemConfig` with actionable messages.

Run offline with ``python -m repro.check trace.jsonl`` (plus ``lint`` /
``--audit-configs`` / ``--self-test``), or at runtime with
``SystemConfig(check_protocol=True)``.
"""

from repro.check.config_audit import AuditIssue, audit_memory, audit_system
from repro.check.determinism import LintFinding, lint_source, lint_tree
from repro.check.lint import Finding, LintEngine, ProjectRule, Rule, all_rules
from repro.check.protocol import (
    ProtocolChecker,
    ProtocolViolationError,
    Violation,
)
from repro.check.trace import (
    CheckEvent,
    TraceParams,
    load_events,
    save_events,
)

__all__ = [
    "AuditIssue",
    "CheckEvent",
    "Finding",
    "LintEngine",
    "LintFinding",
    "ProjectRule",
    "ProtocolChecker",
    "ProtocolViolationError",
    "Rule",
    "TraceParams",
    "Violation",
    "all_rules",
    "audit_memory",
    "audit_system",
    "lint_source",
    "lint_tree",
    "load_events",
    "save_events",
]
