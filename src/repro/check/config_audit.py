"""Cross-field configuration audit.

The config dataclasses validate their own fields in ``__post_init__``; this
pass checks the *relationships between* fields that no single dataclass can
see — Table 2 timing identities, prefetch degree vs. AMB cache capacity,
DDR3 overrides vs. data rate, drain thresholds vs. buffer sizes — and
reports each problem with a message that says what to change, not just
what is wrong.

Severities: ``error`` findings describe configurations whose results are
meaningless (a row closed before its burst completes); ``warning`` findings
describe legal-but-suspicious setups (DDR2 Table 2 timings at a DDR3 data
rate) that usually indicate a half-applied override.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.config import (
    DramTimings,
    InterleaveScheme,
    MemoryConfig,
    MemoryKind,
    PagePolicy,
    SystemConfig,
)

ERROR = "error"
WARNING = "warning"


@dataclass(frozen=True)
class AuditIssue:
    """One audit finding."""

    severity: str
    field: str
    message: str

    def format(self) -> str:
        return f"{self.severity}: {self.field}: {self.message}"


def _burst_ns(memory: MemoryConfig) -> float:
    """Data-bus occupancy of one cacheline burst, in nanoseconds."""
    return memory.burst_clocks * memory.dram_clock_ps / 1000.0


def audit_timings(memory: MemoryConfig) -> List[AuditIssue]:
    """Table 2 identities that make a timing set self-consistent."""
    issues: List[AuditIssue] = []
    t = memory.timings
    burst = _burst_ns(memory)

    for name in ("tRP", "tRCD", "tCL", "tRC", "tRAS", "tWL"):
        if getattr(t, name) <= 0:
            issues.append(AuditIssue(
                ERROR, f"timings.{name}",
                f"must be positive, got {getattr(t, name)} ns",
            ))
    if t.tRC < t.tRAS + t.tRP:
        issues.append(AuditIssue(
            ERROR, "timings.tRC",
            f"tRC ({t.tRC} ns) < tRAS + tRP ({t.tRAS} + {t.tRP} ns): the "
            "ACT-to-ACT window is shorter than open-row time plus "
            "precharge; raise tRC or lower tRAS/tRP",
        ))
    if t.tRAS < t.tRCD + burst:
        issues.append(AuditIssue(
            ERROR, "timings.tRAS",
            f"tRAS ({t.tRAS} ns) < tRCD + burst ({t.tRCD} + {burst:.1f} ns): "
            "the row would close before the first burst drains; raise tRAS",
        ))
    if t.tWPD < t.tWL + burst:
        issues.append(AuditIssue(
            ERROR, "timings.tWPD",
            f"tWPD ({t.tWPD} ns) < tWL + burst ({t.tWL} + {burst:.1f} ns): "
            "precharge would cut off the write burst; raise tWPD",
        ))
    if t.tRPD > t.tRAS:
        issues.append(AuditIssue(
            WARNING, "timings.tRPD",
            f"tRPD ({t.tRPD} ns) > tRAS ({t.tRAS} ns) is unusual for DDR2 "
            "and makes reads close rows later than the row-open minimum",
        ))
    return issues


def audit_memory(memory: MemoryConfig) -> List[AuditIssue]:
    """All memory-subsystem cross-field checks."""
    issues = audit_timings(memory)
    prefetch = memory.prefetch

    # -- data-rate generation vs. timing preset ------------------------
    if memory.data_rate_mts >= 1066 and memory.timings == DramTimings():
        issues.append(AuditIssue(
            WARNING, "data_rate_mts",
            f"{memory.data_rate_mts} MT/s is a DDR3-class rate but the "
            "timings are the DDR2 Table 2 defaults; pass "
            "ddr3_memory_overrides() so both move together",
        ))

    # -- prefetch geometry ---------------------------------------------
    if prefetch.enabled:
        k = prefetch.region_cachelines
        if k > prefetch.cache_entries:
            issues.append(AuditIssue(
                ERROR, "prefetch.region_cachelines",
                f"region of {k} lines cannot fit the {prefetch.cache_entries}"
                "-entry AMB cache: every group fetch would evict part of "
                "itself; raise cache_entries or lower region_cachelines",
            ))
        elif prefetch.cache_entries < 2 * k:
            issues.append(AuditIssue(
                WARNING, "prefetch.cache_entries",
                f"only {prefetch.cache_entries // k} region(s) fit the AMB "
                "cache; two concurrent streams will thrash it",
            ))
        if prefetch.cache_entries % k:
            issues.append(AuditIssue(
                WARNING, "prefetch.cache_entries",
                f"{prefetch.cache_entries} entries is not a whole number of "
                f"{k}-line regions; FIFO replacement will evict partial "
                "regions",
            ))
        if k > memory.lines_per_page:
            issues.append(AuditIssue(
                ERROR, "prefetch.region_cachelines",
                f"a {k}-line region spans more than one {memory.page_bytes}-"
                "byte DRAM row; a group fetch is one ACT plus pipelined "
                "column accesses and cannot cross a row boundary",
            ))
        if memory.interleave is InterleaveScheme.CACHELINE:
            issues.append(AuditIssue(
                WARNING, "interleave",
                "AMB prefetching with cacheline interleaving scatters each "
                "region across channels, so group fetches degenerate to "
                "single lines; use MULTI_CACHELINE (the fbdimm_amb_prefetch "
                "factory does this automatically)",
            ))

    # -- page policy vs. interleave ------------------------------------
    if (
        memory.page_policy is PagePolicy.OPEN_PAGE
        and memory.interleave is InterleaveScheme.CACHELINE
    ):
        issues.append(AuditIssue(
            WARNING, "page_policy",
            "open page with cacheline interleaving: consecutive lines map "
            "to different banks, so the open row is almost never re-hit; "
            "the paper pairs open page with page interleaving",
        ))

    # -- FB-DIMM frame geometry ----------------------------------------
    if memory.kind is MemoryKind.FBDIMM:
        if memory.cacheline_bytes % 32:
            issues.append(AuditIssue(
                ERROR, "cacheline_bytes",
                f"{memory.cacheline_bytes} B is not a whole number of 32 B "
                "northbound frames",
            ))
        if memory.cacheline_bytes % 16:
            issues.append(AuditIssue(
                ERROR, "cacheline_bytes",
                f"{memory.cacheline_bytes} B is not a whole number of 16 B "
                "southbound write-data payloads",
            ))

    # -- controller buffering ------------------------------------------
    if memory.write_drain_threshold > memory.buffer_entries:
        issues.append(AuditIssue(
            WARNING, "write_drain_threshold",
            f"threshold {memory.write_drain_threshold} exceeds the "
            f"{memory.buffer_entries}-entry memory buffer, so the write "
            "drain can never trigger and writes only issue when no read "
            "is ready",
        ))

    # -- refresh --------------------------------------------------------
    if memory.refresh_interval_ns > 0:
        if memory.refresh_cycle_ns >= memory.refresh_interval_ns:
            issues.append(AuditIssue(
                ERROR, "refresh_cycle_ns",
                f"tRFC ({memory.refresh_cycle_ns} ns) >= tREFI "
                f"({memory.refresh_interval_ns} ns): banks would refresh "
                "back-to-back and never serve requests",
            ))
        elif memory.refresh_cycle_ns / memory.refresh_interval_ns > 0.2:
            issues.append(AuditIssue(
                WARNING, "refresh_cycle_ns",
                "refresh would consume more than 20% of every rank's time; "
                "typical DDR2 is ~1.6% (127.5 ns / 7800 ns)",
            ))
    return issues


def audit_system(config: SystemConfig) -> List[AuditIssue]:
    """Audit a full system config (memory checks plus CPU/memory coupling)."""
    issues = audit_memory(config.memory)
    cpu = config.cpu

    if cpu.data_mshr_entries * cpu.num_cores < cpu.l2_mshr_entries // 4:
        issues.append(AuditIssue(
            WARNING, "cpu.data_mshr_entries",
            "per-core MSHRs are far below the shared L2's; the L2 MSHR "
            "file cannot fill and memory-level parallelism is core-bound",
        ))
    if cpu.hw_prefetch_degree > 0 and config.software_prefetch:
        issues.append(AuditIssue(
            WARNING, "cpu.hw_prefetch_degree",
            "hardware and software prefetching are both on; the paper "
            "evaluates one at a time (Section 5.4), so coverage numbers "
            "will not be comparable to any figure",
        ))
    if config.memory.buffer_entries < cpu.l2_mshr_entries // 2:
        issues.append(AuditIssue(
            WARNING, "memory.buffer_entries",
            f"{config.memory.buffer_entries} buffer entries against "
            f"{cpu.l2_mshr_entries} L2 MSHRs: admission backpressure will "
            "dominate queueing before the channels saturate",
        ))
    return issues


def errors_only(issues: List[AuditIssue]) -> List[AuditIssue]:
    """Filter to the hard errors."""
    return [issue for issue in issues if issue.severity == ERROR]
