"""DDR2 / FB-DIMM protocol checker.

Replays a time-sorted command trace through independent per-bank and
per-rank state machines and re-derives every Table 2 constraint from first
principles — deliberately sharing no code with the bank model it audits,
so a scheduler or bank-state bug cannot hide by being self-consistent.

Checked rules (rule ids in parentheses):

* same bank — ACT→RD/WR ≥ tRCD (``tRCD``), ACT→PRE ≥ tRAS (``tRAS``),
  RD→PRE ≥ tRPD (``tRPD``), WR→PRE ≥ tWPD (``tWPD``), PRE→ACT ≥ tRP
  (``tRP``), ACT→ACT ≥ tRC (``tRC``);
* bank state — no column command to a closed bank, no double ACT
  (``row-state``);
* same rank — consecutive ACTs ≥ tRRD apart (``tRRD``), write-data end to
  the next RD command ≥ tWTR (``tWTR``), and — when the device generation
  defines a four-activate window (``timing.tFAW > 0``; DDR2 presets leave
  it 0) — any five consecutive ACTs span at least tFAW (``tFAW``);
* data bus — burst occupancy windows must not overlap (``burst-overlap``);
  on DDR2, bursts of different direction or rank must additionally be
  separated by the switching bubble (``bus-turnaround``);
* FB-DIMM frames — slot starts must sit on the frame grid
  (``frame-align``), southbound frames hold at most three commands or one
  command plus write data (``frame-overcommit``), northbound frames carry
  at most one line and a line's frames are contiguous (``frame-reuse``);
* fault-injection replays — when ``params.max_retries`` is set, no frame
  event's replay attempt may exceed ``max_retries + 1``, the +1 being the
  post-reset recovery replay (``retry-budget``).

Known model approximations the checker deliberately does *not* police:
command-bus slot exclusivity (the simulator reserves one command-bus slot
per transaction, not per command) and refresh (tRFC windows are modelled
as bank-busy time, not as REF commands in the trace).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.check.trace import CheckEvent, TraceParams

#: Cap on violations kept per check run; a broken trace would otherwise
#: produce one report per command.
MAX_VIOLATIONS = 200


@dataclass(frozen=True)
class Violation:
    """One protocol violation: the rule, the instant, and the command pair."""

    rule: str
    time_ps: int
    message: str
    first: Optional[CheckEvent] = None
    second: Optional[CheckEvent] = None

    def format(self) -> str:
        return f"[{self.rule}] t={self.time_ps}ps: {self.message}"


class ProtocolViolationError(AssertionError):
    """Raised by the runtime assertion layer when a run breaks protocol."""

    def __init__(self, violations: List[Violation]) -> None:
        self.violations = violations
        shown = "\n  ".join(v.format() for v in violations[:10])
        extra = len(violations) - min(len(violations), 10)
        suffix = f"\n  ... and {extra} more" if extra > 0 else ""
        super().__init__(
            f"{len(violations)} protocol violation(s):\n  {shown}{suffix}"
        )


@dataclass
class _BankState:
    """Per-(channel, dimm, rank, bank) command history."""

    last_act: Optional[int] = None
    last_pre: Optional[int] = None
    last_rd: Optional[int] = None
    last_wr: Optional[int] = None
    last_act_event: Optional[CheckEvent] = None
    last_pre_event: Optional[CheckEvent] = None
    open_row: bool = False


@dataclass
class _RankState:
    """Per-(channel, dimm, rank) cross-bank history."""

    last_act: Optional[int] = None
    last_act_event: Optional[CheckEvent] = None
    wr_data_end: Optional[int] = None
    wr_event: Optional[CheckEvent] = None
    #: Last four ACT times+events (tFAW sliding window); only maintained
    #: when the trace's timing defines tFAW.
    act_window: List[Tuple[int, CheckEvent]] = field(default_factory=list)


@dataclass
class _FrameBook:
    """Southbound/northbound slot occupancy per channel."""

    #: southbound frame index -> [command_count, has_data]
    south: Dict[int, List[int]] = field(default_factory=dict)
    #: northbound frame index -> the NB_LINE event that booked it
    north: Dict[int, CheckEvent] = field(default_factory=dict)


class ProtocolChecker:
    """Validates a time-sorted :class:`CheckEvent` stream.

    One instance is single-use per trace: construct, call :meth:`check`,
    read the violations.
    """

    def __init__(self, params: TraceParams) -> None:
        if params.kind not in ("ddr2", "fbdimm"):
            raise ValueError(f"unknown memory kind {params.kind!r}")
        self.params = params
        self.timing = params.timing
        self.violations: List[Violation] = []
        self._banks: Dict[Tuple[int, int, int, int], _BankState] = {}
        self._ranks: Dict[Tuple[int, int, int], _RankState] = {}
        #: bus key -> list of (start, end, tag, event); DDR2 shares one bus
        #: per channel, FB-DIMM has one DDR2 bus per DIMM behind its AMB.
        self._bursts: Dict[Tuple, List[Tuple[int, int, Tuple, CheckEvent]]] = {}
        self._frames: Dict[int, _FrameBook] = {}
        self.commands_checked = 0

    # -- public API -----------------------------------------------------

    def check(self, events: List[CheckEvent]) -> List[Violation]:
        """Validate ``events`` (must be sorted by ``time_ps``)."""
        last_time = None
        for event in events:
            if last_time is not None and event.time_ps < last_time:
                raise ValueError(
                    "check trace is not time-sorted: "
                    f"{event.time_ps} after {last_time}"
                )
            last_time = event.time_ps
            if event.is_dram_command:
                self._check_dram(event)
            else:
                self._check_frame(event)
            self.commands_checked += 1
            if len(self.violations) >= MAX_VIOLATIONS:
                break
        self._check_bursts()
        self.violations.sort(key=lambda v: v.time_ps)
        return self.violations

    # -- DRAM command rules ----------------------------------------------

    def _flag(
        self,
        rule: str,
        event: CheckEvent,
        message: str,
        first: Optional[CheckEvent] = None,
    ) -> None:
        self.violations.append(
            Violation(
                rule=rule, time_ps=event.time_ps, message=message,
                first=first, second=event,
            )
        )

    def _gap(
        self,
        rule: str,
        earlier: Optional[int],
        earlier_event: Optional[CheckEvent],
        event: CheckEvent,
        minimum: int,
        what: str,
    ) -> None:
        """Flag when ``event`` follows ``earlier`` by less than ``minimum``."""
        if earlier is None:
            return
        gap = event.time_ps - earlier
        if gap < minimum:
            self._flag(
                rule,
                event,
                f"{what} at {event.location()}: gap {gap}ps < {minimum}ps "
                f"(previous at t={earlier}ps)",
                first=earlier_event,
            )

    def _check_dram(self, event: CheckEvent) -> None:
        t = self.timing
        bank_key = (event.channel, event.dimm, event.rank, event.bank)
        rank_key = (event.channel, event.dimm, event.rank)
        bank = self._banks.setdefault(bank_key, _BankState())
        rank = self._ranks.setdefault(rank_key, _RankState())

        if event.kind == "ACT":
            if bank.open_row:
                self._flag(
                    "row-state", event,
                    f"ACT at {event.location()} while a row is already open "
                    "(missing PRE)",
                    first=bank.last_act_event,
                )
            self._gap("tRC", bank.last_act, bank.last_act_event, event,
                      t.tRC, "ACT after ACT")
            self._gap("tRP", bank.last_pre, bank.last_pre_event, event,
                      t.tRP, "ACT after PRE")
            self._gap("tRRD", rank.last_act, rank.last_act_event, event,
                      t.tRRD, "ACT after rank ACT")
            if t.tFAW:
                window = rank.act_window
                if len(window) == 4:
                    oldest, oldest_event = window.pop(0)
                    self._gap("tFAW", oldest, oldest_event, event,
                              t.tFAW, "fifth ACT inside the tFAW window")
                window.append((event.time_ps, event))
            bank.last_act = event.time_ps
            bank.last_act_event = event
            bank.last_rd = bank.last_wr = None
            bank.open_row = True
            rank.last_act = event.time_ps
            rank.last_act_event = event
            return

        if event.kind == "PRE":
            if not bank.open_row:
                self._flag(
                    "row-state", event,
                    f"PRE at {event.location()} with no row open",
                )
            self._gap("tRAS", bank.last_act, bank.last_act_event, event,
                      t.tRAS, "PRE after ACT")
            self._gap("tRPD", bank.last_rd, None, event, t.tRPD,
                      "PRE after RD")
            self._gap("tWPD", bank.last_wr, None, event, t.tWPD,
                      "PRE after WR")
            bank.last_pre = event.time_ps
            bank.last_pre_event = event
            bank.open_row = False
            return

        # Column commands (RD / WR).
        if not bank.open_row:
            self._flag(
                "row-state", event,
                f"{event.kind} at {event.location()} with no row open",
            )
        self._gap("tRCD", bank.last_act, bank.last_act_event, event,
                  t.tRCD, f"{event.kind} after ACT")
        if event.kind == "RD":
            if rank.wr_data_end is not None:
                self._gap("tWTR", rank.wr_data_end, rank.wr_event, event,
                          t.tWTR, "RD after write-data end")
            bank.last_rd = event.time_ps
            self._note_burst(event, event.time_ps + t.tCL)
        else:  # WR
            bank.last_wr = event.time_ps
            data_end = event.time_ps + t.tWL + t.burst
            if rank.wr_data_end is None or data_end > rank.wr_data_end:
                rank.wr_data_end = data_end
                rank.wr_event = event
            self._note_burst(event, event.time_ps + t.tWL)

    # -- data-bus occupancy ------------------------------------------------

    def _note_burst(self, event: CheckEvent, start: int) -> None:
        if self.params.kind == "ddr2":
            bus_key: Tuple = ("ddr2", event.channel)
            tag: Tuple = (event.dimm, event.rank, event.kind)
        else:
            bus_key = ("dimm", event.channel, event.dimm)
            tag = ()
        self._bursts.setdefault(bus_key, []).append(
            (start, start + self.timing.burst, tag, event)
        )

    def _check_bursts(self) -> None:
        gap = self.params.switch_gap_ps
        for bus_key, bursts in sorted(self._bursts.items()):
            bursts.sort(key=lambda b: (b[0], b[1]))
            for (s1, e1, tag1, ev1), (s2, e2, tag2, ev2) in zip(
                bursts, bursts[1:]
            ):
                if s2 < e1:
                    self.violations.append(Violation(
                        rule="burst-overlap", time_ps=s2,
                        message=(
                            f"data bursts overlap on {'/'.join(map(str, bus_key))}: "
                            f"[{s1}, {e1}) from {ev1.kind}@{ev1.location()} vs "
                            f"[{s2}, {e2}) from {ev2.kind}@{ev2.location()}"
                        ),
                        first=ev1, second=ev2,
                    ))
                elif (
                    self.params.kind == "ddr2"
                    and tag1 != tag2
                    and s2 - e1 < gap
                ):
                    self.violations.append(Violation(
                        rule="bus-turnaround", time_ps=s2,
                        message=(
                            f"bursts {s2 - e1}ps apart across a "
                            f"direction/rank switch (< {gap}ps) on "
                            f"{'/'.join(map(str, bus_key))}: "
                            f"{ev1.kind}@{ev1.location()} then "
                            f"{ev2.kind}@{ev2.location()}"
                        ),
                        first=ev1, second=ev2,
                    ))

    # -- FB-DIMM frame slots ----------------------------------------------

    def _check_frame(self, event: CheckEvent) -> None:
        if self.params.kind != "fbdimm" or self.params.frame_ps <= 0:
            self._flag(
                "frame-align", event,
                f"frame event {event.kind} in a {self.params.kind} trace",
            )
            return
        frame_ps = self.params.frame_ps
        book = self._frames.setdefault(event.channel, _FrameBook())

        budget = self.params.max_retries
        if budget and event.retry > budget + 1:
            self._flag(
                "retry-budget", event,
                f"{event.kind} replay attempt {event.retry} exceeds the "
                f"retry budget of {budget} (+1 recovery replay)",
            )

        if event.kind == "NB_LINE":
            phase = self.params.nb_phase_ps
            if (event.time_ps - phase) % frame_ps:
                self._flag(
                    "frame-align", event,
                    f"northbound line start {event.time_ps}ps off the frame "
                    f"grid (frame {frame_ps}ps, phase {phase}ps)",
                )
                return
            index = (event.time_ps - phase) // frame_ps
            for k in range(max(1, event.frames)):
                taken = book.north.get(index + k)
                if taken is not None:
                    self._flag(
                        "frame-reuse", event,
                        f"northbound frame {index + k} "
                        f"(t={phase + (index + k) * frame_ps}ps) booked twice",
                        first=taken,
                    )
                else:
                    book.north[index + k] = event
            return

        # Southbound command / data frames sit on the unshifted grid.
        if event.time_ps % frame_ps:
            self._flag(
                "frame-align", event,
                f"southbound frame start {event.time_ps}ps off the "
                f"{frame_ps}ps frame grid",
            )
            return
        index = event.time_ps // frame_ps
        state = book.south.setdefault(index, [0, 0])
        if event.kind == "SB_CMD":
            state[0] += 1
        else:
            state[1] += 1
        commands, data = state
        limit = 1 if data else 3
        if data > 1 or commands > limit:
            self._flag(
                "frame-overcommit", event,
                f"southbound frame {index} (t={event.time_ps}ps) holds "
                f"{commands} command(s) + {data} data slot(s); a frame "
                "carries three commands, or one command plus 16 B of data",
            )


def check_trace(params: TraceParams, events: List[CheckEvent]) -> List[Violation]:
    """Convenience one-shot: run a fresh checker over ``events``."""
    return ProtocolChecker(params).check(events)
