"""The lint engine: rule registry, module contexts, suppression, ordering.

The engine is deliberately small: a *rule* is an object with an ``id``, a
``severity`` and a ``check_module`` (or, for cross-file analyses, a
``check_project``) method; the engine parses every file exactly once into a
:class:`ModuleContext`, hands the contexts to each registered rule, filters
findings whose source line carries a suppression comment, and returns them
in deterministic ``(path, line, rule)`` order.

Suppressions: a finding is dropped when its line contains
``# repro: ignore[rule-id]`` (several ids may be comma-separated, and the
bare form ``# repro: ignore`` silences every rule on that line).  Rules
migrated from the original determinism lint additionally honour their
legacy ``# det: allow`` marker so existing annotations keep working.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Tuple, Type, Union

#: Severity levels, in increasing order of importance.
SEVERITIES = ("warning", "error")

#: ``# repro: ignore`` / ``# repro: ignore[rule-a, rule-b]``.
_SUPPRESS_RE = re.compile(r"#\s*repro:\s*ignore(?:\[([A-Za-z0-9_, \t-]+)\])?")

#: Directory names the tree walker skips: deliberately-broken lint
#: fixtures live under ``tests/lint_fixtures`` and must not pollute the
#: repo gate (they are linted explicitly by the self-tests instead).
SKIP_DIR_NAMES = frozenset({"lint_fixtures", "__pycache__"})


@dataclass(frozen=True)
class Finding:
    """One static-analysis finding at a source location."""

    path: str
    line: int
    rule: str
    message: str
    severity: str = "error"

    def format(self) -> str:
        """``path:line: [rule] message`` (the human output line)."""
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"

    def key(self) -> Tuple[str, str, str]:
        """Baseline identity: line numbers shift under refactors, so a
        baseline entry matches on (path, rule, message) only."""
        return (self.path, self.rule, self.message)

    def to_record(self) -> Dict[str, object]:
        """JSON-ready flat dict (schema pinned by the tests)."""
        return {
            "path": self.path,
            "line": self.line,
            "rule": self.rule,
            "severity": self.severity,
            "message": self.message,
        }


class ModuleContext:
    """One parsed source file, shared by every rule.

    ``rel`` locates the module inside the ``repro`` package (e.g.
    ``engine/simulator.py``) or the test tree (``tests/test_x.py``); rules
    use it for package scoping.  Parsing happens once, here; a file that
    does not parse gets ``tree = None`` and a ``syntax-error`` finding from
    the engine itself (an unparseable file cannot be vouched for).
    """

    def __init__(self, path: str, rel: str, source: str) -> None:
        self.path = path
        self.rel = rel
        self.source = source
        self.lines: List[str] = source.splitlines()
        self.tree: Optional[ast.Module] = None
        self.syntax_error: Optional[SyntaxError] = None
        try:
            self.tree = ast.parse(source, filename=path)
        except SyntaxError as exc:
            self.syntax_error = exc

    @property
    def parts(self) -> Tuple[str, ...]:
        return Path(self.rel).parts

    def in_packages(self, *names: str) -> bool:
        """Whether the module lives inside any of the named packages."""
        return any(name in self.parts for name in names)

    @property
    def is_test_code(self) -> bool:
        """Test-tree modules: linted, but exempt from src-only rules."""
        return bool(self.parts) and self.parts[0] in ("tests", "benchmarks")

    @property
    def module_name(self) -> Optional[str]:
        """Dotted ``repro.x.y`` import name, or None for non-package files."""
        if self.is_test_code:
            return None
        parts = list(self.parts)
        if not parts or not parts[-1].endswith(".py"):
            return None
        leaf = parts[-1][:-3]
        if leaf == "__init__":
            parts = parts[:-1]
        else:
            parts[-1] = leaf
        return ".".join(["repro", *parts]) if parts else "repro"

    def suppressed(self, line: int, rule: "Rule") -> bool:
        """Whether the given 1-based line silences ``rule``."""
        if not 1 <= line <= len(self.lines):
            return False
        text = self.lines[line - 1]
        match = _SUPPRESS_RE.search(text)
        if match:
            ids = match.group(1)
            if ids is None:
                return True
            if rule.id in {part.strip() for part in ids.split(",")}:
                return True
        legacy = rule.legacy_suppress
        return legacy is not None and legacy in text


class Rule:
    """Base class for per-module rules.

    Subclasses set ``id`` / ``severity`` / ``description`` and implement
    :meth:`check_module`; register them with the :func:`register`
    decorator.  Findings should be emitted through :meth:`finding` so the
    severity and rule id stay consistent.
    """

    id: str = ""
    severity: str = "error"
    description: str = ""
    #: Legacy suppression marker honoured in addition to ``repro: ignore``
    #: (the four ported determinism rules keep ``det: allow`` working).
    legacy_suppress: Optional[str] = None

    def check_module(self, ctx: ModuleContext) -> Iterable[Finding]:
        return ()

    def finding(self, ctx: ModuleContext, node_or_line: Union[ast.AST, int],
                message: str) -> Finding:
        line = (node_or_line if isinstance(node_or_line, int)
                else getattr(node_or_line, "lineno", 0))
        return Finding(
            path=ctx.path, line=line, rule=self.id,
            message=message, severity=self.severity,
        )


class ProjectRule(Rule):
    """A rule that needs every module at once (cross-file analyses)."""

    def check_project(self, ctxs: Sequence[ModuleContext]) -> Iterable[Finding]:
        return ()


@dataclass
class _Registry:
    rules: Dict[str, Rule] = field(default_factory=dict)

    def add(self, rule: Rule) -> None:
        if not rule.id:
            raise ValueError(f"{type(rule).__name__} has no rule id")
        if rule.severity not in SEVERITIES:
            raise ValueError(
                f"rule {rule.id}: unknown severity {rule.severity!r}"
            )
        if rule.id in self.rules:
            raise ValueError(f"duplicate rule id {rule.id!r}")
        self.rules[rule.id] = rule


_REGISTRY = _Registry()


def register(rule_cls: Type[Rule]) -> Type[Rule]:
    """Class decorator: instantiate and add to the global registry."""
    _REGISTRY.add(rule_cls())
    return rule_cls


def all_rules() -> List[Rule]:
    """Every registered rule, sorted by id (deterministic reports)."""
    _load_builtin_rules()
    return [_REGISTRY.rules[rule_id] for rule_id in sorted(_REGISTRY.rules)]


def get_rule(rule_id: str) -> Rule:
    _load_builtin_rules()
    try:
        return _REGISTRY.rules[rule_id]
    except KeyError:
        raise KeyError(
            f"unknown rule {rule_id!r}; known: {sorted(_REGISTRY.rules)}"
        ) from None


def _load_builtin_rules() -> None:
    """Import the built-in rule modules (registration is import-driven)."""
    from repro.check.lint import rules  # noqa: F401  (side-effect import)


def module_rel_for(path: Path) -> str:
    """Best-effort module-relative path for a file on disk.

    Files under a ``repro`` package directory are located relative to it
    (``.../src/repro/engine/simulator.py`` -> ``engine/simulator.py``);
    files under ``tests``/``benchmarks`` keep that prefix; anything else
    falls back to its bare name.
    """
    parts = path.parts
    for anchor in ("repro", "tests", "benchmarks"):
        if anchor in parts:
            index = len(parts) - 1 - parts[::-1].index(anchor)
            tail = parts[index + 1:] if anchor == "repro" else parts[index:]
            if tail:
                return str(Path(*tail))
    return path.name


def _collect_files(paths: Sequence[Union[str, Path]]) -> List[Path]:
    files: List[Path] = []
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            for candidate in sorted(path.rglob("*.py")):
                if SKIP_DIR_NAMES.isdisjoint(candidate.parts[:-1]):
                    files.append(candidate)
        else:
            files.append(path)
    return files


class LintEngine:
    """Runs a set of rules over files, sources, or directory trees."""

    def __init__(self, rules: Optional[Sequence[Rule]] = None) -> None:
        self.rules: List[Rule] = list(rules) if rules is not None else all_rules()

    # -- entry points ----------------------------------------------------

    def lint_paths(self, paths: Sequence[Union[str, Path]]) -> List[Finding]:
        """Lint files and/or directory trees on disk."""
        ctxs = []
        for path in _collect_files(paths):
            source = path.read_text(encoding="utf-8")
            ctxs.append(ModuleContext(str(path), module_rel_for(path), source))
        return self.run(ctxs)

    def lint_sources(
        self, files: Sequence[Tuple[str, str]]
    ) -> List[Finding]:
        """Lint in-memory ``(module_rel, source)`` pairs (self-tests)."""
        ctxs = [ModuleContext(rel, rel, source) for rel, source in files]
        return self.run(ctxs)

    # -- plumbing --------------------------------------------------------

    def run(self, ctxs: Sequence[ModuleContext]) -> List[Finding]:
        findings: List[Finding] = []
        for ctx in ctxs:
            if ctx.syntax_error is not None:
                findings.append(Finding(
                    path=ctx.path, line=ctx.syntax_error.lineno or 0,
                    rule="syntax-error",
                    message=f"file does not parse: {ctx.syntax_error.msg}",
                ))
        parsed = [ctx for ctx in ctxs if ctx.tree is not None]
        by_path = {ctx.path: ctx for ctx in ctxs}
        for rule in self.rules:
            raw: List[Finding] = []
            if isinstance(rule, ProjectRule):
                raw.extend(rule.check_project(parsed))
            else:
                for ctx in parsed:
                    raw.extend(rule.check_module(ctx))
            for item in raw:
                ctx = by_path.get(item.path)
                if ctx is not None and ctx.suppressed(item.line, rule):
                    continue
                findings.append(item)
        findings.sort(key=lambda f: (f.path, f.line, f.rule, f.message))
        return findings


def errors_only(findings: Iterable[Finding]) -> List[Finding]:
    """The subset of findings that gate the exit code."""
    return [f for f in findings if f.severity == "error"]
