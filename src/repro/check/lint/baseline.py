"""Committed-baseline workflow: grandfather old findings, gate new ones.

A baseline is a JSON file listing findings that are known and accepted.
``diff_against_baseline`` matches the current findings against it as a
multiset keyed on ``(path, rule, message)`` — line numbers are excluded
so unrelated edits that shift code do not invalidate the baseline — and
returns what is *new* (gates the exit code) and which baseline entries
are *stale* (fixed; should be removed so the file never rots).

The repo commits ``lint-baseline.json`` at the root; the CI ``lint-deep``
job fails on any finding not in it.  The intended steady state is an
empty baseline: fix or suppress findings instead of baselining them, and
use the baseline only to land the gate before a large cleanup.
"""

from __future__ import annotations

import json
from collections import Counter
from pathlib import Path
from typing import Dict, List, Sequence, Tuple, Union

from repro.check.lint.core import Finding

BASELINE_VERSION = 1

_Key = Tuple[str, str, str]


def save_baseline(path: Union[str, Path],
                  findings: Sequence[Finding]) -> None:
    """Write the findings as an accepted baseline (sorted, stable)."""
    records = [f.to_record() for f in sorted(
        findings, key=lambda f: (f.path, f.line, f.rule, f.message)
    )]
    payload = {"version": BASELINE_VERSION, "findings": records}
    Path(path).write_text(
        json.dumps(payload, indent=2) + "\n", encoding="utf-8"
    )


def load_baseline(path: Union[str, Path]) -> "Counter[_Key]":
    """Load a baseline into its matching multiset.

    Raises ``ValueError`` for malformed or wrong-version files — a
    corrupt baseline must fail the gate loudly, not silently accept
    everything.
    """
    try:
        payload = json.loads(Path(path).read_text(encoding="utf-8"))
    except json.JSONDecodeError as exc:
        raise ValueError(f"baseline {path}: not valid JSON: {exc}") from exc
    if not isinstance(payload, dict):
        raise ValueError(f"baseline {path}: expected a JSON object")
    version = payload.get("version")
    if version != BASELINE_VERSION:
        raise ValueError(
            f"baseline {path}: unsupported version {version!r} "
            f"(expected {BASELINE_VERSION})"
        )
    findings = payload.get("findings")
    if not isinstance(findings, list):
        raise ValueError(f"baseline {path}: 'findings' must be a list")
    keys: "Counter[_Key]" = Counter()
    for record in findings:
        if not isinstance(record, dict):
            raise ValueError(f"baseline {path}: finding entries must be objects")
        try:
            keys[(str(record["path"]), str(record["rule"]),
                  str(record["message"]))] += 1
        except KeyError as exc:
            raise ValueError(
                f"baseline {path}: finding entry missing {exc}"
            ) from exc
    return keys


def diff_against_baseline(
    findings: Sequence[Finding], baseline: "Counter[_Key]"
) -> Tuple[List[Finding], List[_Key]]:
    """(new findings not in the baseline, stale baseline keys).

    Matching is multiset-aware: a baseline entry absorbs at most as many
    findings as its count, so a *second* occurrence of a baselined
    defect still gates.
    """
    budget = Counter(baseline)
    new: List[Finding] = []
    for finding in findings:
        key = finding.key()
        if budget.get(key, 0) > 0:
            budget[key] -= 1
        else:
            new.append(finding)
    stale = sorted(key for key, count in budget.items() if count > 0)
    return new, stale


def report_payload(
    findings: Sequence[Finding],
    new: Sequence[Finding],
    stale: Sequence[_Key],
    rules: Sequence[Tuple[str, str, str]],
) -> Dict[str, object]:
    """The machine-readable report (schema pinned by the tests)."""
    by_severity: Dict[str, int] = {}
    for finding in findings:
        by_severity[finding.severity] = by_severity.get(finding.severity, 0) + 1
    return {
        "version": BASELINE_VERSION,
        "rules": {
            rule_id: {"severity": severity, "description": description}
            for rule_id, severity, description in rules
        },
        "findings": [f.to_record() for f in findings],
        "new_findings": [f.to_record() for f in new],
        "stale_baseline": [list(key) for key in stale],
        "summary": {
            "total": len(findings),
            "new": len(new),
            "stale_baseline": len(stale),
            "by_severity": by_severity,
        },
    }
