"""Simulator-domain static analysis engine (``python -m repro.check lint``).

A plugin registry of AST rules over the repo's own source: the four
determinism rules from PR 1 plus unit-flow (``unit-mix``/``unit-return``),
worker shared-state, counter-drift (``stat-*``) and strict-typing
(``untyped-def``) analyses.  See ``docs/STATIC_ANALYSIS.md`` for the rule
catalogue, suppression syntax and the baseline workflow.
"""

from repro.check.lint.baseline import (
    diff_against_baseline,
    load_baseline,
    report_payload,
    save_baseline,
)
from repro.check.lint.core import (
    Finding,
    LintEngine,
    ModuleContext,
    ProjectRule,
    Rule,
    all_rules,
    errors_only,
    get_rule,
    register,
)

__all__ = [
    "Finding",
    "LintEngine",
    "ModuleContext",
    "ProjectRule",
    "Rule",
    "all_rules",
    "diff_against_baseline",
    "errors_only",
    "get_rule",
    "load_baseline",
    "register",
    "report_payload",
    "save_baseline",
]
