"""Golden fixtures: the lint engine's own regression suite.

Mirrors :mod:`repro.check.selftest` (the protocol checker's seeded-trace
suite): every rule has at least one deliberately-broken fixture it must
flag and one clean fixture it must pass, run with *all* rules enabled so
a fixture that trips an unrelated rule fails loudly.  A refactor that
quietly blinds a rule is caught in CI the same way a scheduler bug would
be (``python -m repro.check --self-test``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from repro.check.lint.core import LintEngine


@dataclass(frozen=True)
class LintSelfTestCase:
    """One in-memory project and the rule(s) it must (or must not) trip."""

    name: str
    files: Tuple[Tuple[str, str], ...]  # (module_rel, source)
    expect_rules: Tuple[str, ...]  # empty = must be clean


def _one(name: str, rel: str, source: str,
         *expect: str) -> LintSelfTestCase:
    return LintSelfTestCase(name, ((rel, source),), tuple(expect))


def _counter_project(
    collector_extra: str = "",
    writer: str = "    s.reads += 1\n",
    report_reads: str = "mem.reads",
    registry_reads: str = "stats.reads",
) -> Tuple[Tuple[str, str], ...]:
    """A minimal stats project: collector + writer + both export surfaces."""
    collector = (
        "from dataclasses import dataclass\n"
        "\n"
        "@dataclass\n"
        "class MemSystemStats:\n"
        "    reads: int = 0\n"
        + collector_extra
    )
    return (
        ("stats/collector.py", collector),
        ("controller/mod.py",
         "def account(s: object) -> None:\n" + writer),
        ("analysis/report.py",
         "def run_report(mem: object) -> str:\n"
         f"    return str({report_reads})\n"),
        ("telemetry/registry.py",
         "def registry_from_stats(stats: object) -> object:\n"
         f"    return ({registry_reads},)\n"),
    )


def cases() -> List[LintSelfTestCase]:
    """All fixture projects (deterministic order)."""
    out: List[LintSelfTestCase] = []

    # -- determinism: wall-clock ----------------------------------------
    out.append(_one(
        "bad-wall-clock", "engine/mod.py",
        "import time\nx = time.time()\n", "wall-clock",
    ))
    out.append(_one(
        "good-wall-clock-new-suppression", "engine/mod.py",
        "import time\nx = time.time()  # repro: ignore[wall-clock]\n",
    ))
    out.append(_one(
        "good-wall-clock-legacy-suppression", "engine/mod.py",
        "import time\nx = time.time()  # det: allow\n",
    ))

    # -- determinism: unseeded-random -----------------------------------
    out.append(_one(
        "bad-unseeded-random", "controller/mod.py",
        "import random\nx = random.random()\n", "unseeded-random",
    ))
    out.append(_one(
        "good-random-workloads-exempt", "workloads/gen.py",
        "import random\nx = random.shuffle([1])\n",
    ))
    out.append(_one(
        "good-random-instance", "controller/mod.py",
        "import random\nrng = random.Random(7)\nx = rng.random()\n",
    ))

    # -- determinism: set-iteration -------------------------------------
    out.append(_one(
        "bad-set-iteration", "analysis/mod.py",
        "for x in {1, 2}:\n    y = x\n", "set-iteration",
    ))
    out.append(_one(
        "good-sorted-set", "analysis/mod.py",
        "for x in sorted({1, 2}):\n    y = x\n",
    ))

    # -- determinism: float-time ----------------------------------------
    out.append(_one(
        "bad-float-time", "dram/mod.py",
        "y = delay_ps / 2\n", "float-time",
    ))
    out.append(_one(
        "good-float-time-cold-path", "experiments/mod.py",
        "y = delay_ps / 2\n",
    ))

    # -- unit-flow: unit-mix --------------------------------------------
    out.append(_one(
        "bad-unit-mix-arithmetic", "engine/mod.py",
        "total_ps = delay_ps + gap_ns\n", "unit-mix",
    ))
    out.append(_one(
        "bad-unit-mix-comparison", "channel/mod.py",
        "late = busy_ps > limit_ns\n", "unit-mix",
    ))
    out.append(_one(
        "bad-unit-mix-assignment", "channel/mod.py",
        "hop_ps = amb_hop_ns\n", "unit-mix",
    ))
    out.append(_one(
        "bad-unit-mix-cycles", "dram/mod.py",
        "wait_cycles = burst_clocks + settle_ps\n", "unit-mix",
    ))
    out.append(_one(
        "good-unit-mix-same-unit", "engine/mod.py",
        "total_ps = delay_ps + gap_ps\n",
    ))
    out.append(_one(
        "good-unit-mix-converted", "channel/mod.py",
        "hop_ps = ns(amb_hop_ns)\n",
    ))
    out.append(_one(
        "good-unit-mix-timing-table", "dram/mod.py",
        "window_ps = timing.tRCD + timing.tCL\n",
    ))
    out.append(_one(
        "bad-unit-mix-config-timings", "dram/mod.py",
        "window_ps = timings.tRCD + clock_ps\n", "unit-mix",
    ))
    out.append(_one(
        "good-unit-mix-cold-path", "experiments/mod.py",
        "total_ps = delay_ps + gap_ns\n",
    ))

    # -- unit-flow: unit-return -----------------------------------------
    out.append(_one(
        "bad-unit-return-wrong-suffix", "engine/mod.py",
        "def frame_gap_ps(delay_ns: int) -> int:\n    return delay_ns\n",
        "unit-return",
    ))
    out.append(_one(
        "bad-unit-return-unitless-name", "channel/mod.py",
        "def gap(delay_ps: int) -> int:\n    return delay_ps\n",
        "unit-return",
    ))
    out.append(_one(
        "good-unit-return", "engine/mod.py",
        "def frame_gap_ps(delay_ps: int) -> int:\n    return delay_ps\n",
    ))

    # -- worker-shared-state --------------------------------------------
    shared_bad_system = (
        "_CACHE: dict = {}\n"
        "\n"
        "def run_system(x: int) -> int:\n"
        "    _CACHE[x] = x\n"
        "    return x\n"
    )
    out.append(LintSelfTestCase(
        "bad-worker-shared-state",
        (
            ("experiments/parallel.py", "import repro.system\n"),
            ("system.py", shared_bad_system),
        ),
        ("worker-shared-state",),
    ))
    out.append(LintSelfTestCase(
        "bad-worker-shared-state-method-call",
        (
            ("experiments/parallel.py", "from repro.dram import bank\n"),
            ("dram/__init__.py", ""),
            ("dram/bank.py",
             "_SEEN: list = []\n"
             "\n"
             "def observe(x: int) -> None:\n"
             "    _SEEN.append(x)\n"),
        ),
        ("worker-shared-state",),
    ))
    out.append(LintSelfTestCase(
        "good-worker-shared-state-unreachable",
        (
            ("experiments/parallel.py", "import json\n"),
            ("system.py", shared_bad_system),
        ),
        (),
    ))
    out.append(LintSelfTestCase(
        "good-worker-module-level-init",
        (
            ("experiments/parallel.py", "import repro.system\n"),
            ("system.py",
             "_TABLE: dict = {}\n"
             "for index in range(4):\n"
             "    _TABLE[index] = index\n"),
        ),
        (),
    ))
    out.append(LintSelfTestCase(
        "good-worker-type-checking-import-no-edge",
        (
            ("experiments/parallel.py",
             "from typing import TYPE_CHECKING\n"
             "if TYPE_CHECKING:\n"
             "    import repro.system\n"),
            ("system.py", shared_bad_system),
        ),
        (),
    ))

    # -- counter-drift ---------------------------------------------------
    out.append(LintSelfTestCase(
        "good-counter-all-wired",
        _counter_project(),
        (),
    ))
    out.append(LintSelfTestCase(
        "bad-counter-no-increment",
        _counter_project(
            collector_extra="    lost_events: int = 0\n",
            report_reads="mem.reads) + str(mem.lost_events",
            registry_reads="stats.reads, stats.lost_events",
        ),
        ("stat-no-increment",),
    ))
    out.append(LintSelfTestCase(
        "bad-counter-unreported",
        _counter_project(
            collector_extra="    ghost: int = 0\n",
            writer="    s.reads += 1\n    s.ghost += 1\n",
            registry_reads="stats.reads, stats.ghost",
        ),
        ("stat-unreported",),
    ))
    out.append(LintSelfTestCase(
        "bad-counter-unregistered",
        _counter_project(
            collector_extra="    ghost: int = 0\n",
            writer="    s.reads += 1\n    s.ghost += 1\n",
            report_reads="mem.reads) + str(mem.ghost",
        ),
        ("stat-unregistered",),
    ))
    out.append(LintSelfTestCase(
        "good-counter-property-alias",
        _counter_project(
            collector_extra=(
                "    first_ps: int = -1\n"
                "\n"
                "    @property\n"
                "    def window_ps(self) -> int:\n"
                "        return self.first_ps\n"
            ),
            writer="    s.reads += 1\n    s.first_ps = 7\n",
            report_reads="mem.reads) + str(mem.window_ps",
            registry_reads="stats.reads, stats.window_ps",
        ),
        (),
    ))

    # -- untyped-def -----------------------------------------------------
    out.append(_one(
        "bad-untyped-def", "power/mod.py",
        "def scale(x):\n    return x\n", "untyped-def",
    ))
    out.append(_one(
        "good-typed-def", "power/mod.py",
        "def scale(x: float) -> float:\n    return x\n",
    ))
    out.append(_one(
        "good-untyped-def-tests-exempt", "tests/test_mod.py",
        "def helper(x):\n    return x\n",
    ))

    # -- engine plumbing -------------------------------------------------
    out.append(_one(
        "bad-syntax-error", "engine/broken.py",
        "def f(:\n", "syntax-error",
    ))
    return out


def run_self_test() -> Tuple[int, List[str]]:
    """Run every fixture; returns (cases run, failure descriptions)."""
    failures: List[str] = []
    all_cases = cases()
    for case in all_cases:
        findings = LintEngine().lint_sources(list(case.files))
        rules = {f.rule for f in findings}
        if not case.expect_rules:
            if findings:
                failures.append(
                    f"{case.name}: clean fixture flagged: "
                    + "; ".join(f.format() for f in findings)
                )
            continue
        missing = [rule for rule in case.expect_rules if rule not in rules]
        if missing:
            failures.append(
                f"{case.name}: seeded {missing} not flagged "
                f"(got {sorted(rules) or 'nothing'})"
            )
        unexpected = rules - set(case.expect_rules)
        if unexpected:
            failures.append(
                f"{case.name}: unexpected extra rules {sorted(unexpected)}"
            )
    return len(all_cases), failures
