"""``python -m repro.check lint`` — the static-analysis CLI.

Usage::

    python -m repro.check lint [PATH ...] [options]

With no paths, lints the installed ``repro`` sources.  Options:

* ``--baseline FILE`` — gate against a committed baseline: only findings
  absent from it fail the run, and stale (fixed) entries fail it too so
  the baseline never rots;
* ``--write-baseline FILE`` — accept the current findings as the new
  baseline and exit 0;
* ``--json-out FILE`` / ``--json`` — machine-readable report (written to
  FILE, or printed to stdout);
* ``--rules a,b`` — run only the named rules;
* ``--list-rules`` — print the rule catalogue and exit.

Exit status: 0 clean, 1 new error-severity findings (or stale baseline
entries), 2 usage or I/O error.  Warning-severity findings are reported
but do not gate.
"""

from __future__ import annotations

import argparse
import json
import sys
from collections import Counter
from typing import List, Optional, Sequence, Tuple

from repro.check.lint.baseline import (
    diff_against_baseline,
    load_baseline,
    report_payload,
    save_baseline,
)
from repro.check.lint.core import (
    Finding,
    LintEngine,
    ProjectRule,
    Rule,
    all_rules,
    errors_only,
)

EXIT_CLEAN = 0
EXIT_FINDINGS = 1
EXIT_USAGE = 2


def _select_rules(spec: Optional[str]) -> List[Rule]:
    rules = all_rules()
    if spec is None:
        return rules
    wanted = {part.strip() for part in spec.split(",") if part.strip()}
    known = {rule.id for rule in rules}
    unknown = sorted(wanted - known)
    if unknown:
        raise ValueError(
            f"unknown rule id(s) {unknown}; known: {sorted(known)}"
        )
    return [rule for rule in rules if rule.id in wanted]


def _print_catalogue(rules: Sequence[Rule]) -> None:
    width = max(len(rule.id) for rule in rules)
    for rule in rules:
        kind = "project" if isinstance(rule, ProjectRule) else "module"
        print(f"{rule.id:<{width}}  {rule.severity:<7}  {kind:<7}  "
              f"{rule.description}")


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.check lint",
        description="simulator-domain static analysis (rule engine)",
    )
    parser.add_argument(
        "paths", nargs="*", metavar="PATH",
        help="files or directories to lint (default: repro sources)",
    )
    parser.add_argument(
        "--baseline", metavar="FILE",
        help="gate against this committed baseline file",
    )
    parser.add_argument(
        "--write-baseline", metavar="FILE",
        help="accept the current findings into FILE and exit 0",
    )
    parser.add_argument(
        "--json", action="store_true",
        help="print the JSON report to stdout",
    )
    parser.add_argument(
        "--json-out", metavar="FILE",
        help="write the JSON report to FILE",
    )
    parser.add_argument(
        "--rules", metavar="ID[,ID...]",
        help="run only the named rules",
    )
    parser.add_argument(
        "--list-rules", action="store_true",
        help="print the rule catalogue and exit",
    )
    args = parser.parse_args(argv)

    try:
        rules = _select_rules(args.rules)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return EXIT_USAGE

    if args.list_rules:
        _print_catalogue(rules)
        return EXIT_CLEAN

    engine = LintEngine(rules)
    try:
        if args.paths:
            findings = engine.lint_paths(args.paths)
        else:
            from repro.check.determinism import repro_source_root

            root = repro_source_root()
            print(f"linting {root}")
            findings = engine.lint_paths([root])
    except OSError as exc:
        print(f"error: cannot lint: {exc}", file=sys.stderr)
        return EXIT_USAGE

    if args.write_baseline:
        save_baseline(args.write_baseline, findings)
        print(f"wrote {len(findings)} finding(s) to {args.write_baseline}")
        return EXIT_CLEAN

    baseline: "Counter[Tuple[str, str, str]]" = Counter()
    if args.baseline:
        try:
            baseline = load_baseline(args.baseline)
        except (OSError, ValueError) as exc:
            print(f"error: {exc}", file=sys.stderr)
            return EXIT_USAGE
    new, stale = diff_against_baseline(findings, baseline)

    payload = report_payload(
        findings, new, stale,
        [(rule.id, rule.severity, rule.description) for rule in rules],
    )
    if args.json_out:
        with open(args.json_out, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2)
            handle.write("\n")
    if args.json:
        print(json.dumps(payload, indent=2))
    else:
        _print_human(findings, new, stale, bool(args.baseline))

    gating = errors_only(new)
    if gating or stale:
        return EXIT_FINDINGS
    return EXIT_CLEAN


def _print_human(
    findings: Sequence[Finding],
    new: Sequence[Finding],
    stale: Sequence[Tuple[str, str, str]],
    baselined: bool,
) -> None:
    new_keys = {id(f) for f in new}
    for finding in findings:
        marker = "" if id(finding) in new_keys or not baselined \
            else " (baselined)"
        print(f"{finding.format()}{marker}")
    for key in stale:
        path, rule, message = key
        print(f"stale baseline entry (fixed — remove it): "
              f"{path}: [{rule}] {message}")
    errors = len(errors_only(list(new)))
    warnings = len(new) - errors
    print(
        f"lint: {len(findings)} finding(s), {errors} new error(s), "
        f"{warnings} new warning(s), {len(stale)} stale baseline entr"
        f"{'y' if len(stale) == 1 else 'ies'}"
    )


if __name__ == "__main__":
    sys.exit(main())
