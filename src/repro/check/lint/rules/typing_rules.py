"""Strict-typing rule: every ``def`` in ``src/repro`` is fully annotated.

CI runs mypy with ``disallow_untyped_defs`` over the whole package; this
AST rule enforces the same contract from inside the lint engine, so the
gate also runs where mypy is not installed and the self-test suite can
pin it.  A function is flagged when its return type or any parameter
annotation (``self``/``cls`` excepted) is missing.  Lambdas are exempt,
matching mypy.  Test and benchmark code is out of scope — the strict
surface is the shipped package.
"""

from __future__ import annotations

import ast
from typing import Iterable, List, Union

from repro.check.lint.core import Finding, ModuleContext, Rule, register

_FunctionNode = Union[ast.FunctionDef, ast.AsyncFunctionDef]


def _missing_annotations(node: _FunctionNode) -> List[str]:
    """Parameter names lacking annotations, plus ``return`` if absent."""
    args = node.args
    ordered = [*args.posonlyargs, *args.args]
    missing: List[str] = []
    for index, arg in enumerate(ordered):
        if index == 0 and arg.arg in ("self", "cls"):
            continue
        if arg.annotation is None:
            missing.append(arg.arg)
    for arg in args.kwonlyargs:
        if arg.annotation is None:
            missing.append(arg.arg)
    if args.vararg is not None and args.vararg.annotation is None:
        missing.append(f"*{args.vararg.arg}")
    if args.kwarg is not None and args.kwarg.annotation is None:
        missing.append(f"**{args.kwarg.arg}")
    if node.returns is None:
        missing.append("return")
    return missing


@register
class UntypedDefRule(Rule):
    id = "untyped-def"
    severity = "error"
    description = (
        "a function in src/repro missing parameter or return annotations "
        "(the package-wide mypy disallow_untyped_defs contract)"
    )

    def check_module(self, ctx: ModuleContext) -> Iterable[Finding]:
        if ctx.is_test_code:
            return ()
        assert ctx.tree is not None
        findings: List[Finding] = []
        for node in ast.walk(ctx.tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            missing = _missing_annotations(node)
            if missing:
                findings.append(self.finding(
                    ctx, node,
                    f"def {node.name}() is missing annotations for: "
                    + ", ".join(missing),
                ))
        return findings
