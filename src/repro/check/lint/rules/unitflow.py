"""Unit-flow analysis: picoseconds, nanoseconds and clock cycles must not mix.

The simulator's time base is integer picoseconds; configuration values are
nanoseconds (converted once through :func:`repro.engine.simulator.ns`) and
device parameters are sometimes expressed in DRAM clock cycles.  A unit is
inferred for an expression from lexical conventions:

* identifier suffixes — ``*_ps`` (also ``*_time``) is picoseconds,
  ``*_ns`` is nanoseconds, ``*_cycles``/``*_clocks``/``*_cyc`` is cycles;
* timing-table fields — ``tRCD``-style attributes are picoseconds on a
  :class:`~repro.dram.timing.TimingPs` bundle and nanoseconds on the
  config-side :class:`~repro.config.DramTimings`; by repo convention the
  ns-side bundle is always named ``timings`` (plural), so ``timings.tRCD``
  is ns and any other ``*.tRCD`` is ps;
* conversions — a call to ``ns(...)`` yields picoseconds (that is the
  converter's whole job); any other call is unit-opaque.

Flow rules (scoped to the hot timing packages ``engine``/``dram``/
``channel``):

* ``unit-mix`` (error) — ``+``/``-``/``%`` or a comparison between two
  expressions of *different known* units, or assignment of a known unit
  into a target whose suffix names a different unit;
* ``unit-return`` (warning) — a function whose name carries a unit suffix
  returning an expression of a different known unit, or a ``return`` of a
  unit-suffixed name from a function whose own name carries no unit
  (unit-less returns launder the unit out of the hot path).

Multiplication and division are unit-transforming (``cycles * clock_ps``
is picoseconds) and are never flagged here; the ``float-time`` rule owns
the float hazards on those operators.
"""

from __future__ import annotations

import ast
from typing import Iterable, List, Optional

from repro.check.lint.core import Finding, ModuleContext, Rule, register

#: Packages whose timing arithmetic is checked.
_HOT_PACKAGES = ("engine", "dram", "channel")

#: suffix -> unit.  Order matters: longest match first.
_SUFFIX_UNITS = (
    ("_cycles", "cycles"),
    ("_clocks", "cycles"),
    ("_time", "ps"),
    ("_cyc", "cycles"),
    ("_ps", "ps"),
    ("_ns", "ns"),
    ("_us", "us"),
)

#: Callables that convert into picoseconds.
_PS_CONVERTERS = {"ns"}


def unit_of_name(name: str) -> Optional[str]:
    """Unit implied by an identifier, or None."""
    for suffix, unit in _SUFFIX_UNITS:
        if name.endswith(suffix) and name != suffix.lstrip("_"):
            return unit
    return None


def _timing_field(name: str) -> bool:
    """``tRCD``-style Table 2 timing attribute names."""
    return len(name) >= 3 and name[0] == "t" and name[1:].isupper()


def unit_of(node: ast.AST) -> Optional[str]:
    """Infer the time unit of an expression, or None when unknown."""
    if isinstance(node, ast.Name):
        if _timing_field(node.id):
            return "ps"
        return unit_of_name(node.id)
    if isinstance(node, ast.Attribute):
        if _timing_field(node.attr):
            # Convention: the ns-side DramTimings bundle is named
            # ``timings``; every other holder carries the ps-side TimingPs.
            base = node.value
            base_name = base.attr if isinstance(base, ast.Attribute) else (
                base.id if isinstance(base, ast.Name) else ""
            )
            return "ns" if base_name == "timings" else "ps"
        return unit_of_name(node.attr)
    if isinstance(node, ast.Call):
        func = node.func
        func_name = func.id if isinstance(func, ast.Name) else (
            func.attr if isinstance(func, ast.Attribute) else ""
        )
        if func_name in _PS_CONVERTERS:
            return "ps"
        return unit_of_name(func_name)
    if isinstance(node, ast.BinOp):
        if isinstance(node.op, (ast.Add, ast.Sub, ast.Mod)):
            left, right = unit_of(node.left), unit_of(node.right)
            return left if left is not None else right
        return None  # * and / transform units; opaque here
    if isinstance(node, (ast.UnaryOp,)):
        return unit_of(node.operand)
    if isinstance(node, ast.IfExp):
        body, orelse = unit_of(node.body), unit_of(node.orelse)
        return body if body is not None else orelse
    return None


class _UnitVisitor(ast.NodeVisitor):
    def __init__(self, rule: Rule, ctx: ModuleContext) -> None:
        self.rule = rule
        self.ctx = ctx
        self.findings: List[Finding] = []

    def _mix(self, node: ast.AST, left: str, right: str, what: str) -> None:
        self.findings.append(self.rule.finding(
            self.ctx, node,
            f"{what} mixes time units: {left} vs {right}; convert at the "
            "boundary (ns() / integer cycle scaling), not mid-expression",
        ))

    def visit_BinOp(self, node: ast.BinOp) -> None:
        if isinstance(node.op, (ast.Add, ast.Sub, ast.Mod)):
            left, right = unit_of(node.left), unit_of(node.right)
            if left is not None and right is not None and left != right:
                op = {ast.Add: "+", ast.Sub: "-", ast.Mod: "%"}[type(node.op)]
                self._mix(node, left, right, f"'{op}' arithmetic")
        self.generic_visit(node)

    def visit_Compare(self, node: ast.Compare) -> None:
        units = [unit_of(item) for item in (node.left, *node.comparators)]
        known = [unit for unit in units if unit is not None]
        if len(set(known)) > 1:
            self._mix(node, known[0], known[1], "comparison")
        self.generic_visit(node)

    def _check_assign(self, target: ast.AST, value: ast.AST,
                      node: ast.AST) -> None:
        target_unit = unit_of(target)
        value_unit = unit_of(value)
        if (
            target_unit is not None and value_unit is not None
            and target_unit != value_unit
        ):
            self._mix(node, value_unit, target_unit,
                      "assignment into a unit-suffixed name")

    def visit_Assign(self, node: ast.Assign) -> None:
        for target in node.targets:
            self._check_assign(target, node.value, node)
        self.generic_visit(node)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        if node.value is not None:
            self._check_assign(node.target, node.value, node)
        self.generic_visit(node)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        if isinstance(node.op, (ast.Add, ast.Sub, ast.Mod)):
            self._check_assign(node.target, node.value, node)
        self.generic_visit(node)


@register
class UnitMixRule(Rule):
    id = "unit-mix"
    severity = "error"
    description = (
        "+/-/% arithmetic, comparison, or assignment between expressions "
        "whose names imply different time units (ps/ns/cycles) on the hot "
        "timing paths (engine/dram/channel)"
    )

    def check_module(self, ctx: ModuleContext) -> Iterable[Finding]:
        if not ctx.in_packages(*_HOT_PACKAGES):
            return ()
        assert ctx.tree is not None
        visitor = _UnitVisitor(self, ctx)
        visitor.visit(ctx.tree)
        return visitor.findings


class _ReturnVisitor(ast.NodeVisitor):
    def __init__(self, rule: Rule, ctx: ModuleContext) -> None:
        self.rule = rule
        self.ctx = ctx
        self.findings: List[Finding] = []

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._check_function(node)
        self.generic_visit(node)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._check_function(node)
        self.generic_visit(node)

    def _check_function(self, node: ast.AST) -> None:
        name = getattr(node, "name", "")
        declared = unit_of_name(name)
        for child in ast.walk(node):  # type: ignore[arg-type]
            if not isinstance(child, ast.Return) or child.value is None:
                continue
            returned = unit_of(child.value)
            if declared is not None and returned is not None \
                    and returned != declared:
                self.findings.append(self.rule.finding(
                    self.ctx, child,
                    f"function {name}() declares {declared} by suffix but "
                    f"returns a {returned} expression",
                ))
            elif declared is None and returned is not None \
                    and unit_of_name(name) is None and name:
                self.findings.append(self.rule.finding(
                    self.ctx, child,
                    f"function {name}() returns a {returned} value but its "
                    "name carries no unit suffix; name it so callers know "
                    f"the unit (e.g. {name}_{returned}())",
                ))


@register
class UnitReturnRule(Rule):
    id = "unit-return"
    severity = "warning"
    description = (
        "a hot-path function whose name carries a unit suffix returning a "
        "different unit, or returning a unit-suffixed value from a "
        "function whose name carries none"
    )

    def check_module(self, ctx: ModuleContext) -> Iterable[Finding]:
        if not ctx.in_packages(*_HOT_PACKAGES):
            return ()
        assert ctx.tree is not None
        visitor = _ReturnVisitor(self, ctx)
        visitor.visit(ctx.tree)
        return visitor.findings
