"""Counter-drift analysis: every stats field must be fed and exported.

The simulator has three counter dataclasses that feed the paper's
reported quantities: :class:`repro.stats.collector.MemSystemStats`
(whole-run totals), :class:`repro.timeline.records.WindowRecord` (the
windowed timeline's per-window deltas) and
:class:`repro.dram.bank.BankStats` (per-bank device counters folded by
the channel controllers).  A field drifts in two ways:

* **orphaned** — nothing increments it any more (a refactor moved the
  accounting and the field silently reads zero forever);
* **unexported** — it is incremented but never surfaced, so telemetry and
  the run report diverge from what the simulator actually measured.

Three rules, each anchored at the field's declaration line in its
collector module and applied to every counter spec:

* ``stat-no-increment`` — no write site anywhere in the project updates
  the field with a non-constant value (reset-to-zero assignments do not
  count; constructor keyword arguments do, which is how WindowRecord
  fields are fed);
* ``stat-unreported`` — neither the field nor a collector property
  derived from it is read by the spec's report path;
* ``stat-unregistered`` — the field is absent from the spec's export
  registration surface (``registry_from_stats`` for MemSystemStats; the
  explicit export column tuples in ``timeline/export.py`` for
  WindowRecord, where a field-name string constant counts as
  registration).

Fields consumed through a property (``elapsed_ps`` covers
``first_activity_ps``/``last_activity_ps``; ``bandwidth_gbs`` covers the
window byte counters) are credited when the *property* is read.  Export
checks run only when the respective surface module is part of the lint
run, so linting a file subset never produces spurious orphans.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterable, List, NamedTuple, Optional, Sequence, Set, Tuple

from repro.check.lint.core import (
    Finding,
    ModuleContext,
    ProjectRule,
    register,
)

#: Where the stats dataclass lives and which class to introspect.
COLLECTOR_REL = "stats/collector.py"
COLLECTOR_CLASS = "MemSystemStats"

#: The run-report export surface (modules whose reads count as reported).
REPORT_SURFACE = ("analysis/", "stats/metrics.py")

#: The telemetry export surface.
REGISTRY_REL = "telemetry/registry.py"
REGISTRY_FUNC = "registry_from_stats"

#: Method calls that count as feeding a container-typed field.
_FEEDING_METHODS = {"append", "setdefault", "add", "update", "__setitem__"}


class CounterSpec(NamedTuple):
    """One counter dataclass and the surfaces that must consume it."""

    collector_rel: str
    collector_class: str
    #: Report-path entries: a trailing ``/`` matches a directory prefix,
    #: anything else must match the module path exactly.
    report_surface: Tuple[str, ...]
    report_label: str
    registry_rel: str
    #: Function whose body counts as registration; None = whole module.
    registry_func: Optional[str]
    registry_label: str


_SPECS = (
    CounterSpec(
        collector_rel=COLLECTOR_REL,
        collector_class=COLLECTOR_CLASS,
        report_surface=REPORT_SURFACE,
        report_label="the report path (analysis/ or stats/metrics.py)",
        registry_rel=REGISTRY_REL,
        registry_func=REGISTRY_FUNC,
        registry_label=f"{REGISTRY_FUNC} (telemetry/registry.py)",
    ),
    CounterSpec(
        collector_rel="timeline/records.py",
        collector_class="WindowRecord",
        report_surface=("timeline/report.py", "timeline/diff.py", "analysis/"),
        report_label="the timeline report path (timeline/report.py,"
                     " timeline/diff.py or analysis/)",
        registry_rel="timeline/export.py",
        registry_func=None,
        registry_label="the timeline export columns (timeline/export.py)",
    ),
    # Per-bank counters surface through the channel controllers'
    # collect_device_counters fold (a method, so registry_func must stay
    # None: the registry scan only sees module-level functions).  New bank
    # counters — the tFAW stall pair, future refresh accounting — cannot
    # silently skip that fold.
    CounterSpec(
        collector_rel="dram/bank.py",
        collector_class="BankStats",
        report_surface=("controller/channel_controller.py", "channel/"),
        report_label="the device-counter fold "
                     "(controller/channel_controller.py or channel/)",
        registry_rel="controller/channel_controller.py",
        registry_func=None,
        registry_label="the device-counter fold "
                       "(controller/channel_controller.py)",
    ),
    # Prefetch tag-store counters (lookups/hits/inserts/evictions/
    # invalidations) surface through the FB-DIMM controller's
    # collect_device_counters fold into the pf_table_* stats fields;
    # TableStats.evictions once went dark for whole PRs because nothing
    # reconciled it — this spec makes that structurally impossible.
    CounterSpec(
        collector_rel="controller/prefetch_table.py",
        collector_class="TableStats",
        report_surface=("controller/channel_controller.py",),
        report_label="the tag-store counter fold "
                     "(controller/channel_controller.py)",
        registry_rel="controller/channel_controller.py",
        registry_func=None,
        registry_label="the tag-store counter fold "
                       "(controller/channel_controller.py)",
    ),
)


def _find_class(tree: ast.Module, name: str) -> Optional[ast.ClassDef]:
    for node in tree.body:
        if isinstance(node, ast.ClassDef) and node.name == name:
            return node
    return None


def _stat_fields(cls: ast.ClassDef) -> Dict[str, int]:
    """Dataclass field name -> declaration line."""
    fields: Dict[str, int] = {}
    for node in cls.body:
        if isinstance(node, ast.AnnAssign) and isinstance(node.target,
                                                          ast.Name):
            fields[node.target.id] = node.lineno
    return fields


def _property_aliases(cls: ast.ClassDef,
                      fields: Dict[str, int]) -> Dict[str, Set[str]]:
    """field -> {property names whose body reads it} (export credit)."""
    aliases: Dict[str, Set[str]] = {name: set() for name in fields}
    for node in cls.body:
        if not isinstance(node, ast.FunctionDef):
            continue
        is_property = any(
            (isinstance(dec, ast.Name) and dec.id == "property")
            or (isinstance(dec, ast.Attribute) and dec.attr in
                ("property", "cached_property"))
            for dec in node.decorator_list
        )
        if not is_property:
            continue
        for child in ast.walk(node):
            if isinstance(child, ast.Attribute) and child.attr in fields:
                aliases[child.attr].add(node.name)
    return aliases


def _is_reset_value(value: ast.AST) -> bool:
    """Constant zero/None/-1 or an empty container literal (reset, not feed)."""
    if isinstance(value, ast.Constant):
        return value.value in (0, -1, None)
    if isinstance(value, ast.UnaryOp) and isinstance(value.op, ast.USub):
        return isinstance(value.operand, ast.Constant)
    if isinstance(value, (ast.List, ast.Dict, ast.Set)):
        return not getattr(value, "keys", None) and not getattr(
            value, "elts", None
        )
    if isinstance(value, ast.Call):
        func = value.func
        name = func.id if isinstance(func, ast.Name) else ""
        return name in ("list", "dict", "set") and not value.args
    return False


def _attribute_stores(tree: ast.Module, fields: Dict[str, int]) -> Set[str]:
    """Fields written with a non-reset value anywhere in a module."""
    fed: Set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.AugAssign):
            target = node.target
            if isinstance(target, ast.Attribute) and target.attr in fields:
                fed.add(target.attr)
        elif isinstance(node, ast.Assign):
            for target in node.targets:
                if isinstance(target, ast.Attribute) \
                        and target.attr in fields \
                        and not _is_reset_value(node.value):
                    fed.add(target.attr)
                if isinstance(target, ast.Subscript):
                    inner = target.value
                    if isinstance(inner, ast.Attribute) \
                            and inner.attr in fields:
                        fed.add(inner.attr)
        elif isinstance(node, ast.Call):
            func = node.func
            if isinstance(func, ast.Attribute) \
                    and func.attr in _FEEDING_METHODS:
                receiver = func.value
                if isinstance(receiver, ast.Attribute) \
                        and receiver.attr in fields:
                    fed.add(receiver.attr)
    return fed


def _ctor_feeds(tree: ast.Module, class_name: str,
                fields: Dict[str, int]) -> Set[str]:
    """Fields passed as keyword arguments to ``class_name(...)`` calls.

    Frozen dataclasses (WindowRecord) are fed at construction, not by
    attribute stores; a keyword in any constructor call counts.
    """
    fed: Set[str] = set()
    for node in ast.walk(tree):
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        name = func.id if isinstance(func, ast.Name) else (
            func.attr if isinstance(func, ast.Attribute) else ""
        )
        if name != class_name:
            continue
        for keyword in node.keywords:
            if keyword.arg in fields:
                fed.add(keyword.arg)
    return fed


def _attribute_reads(node: ast.AST, names: Set[str]) -> Set[str]:
    """Which of ``names`` are read as attributes anywhere under ``node``."""
    seen: Set[str] = set()
    for child in ast.walk(node):
        if isinstance(child, ast.Attribute) and child.attr in names:
            seen.add(child.attr)
    return seen


def _string_mentions(node: ast.AST, names: Set[str]) -> Set[str]:
    """Which of ``names`` appear as exact string constants under ``node``.

    The timeline exporter registers columns through explicit name tuples
    (``WINDOW_FIELDS``); a field name present there counts as exported.
    """
    seen: Set[str] = set()
    for child in ast.walk(node):
        if isinstance(child, ast.Constant) and isinstance(child.value, str) \
                and child.value in names:
            seen.add(child.value)
    return seen


@register
class CounterDriftRule(ProjectRule):
    """Umbrella project rule emitting the three ``stat-*`` findings.

    One registry entry per finding id keeps suppression and selection
    per-id; this class is registered three times through the subclasses
    below, each filtering the shared analysis to its own id.  Each rule
    runs once per :data:`CounterSpec`, so MemSystemStats and the
    timeline's WindowRecord are reconciled by the same machinery.
    """

    id = "stat-no-increment"
    severity = "error"
    description = (
        "a counter dataclass field (MemSystemStats, WindowRecord) with no "
        "non-reset write site anywhere in the project (the counter "
        "silently reads zero forever)"
    )
    _emit = "stat-no-increment"

    def check_project(
        self, ctxs: Sequence[ModuleContext]
    ) -> Iterable[Finding]:
        findings: List[Finding] = []
        for spec in _SPECS:
            findings.extend(self._check_spec(spec, ctxs))
        return findings

    def _check_spec(
        self, spec: CounterSpec, ctxs: Sequence[ModuleContext]
    ) -> Iterable[Finding]:
        collector = next(
            (ctx for ctx in ctxs if ctx.rel == spec.collector_rel), None
        )
        if collector is None or collector.tree is None:
            return ()
        cls = _find_class(collector.tree, spec.collector_class)
        if cls is None:
            return ()
        fields = _stat_fields(cls)
        aliases = _property_aliases(cls, fields)

        findings: List[Finding] = []
        if self._emit == "stat-no-increment":
            fed: Set[str] = set()
            for ctx in ctxs:
                if ctx.tree is not None and not ctx.is_test_code:
                    fed |= _attribute_stores(ctx.tree, fields)
                    fed |= _ctor_feeds(ctx.tree, spec.collector_class, fields)
            for name, line in sorted(fields.items()):
                if name not in fed:
                    findings.append(self.finding(
                        collector, line,
                        f"{spec.collector_class}.{name} has no increment/"
                        "write site: the counter can only ever read its "
                        "default",
                    ))
            return findings

        if self._emit == "stat-unreported":
            surface = [
                ctx for ctx in ctxs
                if ctx.tree is not None and any(
                    ctx.rel.startswith(entry) if entry.endswith("/")
                    else ctx.rel == entry
                    for entry in spec.report_surface
                )
            ]
            label = spec.report_label
        else:
            surface = [
                ctx for ctx in ctxs
                if ctx.tree is not None and ctx.rel == spec.registry_rel
            ]
            label = spec.registry_label
        if not surface:
            return ()

        read: Set[str] = set()
        searchable = set(fields)
        for names in aliases.values():
            searchable |= names
        for ctx in surface:
            assert ctx.tree is not None
            scope: ast.AST = ctx.tree
            if self._emit == "stat-unregistered" \
                    and spec.registry_func is not None:
                for node in ctx.tree.body:
                    if isinstance(node, ast.FunctionDef) \
                            and node.name == spec.registry_func:
                        scope = node
                        break
            read |= _attribute_reads(scope, searchable)
            if self._emit == "stat-unregistered":
                read |= _string_mentions(scope, searchable)
        for name, line in sorted(fields.items()):
            credited = {name} | aliases[name]
            if not credited & read:
                findings.append(self.finding(
                    collector, line,
                    f"{spec.collector_class}.{name} is never exported "
                    f"through {label}: telemetry and paper figures can "
                    "drift",
                ))
        return findings


@register
class StatUnreportedRule(CounterDriftRule):
    id = "stat-unreported"
    description = (
        "a counter dataclass field (or a property derived from it) never "
        "read by its report path (analysis/ modules, stats/metrics.py, or "
        "the timeline report)"
    )
    _emit = "stat-unreported"


@register
class StatUnregisteredRule(CounterDriftRule):
    id = "stat-unregistered"
    description = (
        "a counter dataclass field (or a property derived from it) never "
        "exported through its registration surface (registry_from_stats "
        "or the timeline export columns)"
    )
    _emit = "stat-unregistered"
