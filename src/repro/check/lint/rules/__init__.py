"""Built-in lint rules.  Importing this package registers every rule.

Rule families (see ``docs/STATIC_ANALYSIS.md`` for the catalogue):

* :mod:`~repro.check.lint.rules.determinism` — the four PR-1 rules
  (``wall-clock``, ``unseeded-random``, ``set-iteration``, ``float-time``);
* :mod:`~repro.check.lint.rules.unitflow` — ``unit-mix``, ``unit-return``;
* :mod:`~repro.check.lint.rules.sharedstate` — ``worker-shared-state``;
* :mod:`~repro.check.lint.rules.counterdrift` — ``stat-no-increment``,
  ``stat-unreported``, ``stat-unregistered``;
* :mod:`~repro.check.lint.rules.typing_rules` — ``untyped-def``.
"""

from repro.check.lint.rules import (  # noqa: F401  (registration imports)
    counterdrift,
    determinism,
    sharedstate,
    typing_rules,
    unitflow,
)

__all__ = [
    "counterdrift",
    "determinism",
    "sharedstate",
    "typing_rules",
    "unitflow",
]
