"""Shared-state analysis: worker processes must not mutate module globals.

``repro.experiments.parallel`` fans independent runs out across a
``ProcessPoolExecutor``.  Its correctness contract — a worker's result is
bit-identical to the same run executed inline — holds only if worker code
is a pure function of its pickled inputs.  Module-level mutable state
breaks that silently: with ``fork`` the mutation leaks *between runs in
the same worker*, with ``spawn`` it diverges from the inline path, and
either way results depend on run-to-worker placement.

The rule builds the intra-``repro`` import graph from the linted modules,
seeds it at the worker entry module (``experiments/parallel.py``) and
computes the transitive closure of modules a worker can execute.  Inside
that closure it flags, per module:

* ``global NAME`` rebinding of a module-level name from a function body;
* in-place mutation of a module-level mutable container (assignment or
  deletion through ``NAME[...]``, and mutating method calls such as
  ``NAME.append`` / ``NAME.update`` / ``NAME.setdefault``), whether
  through the local name or through an ``imported_module.NAME`` attribute.

Imports guarded by ``if TYPE_CHECKING:`` never execute and contribute no
edges.  Module-level *initialisation* of constants is fine — only writes
reachable from function bodies are flagged.  When the worker entry module
is not part of the lint run (linting a file subset) the rule stays
silent; the self-test fixtures pin that it fires on a whole project.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterable, List, Sequence, Set, Tuple

from repro.check.lint.core import (
    Finding,
    ModuleContext,
    ProjectRule,
    register,
)

#: Module whose imports seed worker-reachability (the ProcessPool entry).
WORKER_ENTRY_REL = "experiments/parallel.py"

#: Method names that mutate their receiver in place.
_MUTATING_METHODS = {
    "append", "extend", "insert", "add", "update", "setdefault", "pop",
    "popitem", "clear", "remove", "discard", "appendleft", "extendleft",
    "sort", "reverse",
}

#: Constructor names whose result is module-level mutable state.
_MUTABLE_FACTORIES = {
    "list", "dict", "set", "bytearray", "defaultdict", "deque", "Counter",
    "OrderedDict",
}


def _is_type_checking_test(test: ast.AST) -> bool:
    for node in ast.walk(test):
        if isinstance(node, ast.Name) and node.id == "TYPE_CHECKING":
            return True
        if isinstance(node, ast.Attribute) and node.attr == "TYPE_CHECKING":
            return True
    return False


def _runtime_imports(tree: ast.Module) -> List[str]:
    """Dotted module names imported at runtime (TYPE_CHECKING excluded)."""
    imports: List[str] = []

    def walk(nodes: Sequence[ast.stmt]) -> None:
        for node in nodes:
            if isinstance(node, ast.If) and _is_type_checking_test(node.test):
                walk(node.orelse)
                continue
            if isinstance(node, ast.Import):
                imports.extend(alias.name for alias in node.names)
            elif isinstance(node, ast.ImportFrom):
                if node.module:
                    imports.append(node.module)
                    # ``from repro.x import y`` may pull submodule y.
                    imports.extend(
                        f"{node.module}.{alias.name}" for alias in node.names
                    )
            elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                                   ast.ClassDef)):
                walk(node.body)
            elif isinstance(node, (ast.If, ast.For, ast.While, ast.With,
                                   ast.Try)):
                walk(getattr(node, "body", []))
                walk(getattr(node, "orelse", []))
                walk(getattr(node, "finalbody", []))
                for handler in getattr(node, "handlers", []):
                    walk(handler.body)

    walk(tree.body)
    return imports


def _module_level_mutables(tree: ast.Module) -> Dict[str, int]:
    """Module-level names bound to mutable containers -> def line."""
    mutables: Dict[str, int] = {}
    for node in tree.body:
        targets: List[ast.expr] = []
        value: ast.expr
        if isinstance(node, ast.Assign):
            targets, value = node.targets, node.value
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            targets, value = [node.target], node.value
        else:
            continue
        mutable = isinstance(value, (ast.List, ast.Dict, ast.Set,
                                     ast.ListComp, ast.DictComp,
                                     ast.SetComp))
        if isinstance(value, ast.Call):
            func = value.func
            name = func.id if isinstance(func, ast.Name) else (
                func.attr if isinstance(func, ast.Attribute) else ""
            )
            mutable = name in _MUTABLE_FACTORIES
        if not mutable:
            continue
        for target in targets:
            if isinstance(target, ast.Name):
                mutables[target.id] = node.lineno
    return mutables


def _base_name(node: ast.AST) -> Tuple[str, str]:
    """(module-alias, name) for ``NAME`` or ``alias.NAME`` expressions."""
    if isinstance(node, ast.Name):
        return "", node.id
    if isinstance(node, ast.Attribute) and isinstance(node.value, ast.Name):
        return node.value.id, node.attr
    return "", ""


class _MutationVisitor(ast.NodeVisitor):
    """Finds function-body writes to module-level mutable names."""

    def __init__(
        self,
        rule: "WorkerSharedStateRule",
        ctx: ModuleContext,
        local_mutables: Set[str],
        imported_mutables: Dict[str, Set[str]],
    ) -> None:
        self.rule = rule
        self.ctx = ctx
        self.local_mutables = local_mutables
        self.imported_mutables = imported_mutables
        self.findings: List[Finding] = []
        self._function_depth = 0

    def _is_shared(self, node: ast.AST) -> Tuple[bool, str]:
        alias, name = _base_name(node)
        if not name:
            return False, ""
        if not alias:
            return name in self.local_mutables, name
        shared = name in self.imported_mutables.get(alias, set())
        return shared, f"{alias}.{name}"

    def _flag(self, node: ast.AST, name: str, how: str) -> None:
        self.findings.append(self.rule.finding(
            self.ctx, node,
            f"{how} of module-level mutable {name!r} in worker-reachable "
            "code: ProcessPool workers must be pure functions of their "
            "pickled inputs (pass state in, return state out)",
        ))

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._function_depth += 1
        self.generic_visit(node)
        self._function_depth -= 1

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._function_depth += 1
        self.generic_visit(node)
        self._function_depth -= 1

    def visit_Global(self, node: ast.Global) -> None:
        if self._function_depth:
            for name in node.names:
                self._flag(node, name, "'global' rebinding")
        self.generic_visit(node)

    def _check_store_target(self, target: ast.AST) -> None:
        if isinstance(target, (ast.Subscript, ast.Attribute)):
            shared, name = self._is_shared(target.value)
            if shared:
                self._flag(target, name, "item/attribute write")

    def visit_Assign(self, node: ast.Assign) -> None:
        if self._function_depth:
            for target in node.targets:
                self._check_store_target(target)
        self.generic_visit(node)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        if self._function_depth:
            self._check_store_target(node.target)
        self.generic_visit(node)

    def visit_Delete(self, node: ast.Delete) -> None:
        if self._function_depth:
            for target in node.targets:
                self._check_store_target(target)
        self.generic_visit(node)

    def visit_Call(self, node: ast.Call) -> None:
        if (self._function_depth and isinstance(node.func, ast.Attribute)
                and node.func.attr in _MUTATING_METHODS):
            shared, name = self._is_shared(node.func.value)
            if shared:
                self._flag(node, name, f".{node.func.attr}() mutation")
        self.generic_visit(node)


@register
class WorkerSharedStateRule(ProjectRule):
    id = "worker-shared-state"
    severity = "error"
    description = (
        "module-level mutable state written from code reachable by the "
        "experiments.parallel ProcessPool worker entry points"
    )

    def check_project(
        self, ctxs: Sequence[ModuleContext]
    ) -> Iterable[Finding]:
        by_module: Dict[str, ModuleContext] = {}
        for ctx in ctxs:
            name = ctx.module_name
            if name is not None:
                by_module[name] = ctx

        entry = next(
            (ctx for ctx in ctxs if ctx.rel == WORKER_ENTRY_REL), None
        )
        if entry is None or entry.module_name is None:
            return ()

        # Transitive closure of runtime imports, restricted to the
        # modules actually present in this lint run.
        reachable: Set[str] = set()
        frontier = [entry.module_name]
        while frontier:
            current = frontier.pop()
            if current in reachable:
                continue
            reachable.add(current)
            ctx = by_module.get(current)
            if ctx is None or ctx.tree is None:
                continue
            for imported in _runtime_imports(ctx.tree):
                for candidate in (imported, f"{imported}.__init__"):
                    if candidate in by_module and candidate not in reachable:
                        frontier.append(candidate)
                # Importing repro.a.b executes repro.a's __init__ too.
                parts = imported.split(".")
                for depth in range(1, len(parts)):
                    parent = ".".join(parts[:depth])
                    if parent in by_module and parent not in reachable:
                        frontier.append(parent)

        # Per-module mutable globals, then alias table for cross-module
        # ``import x as y; y.STATE[...] = ...`` writes.
        mutables: Dict[str, Dict[str, int]] = {}
        for name in reachable:
            ctx = by_module.get(name)
            if ctx is not None and ctx.tree is not None:
                mutables[name] = _module_level_mutables(ctx.tree)

        findings: List[Finding] = []
        for name in sorted(reachable):
            ctx = by_module.get(name)
            if ctx is None or ctx.tree is None:
                continue
            imported_mutables: Dict[str, Set[str]] = {}
            for stmt in ast.walk(ctx.tree):
                if isinstance(stmt, ast.Import):
                    for alias in stmt.names:
                        target = alias.name
                        if target in mutables:
                            local = alias.asname or target.split(".")[0]
                            imported_mutables.setdefault(local, set()).update(
                                mutables[target]
                            )
            visitor = _MutationVisitor(
                self, ctx, set(mutables.get(name, {})), imported_mutables
            )
            visitor.visit(ctx.tree)
            findings.extend(visitor.findings)
        return findings
