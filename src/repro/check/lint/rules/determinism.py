"""The four determinism rules, ported from the original PR-1 lint.

Rule ids, messages and golden outputs are unchanged from
``repro.check.determinism``; that module is now a thin shim that runs
exactly these rules.  Each rule keeps the legacy ``# det: allow``
suppression marker working alongside ``# repro: ignore[rule-id]``.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterable, List, Optional, Sequence, Type

from repro.check.lint.core import Finding, ModuleContext, Rule, register

#: Wall-clock callables, as dotted names rooted at the module.
_WALL_CLOCK = {
    "time.time", "time.time_ns", "time.monotonic", "time.monotonic_ns",
    "time.perf_counter", "time.perf_counter_ns", "time.clock_gettime",
    "datetime.datetime.now", "datetime.datetime.utcnow",
    "datetime.datetime.today", "datetime.date.today",
}

#: ``random`` module attributes that are legitimate without an instance.
_RANDOM_OK = {"Random", "SystemRandom", "getstate", "setstate"}

#: Packages whose time values must stay integer picoseconds.
_HOT_PACKAGES = ("engine", "dram", "channel", "controller")

#: Identifier endings that denote a picosecond quantity.
_PS_SUFFIXES = ("_ps", "_time")
_PS_NAMES = {"now", "clock", "burst", "time_ps", "earliest", "deadline"}

#: Legacy suppression comment (pre-framework syntax), still honoured.
SUPPRESS_MARK = "det: allow"


def dotted_name(node: ast.AST) -> Optional[str]:
    """Resolve ``a.b.c`` attribute chains to a dotted string."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def is_ps_name(node: ast.AST) -> bool:
    """Whether an expression names a picosecond-typed value."""
    if isinstance(node, ast.Attribute):
        name = node.attr
    elif isinstance(node, ast.Name):
        name = node.id
    else:
        return False
    if name in _PS_NAMES or name.endswith(_PS_SUFFIXES):
        return True
    # Table 2 timing attributes: tRCD, tRP, tWTR, ... (TimingPs fields).
    return len(name) >= 3 and name[0] == "t" and name[1:].isupper()


class ImportTrackingVisitor(ast.NodeVisitor):
    """NodeVisitor that resolves local aliases to canonical dotted names."""

    def __init__(self) -> None:
        #: local alias -> canonical dotted name (import tracking)
        self.aliases: Dict[str, str] = {}

    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            self.aliases[alias.asname or alias.name.split(".")[0]] = (
                alias.name if alias.asname else alias.name.split(".")[0]
            )
        self.generic_visit(node)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        if node.module:
            for alias in node.names:
                self.aliases[alias.asname or alias.name] = (
                    f"{node.module}.{alias.name}"
                )
        self.generic_visit(node)

    def canonical(self, node: ast.AST) -> Optional[str]:
        """Canonical dotted name of a call target, following imports."""
        dotted = dotted_name(node)
        if dotted is None:
            return None
        head, _, rest = dotted.partition(".")
        head = self.aliases.get(head, head)
        return f"{head}.{rest}" if rest else head


class _DeterminismRule(Rule):
    """Shared plumbing: run a visitor class and collect its findings."""

    legacy_suppress = SUPPRESS_MARK
    visitor_cls: Type["_CallRuleVisitor"]

    def check_module(self, ctx: ModuleContext) -> Iterable[Finding]:
        assert ctx.tree is not None
        visitor = self.visitor_cls(self, ctx)
        visitor.visit(ctx.tree)
        return visitor.findings


class _CallRuleVisitor(ImportTrackingVisitor):
    def __init__(self, rule: Rule, ctx: ModuleContext) -> None:
        super().__init__()
        self.rule = rule
        self.ctx = ctx
        self.findings: List[Finding] = []


class _WallClockVisitor(_CallRuleVisitor):
    def visit_Call(self, node: ast.Call) -> None:
        target = self.canonical(node.func)
        if target in _WALL_CLOCK:
            self.findings.append(self.rule.finding(
                self.ctx, node,
                f"call to {target}(): simulator code must use simulated "
                "time, not the host clock",
            ))
        self.generic_visit(node)


@register
class WallClockRule(_DeterminismRule):
    id = "wall-clock"
    description = (
        "calls to time.time()/monotonic()/perf_counter()/datetime.now() "
        "and friends; simulated time is the only clock model code may read"
    )
    visitor_cls = _WallClockVisitor


class _UnseededRandomVisitor(_CallRuleVisitor):
    def visit_Call(self, node: ast.Call) -> None:
        target = self.canonical(node.func)
        if target is not None and target.startswith("random."):
            attr = target.split(".", 1)[1]
            if attr not in _RANDOM_OK and not self.ctx.in_packages("workloads"):
                self.findings.append(self.rule.finding(
                    self.ctx, node,
                    f"module-level random.{attr}() uses hidden global "
                    "state; use an explicit random.Random(seed) instance",
                ))
        self.generic_visit(node)


@register
class UnseededRandomRule(_DeterminismRule):
    id = "unseeded-random"
    description = (
        "module-level random.*() functions share hidden global state; "
        "use an explicit random.Random(seed) instance (workloads' own "
        "seeded generators are exempt)"
    )
    visitor_cls = _UnseededRandomVisitor


class _SetIterationVisitor(_CallRuleVisitor):
    def _check_iterable(self, iterable: ast.AST) -> None:
        is_set = isinstance(iterable, ast.Set) or (
            isinstance(iterable, ast.Call)
            and isinstance(iterable.func, ast.Name)
            and iterable.func.id in ("set", "frozenset")
        )
        if is_set:
            self.findings.append(self.rule.finding(
                self.ctx, iterable,
                "iterating a set: order varies with hash seeding; sort it "
                "(or use a list/dict) before anything order-sensitive",
            ))

    def visit_For(self, node: ast.For) -> None:
        self._check_iterable(node.iter)
        self.generic_visit(node)

    def _visit_generators(
        self, generators: Sequence[ast.comprehension]
    ) -> None:
        for gen in generators:
            self._check_iterable(gen.iter)

    def visit_ListComp(self, node: ast.ListComp) -> None:
        self._visit_generators(node.generators)
        self.generic_visit(node)

    def visit_SetComp(self, node: ast.SetComp) -> None:
        self._visit_generators(node.generators)
        self.generic_visit(node)

    def visit_DictComp(self, node: ast.DictComp) -> None:
        self._visit_generators(node.generators)
        self.generic_visit(node)

    def visit_GeneratorExp(self, node: ast.GeneratorExp) -> None:
        self._visit_generators(node.generators)
        self.generic_visit(node)


@register
class SetIterationRule(_DeterminismRule):
    id = "set-iteration"
    description = (
        "iteration directly over a set literal or set()/frozenset() call: "
        "set order varies with hash seeding"
    )
    visitor_cls = _SetIterationVisitor


class _FloatTimeVisitor(_CallRuleVisitor):
    def __init__(self, rule: Rule, ctx: ModuleContext) -> None:
        super().__init__(rule, ctx)
        self._rounded_depth = 0

    def visit_Call(self, node: ast.Call) -> None:
        if (
            isinstance(node.func, ast.Name)
            and node.func.id in ("round", "int")
        ):
            self._rounded_depth += 1
            self.generic_visit(node)
            self._rounded_depth -= 1
            return
        self.generic_visit(node)

    def visit_BinOp(self, node: ast.BinOp) -> None:
        if self._rounded_depth == 0:
            if isinstance(node.op, ast.Div) and is_ps_name(node.left):
                if not is_ps_name(node.right):
                    self.findings.append(self.rule.finding(
                        self.ctx, node,
                        "true division of a picosecond value yields a "
                        "float; the hot path is integer-ps — use // or "
                        "wrap in round()/int() at config time",
                    ))
            elif isinstance(node.op, ast.Mult):
                operands = (node.left, node.right)
                if any(is_ps_name(op) for op in operands) and any(
                    isinstance(op, ast.Constant) and isinstance(op.value, float)
                    for op in operands
                ):
                    self.findings.append(self.rule.finding(
                        self.ctx, node,
                        "float-constant scaling of a picosecond value; "
                        "wrap in round()/int() or precompute an integer",
                    ))
        self.generic_visit(node)


@register
class FloatTimeRule(_DeterminismRule):
    id = "float-time"
    description = (
        "float arithmetic on picosecond values inside the integer-ps hot "
        "path (engine/dram/channel/controller)"
    )
    visitor_cls = _FloatTimeVisitor

    def check_module(self, ctx: ModuleContext) -> Iterable[Finding]:
        if not ctx.in_packages(*_HOT_PACKAGES):
            return ()
        return super().check_module(ctx)
