"""Determinism lint — thin shim over the :mod:`repro.check.lint` engine.

The four original rules (``wall-clock``, ``unseeded-random``,
``set-iteration``, ``float-time``) now live on the plugin framework in
:mod:`repro.check.lint.rules.determinism`; this module keeps the PR-1
entry points (``lint_source`` / ``lint_file`` / ``lint_tree``) and their
golden outputs byte-identical for existing callers, CI invocations and
tests.  New code should use the engine directly — it runs these rules
plus the unit-flow, shared-state, counter-drift and strict-typing
analyses (``python -m repro.check lint``).

A finding is suppressed by the legacy ``# det: allow`` line comment or
the framework's ``# repro: ignore[rule-id]`` syntax.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import List, Optional, Union

from repro.check.lint.core import Finding, LintEngine, ModuleContext, get_rule
from repro.check.lint.rules.determinism import SUPPRESS_MARK

__all__ = [
    "DETERMINISM_RULE_IDS",
    "LintFinding",
    "SUPPRESS_MARK",
    "lint_file",
    "lint_source",
    "lint_tree",
    "repro_source_root",
]

#: The four ported rules this shim runs, in registration order.
DETERMINISM_RULE_IDS = (
    "wall-clock", "unseeded-random", "set-iteration", "float-time",
)


@dataclass(frozen=True)
class LintFinding:
    """One determinism hazard at a source location (legacy shape)."""

    path: str
    line: int
    rule: str
    message: str

    def format(self) -> str:
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"


def _engine() -> LintEngine:
    return LintEngine([get_rule(rule_id) for rule_id in DETERMINISM_RULE_IDS])


def _downgrade(findings: List[Finding]) -> List[LintFinding]:
    return [
        LintFinding(path=f.path, line=f.line, rule=f.rule, message=f.message)
        for f in findings
    ]


def lint_source(
    source: str, path: str = "<string>", module_rel: Optional[str] = None
) -> List[LintFinding]:
    """Lint one module's source text; ``module_rel`` locates it within
    ``repro`` (used for the workloads/hot-path scoping).

    A file that does not parse cannot be vouched for, so a syntax error
    is reported as a finding rather than raised."""
    ctx = ModuleContext(path, module_rel or path, source)
    return _downgrade(_engine().run([ctx]))


def lint_file(path: Union[str, Path],
              root: Optional[Path] = None) -> List[LintFinding]:
    """Lint one file on disk."""
    path = Path(path)
    rel = str(path.relative_to(root)) if root else str(path)
    return lint_source(path.read_text(encoding="utf-8"), str(path), rel)


def lint_tree(root: Union[str, Path]) -> List[LintFinding]:
    """Lint every ``*.py`` file under ``root``, deterministically ordered."""
    root = Path(root)
    findings: List[LintFinding] = []
    for path in sorted(root.rglob("*.py")):
        findings.extend(lint_file(path, root=root))
    return findings


def repro_source_root() -> Path:
    """The installed location of the ``repro`` package sources."""
    import repro

    return Path(repro.__file__).resolve().parent
