"""Determinism lint: AST pass flagging nondeterminism hazards.

The simulator's reproducibility contract (same config + seed → bit-identical
results) survives only if model code never consults sources of run-to-run
variation.  This pass walks the AST of every module under ``src/repro`` and
flags:

* ``wall-clock`` — calls to ``time.time`` / ``time.monotonic`` /
  ``time.perf_counter`` / ``datetime.now`` and friends; simulated time is
  the only clock model code may read;
* ``unseeded-random`` — module-level ``random`` functions
  (``random.random()``, ``random.shuffle()``, ...), which share hidden
  global state; use an explicit ``random.Random(seed)`` instance instead.
  The ``workloads`` package is exempt from the instance requirement only in
  that its generators seed their own ``Random`` objects;
* ``set-iteration`` — ``for``/comprehension iteration directly over a set
  literal or ``set(...)``/``frozenset(...)`` call: set order varies with
  hash seeding, so feeding it into event scheduling reorders events;
* ``float-time`` — inside the integer-picosecond hot path (``engine``,
  ``dram``, ``channel``, ``controller``): true division of a picosecond
  value by a non-picosecond value, or multiplication of a picosecond value
  by a float constant, outside ``round()``/``int()``.  ``timing.py``
  promises the hot path never touches floats; this enforces it.

A finding is suppressed when its source line carries a ``# det: allow``
comment — use it where the hazard is deliberate and harmless, e.g.
wall-clock progress reporting in the experiment driver.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Union

#: Wall-clock callables, as dotted names rooted at the module.
_WALL_CLOCK = {
    "time.time", "time.time_ns", "time.monotonic", "time.monotonic_ns",
    "time.perf_counter", "time.perf_counter_ns", "time.clock_gettime",
    "datetime.datetime.now", "datetime.datetime.utcnow",
    "datetime.datetime.today", "datetime.date.today",
}

#: ``random`` module attributes that are legitimate without an instance.
_RANDOM_OK = {"Random", "SystemRandom", "getstate", "setstate"}

#: Packages whose time values must stay integer picoseconds.
_HOT_PACKAGES = ("engine", "dram", "channel", "controller")

#: Identifier endings that denote a picosecond quantity.
_PS_SUFFIXES = ("_ps", "_time")
_PS_NAMES = {"now", "clock", "burst", "time_ps", "earliest", "deadline"}

SUPPRESS_MARK = "det: allow"


@dataclass(frozen=True)
class LintFinding:
    """One determinism hazard at a source location."""

    path: str
    line: int
    rule: str
    message: str

    def format(self) -> str:
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"


def _dotted_name(node: ast.AST) -> Optional[str]:
    """Resolve ``a.b.c`` attribute chains to a dotted string."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def _is_ps_name(node: ast.AST) -> bool:
    """Whether an expression names a picosecond-typed value."""
    if isinstance(node, ast.Attribute):
        name = node.attr
    elif isinstance(node, ast.Name):
        name = node.id
    else:
        return False
    if name in _PS_NAMES or name.endswith(_PS_SUFFIXES):
        return True
    # Table 2 timing attributes: tRCD, tRP, tWTR, ... (TimingPs fields).
    return len(name) >= 3 and name[0] == "t" and name[1:].isupper()


class _Visitor(ast.NodeVisitor):
    def __init__(self, path: str, module_rel: str, source_lines: Sequence[str]) -> None:
        self.path = path
        self.lines = source_lines
        self.findings: List[LintFinding] = []
        #: local alias -> canonical dotted name (import tracking)
        self.aliases: Dict[str, str] = {}
        parts = Path(module_rel).parts
        self.in_workloads = "workloads" in parts
        self.in_hot_path = any(pkg in parts for pkg in _HOT_PACKAGES)
        self._rounded_depth = 0

    # -- plumbing --------------------------------------------------------

    def _suppressed(self, node: ast.AST) -> bool:
        line_no = getattr(node, "lineno", 0)
        if 1 <= line_no <= len(self.lines):
            return SUPPRESS_MARK in self.lines[line_no - 1]
        return False

    def _flag(self, node: ast.AST, rule: str, message: str) -> None:
        if self._suppressed(node):
            return
        self.findings.append(
            LintFinding(
                path=self.path, line=getattr(node, "lineno", 0),
                rule=rule, message=message,
            )
        )

    def _canonical(self, node: ast.AST) -> Optional[str]:
        """Canonical dotted name of a call target, following imports."""
        dotted = _dotted_name(node)
        if dotted is None:
            return None
        head, _, rest = dotted.partition(".")
        head = self.aliases.get(head, head)
        return f"{head}.{rest}" if rest else head

    # -- imports ---------------------------------------------------------

    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            self.aliases[alias.asname or alias.name.split(".")[0]] = (
                alias.name if alias.asname else alias.name.split(".")[0]
            )
        self.generic_visit(node)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        if node.module:
            for alias in node.names:
                self.aliases[alias.asname or alias.name] = (
                    f"{node.module}.{alias.name}"
                )
        self.generic_visit(node)

    # -- calls: wall clocks, unseeded random, round() tracking -----------

    def visit_Call(self, node: ast.Call) -> None:
        target = self._canonical(node.func)
        if target in _WALL_CLOCK:
            self._flag(
                node, "wall-clock",
                f"call to {target}(): simulator code must use simulated "
                "time, not the host clock",
            )
        elif target is not None and target.startswith("random."):
            attr = target.split(".", 1)[1]
            if attr not in _RANDOM_OK and not self.in_workloads:
                self._flag(
                    node, "unseeded-random",
                    f"module-level random.{attr}() uses hidden global "
                    "state; use an explicit random.Random(seed) instance",
                )
        if (
            isinstance(node.func, ast.Name)
            and node.func.id in ("round", "int")
        ):
            self._rounded_depth += 1
            self.generic_visit(node)
            self._rounded_depth -= 1
            return
        self.generic_visit(node)

    # -- set iteration -----------------------------------------------------

    def _check_iterable(self, iterable: ast.AST) -> None:
        is_set = isinstance(iterable, ast.Set) or (
            isinstance(iterable, ast.Call)
            and isinstance(iterable.func, ast.Name)
            and iterable.func.id in ("set", "frozenset")
        )
        if is_set:
            self._flag(
                iterable, "set-iteration",
                "iterating a set: order varies with hash seeding; sort it "
                "(or use a list/dict) before anything order-sensitive",
            )

    def visit_For(self, node: ast.For) -> None:
        self._check_iterable(node.iter)
        self.generic_visit(node)

    def visit_comprehension_generators(self, generators) -> None:
        for gen in generators:
            self._check_iterable(gen.iter)

    def visit_ListComp(self, node: ast.ListComp) -> None:
        self.visit_comprehension_generators(node.generators)
        self.generic_visit(node)

    def visit_SetComp(self, node: ast.SetComp) -> None:
        self.visit_comprehension_generators(node.generators)
        self.generic_visit(node)

    def visit_DictComp(self, node: ast.DictComp) -> None:
        self.visit_comprehension_generators(node.generators)
        self.generic_visit(node)

    def visit_GeneratorExp(self, node: ast.GeneratorExp) -> None:
        self.visit_comprehension_generators(node.generators)
        self.generic_visit(node)

    # -- float arithmetic on picosecond values ----------------------------

    def visit_BinOp(self, node: ast.BinOp) -> None:
        if self.in_hot_path and self._rounded_depth == 0:
            if isinstance(node.op, ast.Div) and _is_ps_name(node.left):
                if not _is_ps_name(node.right):
                    self._flag(
                        node, "float-time",
                        "true division of a picosecond value yields a "
                        "float; the hot path is integer-ps — use // or "
                        "wrap in round()/int() at config time",
                    )
            elif isinstance(node.op, ast.Mult):
                operands = (node.left, node.right)
                if any(_is_ps_name(op) for op in operands) and any(
                    isinstance(op, ast.Constant) and isinstance(op.value, float)
                    for op in operands
                ):
                    self._flag(
                        node, "float-time",
                        "float-constant scaling of a picosecond value; "
                        "wrap in round()/int() or precompute an integer",
                    )
        self.generic_visit(node)


def lint_source(
    source: str, path: str = "<string>", module_rel: Optional[str] = None
) -> List[LintFinding]:
    """Lint one module's source text; ``module_rel`` locates it within
    ``repro`` (used for the workloads/hot-path scoping).

    A file that does not parse cannot be vouched for, so a syntax error
    is reported as a finding rather than raised."""
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        return [LintFinding(
            path=path, line=exc.lineno or 0, rule="syntax-error",
            message=f"file does not parse: {exc.msg}",
        )]
    visitor = _Visitor(path, module_rel or path, source.splitlines())
    visitor.visit(tree)
    return visitor.findings


def lint_file(path: Union[str, Path], root: Optional[Path] = None) -> List[LintFinding]:
    """Lint one file on disk."""
    path = Path(path)
    rel = str(path.relative_to(root)) if root else str(path)
    return lint_source(path.read_text(encoding="utf-8"), str(path), rel)


def lint_tree(root: Union[str, Path]) -> List[LintFinding]:
    """Lint every ``*.py`` file under ``root``, deterministically ordered."""
    root = Path(root)
    findings: List[LintFinding] = []
    for path in sorted(root.rglob("*.py")):
        findings.extend(lint_file(path, root=root))
    return findings


def repro_source_root() -> Path:
    """The installed location of the ``repro`` package sources."""
    import repro

    return Path(repro.__file__).resolve().parent
