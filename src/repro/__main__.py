"""Command-line interface.

Usage::

    python -m repro run --workload 4C-1 --system fbd-ap
    python -m repro compare --workload 8C-1 --insts 50000
    python -m repro list

``run`` simulates one system and prints a full report; ``compare`` runs
DDR2, FB-DIMM and FB-DIMM+AP side by side; ``list`` shows the available
programs and Table 3 workload mixes.  Regenerating the paper's figures
lives under ``python -m repro.experiments``.
"""

from __future__ import annotations

import argparse
import dataclasses
import sys
from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

from repro.analysis.latency import LatencyDistribution
from repro.analysis.report import run_report
from repro.analysis.utilisation import channel_utilisation_report
from repro.config import (
    AmbPrefetchConfig,
    Associativity,
    SystemConfig,
    ddr2_baseline,
    fbdimm_amb_prefetch,
    fbdimm_baseline,
)
from repro.dram.devices import device_names
from repro.system import System
from repro.workloads.multiprog import SINGLE_CORE, WORKLOADS, workload_programs

if TYPE_CHECKING:
    from repro.engine.profiler import EventLoopProfiler
    from repro.system import SimulationResult
    from repro.telemetry import Tracer

SYSTEMS = ("ddr2", "fbd", "fbd-ap")

ASSOCIATIVITIES = {
    "direct": Associativity.DIRECT,
    "2way": Associativity.TWO_WAY,
    "4way": Associativity.FOUR_WAY,
    "full": Associativity.FULL,
}


def _build_config(args: argparse.Namespace, system: str) -> SystemConfig:
    programs = workload_programs(args.workload)
    cores = len(programs)
    if system == "ddr2":
        config = ddr2_baseline(num_cores=cores)
    elif system == "fbd":
        config = fbdimm_baseline(num_cores=cores)
    else:
        prefetch = AmbPrefetchConfig(
            region_cachelines=args.k,
            cache_entries=args.entries,
            associativity=ASSOCIATIVITIES[args.assoc],
        )
        config = fbdimm_amb_prefetch(num_cores=cores, prefetch=prefetch)
    device = getattr(args, "device", None)
    if device is not None and device != "ddr2-667":
        config = config.with_device(device)
    config = dataclasses.replace(
        config,
        instructions_per_core=args.insts,
        seed=args.seed,
        software_prefetch=not args.no_sw_prefetch,
    )
    window_ns = getattr(args, "timeline_ns", None)
    if window_ns is not None:
        config = config.with_timeline(window_ns=window_ns)
    return config


def _run_one(
    args: argparse.Namespace,
    system: str,
    tracer: Optional[Tracer] = None,
    profiler: Optional[EventLoopProfiler] = None,
) -> Tuple[System, SimulationResult]:
    programs = workload_programs(args.workload)
    config = _build_config(args, system)
    machine = System(config, programs, tracer=tracer)
    if profiler is not None:
        machine.sim.profiler = profiler
    if args.latency:
        machine.controller.stats.enable_latency_capture()
    return machine, machine.run()


def cmd_run(args: argparse.Namespace) -> int:
    tracer = None
    if args.trace_out:
        from repro.telemetry import Tracer

        tracer = Tracer()
    profiler = None
    if args.profile is not None:
        from repro.engine.profiler import EventLoopProfiler

        profiler = EventLoopProfiler()
    machine, result = _run_one(args, args.system, tracer=tracer,
                               profiler=profiler)
    if tracer is not None:
        from repro.telemetry import build_capture, save_capture

        capture = build_capture(
            result, tracer,
            check_events=machine.controller.collect_check_events(),
        )
        records = save_capture(args.trace_out, capture)
        print(f"[trace: {records} records -> {args.trace_out}]")
    print(run_report(result))
    if profiler is not None:
        print()
        print(profiler.tree_report(limit=args.profile))
    if args.latency:
        dist = LatencyDistribution.from_stats(result.mem)
        print(f"\nlatency distribution: {dist.format()}")
    if args.utilisation:
        print("\nlink utilisation:")
        for row in channel_utilisation_report(result.mem):
            print(f"  {row.name:<24} {row.busy_fraction:6.1%}")
    return 0


def _compare_results(args: argparse.Namespace) -> List[SimulationResult]:
    """One result per system, fanned out across --jobs processes."""
    if args.jobs > 1 and not args.latency:
        from repro.experiments.parallel import execute_runs

        programs = tuple(workload_programs(args.workload))
        pairs = [(_build_config(args, system), programs) for system in SYSTEMS]
        return execute_runs(pairs, jobs=args.jobs)
    return [_run_one(args, system)[1] for system in SYSTEMS]


def cmd_compare(args: argparse.Namespace) -> int:
    print(f"workload {args.workload}, {args.insts} instructions/core\n")
    header = (
        f"{'system':<8} {'sum IPC':>8} {'latency':>9} {'bandwidth':>10} "
        f"{'ACT':>7} {'coverage':>9}"
    )
    print(header)
    print("-" * len(header))
    baseline_ipc: Optional[float] = None
    for system, result in zip(SYSTEMS, _compare_results(args)):
        total_ipc = sum(result.core_ipcs)
        if system == "ddr2":
            baseline_ipc = total_ipc
        print(
            f"{system:<8} {total_ipc:>8.3f} "
            f"{result.avg_read_latency_ns:>7.1f}ns "
            f"{result.utilized_bandwidth_gbs:>7.2f}GB/s "
            f"{result.mem.activates:>7} {result.prefetch_coverage:>9.3f}"
        )
    if baseline_ipc:
        print(f"\n(speedups are relative to DDR2 = {baseline_ipc:.3f} sum-IPC)")
    return 0


def cmd_list(_args: argparse.Namespace) -> int:
    print("programs (single-core workloads):")
    print(" ", ", ".join(SINGLE_CORE))
    print("\nmultiprogrammed workloads (Table 3):")
    for name, programs in WORKLOADS.items():
        print(f"  {name:<5} {', '.join(programs)}")
    return 0


#: Sweepable axes for the ``sweep`` subcommand and how each value parses.
SWEEP_AXES = {
    "k": int,
    "entries": int,
    "assoc": str,
    "rate": int,
    "channels": int,
    "device": str,
}


def _parse_axes(specs: List[str]) -> Dict[str, List[object]]:
    """Parse ["k=2,4,8", "rate=667,800"] into {"k": [2,4,8], ...}."""
    axes: Dict[str, List[object]] = {}
    for spec in specs:
        if "=" not in spec:
            raise SystemExit(f"bad axis {spec!r}; expected name=v1,v2,...")
        name, _, values = spec.partition("=")
        if name not in SWEEP_AXES:
            raise SystemExit(
                f"unknown axis {name!r}; choices: {sorted(SWEEP_AXES)}"
            )
        cast = SWEEP_AXES[name]
        axes[name] = [cast(v) for v in values.split(",") if v]
        if not axes[name]:
            raise SystemExit(f"axis {name!r} has no values")
    if not axes:
        raise SystemExit("sweep needs at least one axis (e.g. k=2,4,8)")
    return axes


def cmd_sweep(args: argparse.Namespace) -> int:
    from repro.experiments.charts import bar_chart
    from repro.experiments.runner import ExperimentContext
    from repro.experiments.sweep import Sweep

    axes = _parse_axes(args.axes)
    programs = workload_programs(args.workload)
    cores = len(programs)

    def build(k: int = 4, entries: int = 64, assoc: str = "full",
              rate: int = 667, channels: int = 2,
              device: str = "ddr2-667") -> SystemConfig:
        prefetch = AmbPrefetchConfig(
            region_cachelines=k,
            cache_entries=entries,
            associativity=ASSOCIATIVITIES[assoc],
        )
        config = fbdimm_amb_prefetch(
            num_cores=cores,
            prefetch=prefetch,
            logic_channels=channels,
        )
        if device != "ddr2-667":
            # The device preset fixes its own data rate; an explicit
            # rate axis still overrides it below.
            config = config.with_device(device)
        if device == "ddr2-667" or "rate" in axes:
            config = config.with_memory(data_rate_mts=rate)
        return config

    sweep = Sweep(
        axes=axes, build=build, workload=args.workload, metric_name="sum_ipc"
    )
    cache = None if args.no_cache else args.cache_dir
    ctx = ExperimentContext(
        instructions=args.insts, seed=args.seed, jobs=args.jobs, cache=cache
    )
    table = sweep.run(ctx, metric=lambda r: sum(r.core_ipcs))
    print(table.format())
    print()
    print(bar_chart(table, "sum_ipc", label_columns=list(axes), width=40))
    if ctx.cache is not None:
        print(
            f"\n[cache: {ctx.fresh_runs} simulated, "
            f"{ctx.disk_hits} served from {ctx.cache.root}]"
        )
    return 0


def cmd_faults(args: argparse.Namespace) -> int:
    from repro.faults.sweep import fault_sweep, format_sweep

    if args.system == "ddr2":
        raise SystemExit("fault injection models the FB-DIMM link layer; "
                         "use --system fbd or fbd-ap")
    try:
        rates = [float(v) for v in args.rates.split(",") if v]
    except ValueError as exc:
        raise SystemExit(f"bad --rates value: {exc}") from exc
    if not rates:
        raise SystemExit("--rates needs at least one error rate")
    programs = workload_programs(args.workload)
    config = _build_config(args, args.system)
    config = dataclasses.replace(
        config, faults=dataclasses.replace(config.faults, seed=args.fault_seed)
    )
    points = fault_sweep(
        config,
        programs,
        rates,
        amb_bitflip_rate=args.bitflip,
        jobs=args.jobs,
    )
    print(
        f"workload {args.workload}, system {args.system}, "
        f"{args.insts} instructions/core, fault seed {args.fault_seed}\n"
    )
    print(format_sweep(points))
    print("\n(dIPC is relative to the fault-free baseline; 'retry ns' is "
          "link latency added by replays)")
    return 0


def cmd_cache(args: argparse.Namespace) -> int:
    from repro.experiments.runcache import RunCache

    cache = RunCache(args.cache_dir)
    if args.action == "stats":
        summary = cache.summary()
        print(f"cache root    {summary['root']}")
        print(f"entries       {summary['entries']}")
        print(f"size          {summary['bytes'] / 1e6:.2f} MB")
        print(f"quarantined   {summary['quarantined']}")
        print(f"code salt     {summary['salt']}")
        print(f"format        v{summary['format']}")
    else:  # purge
        removed = cache.purge()
        print(f"removed {removed} cache entries from {cache.root}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="FB-DIMM / AMB-prefetching simulator (ISPASS 2007 repro)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def add_run_args(p: argparse.ArgumentParser) -> None:
        p.add_argument("--workload", default="4C-1",
                       help="a program name or a Table 3 mix (see 'list')")
        p.add_argument("--insts", type=int, default=50_000)
        p.add_argument("--seed", type=int, default=12345)
        p.add_argument("--no-sw-prefetch", action="store_true")
        p.add_argument("--device", choices=device_names(), default="ddr2-667",
                       help="DRAM device generation preset "
                            "(see docs/DEVICES.md)")
        p.add_argument("--k", type=int, default=4,
                       help="region cachelines for fbd-ap")
        p.add_argument("--entries", type=int, default=64)
        p.add_argument("--assoc", choices=sorted(ASSOCIATIVITIES), default="full")
        p.add_argument("--latency", action="store_true",
                       help="capture and print the latency distribution")
        p.add_argument("--utilisation", action="store_true",
                       help="print per-link busy fractions")
        p.add_argument("--jobs", type=int, default=1,
                       help="worker processes for independent runs")

    run_p = sub.add_parser("run", help="simulate one system")
    add_run_args(run_p)
    run_p.add_argument("--system", choices=SYSTEMS, default="fbd-ap")
    run_p.add_argument("--trace-out", metavar="PATH",
                       help="record a telemetry capture (see repro.trace)")
    run_p.add_argument("--profile", nargs="?", const=15, default=None,
                       type=int, metavar="N",
                       help="profile the event loop; print the top-N "
                            "callback sites (default 15)")
    run_p.add_argument("--timeline-ns", type=float, default=None,
                       metavar="NS",
                       help="record the windowed timeline (window length "
                            "in sim-time ns; see docs/TIMELINE.md)")
    run_p.set_defaults(func=cmd_run)

    cmp_p = sub.add_parser("compare", help="DDR2 vs FBD vs FBD-AP")
    add_run_args(cmp_p)
    cmp_p.set_defaults(func=cmd_compare)

    list_p = sub.add_parser("list", help="show programs and workloads")
    list_p.set_defaults(func=cmd_list)

    sweep_p = sub.add_parser(
        "sweep", help="sweep fbd-ap knobs, e.g. sweep k=2,4,8 rate=667,800"
    )
    sweep_p.add_argument("axes", nargs="+",
                         help=f"axis=v1,v2,... from {sorted(SWEEP_AXES)}")
    sweep_p.add_argument("--workload", default="4C-1")
    sweep_p.add_argument("--insts", type=int, default=20_000)
    sweep_p.add_argument("--seed", type=int, default=12345)
    sweep_p.add_argument("--jobs", type=int, default=1,
                         help="worker processes for independent sweep points")
    sweep_p.add_argument("--no-cache", action="store_true",
                         help="skip the persistent run cache")
    sweep_p.add_argument("--cache-dir", default=".repro-cache",
                         help="run-cache directory")
    sweep_p.set_defaults(func=cmd_sweep)

    faults_p = sub.add_parser(
        "faults", help="sweep link error rates (repro.faults injection)"
    )
    add_run_args(faults_p)
    faults_p.add_argument("--system", choices=("fbd", "fbd-ap"),
                          default="fbd-ap")
    faults_p.add_argument("--rates", default="1e-6,1e-4,1e-2",
                          help="comma-separated frame error rates")
    faults_p.add_argument("--bitflip", type=float, default=None,
                          help="AMB-cache bit-flip rate (default: same as "
                               "the link error rate)")
    faults_p.add_argument("--fault-seed", type=int, default=0xFBD1,
                          help="seed of the fault-decision streams")
    faults_p.set_defaults(func=cmd_faults)

    cache_p = sub.add_parser(
        "cache", help="inspect or purge the persistent run cache"
    )
    cache_p.add_argument("action", choices=("stats", "purge"))
    cache_p.add_argument("--cache-dir", default=".repro-cache")
    cache_p.set_defaults(func=cmd_cache)

    bench_p = sub.add_parser(
        "bench", help="performance benchmarking (see docs/BENCHMARKING.md)"
    )
    from repro.bench.cli import configure_parser as configure_bench_parser

    configure_bench_parser(bench_p)

    timeline_p = sub.add_parser(
        "timeline", help="windowed sim-time telemetry (see docs/TIMELINE.md)"
    )
    from repro.timeline.cli import configure_parser as configure_timeline_parser

    configure_timeline_parser(timeline_p)

    prefetch_p = sub.add_parser(
        "prefetch",
        help="prefetch lifecycle observability (see docs/PREFETCH.md)",
    )
    from repro.prefetch.cli import configure_parser as configure_prefetch_parser

    configure_prefetch_parser(prefetch_p)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
