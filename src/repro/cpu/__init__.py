"""Processor-side models.

The memory system only observes the L2 miss stream and its concurrency, so
the core model is deliberately *bounded-window* rather than cycle-accurate:
each core retires instructions at its program's base IPC and stalls exactly
when a real out-of-order core would — on a full ROB window behind an
outstanding demand miss, a full MSHR file, or a full store buffer.
"""

from repro.cpu.core import Core, CoreStats
from repro.cpu.l2 import L2FillTable
from repro.cpu.mshr import Limiter

__all__ = ["Core", "CoreStats", "L2FillTable", "Limiter"]
