"""Shared-L2 fill tracking for software cache prefetching.

The synthetic traces are *L2 miss streams*, so ordinary demand reuse is
already filtered out; the only L2 behaviour the simulation must model is
the interaction the paper studies in Section 5.4 — a software prefetch
fills the L2 ahead of its demand access, turning that access into an L2
hit (or a shorter wait, if the fill is still in flight).

The table holds both in-flight and completed fills, evicting completed
ones FIFO beyond the L2's capacity in lines.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Callable, List, Optional


@dataclass
class FillEntry:
    """State of one prefetched line."""

    ready_time: Optional[int]  # None while the memory request is in flight
    waiters: List[Callable[[], None]]


class L2FillTable:
    """Tracks lines brought into the shared L2 by software prefetches."""

    def __init__(self, capacity_lines: int) -> None:
        if capacity_lines < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = capacity_lines
        self._entries: "OrderedDict[int, FillEntry]" = OrderedDict()
        self.fills_started = 0
        self.fills_completed = 0
        self.demand_hits = 0
        self.demand_merges = 0  # demand arrived while the fill was in flight

    def start_fill(self, line_addr: int) -> None:
        """Register an in-flight prefetch for ``line_addr``."""
        if line_addr in self._entries:
            return
        self._entries[line_addr] = FillEntry(ready_time=None, waiters=[])
        self.fills_started += 1
        self._evict_beyond_capacity()

    def complete_fill(self, line_addr: int, time_ps: int) -> None:
        """The prefetch's memory request finished; wake merged demands."""
        entry = self._entries.get(line_addr)
        if entry is None:  # evicted or invalidated while in flight
            return
        entry.ready_time = time_ps
        self.fills_completed += 1
        if entry.waiters:
            waiters, entry.waiters = entry.waiters, []
            for waiter in waiters:
                waiter()

    def probe(self, line_addr: int, now: int) -> "tuple[str, Optional[FillEntry]]":
        """Classify a demand access against the fill table.

        Returns one of:
            ("hit", entry)    — line resident, demand is an L2 hit;
            ("inflight", entry) — fill outstanding, demand merges with it;
            ("miss", None)    — no fill, demand must go to memory.
        """
        entry = self._entries.get(line_addr)
        if entry is None:
            return "miss", None
        if entry.ready_time is not None and entry.ready_time <= now:
            self.demand_hits += 1
            return "hit", entry
        self.demand_merges += 1
        return "inflight", entry

    def has_line(self, line_addr: int) -> bool:
        """True when a fill (in flight or done) exists — used to squash a
        redundant software prefetch."""
        return line_addr in self._entries

    def invalidate(self, line_addr: int) -> None:
        """A store overwrote the line.

        Any demand that had merged with the in-flight fill is satisfied by
        store forwarding, so its waiters are woken rather than dropped.
        """
        entry = self._entries.pop(line_addr, None)
        if entry is not None and entry.waiters:
            for waiter in entry.waiters:
                waiter()

    def _evict_beyond_capacity(self) -> None:
        while len(self._entries) > self.capacity:
            # Evict the oldest fill that nobody waits on; in-flight state
            # with merged demands must never be dropped.
            for line_addr, entry in self._entries.items():
                if entry.ready_time is not None and not entry.waiters:
                    del self._entries[line_addr]
                    break
            else:
                break
